//===- graph_reachability.cpp - ADE on a graph workload -------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Runs the suite's BFS program (sparse SNAP-like node labels) through
/// the full harness and contrasts the baseline against ADE and its
/// ablations — a miniature of the paper's Figure 5/7 methodology on one
/// benchmark, with per-configuration dynamic-access mixes.
///
/// Build and run:
///   cmake --build build && ./build/examples/graph_reachability
///
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "stats/Stats.h"
#include "support/RawOstream.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main() {
  RawOstream &OS = outs();
  const BenchmarkSpec *BFS = findBenchmark("BFS");
  if (!BFS) {
    errs() << "BFS benchmark missing\n";
    return 1;
  }
  OS << "Breadth-first search over an R-MAT-style graph with scrambled\n"
     << "64-bit node labels; the visited set, frontier queues and the\n"
     << "adjacency map share one enumeration under ADE.\n\n";

  RunOptions Options;
  Options.ScalePercent = 60;

  Table T({"config", "init(s)", "roi(s)", "checksum", "sparse", "dense",
           "peak bytes"});
  uint64_t Checksum = 0;
  for (Config C : {Config::Memoir, Config::Ade, Config::AdeNoRTE,
                   Config::AdeNoShare, Config::AdeSparse}) {
    RunResult R = runBenchmark(*BFS, C, Options);
    if (Checksum == 0)
      Checksum = R.Checksum;
    if (R.Checksum != Checksum) {
      errs() << "checksum mismatch under " << configName(C) << "\n";
      return 1;
    }
    T.addRow({configName(C), Table::fmt(R.InitSeconds, 3),
              Table::fmt(R.RoiSeconds, 3), std::to_string(R.Checksum),
              std::to_string(R.Stats.Sparse),
              std::to_string(R.Stats.Dense),
              std::to_string(R.PeakBytes)});
  }
  T.print(OS);
  OS << "\nADE turns the kernel's hash probes into bit tests; disabling\n"
     << "redundant translation elimination re-inserts a translation at\n"
     << "every use (the Listing 2 indirection).\n";
  return 0;
}
