//===- wordcount.cpp - String interning via the collections API -----------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Uses the collection library directly from C++ (no compiler involved)
/// to implement the pattern data enumeration generalizes: string
/// interning (SII). A word stream is interned through an Enumeration so
/// the frequency table and the stop-word set become dense, array-backed
/// structures over identifiers — the manual transformation ADE automates.
///
/// Build and run:
///   cmake --build build && ./build/examples/wordcount
///
//===----------------------------------------------------------------------===//

#include "collections/Collections.h"
#include "stats/Stats.h"
#include "support/Random.h"
#include "support/RawOstream.h"

#include <string>
#include <vector>

using namespace ade;

namespace {

/// A deterministic pseudo-corpus with a Zipf-ish word distribution.
std::vector<std::string> makeCorpus(size_t Words, size_t Vocabulary) {
  std::vector<std::string> Corpus;
  Corpus.reserve(Words);
  Rng R(2026);
  for (size_t I = 0; I != Words; ++I) {
    double U = R.nextDouble();
    size_t WordId = static_cast<size_t>(U * U * Vocabulary);
    Corpus.push_back("w" + std::to_string(WordId));
  }
  return Corpus;
}

} // namespace

int main() {
  RawOstream &OS = outs();
  std::vector<std::string> Corpus = makeCorpus(200000, 5000);

  // Intern every word: Enumeration assigns contiguous ids [0, N) in
  // first-encounter order — `enc` is one hash lookup, `dec` an array read.
  Enumeration<std::string> Intern;
  std::vector<uint64_t> Ids;
  Ids.reserve(Corpus.size());
  for (const std::string &Word : Corpus)
    Ids.push_back(Intern.add(Word).first);
  OS << "corpus: " << uint64_t(Corpus.size()) << " words, "
     << Intern.size() << " distinct\n";

  // With contiguous ids, the frequency map is a dense BitMap and the
  // stop-word set a BitSet: array indexing instead of hashing.
  BitMap<uint64_t> Freq;
  for (uint64_t Id : Ids) {
    if (uint64_t *Count = Freq.lookup(Id))
      ++*Count;
    else
      Freq.insertOrAssign(Id, 1);
  }

  BitSet StopWords;
  for (uint64_t StopId = 0; StopId != 10 && StopId < Intern.size();
       ++StopId)
    StopWords.insert(Intern.encode(Intern.decode(StopId)));

  // Report the most frequent non-stop words, decoding ids back.
  struct Entry {
    uint64_t Id;
    uint64_t Count;
  };
  std::vector<Entry> Top;
  Freq.forEach([&](uint64_t Id, uint64_t &Count) {
    if (StopWords.contains(Id))
      return;
    Top.push_back({Id, Count});
  });
  std::sort(Top.begin(), Top.end(), [](const Entry &A, const Entry &B) {
    return A.Count != B.Count ? A.Count > B.Count : A.Id < B.Id;
  });

  stats::Table T({"word", "id", "count"});
  for (size_t I = 0; I != 8 && I != Top.size(); ++I)
    T.addRow({std::string(Intern.decode(Top[I].Id)),
              std::to_string(Top[I].Id), std::to_string(Top[I].Count)});
  T.print(OS);

  OS << "\nfrequency table storage: " << uint64_t(Freq.memoryBytes())
     << " bytes dense vs ~"
     << uint64_t(Intern.size() * (sizeof(void *) + 3 * sizeof(uint64_t)))
     << " bytes as a chained hash map\n";
  return 0;
}
