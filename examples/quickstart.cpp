//===- quickstart.cpp - ADE in five minutes -------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The introduction's running example, end to end: a program that finds
/// unique items in a stream using a Set over sparse 64-bit values. We
/// parse it, show the IR, run automatic data enumeration, show the
/// transformed IR (enumeration global, idx types, BitSet selection,
/// enc/dec/add translations), and execute both versions to demonstrate
/// that the result is unchanged while the accesses turned dense.
///
/// Build and run:
///   cmake --build build && ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/RawOstream.h"

using namespace ade;

// The intro example: print-unique over an input stream. Values are
// sparse 64-bit labels, so the baseline set must hash them.
static const char *Program = R"(fn @unique(%input: Seq<u64>) -> u64 {
  %seen = new Set<u64>
  %zero = const 0 : u64
  %one = const 1 : u64
  %count = foreach %input -> [%i, %v] iter(%acc = %zero) {
    %dup = has %seen, %v
    %next = if %dup {
      yield %acc
    } else {
      insert %seen, %v
      %n = add %acc, %one
      yield %n
    }
    yield %next
  }
  ret %count
}
fn @main() -> u64 {
  %input = new Seq<u64>
  %lo = const 0 : u64
  %hi = const 100000 : u64
  %mod = const 5000 : u64
  %scramble = const 2654435761 : u64
  forrange %lo, %hi -> [%i] {
    %r = rem %i, %mod
    %v = mul %r, %scramble
    append %input, %v
    yield
  }
  %r = call @unique(%input)
  ret %r
})";

static uint64_t runAndReport(ir::Module &M, const char *Label) {
  RawOstream &OS = outs();
  MemoryTracker::instance().reset();
  interp::Interpreter I(M);
  uint64_t Result = I.callByName("main", {});
  OS << Label << ": result=" << Result
     << " sparse=" << I.stats().Sparse << " dense=" << I.stats().Dense
     << " peakBytes=" << MemoryTracker::instance().peakBytes() << "\n";
  return Result;
}

int main() {
  RawOstream &OS = outs();
  auto M = parser::parseModuleOrDie(Program);

  OS << "=== Original program ===\n";
  printModule(*M, OS);
  uint64_t Before = runAndReport(*M, "baseline (HashSet)");

  // Automatic data enumeration: the compiler manufactures the contiguity
  // property and switches the set to a bitset.
  core::PipelineResult R = core::runADE(*M);
  OS << "\n=== After automatic data enumeration ===\n";
  OS << "(created " << R.Transform.EnumerationsCreated
     << " enumeration(s); eliminated " << R.Transform.TranslationsSkipped
     << " redundant translation site(s))\n\n";
  printModule(*M, OS);
  uint64_t After = runAndReport(*M, "ADE (BitSet)");

  if (Before != After) {
    errs() << "ERROR: results diverged!\n";
    return 1;
  }
  OS << "\nSame result, dense accesses: that is ADE.\n";
  return 0;
}
