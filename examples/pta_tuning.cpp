//===- pta_tuning.cpp - Performance engineering with directives -----------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The RQ4 workflow as a runnable example: Andersen points-to analysis
/// where ADE's benefit heuristic eagerly shares one enumeration between
/// the pointer keys of the points-to map and its inner object sets,
/// leaving the inner bitsets almost entirely empty. `#pragma ade`
/// directives at the inner allocation site bisect and fix the problem —
/// the open-box compiler story of SIII-I.
///
/// Build and run:
///   cmake --build build && ./build/examples/pta_tuning
///
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "stats/Stats.h"
#include "support/RawOstream.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main() {
  RawOstream &OS = outs();
  const BenchmarkSpec *PTA = findBenchmark("PTA");
  if (!PTA) {
    errs() << "PTA benchmark missing\n";
    return 1;
  }
  OS << "Andersen points-to analysis: ~3000 pointers but only ~60\n"
     << "allocation sites. Under the default heuristic the inner\n"
     << "points-to bitsets span the shared pointer+object enumeration\n"
     << "and use a fraction of their bits.\n\n";

  RunOptions Base;
  Base.ScalePercent = 100;
  RunResult Memoir = runBenchmark(*PTA, Config::Memoir, Base);

  struct Step {
    const char *What;
    const char *Pragma;
  };
  const Step Steps[] = {
      {"ade untuned (eager sharing)", ""},
      {"#pragma ade enumerate noshare", "#pragma ade enumerate noshare"},
      {"#pragma ade noenumerate", "#pragma ade noenumerate"},
      {"#pragma ade select(SparseBitSet)",
       "#pragma ade select(SparseBitSet)"},
      {"#pragma ade select(FlatSet)", "#pragma ade select(FlatSet)"},
  };

  Table T({"inner-set directive", "total(s)", "vs memoir", "peak bytes"});
  T.addRow({"(memoir baseline)", Table::fmt(Memoir.totalSeconds(), 3),
            "1.00x", std::to_string(Memoir.PeakBytes)});
  for (const Step &S : Steps) {
    RunOptions Options = Base;
    Options.PtaInnerPragma = S.Pragma;
    RunResult R = runBenchmark(*PTA, Config::Ade, Options);
    if (R.Checksum != Memoir.Checksum) {
      errs() << "checksum mismatch for '" << S.What << "'\n";
      return 1;
    }
    T.addRow({S.What, Table::fmt(R.totalSeconds(), 3),
              Table::fmt(Memoir.totalSeconds() / R.totalSeconds(), 2) +
                  "x",
              std::to_string(R.PeakBytes)});
  }
  T.print(OS);
  OS << "\nGiving the inner sets their own (object-only) enumeration via\n"
     << "'enumerate noshare' is the winning move, exactly as in the\n"
     << "paper's case study.\n";
  return 0;
}
