//===- fig6_aarch64_projection.cpp - Figure 6: AArch64 projection ---------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 6's cross-architecture comparison. We have one host
/// machine (DESIGN.md substitution 5), so the AArch64 numbers are a
/// calibrated projection: the measured region-of-interest time of the ADE
/// configuration is re-weighted by the per-operation AArch64/Intel cost
/// ratios derivable from the paper's own Table III (e.g. BitMap writes
/// are 15.94x faster than hash writes on Intel but only 10.20x on
/// AArch64, a 1.56x relative slowdown — the effect the paper names for
/// SSSP's regression). The baseline is assumed architecture-neutral in
/// relative terms, matching the paper's observation that hash-dominated
/// code shifts little.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/Stats.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::runtime;
using namespace ade::stats;

namespace {

/// AArch64-relative-to-Intel cost ratio of dense accesses per category,
/// from the paper's Table III (intel_speedup / aarch64_speedup over the
/// hash baseline).
double aarch64CostRatio(OpCategory C) {
  switch (C) {
  case OpCategory::Read:
    return 10.63 / 18.65; // BitMap read is relatively faster on AArch64.
  case OpCategory::Write:
    return 15.94 / 10.20; // BitMap write: 1.56x relative slowdown.
  case OpCategory::Insert:
    return 13.10 / 8.91;
  case OpCategory::Remove:
    return 1.32 / 2.60;
  case OpCategory::Iterate:
    return 2.65 / 6.41;
  case OpCategory::Union:
    return 5817.38 / 6944.48;
  default:
    return 1.0;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/60);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Figure 6: projected AArch64 speedups (scale " << Cli.Scale
     << "%) ==\n";
  Table T({"Bench", "x64 speedup", "arm64 speedup (proj)", "x64 ROI",
           "arm64 ROI (proj)", "shift"});
  std::vector<double> X64, Arm, X64Roi, ArmRoi;
  for (const BenchmarkSpec *B : Cli.selected()) {
    RunResult Base = runMedian(*B, Config::Memoir, Cli);
    RunResult Ade = runMedian(*B, Config::Ade, Cli);
    // Re-weight the ADE ROI by the dense-access category mix.
    const InterpStats &S = Ade.Stats;
    double DenseTotal = static_cast<double>(S.Dense);
    double Factor = 1.0;
    if (DenseTotal > 0 && S.totalAccesses() > 0) {
      double Weighted = 0;
      for (unsigned C = 0; C != InterpStats::NumCats; ++C)
        Weighted += static_cast<double>(S.ByCategory[C]) *
                    aarch64CostRatio(static_cast<OpCategory>(C));
      // Only the dense share of the accesses shifts with architecture.
      double DenseShare =
          DenseTotal / static_cast<double>(S.totalAccesses());
      double CategoryShift =
          Weighted / static_cast<double>(S.totalAccesses());
      Factor = (1.0 - DenseShare) + DenseShare * CategoryShift;
      if (Factor <= 0)
        Factor = 1.0;
    }
    double AdeRoiArm = Ade.RoiSeconds * Factor;
    double AdeTotalArm = Ade.InitSeconds + AdeRoiArm;
    double SpX64 = Base.totalSeconds() / Ade.totalSeconds();
    double SpArm = Base.totalSeconds() / AdeTotalArm;
    double RoiX64 = Base.RoiSeconds / Ade.RoiSeconds;
    double RoiArm = Base.RoiSeconds / AdeRoiArm;
    X64.push_back(SpX64);
    Arm.push_back(SpArm);
    X64Roi.push_back(RoiX64);
    ArmRoi.push_back(RoiArm);
    T.addRow({B->Abbrev, Table::fmt(SpX64, 2) + "x",
              Table::fmt(SpArm, 2) + "x", Table::fmt(RoiX64, 2) + "x",
              Table::fmt(RoiArm, 2) + "x",
              SpArm >= SpX64 ? "better" : "worse"});
  }
  T.addRow({"GEO", Table::fmt(geomean(X64), 2) + "x",
            Table::fmt(geomean(Arm), 2) + "x",
            Table::fmt(geomean(X64Roi), 2) + "x",
            Table::fmt(geomean(ArmRoi), 2) + "x", ""});
  T.print(OS);
  OS << "\nPaper reference (measured on ARM Neoverse N1): whole-program"
     << "\nGEO 2.03x, ROI GEO 2.91x; write/insert-heavy benchmarks (SSSP)"
     << "\nregress, read/iterate-heavy ones improve.\n";
  return 0;
}
