//===- abl_interp_dispatch.cpp - Interpreter overhead bound ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Our own design ablation (DESIGN.md substitution 1): bounds the
/// per-instruction dispatch cost of both execution engines, which every
/// configuration pays equally. Reports nanoseconds per interpreted
/// instruction for a pure-arithmetic loop and for hash/bitset collection
/// loops, tree-walker vs bytecode VM side by side: the gap between
/// collection-op cost and dispatch cost is the headroom within which ADE
/// speedups are observable; absolute speedups compress relative to the
/// paper's native compilation by roughly (op + dispatch) / op. The VM's
/// arithmetic-loop speedup is the dispatch improvement claimed in
/// DESIGN.md; the final line is machine-checked by CI.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "stats/Stats.h"
#include "support/RawOstream.h"
#include "vm/Engine.h"

#include <chrono>

using namespace ade;
using namespace ade::stats;

namespace {

/// ns per charged instruction under \p K, best of three trials (the
/// minimum is the least noise-contaminated estimate of the engine's
/// intrinsic cost). Both engines charge steps at the same IR
/// granularity, so the ratio of the two is also the wall-clock ratio.
double nsPerInstruction(vm::EngineKind K, const char *Src, uint64_t Arg) {
  auto M = parser::parseModuleOrDie(Src);
  double Best = 0;
  for (int Trial = 0; Trial != 3; ++Trial) {
    vm::Engine E(K, *M, {});
    auto T0 = std::chrono::steady_clock::now();
    E.callByName("main", {Arg});
    auto T1 = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(T1 - T0).count() /
                static_cast<double>(E.stats().InstructionsExecuted);
    if (Trial == 0 || Ns < Best)
      Best = Ns;
  }
  return Best;
}

} // namespace

int main() {
  RawOstream &OS = outs();
  OS << "== Ablation: interpreter dispatch overhead ==\n";

  // The loop body mixes short independent chains so the measurement
  // reflects dispatch cost rather than data-dependency stalls; both
  // engines execute the identical instruction stream.
  const char *Arith = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %two = const 2 : u64
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %a = xor %i, %one
    %b = add %a, %two
    %c = shl %i, %one
    %d = xor %c, %b
    %e = add %i, %two
    %f = add %e, %d
    %z = add %acc, %f
    yield %z
  }
  ret %sum
})";

  const char *HashLoop = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %m = new Map{HashMap}<u64, u64>
  forrange %zero, %n -> [%i] {
    write %m, %i, %i
    yield
  }
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %v = read %m, %i
    %next = add %acc, %v
    yield %next
  }
  ret %sum
})";

  const char *BitLoop = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %m = new Map{BitMap}<idx, u64>
  forrange %zero, %n -> [%i] {
    %id = cast %i : idx
    write %m, %id, %i
    yield
  }
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %id = cast %i : idx
    %v = read %m, %id
    %next = add %acc, %v
    yield %next
  }
  ret %sum
})";

  constexpr uint64_t N = 2000000;
  struct Workload {
    const char *Name;
    const char *Src;
    uint64_t Arg;
  } Workloads[] = {
      {"pure arithmetic loop", Arith, N},
      {"hash map read/write loop", HashLoop, N / 4},
      {"bitmap read/write loop", BitLoop, N / 4},
  };

  OS << "vm dispatch: "
     << (vm::usesComputedGoto() ? "computed-goto direct threading"
                                : "switch fallback")
     << "\n";

  Table T({"Workload", "tree ns/instr", "vm ns/instr", "speedup"});
  double ArithSpeedup = 0;
  for (const Workload &W : Workloads) {
    double TreeNs = nsPerInstruction(vm::EngineKind::Tree, W.Src, W.Arg);
    double VmNs = nsPerInstruction(vm::EngineKind::Vm, W.Src, W.Arg);
    double Speedup = VmNs > 0 ? TreeNs / VmNs : 0;
    if (W.Src == Arith)
      ArithSpeedup = Speedup;
    T.addRow({W.Name, Table::fmt(TreeNs, 1), Table::fmt(VmNs, 1),
              Table::fmt(Speedup, 2) + "x"});
  }
  T.print(OS);
  OS << "\nThe arithmetic row approximates pure dispatch cost; the gap\n"
     << "between the hash and bitmap rows is the signal ADE exploits.\n";
  // Machine-greppable claim for CI (DESIGN.md: >=5x on pure dispatch).
  OS << "vm-dispatch-speedup: " << Table::fmt(ArithSpeedup, 2) << "\n";
  return 0;
}
