//===- abl_interp_dispatch.cpp - Interpreter overhead bound ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Our own design ablation (DESIGN.md substitution 1): bounds the
/// per-instruction dispatch cost of the interpreter, which every
/// configuration pays equally. Reports nanoseconds per interpreted
/// instruction for a pure-arithmetic loop and for hash/bitset collection
/// loops: the gap between collection-op cost and dispatch cost is the
/// headroom within which ADE speedups are observable; absolute speedups
/// compress relative to the paper's native compilation by roughly
/// (op + dispatch) / op.
///
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "stats/Stats.h"
#include "support/RawOstream.h"

#include <chrono>

using namespace ade;
using namespace ade::stats;

namespace {

double nsPerInstruction(const char *Src, uint64_t Arg) {
  auto M = parser::parseModuleOrDie(Src);
  interp::Interpreter I(*M);
  auto T0 = std::chrono::steady_clock::now();
  I.callByName("main", {Arg});
  auto T1 = std::chrono::steady_clock::now();
  double Ns = std::chrono::duration<double, std::nano>(T1 - T0).count();
  return Ns / static_cast<double>(I.stats().InstructionsExecuted);
}

} // namespace

int main() {
  RawOstream &OS = outs();
  OS << "== Ablation: interpreter dispatch overhead ==\n";

  const char *Arith = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %one = const 1 : u64
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %x = add %acc, %i
    %y = xor %x, %one
    %z = add %y, %one
    yield %z
  }
  ret %sum
})";

  const char *HashLoop = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %m = new Map{HashMap}<u64, u64>
  forrange %zero, %n -> [%i] {
    write %m, %i, %i
    yield
  }
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %v = read %m, %i
    %next = add %acc, %v
    yield %next
  }
  ret %sum
})";

  const char *BitLoop = R"(fn @main(%n: u64) -> u64 {
  %zero = const 0 : u64
  %m = new Map{BitMap}<idx, u64>
  forrange %zero, %n -> [%i] {
    %id = cast %i : idx
    write %m, %id, %i
    yield
  }
  %sum = forrange %zero, %n -> [%i] iter(%acc = %zero) {
    %id = cast %i : idx
    %v = read %m, %id
    %next = add %acc, %v
    yield %next
  }
  ret %sum
})";

  constexpr uint64_t N = 2000000;
  double ArithNs = nsPerInstruction(Arith, N);
  double HashNs = nsPerInstruction(HashLoop, N / 4);
  double BitNs = nsPerInstruction(BitLoop, N / 4);

  Table T({"Workload", "ns / interpreted instruction"});
  T.addRow({"pure arithmetic loop", Table::fmt(ArithNs, 1)});
  T.addRow({"hash map read/write loop", Table::fmt(HashNs, 1)});
  T.addRow({"bitmap read/write loop", Table::fmt(BitNs, 1)});
  T.print(OS);
  OS << "\nThe arithmetic row approximates pure dispatch cost; the gap\n"
     << "between the hash and bitmap rows is the signal ADE exploits.\n";
  return 0;
}
