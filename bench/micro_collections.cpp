//===- micro_collections.cpp - google-benchmark collection suite ----------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks over the collection library: insert,
/// lookup and iterate for every set and map implementation across sizes,
/// plus enumeration construction (the abl_enum_growth ablation: how the
/// cost of building the Enc/Dec mapping scales with distinct-key count
/// and duplication ratio — the overhead ADE must amortize, visible in
/// KC's whole-program regression in the paper).
///
//===----------------------------------------------------------------------===//

#include "collections/Collections.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace ade;

namespace {

std::vector<uint64_t> denseKeys(uint64_t N) {
  std::vector<uint64_t> Keys(N);
  for (uint64_t I = 0; I != N; ++I)
    Keys[I] = I;
  Rng R(7);
  for (uint64_t I = N; I > 1; --I)
    std::swap(Keys[I - 1], Keys[R.nextBelow(I)]);
  return Keys;
}

template <typename SetT> void BM_SetInsert(benchmark::State &State) {
  auto Keys = denseKeys(static_cast<uint64_t>(State.range(0)));
  for (auto _ : State) {
    SetT S;
    for (uint64_t K : Keys)
      S.insert(K);
    benchmark::DoNotOptimize(S.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Keys.size()));
}

template <typename SetT> void BM_SetLookup(benchmark::State &State) {
  auto Keys = denseKeys(static_cast<uint64_t>(State.range(0)));
  SetT S;
  for (uint64_t K : Keys)
    if (K & 1)
      S.insert(K);
  for (auto _ : State) {
    uint64_t Hits = 0;
    for (uint64_t K : Keys)
      Hits += S.contains(K);
    benchmark::DoNotOptimize(Hits);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Keys.size()));
}

template <typename SetT> void BM_SetIterate(benchmark::State &State) {
  auto Keys = denseKeys(static_cast<uint64_t>(State.range(0)));
  SetT S;
  for (uint64_t K : Keys)
    S.insert(K);
  for (auto _ : State) {
    uint64_t Sum = 0;
    S.forEach([&](uint64_t K) { Sum += K; });
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Keys.size()));
}

template <typename MapT> void BM_MapReadWrite(benchmark::State &State) {
  auto Keys = denseKeys(static_cast<uint64_t>(State.range(0)));
  MapT M;
  for (uint64_t K : Keys)
    M.insertOrAssign(K, K);
  for (auto _ : State) {
    for (uint64_t K : Keys) {
      uint64_t V = *M.lookup(K);
      M.insertOrAssign(K, V + 1);
    }
  }
  State.SetItemsProcessed(State.iterations() * 2 *
                          static_cast<int64_t>(Keys.size()));
}

void BM_EnumerationGrowth(benchmark::State &State) {
  // range(0): number of adds; range(1): percent of adds that are distinct
  // (the rest re-add known keys, the amortized fast path).
  uint64_t Adds = static_cast<uint64_t>(State.range(0));
  uint64_t DistinctPct = static_cast<uint64_t>(State.range(1));
  uint64_t Distinct = std::max<uint64_t>(1, Adds * DistinctPct / 100);
  Rng R(13);
  std::vector<uint64_t> Stream(Adds);
  for (uint64_t I = 0; I != Adds; ++I)
    Stream[I] = hashU64(R.nextBelow(Distinct));
  for (auto _ : State) {
    Enumeration<uint64_t> E;
    for (uint64_t K : Stream)
      benchmark::DoNotOptimize(E.add(K).first);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(Adds));
}

} // namespace

BENCHMARK(BM_SetInsert<HashSet<uint64_t>>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_SetInsert<SwissSet<uint64_t>>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_SetInsert<BitSet>)->Arg(1 << 10)->Arg(1 << 16);
BENCHMARK(BM_SetInsert<RoaringBitSet>)->Arg(1 << 10)->Arg(1 << 16);

BENCHMARK(BM_SetLookup<HashSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetLookup<SwissSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetLookup<FlatSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetLookup<BitSet>)->Arg(1 << 16);
BENCHMARK(BM_SetLookup<RoaringBitSet>)->Arg(1 << 16);

BENCHMARK(BM_SetIterate<HashSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetIterate<SwissSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetIterate<FlatSet<uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_SetIterate<BitSet>)->Arg(1 << 16);
BENCHMARK(BM_SetIterate<RoaringBitSet>)->Arg(1 << 16);

BENCHMARK(BM_MapReadWrite<HashMap<uint64_t, uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_MapReadWrite<SwissMap<uint64_t, uint64_t>>)->Arg(1 << 16);
BENCHMARK(BM_MapReadWrite<BitMap<uint64_t>>)->Arg(1 << 16);

BENCHMARK(BM_EnumerationGrowth)
    ->Args({1 << 16, 100})
    ->Args({1 << 16, 10})
    ->Args({1 << 16, 1});

BENCHMARK_MAIN();
