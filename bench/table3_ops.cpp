//===- table3_ops.cpp - Table III: per-operation implementation costs -----===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table III: the per-operation speedup of each collection
/// implementation relative to Hash{Set,Map}, measured on this machine over
/// a dense identifier domain (the enumerated scenario in which the
/// specialized implementations operate). Expected shape: Bit{Set,Map} win
/// every operation except set iteration; union on bitsets is three to four
/// orders of magnitude faster; FlatSet trades slow updates for the fastest
/// iteration.
///
//===----------------------------------------------------------------------===//

#include "collections/Collections.h"
#include "stats/Stats.h"
#include "support/Random.h"
#include "support/RawOstream.h"

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

using namespace ade;
using namespace ade::stats;

namespace {

constexpr uint64_t N = 1 << 17; // Dense identifier universe.

std::vector<uint64_t> shuffledKeys() {
  std::vector<uint64_t> Keys(N);
  for (uint64_t I = 0; I != N; ++I)
    Keys[I] = I;
  Rng R(99);
  for (uint64_t I = N; I > 1; --I)
    std::swap(Keys[I - 1], Keys[R.nextBelow(I)]);
  return Keys;
}

/// Times \p Fn and returns nanoseconds per element.
template <typename FnT> double timePerOp(uint64_t Ops, FnT Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(T1 - T0).count() /
         static_cast<double>(Ops);
}

volatile uint64_t Sink;

struct SetCosts {
  double Insert = 0, Remove = 0, Iterate = 0, Union = 0;
};

template <typename SetT> SetCosts measureSet(const std::vector<uint64_t> &K) {
  SetCosts C;
  SetT Warm;
  for (uint64_t Key : K)
    Warm.insert(Key);
  {
    SetT S;
    C.Insert = timePerOp(N, [&] {
      for (uint64_t Key : K)
        S.insert(Key);
    });
  }
  {
    SetT S = Warm;
    C.Remove = timePerOp(N, [&] {
      for (uint64_t Key : K)
        S.remove(Key);
    });
  }
  {
    // Iteration is measured at sparse occupancy (1/64 of the universe):
    // array-like sets must scan their whole universe to find members,
    // the one operation where hash tables win (Table III).
    SetT SparseFill;
    for (uint64_t Key = 0; Key < N; Key += 64)
      SparseFill.insert(Key);
    constexpr unsigned Reps = 16;
    C.Iterate = timePerOp((N / 64) * Reps, [&] {
      uint64_t Sum = 0;
      for (unsigned R = 0; R != Reps; ++R)
        SparseFill.forEach([&](uint64_t Key) { Sum += Key; });
      Sink = Sum;
    });
  }
  {
    // Union of two half-range sets; repeated merges measure traversal
    // plus combine without timing a deep copy.
    SetT A, B;
    for (uint64_t I = 0; I != N; I += 2) {
      A.insert(I);
      B.insert(I + 1);
    }
    constexpr unsigned Reps = 8;
    C.Union = timePerOp(N * Reps, [&] {
      for (unsigned R = 0; R != Reps; ++R) {
        A.unionWith(B);
        Sink = A.size();
      }
    });
  }
  return C;
}

struct MapCosts {
  double Read = 0, Write = 0, Insert = 0, Remove = 0, Iterate = 0;
};

template <typename MapT> MapCosts measureMap(const std::vector<uint64_t> &K) {
  MapCosts C;
  MapT Warm;
  for (uint64_t Key : K)
    Warm.insertOrAssign(Key, Key * 3);
  C.Read = timePerOp(N, [&] {
    uint64_t Sum = 0;
    for (uint64_t Key : K)
      Sum += *Warm.lookup(Key);
    Sink = Sum;
  });
  C.Write = timePerOp(N, [&] {
    for (uint64_t Key : K)
      Warm.insertOrAssign(Key, Key);
  });
  {
    MapT M;
    C.Insert = timePerOp(N, [&] {
      for (uint64_t Key : K)
        M.tryInsert(Key, Key);
    });
  }
  {
    MapT M = Warm;
    C.Remove = timePerOp(N, [&] {
      for (uint64_t Key : K)
        M.remove(Key);
    });
  }
  C.Iterate = timePerOp(N, [&] {
    uint64_t Sum = 0;
    Warm.forEach([&](uint64_t Key, uint64_t &V) { Sum += Key + V; });
    Sink = Sum;
  });
  return C;
}

std::string rel(double Base, double Mine) {
  if (Mine == 0)
    return "-";
  return Table::fmt(Base / Mine, 2);
}

} // namespace

int main() {
  RawOstream &OS = outs();
  std::vector<uint64_t> K = shuffledKeys();
  OS << "== Table III: per-operation speedup relative to Hash{Set,Map} "
     << "(dense ids, N=" << uint64_t(N) << ") ==\n";

  SetCosts Hash = measureSet<HashSet<uint64_t>>(K);
  SetCosts Bit = measureSet<BitSet>(K);
  SetCosts Sparse = measureSet<RoaringBitSet>(K);
  SetCosts Swiss = measureSet<SwissSet<uint64_t>>(K);
  // FlatSet updates are O(n): measure against a hash baseline of the same
  // (smaller) size so the ratio is apples to apples.
  std::vector<uint64_t> Small(K.begin(), K.begin() + 4096);
  SetCosts HashSmall = measureSet<HashSet<uint64_t>>(Small);
  SetCosts Flat = measureSet<FlatSet<uint64_t>>(Small);

  Table TS({"Impl", "Insert", "Remove", "Iterate", "Union"});
  auto SetRow = [&](const char *Name, const SetCosts &Base,
                    const SetCosts &C) {
    TS.addRow({Name, rel(Base.Insert, C.Insert),
               rel(Base.Remove, C.Remove), rel(Base.Iterate, C.Iterate),
               rel(Base.Union, C.Union)});
  };
  SetRow("BitSet", Hash, Bit);
  SetRow("SparseBitSet", Hash, Sparse);
  SetRow("SwissSet", Hash, Swiss);
  SetRow("FlatSet", HashSmall, Flat);
  TS.print(OS);

  MapCosts HashM = measureMap<HashMap<uint64_t, uint64_t>>(K);
  MapCosts BitM = measureMap<BitMap<uint64_t>>(K);
  MapCosts SwissM = measureMap<SwissMap<uint64_t, uint64_t>>(K);

  OS << "\n";
  Table TM({"Impl", "Read", "Write", "Insert", "Remove", "Iterate"});
  auto MapRow = [&](const char *Name, const MapCosts &C) {
    TM.addRow({Name, rel(HashM.Read, C.Read), rel(HashM.Write, C.Write),
               rel(HashM.Insert, C.Insert), rel(HashM.Remove, C.Remove),
               rel(HashM.Iterate, C.Iterate)});
  };
  MapRow("BitMap", BitM);
  MapRow("SwissMap", SwissM);
  TM.print(OS);

  OS << "\nPaper reference (Intel-x64): BitSet insert 9.08, union 5817;"
     << "\nBitMap read 10.63, write 15.94; set iteration is the only"
     << "\noperation where hash tables win over bitsets.\n";
  return 0;
}
