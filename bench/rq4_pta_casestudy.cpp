//===- rq4_pta_casestudy.cpp - RQ4: tuning PTA with directives ------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the RQ4 performance-engineering case study: ADE's benefit
/// heuristic shares one enumeration between the points-to map's pointer
/// keys and the inner object sets, leaving the inner bitsets nearly empty
/// (the paper: 0.009% of bits used on sqlite3). Directives at the inner
/// allocation site recover the performance:
///
///   untuned ADE             (the eager default)
///   enumerate noshare       (own object enumeration -> the paper's 78.1x)
///   noenumerate             (keep inner sets as hash sets)
///   select(SparseBitSet)    (compressed shared-domain bitsets)
///   select(FlatSet)         (sorted arrays with linear merge union)
///
/// Results are reported relative to the MEMOIR baseline.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/100);
  if (!Cli.parse(Argc, Argv))
    return 1;

  const BenchmarkSpec *PTA = findBenchmark("PTA");
  if (!PTA)
    return 1;

  RawOstream &OS = outs();
  OS << "== RQ4: PTA case study (scale " << Cli.Scale << "%) ==\n";
  RunResult Base = runMedian(*PTA, Config::Memoir, Cli);

  struct Variant {
    const char *Name;
    const char *Pragma;
  };
  const Variant Variants[] = {
      {"ade (untuned)", ""},
      {"ade + enumerate noshare", "#pragma ade enumerate noshare"},
      {"ade + noenumerate", "#pragma ade noenumerate"},
      {"ade + select(SparseBitSet)", "#pragma ade select(SparseBitSet)"},
      {"ade + select(FlatSet)", "#pragma ade select(FlatSet)"},
  };

  Table T({"Configuration", "total(s)", "speedup vs memoir",
           "memory vs memoir"});
  T.addRow({"memoir", Table::fmt(Base.totalSeconds(), 3), "1.00x",
            "100.0%"});
  for (const Variant &V : Variants) {
    RunResult R = runMedian(*PTA, Config::Ade, Cli, V.Pragma);
    if (R.Checksum != Base.Checksum) {
      OS << "ERROR: checksum mismatch for " << V.Name << "\n";
      return 1;
    }
    T.addRow({V.Name, Table::fmt(R.totalSeconds(), 3),
              Table::fmt(Base.totalSeconds() / R.totalSeconds(), 2) + "x",
              Table::pct(static_cast<double>(R.PeakBytes) /
                         Base.PeakBytes)});
  }
  T.print(OS);
  OS << "\nPaper reference: untuned ADE ~5.7x; noshare on the inner sets"
     << "\nreaches 78.1x and -71% memory; noenumerate only 1.12x;"
     << "\nSparseBitSet and FlatSet land in between.\n";
  return 0;
}
