//===- fig9_swiss.cpp - Figures 9 and 10: RQ5 swiss-table comparison ------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figures 9 and 10: the comparison against third-party
/// swiss-table implementations (our SwissSet/SwissMap stand in for
/// Abseil's, DESIGN.md substitution 3):
///   (a) MEMOIR-with-Swiss over MEMOIR-with-Hash,
///   (b) ADE (hash defaults) over MEMOIR-with-Swiss,
///   (c) ADE-with-Swiss over MEMOIR-with-Swiss,
/// plus the corresponding peak-memory ratios.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/60);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Figures 9-10: swiss-table comparison (scale " << Cli.Scale
     << "%) ==\n";
  Table T({"Bench", "swiss/hash", "ade/swiss", "ade-swiss/swiss",
           "mem swiss/hash", "mem ade/swiss", "mem ade-swiss/swiss"});
  std::vector<double> SpA, SpB, SpC, MemA, MemB, MemC;
  for (const BenchmarkSpec *B : Cli.selected()) {
    RunResult Hash = runMedian(*B, Config::Memoir, Cli);
    RunResult Swiss = runMedian(*B, Config::MemoirSwiss, Cli);
    RunResult Ade = runMedian(*B, Config::Ade, Cli);
    RunResult AdeSwiss = runMedian(*B, Config::AdeSwiss, Cli);
    double A = Hash.totalSeconds() / Swiss.totalSeconds();
    double Bv = Swiss.totalSeconds() / Ade.totalSeconds();
    double C = Swiss.totalSeconds() / AdeSwiss.totalSeconds();
    double MA = static_cast<double>(Swiss.PeakBytes) / Hash.PeakBytes;
    double MB = static_cast<double>(Ade.PeakBytes) / Swiss.PeakBytes;
    double MC = static_cast<double>(AdeSwiss.PeakBytes) / Swiss.PeakBytes;
    SpA.push_back(A);
    SpB.push_back(Bv);
    SpC.push_back(C);
    MemA.push_back(MA);
    MemB.push_back(MB);
    MemC.push_back(MC);
    T.addRow({B->Abbrev, Table::fmt(A, 2) + "x", Table::fmt(Bv, 2) + "x",
              Table::fmt(C, 2) + "x", Table::pct(MA), Table::pct(MB),
              Table::pct(MC)});
  }
  T.addRow({"GEO", Table::fmt(geomean(SpA), 2) + "x",
            Table::fmt(geomean(SpB), 2) + "x",
            Table::fmt(geomean(SpC), 2) + "x", Table::pct(geomean(MemA)),
            Table::pct(geomean(MemB)), Table::pct(geomean(MemC))});
  T.print(OS);
  OS << "\nPaper reference: Swiss beats Hash on average; ADE keeps most of"
     << "\nits advantage against Swiss baselines (sole exception MCBM),"
     << "\nwith large memory wins on PTA and TC.\n";
  return 0;
}
