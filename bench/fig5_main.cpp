//===- fig5_main.cpp - Figure 5: ADE vs MEMOIR ----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 5 of the paper: (a) whole-program speedup of ADE
/// over the MEMOIR baseline, (b) region-of-interest speedup, (c) peak
/// collection memory of ADE relative to MEMOIR, per benchmark with the
/// geometric mean. Expected shape (paper, Intel-x64): whole-program
/// geomean ~2.1x with one regression on KC; ROI geomean ~3x; memory
/// ~100% geomean with large reductions on PTA/TC.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/Profiler.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/100);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Figure 5: ADE vs MEMOIR (scale " << Cli.Scale << "%, "
     << Cli.Trials << " trial(s)"
     << (Cli.Telemetry ? ", telemetry on" : ", telemetry off") << ") ==\n";
  Table T({"Bench", "memoir total(s)", "ade total(s)", "speedup",
           "ROI speedup", "memory vs memoir"});
  JsonReport Report("fig5", Cli);
  // The main-table runs carry the default-rate telemetry sink (sampling
  // keeps the overhead within the regression budget); --telemetry=off
  // restores the bare interpreter.
  runtime::Telemetry Tel;
  RunOptions Main;
  if (Cli.Telemetry)
    Main.Telemetry = &Tel;
  std::vector<double> Speedups, RoiSpeedups, MemRatios;
  for (const BenchmarkSpec *B : Cli.selected()) {
    TrialResults BaseTrials = runTrialsWith(*B, Config::Memoir, Cli, Main);
    TrialResults AdeTrials = runTrialsWith(*B, Config::Ade, Cli, Main);
    const RunResult &Base = BaseTrials.Median;
    const RunResult &Ade = AdeTrials.Median;
    if (Base.Checksum != Ade.Checksum) {
      OS << "ERROR: checksum mismatch on " << B->Abbrev << "\n";
      return 1;
    }
    Report.add(*B, Config::Memoir, BaseTrials);
    Report.add(*B, Config::Ade, AdeTrials);
    double Speedup = Base.totalSeconds() / Ade.totalSeconds();
    double Roi = Base.RoiSeconds / Ade.RoiSeconds;
    double Mem = static_cast<double>(Ade.PeakBytes) /
                 static_cast<double>(Base.PeakBytes);
    Speedups.push_back(Speedup);
    RoiSpeedups.push_back(Roi);
    MemRatios.push_back(Mem);
    T.addRow({B->Abbrev, Table::fmt(Base.totalSeconds(), 3),
              Table::fmt(Ade.totalSeconds(), 3),
              Table::fmt(Speedup, 2) + "x", Table::fmt(Roi, 2) + "x",
              Table::pct(Mem)});
  }
  T.addRow({"GEO", "", "", Table::fmt(geomean(Speedups), 2) + "x",
            Table::fmt(geomean(RoiSpeedups), 2) + "x",
            Table::pct(geomean(MemRatios))});
  T.print(OS);
  OS << "\nPaper reference (Fig. 5): whole-program GEO ~2.12x (max 8.72x),"
     << "\nROI GEO ~2.98x (max 9.02x), memory GEO ~94.4% (min 49.3%).\n";

  // --profile: one extra profiled run per benchmark under the ade config,
  // reporting where the dynamic operations concentrate.
  if (Cli.Profile) {
    for (const BenchmarkSpec *B : Cli.selected()) {
      interp::Profiler Prof;
      RunOptions Options;
      Options.ScalePercent = Cli.Scale;
      Options.Prof = &Prof;
      runBenchmark(*B, Config::Ade, Options);
      OS << "\n== profile: " << B->Abbrev << " (ade) ==\n";
      Prof.printReport(OS, B->Abbrev, /*MaxSites=*/5);
    }
  }

  // --pgo: the full profile-guided loop, in process. Profile a baseline
  // training run, feed the measurements into the ADE compile
  // (profile-weighted benefit, profile-guided selection, capacity
  // pre-sizing), and compare against the static ADE compile. Both
  // comparison runs carry the measuring profiler, so their timings are
  // apples-to-apples (and not comparable to the unprofiled table above).
  if (Cli.Pgo) {
    OS << "\n== Figure 5 PGO: static vs profile-guided selection ==\n";
    Table P({"Bench", "changes", "reserve hints", "ade rehashes",
             "ade-pgo rehashes", "ade ROI(s)", "ade-pgo ROI(s)"});
    for (const BenchmarkSpec *B : Cli.selected()) {
      interp::Profiler Prof;
      RunOptions Training;
      Training.ScalePercent = Cli.Scale;
      Training.Prof = &Prof;
      RunResult Train = runBenchmark(*B, Config::Memoir, Training);
      interp::ProfileData Data;
      Data.addFromProfiler(Prof);

      RunOptions Measured;
      Measured.MeasureRehashes = true;
      RunResult Static = runMedianWith(*B, Config::Ade, Cli, Measured);
      Measured.ProfileUse = &Data;
      RunResult Pgo = runMedianWith(*B, Config::Ade, Cli, Measured);
      if (Static.Checksum != Pgo.Checksum ||
          Train.Checksum != Pgo.Checksum) {
        OS << "ERROR: checksum mismatch on " << B->Abbrev << " (pgo)\n";
        return 1;
      }
      Report.add(*B, "ade-measured", Static);
      Report.add(*B, "ade-pgo", Pgo);
      P.addRow({B->Abbrev, std::to_string(Pgo.SelectionChanges),
                std::to_string(Pgo.ReserveHints),
                std::to_string(Static.Rehashes),
                std::to_string(Pgo.Rehashes),
                Table::fmt(Static.RoiSeconds, 3),
                Table::fmt(Pgo.RoiSeconds, 3)});
    }
    P.print(OS);
  }

  if (!Cli.MetricsOut.empty()) {
    if (!Cli.Telemetry) {
      OS << "ERROR: --metrics-out requires telemetry (drop "
            "--telemetry=off)\n";
      return 1;
    }
    if (!writeMetricsSnapshot(Tel, Cli.MetricsOut))
      return 1;
    OS << "metrics snapshot: " << Cli.MetricsOut << " (" << Tel.sampledOps()
       << " sampled op(s))\n";
  }

  if (!Cli.JsonFile.empty() && !Report.writeTo(Cli.JsonFile))
    return 1;
  if (!Cli.CheckAgainst.empty() && !Report.checkAgainst(Cli.CheckAgainst))
    return 1;
  return 0;
}
