//===- fig7_ablation.cpp - Figures 7 and 8: the RQ3 ablation study --------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figures 7a-c and Figure 8: whole-program slowdown when
/// disabling (a) redundant translation elimination, (b) propagation,
/// (c) sharing (which also disables propagation), all relative to full
/// ADE, plus memory with sharing disabled. Expected shape: RTE-off slows
/// everything (~2.6x average in the paper); propagation-off correlates
/// with RTE-off where elements ferry identifiers (SSSP, MST); sharing-off
/// balloons memory where enumerations multiply (FIM).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/60);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Figures 7-8: ablation study, relative to full ADE (scale "
     << Cli.Scale << "%) ==\n";
  Table T({"Bench", "no-RTE slowdown", "no-prop slowdown",
           "no-share slowdown", "no-share memory"});
  std::vector<double> NoRte, NoProp, NoShare, NoShareMem;
  for (const BenchmarkSpec *B : Cli.selected()) {
    RunResult Ade = runMedian(*B, Config::Ade, Cli);
    RunResult RRte = runMedian(*B, Config::AdeNoRTE, Cli);
    RunResult RProp = runMedian(*B, Config::AdeNoProp, Cli);
    RunResult RShare = runMedian(*B, Config::AdeNoShare, Cli);
    double SRte = RRte.totalSeconds() / Ade.totalSeconds();
    double SProp = RProp.totalSeconds() / Ade.totalSeconds();
    double SShare = RShare.totalSeconds() / Ade.totalSeconds();
    double MShare = static_cast<double>(RShare.PeakBytes) /
                    static_cast<double>(Ade.PeakBytes);
    NoRte.push_back(SRte);
    NoProp.push_back(SProp);
    NoShare.push_back(SShare);
    NoShareMem.push_back(MShare);
    T.addRow({B->Abbrev, Table::fmt(SRte, 2) + "x",
              Table::fmt(SProp, 2) + "x", Table::fmt(SShare, 2) + "x",
              Table::pct(MShare)});
  }
  T.addRow({"GEO", Table::fmt(geomean(NoRte), 2) + "x",
            Table::fmt(geomean(NoProp), 2) + "x",
            Table::fmt(geomean(NoShare), 2) + "x",
            Table::pct(geomean(NoShareMem))});
  T.print(OS);
  OS << "\nPaper reference: no-RTE average slowdown 2.63x (max 16.7x);"
     << "\nno-sharing memory +20% on average, ballooning on FIM.\n";
  return 0;
}
