//===- fig4_opmix.cpp - Figure 4: operation mix and clustering ------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 4: the breakdown of dynamic collection operations
/// executed by each benchmark (baseline configuration, region of
/// interest) and a hierarchical (average-linkage) clustering of the
/// benchmarks over those breakdowns.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/Stats.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::runtime;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/15);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Figure 4: dynamic collection operation breakdown (scale "
     << Cli.Scale << "%) ==\n";
  constexpr unsigned NumCats = InterpStats::NumCats;
  std::vector<std::string> Header = {"Bench"};
  for (unsigned C = 0; C != NumCats; ++C)
    Header.push_back(opCategoryName(static_cast<OpCategory>(C)));
  Table T(Header);
  std::vector<std::vector<double>> Mix;
  std::vector<std::string> Labels;
  for (const BenchmarkSpec *B : Cli.selected()) {
    RunResult R = runMedian(*B, Config::Memoir, Cli);
    double Total = static_cast<double>(R.Stats.totalAccesses());
    std::vector<std::string> Row = {B->Abbrev};
    std::vector<double> Fractions;
    for (unsigned C = 0; C != NumCats; ++C) {
      double Frac =
          Total ? static_cast<double>(R.Stats.ByCategory[C]) / Total : 0;
      Fractions.push_back(Frac);
      Row.push_back(Table::pct(Frac, 1));
    }
    T.addRow(std::move(Row));
    Mix.push_back(std::move(Fractions));
    Labels.push_back(B->Abbrev);
  }
  T.print(OS);
  OS << "\n== Hierarchical clustering (average linkage) ==\n";
  printDendrogram(clusterAverageLinkage(Mix), Labels, OS);
  return 0;
}
