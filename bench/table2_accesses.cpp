//===- table2_accesses.cpp - Table II: sparse vs dense accesses -----------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table II: region-of-interest sparse and dense access
/// counts of ADE relative to the MEMOIR baseline, normalized so the
/// baseline's total is 100. Expected shape: MEMOIR is all-sparse; ADE
/// converts most sparse accesses to dense ones (BFS/SSSP nearly all),
/// sometimes increasing the total (the beneficial tradeoff of RQ2).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace ade;
using namespace ade::bench;
using namespace ade::stats;

int main(int Argc, char **Argv) {
  CliOptions Cli(/*DefaultScale=*/15);
  if (!Cli.parse(Argc, Argv))
    return 1;

  RawOstream &OS = outs();
  OS << "== Table II: sparse/dense accesses relative to MEMOIR=100 "
     << "(scale " << Cli.Scale << "%) ==\n";
  Table T({"Bench", "MEMOIR sparse", "MEMOIR dense", "ADE sparse",
           "ADE dense", "d-sparse", "d-dense", "d-total"});
  for (const BenchmarkSpec *B : Cli.selected()) {
    RunResult Base = runMedian(*B, Config::Memoir, Cli);
    RunResult Ade = runMedian(*B, Config::Ade, Cli);
    double Norm = static_cast<double>(Base.Stats.totalAccesses()) / 100.0;
    if (Norm == 0)
      Norm = 1;
    double BS = static_cast<double>(Base.Stats.Sparse) / Norm;
    double BD = static_cast<double>(Base.Stats.Dense) / Norm;
    double AS = static_cast<double>(Ade.Stats.Sparse) / Norm;
    double AD = static_cast<double>(Ade.Stats.Dense) / Norm;
    auto Signed = [](double V) {
      return (V >= 0 ? "+" : "") + Table::fmt(V, 1);
    };
    T.addRow({B->Abbrev, Table::fmt(BS, 1), Table::fmt(BD, 1),
              Table::fmt(AS, 1), Table::fmt(AD, 1), Signed(AS - BS),
              Signed(AD - BD), Signed(AS + AD - BS - BD)});
  }
  T.print(OS);
  return 0;
}
