//===- BenchCommon.h - Shared helpers for figure binaries -------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing and run helpers shared by the per-figure
/// benchmark binaries. Every binary accepts:
///   --scale=N        input scale percent (default per binary)
///   --trials=N       trials per configuration; the median is reported
///   --bench=ABBREV   run a single benchmark
///   --json=FILE      also write the measured runs as a JSON report
///   --profile        attach the source-attributed profiler and print
///                    hot-site tables (binaries that support it)
///   --pgo            static-vs-profile-guided comparison (binaries that
///                    support it): profile a training run, recompile with
///                    the measurements, report rehash and timing deltas
///   --telemetry=off  detach the default runtime telemetry sink from the
///                    measured runs (binaries that attach one)
///   --metrics-out=F  write the telemetry snapshot JSON to F (binaries
///                    that attach a telemetry sink)
///   --engine=tree|vm execution engine: the reference tree-walking
///                    interpreter (default) or the direct-threaded
///                    register bytecode VM; checksums and operation
///                    counts are identical, only wall clock changes
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_BENCHCOMMON_H
#define ADE_BENCH_BENCHCOMMON_H

#include "bench/Harness.h"
#include "stats/Stats.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

namespace ade {
namespace bench {

struct CliOptions {
  uint64_t Scale;
  unsigned Trials = 1;
  std::string Only;
  std::string JsonFile;
  std::string CheckAgainst;
  std::string MetricsOut;
  bool Profile = false;
  bool Pgo = false;
  bool Telemetry = true;
  vm::EngineKind Engine = vm::EngineKind::Tree;

  explicit CliOptions(uint64_t DefaultScale) : Scale(DefaultScale) {}

  bool parse(int Argc, char **Argv) {
    for (int I = 1; I != Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.rfind("--scale=", 0) == 0) {
        Scale = std::strtoull(Arg.c_str() + 8, nullptr, 10);
      } else if (Arg.rfind("--trials=", 0) == 0) {
        Trials = static_cast<unsigned>(
            std::strtoul(Arg.c_str() + 9, nullptr, 10));
      } else if (Arg.rfind("--bench=", 0) == 0) {
        Only = Arg.substr(8);
      } else if (Arg.rfind("--json=", 0) == 0) {
        JsonFile = Arg.substr(7);
      } else if (Arg.rfind("--check-against=", 0) == 0) {
        CheckAgainst = Arg.substr(16);
      } else if (Arg.rfind("--metrics-out=", 0) == 0) {
        MetricsOut = Arg.substr(14);
      } else if (Arg == "--telemetry=off") {
        Telemetry = false;
      } else if (Arg == "--telemetry=on") {
        Telemetry = true;
      } else if (Arg == "--profile") {
        Profile = true;
      } else if (Arg == "--pgo") {
        Pgo = true;
      } else if (Arg.rfind("--engine=", 0) == 0 &&
                 vm::engineFromName(Arg.substr(9), Engine)) {
        // Parsed into Engine.
      } else {
        std::fprintf(stderr,
                     "usage: %s [--scale=N] [--trials=N] [--bench=ABBREV]"
                     " [--json=FILE] [--check-against=BASELINE.json]"
                     " [--metrics-out=FILE] [--telemetry=on|off]"
                     " [--profile] [--pgo] [--engine=tree|vm]\n",
                     Argv[0]);
        return false;
      }
    }
    if (Trials == 0)
      Trials = 1;
    return true;
  }

  /// The benchmarks selected by --bench (or the full suite).
  std::vector<const BenchmarkSpec *> selected() const {
    std::vector<const BenchmarkSpec *> Out;
    for (const BenchmarkSpec &B : allBenchmarks())
      if (Only.empty() || B.Abbrev == Only)
        Out.push_back(&B);
    return Out;
  }
};

/// Every trial of one (benchmark, config) measurement, plus the run the
/// harness reports on (median total time). Rows built from this carry the
/// full per-trial nanosecond distribution in the schema-v2 report.
struct TrialResults {
  /// All trials, in execution order.
  std::vector<RunResult> Runs;
  /// The run with the median total time.
  RunResult Median;

  /// Per-trial total nanoseconds, in execution order.
  std::vector<uint64_t> trialNs() const {
    std::vector<uint64_t> Out;
    Out.reserve(Runs.size());
    for (const RunResult &R : Runs)
      Out.push_back(R.totalSeconds() <= 0
                        ? 0
                        : uint64_t(R.totalSeconds() * 1e9 + 0.5));
    return Out;
  }
};

/// Runs \p B under \p C with \p Options (scale taken from \p Cli) for the
/// configured trials.
inline TrialResults runTrialsWith(const BenchmarkSpec &B, Config C,
                                  const CliOptions &Cli,
                                  RunOptions Options) {
  Options.ScalePercent = Cli.Scale;
  Options.Engine = Cli.Engine;
  TrialResults Out;
  for (unsigned T = 0; T != Cli.Trials; ++T)
    Out.Runs.push_back(runBenchmark(B, C, Options));
  std::vector<const RunResult *> BySpeed;
  for (const RunResult &R : Out.Runs)
    BySpeed.push_back(&R);
  std::sort(BySpeed.begin(), BySpeed.end(),
            [](const RunResult *X, const RunResult *Y) {
              return X->totalSeconds() < Y->totalSeconds();
            });
  Out.Median = *BySpeed[BySpeed.size() / 2];
  return Out;
}

/// Runs \p B under \p C with \p Options (scale taken from \p Cli) for the
/// configured trials and returns the run with the median total time.
inline RunResult runMedianWith(const BenchmarkSpec &B, Config C,
                               const CliOptions &Cli, RunOptions Options) {
  return runTrialsWith(B, C, Cli, std::move(Options)).Median;
}

/// Runs \p B under \p C for the configured trials and returns the run
/// with the median total time.
inline RunResult runMedian(const BenchmarkSpec &B, Config C,
                           const CliOptions &Cli,
                           const std::string &PtaPragma = "") {
  RunOptions Options;
  Options.PtaInnerPragma = PtaPragma;
  return runMedianWith(B, C, Cli, Options);
}

/// Version stamp of the bench-report JSON schema (BENCH_*.json and the
/// CI regression gate); bump when a field changes meaning.
///
/// v2 adds per-row `trialNs` (every trial's total, execution order),
/// percentile fields `p50Ns`/`p90Ns`/`p99Ns`/`p999Ns` over the trial
/// distribution, and an `events` object of journal-event counts from the
/// run's telemetry sink (empty when none was attached). v1 fields are
/// unchanged, and `checkAgainst` still reads v1 baselines.
constexpr uint64_t BenchSchemaVersion = 2;

/// The current git commit hash, or "unknown" outside a work tree.
inline std::string benchCommit() {
  std::string Out;
  if (std::FILE *P = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char Buf[128];
    if (std::fgets(Buf, sizeof(Buf), P))
      Out = Buf;
    ::pclose(P);
  }
  while (!Out.empty() && (Out.back() == '\n' || Out.back() == '\r'))
    Out.pop_back();
  return Out.empty() ? "unknown" : Out;
}

/// The current UTC date/time as "YYYY-MM-DDTHH:MM:SSZ".
inline std::string benchDateUtc() {
  std::time_t Now = std::time(nullptr);
  char Buf[32];
  std::strftime(Buf, sizeof(Buf), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&Now));
  return Buf;
}

/// Writes \p Tel's metrics snapshot JSON to \p Path; false (with a
/// message on stderr) on I/O failure.
inline bool writeMetricsSnapshot(const runtime::Telemetry &Tel,
                                 const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  RawFileOstream OS(File);
  json::Writer W(OS);
  Tel.writeSnapshotJson(W);
  OS << '\n';
  OS.flush();
  std::fclose(File);
  return true;
}

/// Accumulates measured runs and renders them as a machine-readable JSON
/// report (--json=FILE): a versioned schema stamped with the commit and
/// date, then per-benchmark median timing in nanoseconds, checksum, peak
/// collection bytes and the dynamic operation counts, ready for
/// BENCH_*.json ingestion and the --check-against regression gate.
class JsonReport {
public:
  JsonReport(std::string Figure, const CliOptions &Cli)
      : Figure(std::move(Figure)), Scale(Cli.Scale), Trials(Cli.Trials) {}

  void add(const BenchmarkSpec &B, Config C, const RunResult &R) {
    Rows.push_back({B.Abbrev, configName(C), R, {toNs(R.totalSeconds())}});
  }

  /// For rows outside the fixed Config set (e.g. the --pgo comparison's
  /// "ade-pgo").
  void add(const BenchmarkSpec &B, std::string ConfigName,
           const RunResult &R) {
    Rows.push_back(
        {B.Abbrev, std::move(ConfigName), R, {toNs(R.totalSeconds())}});
  }

  /// Full trial set: the row reports the median run and carries every
  /// trial's total in `trialNs` (the source of the percentile fields).
  void add(const BenchmarkSpec &B, Config C, const TrialResults &T) {
    Rows.push_back({B.Abbrev, configName(C), T.Median, T.trialNs()});
  }

  void add(const BenchmarkSpec &B, std::string ConfigName,
           const TrialResults &T) {
    Rows.push_back({B.Abbrev, std::move(ConfigName), T.Median, T.trialNs()});
  }

  void write(RawOstream &OS) const {
    json::Writer W(OS);
    W.beginObject();
    W.member("schemaVersion", BenchSchemaVersion)
        .member("figure", Figure)
        .member("commit", benchCommit())
        .member("date", benchDateUtc())
        .member("scalePercent", Scale)
        .member("trials", uint64_t(Trials));
    W.key("results").beginArray();
    for (const Row &R : Rows) {
      const RunResult &Run = R.Result;
      W.beginObject(/*Inline=*/true);
      W.member("bench", R.Bench)
          .member("config", R.Config)
          .member("initNs", toNs(Run.InitSeconds))
          .member("roiNs", toNs(Run.RoiSeconds))
          .member("totalNs", toNs(Run.totalSeconds()))
          .member("checksum", Run.Checksum)
          .member("peakBytes", Run.PeakBytes)
          .member("sparse", Run.Stats.Sparse)
          .member("dense", Run.Stats.Dense)
          .member("instructions", Run.Stats.InstructionsExecuted)
          .member("rehashes", Run.Rehashes)
          .member("selectionChanges", Run.SelectionChanges)
          .member("reserveHints", Run.ReserveHints);
      W.key("trialNs").beginArray(/*Inline=*/true);
      for (uint64_t Ns : R.TrialNs)
        W.value(Ns);
      W.endArray();
      Histogram Trials;
      for (uint64_t Ns : R.TrialNs)
        Trials.record(Ns);
      W.member("p50Ns", Trials.p50())
          .member("p90Ns", Trials.p90())
          .member("p99Ns", Trials.p99())
          .member("p999Ns", Trials.p999());
      W.key("events").beginObject(/*Inline=*/true);
      for (unsigned K = 0; K != unsigned(runtime::EventKind::NumKinds);
           ++K)
        if (Run.Events[K])
          W.key(runtime::eventKindName(runtime::EventKind(K)))
              .value(Run.Events[K]);
      W.endObject();
      W.key("byCategory").beginObject(/*Inline=*/true);
      for (unsigned I = 0; I != runtime::InterpStats::NumCats; ++I)
        if (Run.Stats.ByCategory[I])
          W.key(runtime::opCategoryName(
                    static_cast<runtime::OpCategory>(I)))
              .value(Run.Stats.ByCategory[I]);
      W.endObject();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    OS << '\n';
  }

  /// Compares this report against a baseline BENCH_*.json (schema v1 or
  /// v2): every (bench, config) row present in both must not regress
  /// median total time by more than \p MaxRatio, and — when the baseline
  /// row carries a `p99Ns` (v2) — the p99 of the trial distribution must
  /// hold to the same budget, so tail regressions hidden by a stable
  /// median are caught too. Baselines under one millisecond are raised
  /// to that floor first — timing noise on a sub-millisecond run is not
  /// a regression signal. Returns false (with per-row messages on
  /// stderr) when a regression is found or the baseline is unreadable.
  bool checkAgainst(const std::string &BaselinePath,
                    double MaxRatio = 1.3) const {
    std::string Text;
    if (std::FILE *File = std::fopen(BaselinePath.c_str(), "rb")) {
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
        Text.append(Buf, N);
      std::fclose(File);
    } else {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   BaselinePath.c_str());
      return false;
    }
    std::string Error;
    auto Doc = json::parse(Text, &Error);
    if (!Doc || !Doc->isObject()) {
      std::fprintf(stderr, "error: malformed baseline %s: %s\n",
                   BaselinePath.c_str(), Error.c_str());
      return false;
    }
    const json::Value *Version = Doc->find("schemaVersion");
    if (!Version || !Version->isNumber() ||
        (Version->asUint() != 1 &&
         Version->asUint() != BenchSchemaVersion)) {
      std::fprintf(stderr,
                   "error: baseline %s has an unsupported schemaVersion\n",
                   BaselinePath.c_str());
      return false;
    }
    const json::Value *List = Doc->find("results");
    if (!List || !List->isArray()) {
      std::fprintf(stderr, "error: baseline %s has no results\n",
                   BaselinePath.c_str());
      return false;
    }
    constexpr double FloorNs = 1e6; // 1 ms
    unsigned Checked = 0, Regressed = 0;
    for (const Row &R : Rows) {
      const json::Value *Match = nullptr;
      for (const json::Value &E : List->elements()) {
        const json::Value *B = E.find("bench");
        const json::Value *C = E.find("config");
        if (B && B->isString() && B->asString() == R.Bench && C &&
            C->isString() && C->asString() == R.Config) {
          Match = &E;
          break;
        }
      }
      if (!Match)
        continue;
      const json::Value *Base = Match->find("totalNs");
      if (!Base || !Base->isNumber())
        continue;
      ++Checked;
      double BaseNs = std::max(double(Base->asUint()), FloorNs);
      double CurNs = std::max(double(toNs(R.Result.totalSeconds())),
                              FloorNs);
      if (CurNs > MaxRatio * BaseNs) {
        ++Regressed;
        std::fprintf(stderr,
                     "REGRESSION: %s/%s %.3fms -> %.3fms (%.2fx > "
                     "%.2fx budget)\n",
                     R.Bench.c_str(), R.Config.c_str(), BaseNs / 1e6,
                     CurNs / 1e6, CurNs / BaseNs, MaxRatio);
      }
      const json::Value *BaseP99 = Match->find("p99Ns");
      if (BaseP99 && BaseP99->isNumber() && !R.TrialNs.empty()) {
        Histogram Trials;
        for (uint64_t Ns : R.TrialNs)
          Trials.record(Ns);
        double BaseTail = std::max(double(BaseP99->asUint()), FloorNs);
        double CurTail = std::max(double(Trials.p99()), FloorNs);
        if (CurTail > MaxRatio * BaseTail) {
          ++Regressed;
          std::fprintf(stderr,
                       "REGRESSION: %s/%s p99 %.3fms -> %.3fms (%.2fx > "
                       "%.2fx budget)\n",
                       R.Bench.c_str(), R.Config.c_str(), BaseTail / 1e6,
                       CurTail / 1e6, CurTail / BaseTail, MaxRatio);
        }
      }
    }
    std::fprintf(stderr,
                 "bench check: %u row(s) compared against %s, "
                 "%u regression(s)\n",
                 Checked, BaselinePath.c_str(), Regressed);
    if (!Checked) {
      std::fprintf(stderr,
                   "error: no comparable rows in baseline %s\n",
                   BaselinePath.c_str());
      return false;
    }
    return Regressed == 0;
  }

  /// Writes the report to \p Path; false (with a message on stderr) on
  /// I/O failure.
  bool writeTo(const std::string &Path) const {
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return false;
    }
    RawFileOstream OS(File);
    write(OS);
    OS.flush();
    std::fclose(File);
    return true;
  }

private:
  struct Row {
    std::string Bench;
    std::string Config;
    RunResult Result;
    /// Total nanoseconds per trial, execution order (one entry when the
    /// row was added from a single RunResult).
    std::vector<uint64_t> TrialNs;
  };

  static uint64_t toNs(double Seconds) {
    return Seconds <= 0 ? 0 : uint64_t(Seconds * 1e9 + 0.5);
  }
  std::string Figure;
  uint64_t Scale;
  unsigned Trials;
  std::vector<Row> Rows;
};

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_BENCHCOMMON_H
