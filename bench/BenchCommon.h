//===- BenchCommon.h - Shared helpers for figure binaries -------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing and run helpers shared by the per-figure
/// benchmark binaries. Every binary accepts:
///   --scale=N        input scale percent (default per binary)
///   --trials=N       trials per configuration; the median is reported
///   --bench=ABBREV   run a single benchmark
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_BENCHCOMMON_H
#define ADE_BENCH_BENCHCOMMON_H

#include "bench/Harness.h"
#include "stats/Stats.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace ade {
namespace bench {

struct CliOptions {
  uint64_t Scale;
  unsigned Trials = 1;
  std::string Only;

  explicit CliOptions(uint64_t DefaultScale) : Scale(DefaultScale) {}

  bool parse(int Argc, char **Argv) {
    for (int I = 1; I != Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.rfind("--scale=", 0) == 0) {
        Scale = std::strtoull(Arg.c_str() + 8, nullptr, 10);
      } else if (Arg.rfind("--trials=", 0) == 0) {
        Trials = static_cast<unsigned>(
            std::strtoul(Arg.c_str() + 9, nullptr, 10));
      } else if (Arg.rfind("--bench=", 0) == 0) {
        Only = Arg.substr(8);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--scale=N] [--trials=N] [--bench=ABBREV]\n",
                     Argv[0]);
        return false;
      }
    }
    if (Trials == 0)
      Trials = 1;
    return true;
  }

  /// The benchmarks selected by --bench (or the full suite).
  std::vector<const BenchmarkSpec *> selected() const {
    std::vector<const BenchmarkSpec *> Out;
    for (const BenchmarkSpec &B : allBenchmarks())
      if (Only.empty() || B.Abbrev == Only)
        Out.push_back(&B);
    return Out;
  }
};

/// Runs \p B under \p C for the configured trials and returns the run
/// with the median total time.
inline RunResult runMedian(const BenchmarkSpec &B, Config C,
                           const CliOptions &Cli,
                           const std::string &PtaPragma = "") {
  RunOptions Options;
  Options.ScalePercent = Cli.Scale;
  Options.PtaInnerPragma = PtaPragma;
  std::vector<RunResult> Runs;
  for (unsigned T = 0; T != Cli.Trials; ++T)
    Runs.push_back(runBenchmark(B, C, Options));
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &X, const RunResult &Y) {
              return X.totalSeconds() < Y.totalSeconds();
            });
  return Runs[Runs.size() / 2];
}

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_BENCHCOMMON_H
