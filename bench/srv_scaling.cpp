//===- srv_scaling.cpp - Serving-runtime thread-scaling sweep -------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-scaling and load-shedding benchmark for the adesrv serving
/// runtime (DESIGN.md "Serving runtime"). Two measurements:
///
///  1. **Scaling sweep.** A read-mostly Zipfian workload (point lookups
///     and graph queries over the sharded store, optionally ProgramCall
///     requests into the ADE-compiled @serve) runs against servers with
///     1, 8, and 32 workers. Each row reports throughput and the
///     per-request latency distribution. `--assert-scaling` requires
///     the widest server to beat the 1-thread server by at least 4x in
///     throughput — but only on hardware with >= 8 cores; on smaller
///     machines the assertion is reported as skipped and the binary
///     still exits 0, so CI runners of any size can run the sweep.
///
///  2. **Overload shed.** A 1-worker server with a tiny admission queue
///     and an injected per-request delay is offered roughly 2x the load
///     it can serve, with shed-retry disabled. The shed policy
///     (Server.h) must engage: `--assert-shed` requires that requests
///     were shed at admission, that every accepted request completed,
///     and that accepted + terminal sheds account for every submission
///     (no request is silently dropped under overload). This assertion
///     is hardware-independent.
///
///  3. **Tracing overhead.** With `--assert-trace-overhead`, a fixed
///     4-worker configuration runs interleaved trials with the flight
///     recorder attached (default-rate request tracing) and detached,
///     and the best-of-N tracing-on wall time must stay within 5% of
///     tracing-off — the CI gate on the tracing subsystem's hot-path
///     cost. Like `--assert-scaling`, the gate is enforced only on
///     hardware with >= 8 cores (smaller machines report the measured
///     ratio as skipped and exit 0). `--trace=on|off` controls whether
///     the sweep itself runs with tracing (default on, mirroring
///     adesrv).
///
/// Usage:
///   srv_scaling [--threads=1,8,32] [--trials=N] [--reads=N]
///               [--streams=N] [--calls] [--engine=tree|vm] [--seed=N]
///               [--trace=on|off] [--json=FILE] [--assert-scaling]
///               [--assert-shed] [--assert-trace-overhead]
///
/// The JSON report follows bench schema v2: commit hash, UTC date, one
/// row per (bench, config) with `trialNs`, percentile fields over the
/// per-request latency distribution, and throughput in requests/sec.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Pipeline.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "serve/Client.h"
#include "serve/Span.h"
#include "support/CrashHandler.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace ade;

namespace {

/// The request handler served by the sweep — the same collection-bound
/// histogram kernel as examples/serve.memoir, embedded so the binary
/// has no data-file dependency and ADE has trimmable sites to
/// enumerate.
const char *ServeSource = R"(
fn @serve(%key: u64) -> u64 {
  %input = new Seq<u64>
  %zero = const 0 : u64
  %n = const 64 : u64
  %one = const 1 : u64
  %scramble = const 2654435761 : u64
  %mod = const 1024 : u64
  forrange %zero, %n -> [%i] {
    %a = add %key, %i
    %b = mul %a, %scramble
    %c = rem %b, %mod
    append %input, %c
    yield
  }
  %hist = new Map<u64, u64>
  foreach %input -> [%i, %val] {
    %cond = has %hist, %val
    %f0 = if %cond {
      %f = read %hist, %val
      yield %f
    } else {
      insert %hist, %val
      %z = const 0 : u64
      yield %z
    }
    %f1 = add %f0, %one
    write %hist, %val, %f1
    yield
  }
  %sz = size %hist
  %k1 = mul %key, %scramble
  %kr = rem %k1, %mod
  %hit = has %hist, %kr
  %bonus = if %hit {
    %v = read %hist, %kr
    yield %v
  } else {
    %z2 = const 0 : u64
    yield %z2
  }
  %shift = const 4096 : u64
  %t = mul %sz, %shift
  %r = add %t, %bonus
  ret %r
}
)";

struct Options {
  std::vector<unsigned> Threads{1, 8, 32};
  unsigned Trials = 3;
  uint32_t Streams = 8;
  uint32_t Reads = 2000;
  uint64_t Seed = 1;
  bool Calls = false;
  bool Trace = true;
  bool AssertScaling = false;
  bool AssertShed = false;
  bool AssertTraceOverhead = false;
  vm::EngineKind Engine = vm::EngineKind::Vm;
  std::string JsonFile;
};

/// Best-of-N interleaved tracing-on/off walls for the overhead gate.
struct OverheadResult {
  bool Ran = false;
  uint64_t BestOnNs = 0;
  uint64_t BestOffNs = 0;
  double Ratio = 0;
};

/// One measured configuration: the median-trial server stats plus the
/// per-trial wall-clock distribution.
struct Row {
  std::string Bench;
  std::string Config;
  unsigned Threads = 0;
  std::vector<uint64_t> TrialNs;
  uint64_t MedianNs = 0;
  double Throughput = 0; // completed requests per second, median trial
  serve::ServerStats Stats;
  uint64_t TerminalSheds = 0;
  uint64_t Submitted = 0;
};

uint64_t nowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

bool parseThreadList(const std::string &List, std::vector<unsigned> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos < List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string Tok = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Tok.empty() ||
        Tok.find_first_not_of("0123456789") != std::string::npos)
      return false;
    unsigned N = unsigned(std::strtoul(Tok.c_str(), nullptr, 10));
    if (!N)
      return false;
    Out.push_back(N);
    Pos = Comma == std::string::npos ? List.size() : Comma + 1;
  }
  return !Out.empty();
}

int usage(const char *Bad) {
  if (Bad)
    std::fprintf(stderr, "srv_scaling: unknown option '%s'\n", Bad);
  std::fprintf(stderr,
               "usage: srv_scaling [--threads=1,8,32] [--trials=N]\n"
               "                   [--reads=N] [--streams=N] [--calls]\n"
               "                   [--engine=tree|vm] [--seed=N]\n"
               "                   [--trace=on|off] [--json=FILE]\n"
               "                   [--assert-scaling] [--assert-shed]\n"
               "                   [--assert-trace-overhead]\n");
  return 1;
}

/// Runs one (threads, trial) measurement of the read-mostly sweep.
/// Returns (wall ns, stats, client result).
void runSweepTrial(const ir::Module &M, const Options &Opt, unsigned Threads,
                   uint64_t Seed, bool Trace, uint64_t &WallNs,
                   serve::ServerStats &Stats, serve::ClientResult &Got) {
  serve::ServeConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.QueueCapacity = 1024;
  Cfg.Engine = Opt.Engine;

  // Default-rate tracing (every request), the configuration the 5%
  // overhead gate measures.
  serve::FlightRecorder::Options FO;
  FO.Workers = Threads;
  serve::FlightRecorder Flight(FO);
  if (Trace)
    Cfg.Flight = &Flight;

  serve::WorkloadSpec Spec;
  Spec.Seed = Seed;
  Spec.Streams = Opt.Streams;
  Spec.InsertsPerStream = 16;
  Spec.BulkCount = 16;
  Spec.ReadsPerStream = Opt.Reads;
  Spec.ProgramCalls = Opt.Calls;
  Spec.Geo = Cfg.Geo;

  serve::ClientOptions ClientOpts;
  // One submitter per stream: admission must never be the bottleneck
  // the sweep measures.
  ClientOpts.SubmitThreads = Opt.Streams;

  serve::Server S(M, Cfg);
  uint64_t Start = nowNs();
  Got = serve::runClient(S, Spec, ClientOpts);
  WallNs = nowNs() - Start;
  S.stop();
  Stats = S.stats();
}

/// The 2x-overload shed measurement: a 1-worker server whose every
/// request carries an injected 200us delay (service rate ~5k req/s) and
/// whose queue holds 16, offered the whole workload as fast as the
/// submitters can push it with shed-retry off.
Row runOverload(const ir::Module &M, const Options &Opt) {
  serve::ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.QueueCapacity = 16;
  Cfg.Engine = Opt.Engine;
  std::string Error;
  bool PlanOk =
      serve::FaultPlan::parse("seed=9,delay=1.0:200", Cfg.Faults, &Error);
  (void)PlanOk;

  serve::WorkloadSpec Spec;
  Spec.Seed = Opt.Seed;
  Spec.Streams = 4;
  Spec.InsertsPerStream = 8;
  Spec.BulkCount = 8;
  Spec.ReadsPerStream = 256;
  Spec.Geo = Cfg.Geo;

  serve::ClientOptions ClientOpts;
  ClientOpts.RetryShed = false; // terminal sheds: measure the policy
  ClientOpts.SubmitThreads = 4;

  Row R;
  R.Bench = "srv_overload";
  R.Config = "threads=1,queue=16,delay=200us";
  R.Threads = 1;

  serve::Server S(M, Cfg);
  uint64_t Start = nowNs();
  serve::ClientResult Got = serve::runClient(S, Spec, ClientOpts);
  R.TrialNs.push_back(nowNs() - Start);
  S.stop();
  R.Stats = S.stats();
  R.MedianNs = R.TrialNs[0];
  R.Throughput = R.MedianNs
                     ? double(R.Stats.Completed) * 1e9 / double(R.MedianNs)
                     : 0;
  R.TerminalSheds = Got.ByStatus[size_t(serve::ResponseStatus::Shed)];
  // Each submission attempt counted once; with RetryShed off, attempts
  // = unique requests.
  R.Submitted = Got.Submitted;
  return R;
}

void writeReport(const std::vector<Row> &Rows, const Options &Opt,
                 const OverheadResult &OH, RawOstream &OS) {
  json::Writer W(OS);
  W.beginObject();
  W.member("schemaVersion", bench::BenchSchemaVersion)
      .member("figure", "srv_scaling")
      .member("commit", bench::benchCommit())
      .member("date", bench::benchDateUtc())
      .member("engine", vm::engineName(Opt.Engine))
      .member("tracing", Opt.Trace ? "on" : "off")
      .member("hardwareConcurrency",
              uint64_t(std::thread::hardware_concurrency()))
      .member("trials", uint64_t(Opt.Trials));
  if (OH.Ran) {
    W.key("traceOverhead").beginObject(/*Inline=*/true);
    W.member("bestOnNs", OH.BestOnNs)
        .member("bestOffNs", OH.BestOffNs)
        .member("ratio", OH.Ratio);
    W.endObject();
  }
  W.key("results").beginArray();
  for (const Row &R : Rows) {
    W.beginObject(/*Inline=*/true);
    W.member("bench", R.Bench)
        .member("config", R.Config)
        .member("threads", uint64_t(R.Threads))
        .member("totalNs", R.MedianNs)
        .member("throughputRps", uint64_t(R.Throughput + 0.5))
        .member("accepted", R.Stats.Accepted)
        .member("shed", R.Stats.Shed)
        .member("completed", R.Stats.Completed)
        .member("ok", R.Stats.ByStatus[size_t(serve::ResponseStatus::Ok)])
        .member("notFound",
                R.Stats.ByStatus[size_t(serve::ResponseStatus::NotFound)])
        .member("mapSize", R.Stats.MapSize)
        .member("rehashes", R.Stats.ShardRehashes);
    W.key("trialNs").beginArray(/*Inline=*/true);
    for (uint64_t Ns : R.TrialNs)
      W.value(Ns);
    W.endArray();
    // Percentiles over the per-request latency distribution (accept to
    // completion), not the per-trial walls — the tail the shed policy
    // watches.
    W.member("p50Ns", R.Stats.LatencyNs.p50())
        .member("p90Ns", R.Stats.LatencyNs.p90())
        .member("p99Ns", R.Stats.LatencyNs.p99())
        .member("p999Ns", R.Stats.LatencyNs.p999());
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

} // namespace

int main(int Argc, char **Argv) {
  installCrashHandlers();
  Options Opt;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--threads=", 0) == 0) {
      if (!parseThreadList(Arg.substr(10), Opt.Threads)) {
        std::fprintf(stderr,
                     "srv_scaling: --threads wants a list like 1,8,32\n");
        return 1;
      }
    } else if (Arg.rfind("--trials=", 0) == 0) {
      Opt.Trials = std::max(1u, unsigned(std::strtoul(
                                    Arg.c_str() + 9, nullptr, 10)));
    } else if (Arg.rfind("--reads=", 0) == 0) {
      Opt.Reads = uint32_t(std::strtoul(Arg.c_str() + 8, nullptr, 10));
    } else if (Arg.rfind("--streams=", 0) == 0) {
      Opt.Streams = std::max(
          1u, unsigned(std::strtoul(Arg.c_str() + 10, nullptr, 10)));
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Opt.Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg == "--calls") {
      Opt.Calls = true;
    } else if (Arg == "--assert-scaling") {
      Opt.AssertScaling = true;
    } else if (Arg == "--assert-shed") {
      Opt.AssertShed = true;
    } else if (Arg == "--assert-trace-overhead") {
      Opt.AssertTraceOverhead = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      std::string Mode = Arg.substr(8);
      if (Mode == "on") {
        Opt.Trace = true;
      } else if (Mode == "off") {
        Opt.Trace = false;
      } else {
        std::fprintf(stderr, "srv_scaling: --trace must be 'on' or 'off'\n");
        return 1;
      }
    } else if (Arg.rfind("--engine=", 0) == 0) {
      if (!vm::engineFromName(Arg.substr(9), Opt.Engine)) {
        std::fprintf(stderr,
                     "srv_scaling: --engine must be 'tree' or 'vm'\n");
        return 1;
      }
    } else if (Arg.rfind("--json=", 0) == 0) {
      Opt.JsonFile = Arg.substr(7);
    } else {
      return usage(Argv[I]);
    }
  }

  std::vector<std::string> Errors;
  auto M = parser::parseModule(ServeSource, Errors);
  if (!M || !ir::verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "srv_scaling: %s\n", E.c_str());
    return 2;
  }
  core::PipelineConfig PipeCfg;
  core::PipelineResult Result = core::runADE(*M, PipeCfg);
  std::fprintf(stderr, "srv_scaling: %u enumeration(s) after ADE\n",
               Result.Transform.EnumerationsCreated);

  RawOstream &OS = outs();
  std::vector<Row> Rows;

  // --- Scaling sweep ---
  for (unsigned Threads : Opt.Threads) {
    Row R;
    R.Bench = Opt.Calls ? "srv_read_mostly_calls" : "srv_read_mostly";
    R.Config = "threads=" + std::to_string(Threads);
    R.Threads = Threads;
    std::vector<serve::ServerStats> Stats(Opt.Trials);
    for (unsigned T = 0; T != Opt.Trials; ++T) {
      uint64_t WallNs = 0;
      serve::ClientResult Got;
      runSweepTrial(*M, Opt, Threads, Opt.Seed + T, Opt.Trace, WallNs,
                    Stats[T], Got);
      R.TrialNs.push_back(WallNs);
    }
    std::vector<uint64_t> Sorted = R.TrialNs;
    std::sort(Sorted.begin(), Sorted.end());
    R.MedianNs = Sorted[Sorted.size() / 2];
    size_t MedianIdx = size_t(
        std::find(R.TrialNs.begin(), R.TrialNs.end(), R.MedianNs) -
        R.TrialNs.begin());
    R.Stats = Stats[MedianIdx];
    R.Throughput = R.MedianNs ? double(R.Stats.Completed) * 1e9 /
                                    double(R.MedianNs)
                              : 0;
    OS << R.Bench << " threads=" << uint64_t(Threads)
       << " wall=" << R.MedianNs / 1000000 << "ms completed="
       << R.Stats.Completed << " throughput="
       << uint64_t(R.Throughput + 0.5) << "req/s p50="
       << R.Stats.LatencyNs.p50() << "ns p99=" << R.Stats.LatencyNs.p99()
       << "ns\n";
    Rows.push_back(std::move(R));
  }

  // --- Overload shed ---
  Row Overload = runOverload(*M, Opt);
  OS << Overload.Bench << " submitted=" << Overload.Submitted
     << " accepted=" << Overload.Stats.Accepted
     << " shed=" << Overload.Stats.Shed
     << " terminalSheds=" << Overload.TerminalSheds
     << " completed=" << Overload.Stats.Completed << "\n";
  Rows.push_back(Overload);
  const Row &Ov = Rows.back();

  int Exit = 0;

  // --- Tracing overhead ---
  // Interleaved on/off trials (same seeds, alternating order) so clock
  // drift and cache warmup hit both sides; best-of-N discards scheduler
  // noise, which on a loaded CI runner dwarfs the effect measured.
  OverheadResult OH;
  if (Opt.AssertTraceOverhead) {
    OH.Ran = true;
    unsigned Threads = 4;
    unsigned N = std::max(Opt.Trials, 5u);
    for (unsigned T = 0; T != N; ++T) {
      for (int Mode = 0; Mode != 2; ++Mode) {
        bool Trace = (int(T) + Mode) % 2 == 1;
        uint64_t WallNs = 0;
        serve::ServerStats St;
        serve::ClientResult Got;
        runSweepTrial(*M, Opt, Threads, Opt.Seed + T, Trace, WallNs, St,
                      Got);
        uint64_t &Best = Trace ? OH.BestOnNs : OH.BestOffNs;
        if (!Best || WallNs < Best)
          Best = WallNs;
      }
    }
    OH.Ratio =
        OH.BestOffNs ? double(OH.BestOnNs) / double(OH.BestOffNs) : 0;
    unsigned Cores = std::thread::hardware_concurrency();
    if (Cores < 8) {
      // Same hardware gate as --assert-scaling: on an oversubscribed
      // small machine the scheduler noise on these ~20ms walls is an
      // order of magnitude larger than the 5% budget being checked.
      // The measurement still runs and lands in the JSON report.
      OS << "assert-trace-overhead: SKIPPED (hardware_concurrency="
         << Cores << " < 8; measured ratio "
         << uint64_t(OH.Ratio * 1000) << "/1000, not gated)\n";
    } else if (OH.BestOffNs && OH.Ratio <= 1.05) {
      OS << "assert-trace-overhead: ok (tracing on " << OH.BestOnNs / 1000
         << "us vs off " << OH.BestOffNs / 1000 << "us, ratio "
         << uint64_t(OH.Ratio * 1000) << "/1000 <= 1050/1000)\n";
    } else {
      std::fprintf(stderr,
                   "assert-trace-overhead: FAILED (tracing on %.3fms vs "
                   "off %.3fms, ratio %.3f > 1.05)\n",
                   double(OH.BestOnNs) / 1e6, double(OH.BestOffNs) / 1e6,
                   OH.Ratio);
      Exit = 1;
    }
  }

  if (Opt.AssertScaling) {
    unsigned Cores = std::thread::hardware_concurrency();
    if (Cores < 8) {
      OS << "assert-scaling: SKIPPED (hardware_concurrency=" << Cores
         << " < 8; the 4x target needs real parallelism)\n";
    } else {
      const Row *One = nullptr, *Widest = nullptr;
      for (const Row &R : Rows) {
        if (R.Bench.rfind("srv_read_mostly", 0) != 0)
          continue;
        if (R.Threads == 1)
          One = &R;
        if (!Widest || R.Threads > Widest->Threads)
          Widest = &R;
      }
      if (!One || !Widest || Widest->Threads < 8) {
        std::fprintf(stderr,
                     "assert-scaling: FAILED (need rows for 1 thread and "
                     ">= 8 threads; pass --threads=1,8,32)\n");
        Exit = 1;
      } else {
        double Ratio = One->Throughput > 0
                           ? Widest->Throughput / One->Throughput
                           : 0;
        if (Ratio >= 4.0) {
          OS << "assert-scaling: ok (" << Widest->Threads
             << "-thread throughput " << uint64_t(Ratio * 100)
             << "% of 1-thread, >= 400%)\n";
        } else {
          std::fprintf(stderr,
                       "assert-scaling: FAILED (%u-thread throughput "
                       "%.2fx 1-thread, need >= 4x)\n",
                       Widest->Threads, Ratio);
          Exit = 1;
        }
      }
    }
  }

  if (Opt.AssertShed) {
    bool ShedEngaged = Ov.Stats.Shed > 0;
    bool Accounted =
        Ov.Stats.Accepted + Ov.TerminalSheds == Ov.Submitted;
    bool AllCompleted = Ov.Stats.Completed == Ov.Stats.Accepted;
    if (ShedEngaged && Accounted && AllCompleted) {
      OS << "assert-shed: ok (" << Ov.Stats.Shed
         << " shed at admission under 2x overload, every accepted "
            "request completed)\n";
    } else {
      std::fprintf(stderr,
                   "assert-shed: FAILED (shed=%llu accepted=%llu "
                   "terminalSheds=%llu submitted=%llu completed=%llu)\n",
                   (unsigned long long)Ov.Stats.Shed,
                   (unsigned long long)Ov.Stats.Accepted,
                   (unsigned long long)Ov.TerminalSheds,
                   (unsigned long long)Ov.Submitted,
                   (unsigned long long)Ov.Stats.Completed);
      Exit = 1;
    }
  }

  if (!Opt.JsonFile.empty()) {
    std::FILE *File = std::fopen(Opt.JsonFile.c_str(), "wb");
    if (!File) {
      std::fprintf(stderr, "srv_scaling: cannot write %s\n",
                   Opt.JsonFile.c_str());
      return 2;
    }
    RawFileOstream FS(File);
    writeReport(Rows, Opt, OH, FS);
    FS.flush();
    std::fclose(File);
  } else {
    writeReport(Rows, Opt, OH, OS);
  }
  return Exit;
}
