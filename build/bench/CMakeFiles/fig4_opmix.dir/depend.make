# Empty dependencies file for fig4_opmix.
# This may be replaced when dependencies are built.
