file(REMOVE_RECURSE
  "CMakeFiles/fig4_opmix.dir/fig4_opmix.cpp.o"
  "CMakeFiles/fig4_opmix.dir/fig4_opmix.cpp.o.d"
  "fig4_opmix"
  "fig4_opmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_opmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
