# Empty dependencies file for fig6_aarch64_projection.
# This may be replaced when dependencies are built.
