file(REMOVE_RECURSE
  "CMakeFiles/fig6_aarch64_projection.dir/fig6_aarch64_projection.cpp.o"
  "CMakeFiles/fig6_aarch64_projection.dir/fig6_aarch64_projection.cpp.o.d"
  "fig6_aarch64_projection"
  "fig6_aarch64_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aarch64_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
