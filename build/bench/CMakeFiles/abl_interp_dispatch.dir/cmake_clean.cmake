file(REMOVE_RECURSE
  "CMakeFiles/abl_interp_dispatch.dir/abl_interp_dispatch.cpp.o"
  "CMakeFiles/abl_interp_dispatch.dir/abl_interp_dispatch.cpp.o.d"
  "abl_interp_dispatch"
  "abl_interp_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interp_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
