# Empty dependencies file for abl_interp_dispatch.
# This may be replaced when dependencies are built.
