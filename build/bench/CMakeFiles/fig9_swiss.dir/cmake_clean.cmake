file(REMOVE_RECURSE
  "CMakeFiles/fig9_swiss.dir/fig9_swiss.cpp.o"
  "CMakeFiles/fig9_swiss.dir/fig9_swiss.cpp.o.d"
  "fig9_swiss"
  "fig9_swiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_swiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
