# Empty dependencies file for fig9_swiss.
# This may be replaced when dependencies are built.
