# Empty dependencies file for fig5_main.
# This may be replaced when dependencies are built.
