file(REMOVE_RECURSE
  "CMakeFiles/fig5_main.dir/fig5_main.cpp.o"
  "CMakeFiles/fig5_main.dir/fig5_main.cpp.o.d"
  "fig5_main"
  "fig5_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
