# Empty dependencies file for table2_accesses.
# This may be replaced when dependencies are built.
