file(REMOVE_RECURSE
  "CMakeFiles/rq4_pta_casestudy.dir/rq4_pta_casestudy.cpp.o"
  "CMakeFiles/rq4_pta_casestudy.dir/rq4_pta_casestudy.cpp.o.d"
  "rq4_pta_casestudy"
  "rq4_pta_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq4_pta_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
