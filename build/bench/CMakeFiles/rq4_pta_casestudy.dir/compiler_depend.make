# Empty compiler generated dependencies file for rq4_pta_casestudy.
# This may be replaced when dependencies are built.
