# Empty compiler generated dependencies file for pta_tuning.
# This may be replaced when dependencies are built.
