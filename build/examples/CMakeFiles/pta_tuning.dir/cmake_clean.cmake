file(REMOVE_RECURSE
  "CMakeFiles/pta_tuning.dir/pta_tuning.cpp.o"
  "CMakeFiles/pta_tuning.dir/pta_tuning.cpp.o.d"
  "pta_tuning"
  "pta_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
