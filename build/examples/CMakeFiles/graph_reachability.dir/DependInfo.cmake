
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/graph_reachability.cpp" "examples/CMakeFiles/graph_reachability.dir/graph_reachability.cpp.o" "gcc" "examples/CMakeFiles/graph_reachability.dir/graph_reachability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench/CMakeFiles/ade_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ade_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ade_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ade_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ade_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/collections/CMakeFiles/ade_collections.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/ade_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ade_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ade_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
