# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_test[1]_include.cmake")
include("/root/repo/build/tests/collections_test[1]_include.cmake")
add_test(adec_parse_print "/root/repo/build/src/tools/adec" "/root/repo/examples/histogram.memoir" "--print")
set_tests_properties(adec_parse_print PROPERTIES  PASS_REGULAR_EXPRESSION "fn @count" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;2;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_run_baseline "/root/repo/build/src/tools/adec" "/root/repo/examples/histogram.memoir" "--run")
set_tests_properties(adec_run_baseline PROPERTIES  PASS_REGULAR_EXPRESSION "@main = 1000" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_run_ade "/root/repo/build/src/tools/adec" "/root/repo/examples/histogram.memoir" "--ade" "--run")
set_tests_properties(adec_run_ade PROPERTIES  PASS_REGULAR_EXPRESSION "@main = 1000" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_ade_prints_bitmap "/root/repo/build/src/tools/adec" "/root/repo/examples/histogram.memoir" "--ade" "--print")
set_tests_properties(adec_ade_prints_bitmap PROPERTIES  PASS_REGULAR_EXPRESSION "Map{BitMap}<idx,u32>" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;16;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_unionfind_propagation "/root/repo/build/src/tools/adec" "/root/repo/examples/unionfind.memoir" "--ade" "--print")
set_tests_properties(adec_unionfind_propagation PROPERTIES  PASS_REGULAR_EXPRESSION "Map{BitMap}<idx,idx>" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_unionfind_runs "/root/repo/build/src/tools/adec" "/root/repo/examples/unionfind.memoir" "--ade" "--run")
set_tests_properties(adec_unionfind_runs PROPERTIES  PASS_REGULAR_EXPRESSION "@main = " _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(adec_rejects_garbage "/root/repo/build/src/tools/adec" "/root/repo/CMakeLists.txt")
set_tests_properties(adec_rejects_garbage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
