
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CollectionsEnumerationTest.cpp" "tests/CMakeFiles/collections_test.dir/CollectionsEnumerationTest.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/CollectionsEnumerationTest.cpp.o.d"
  "/root/repo/tests/CollectionsMapTest.cpp" "tests/CMakeFiles/collections_test.dir/CollectionsMapTest.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/CollectionsMapTest.cpp.o.d"
  "/root/repo/tests/CollectionsMemoryTest.cpp" "tests/CMakeFiles/collections_test.dir/CollectionsMemoryTest.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/CollectionsMemoryTest.cpp.o.d"
  "/root/repo/tests/CollectionsRoaringTest.cpp" "tests/CMakeFiles/collections_test.dir/CollectionsRoaringTest.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/CollectionsRoaringTest.cpp.o.d"
  "/root/repo/tests/CollectionsSetTest.cpp" "tests/CMakeFiles/collections_test.dir/CollectionsSetTest.cpp.o" "gcc" "tests/CMakeFiles/collections_test.dir/CollectionsSetTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collections/CMakeFiles/ade_collections.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ade_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
