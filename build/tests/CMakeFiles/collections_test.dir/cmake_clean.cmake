file(REMOVE_RECURSE
  "CMakeFiles/collections_test.dir/CollectionsEnumerationTest.cpp.o"
  "CMakeFiles/collections_test.dir/CollectionsEnumerationTest.cpp.o.d"
  "CMakeFiles/collections_test.dir/CollectionsMapTest.cpp.o"
  "CMakeFiles/collections_test.dir/CollectionsMapTest.cpp.o.d"
  "CMakeFiles/collections_test.dir/CollectionsMemoryTest.cpp.o"
  "CMakeFiles/collections_test.dir/CollectionsMemoryTest.cpp.o.d"
  "CMakeFiles/collections_test.dir/CollectionsRoaringTest.cpp.o"
  "CMakeFiles/collections_test.dir/CollectionsRoaringTest.cpp.o.d"
  "CMakeFiles/collections_test.dir/CollectionsSetTest.cpp.o"
  "CMakeFiles/collections_test.dir/CollectionsSetTest.cpp.o.d"
  "collections_test"
  "collections_test.pdb"
  "collections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
