
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/endtoend_test.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/endtoend_test.dir/EndToEndTest.cpp.o.d"
  "/root/repo/tests/ParserRobustnessTest.cpp" "tests/CMakeFiles/endtoend_test.dir/ParserRobustnessTest.cpp.o" "gcc" "tests/CMakeFiles/endtoend_test.dir/ParserRobustnessTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collections/CMakeFiles/ade_collections.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ade_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bench/CMakeFiles/ade_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ade_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ade_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/ade_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ade_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ade_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
