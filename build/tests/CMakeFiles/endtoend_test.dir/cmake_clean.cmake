file(REMOVE_RECURSE
  "CMakeFiles/endtoend_test.dir/EndToEndTest.cpp.o"
  "CMakeFiles/endtoend_test.dir/EndToEndTest.cpp.o.d"
  "CMakeFiles/endtoend_test.dir/ParserRobustnessTest.cpp.o"
  "CMakeFiles/endtoend_test.dir/ParserRobustnessTest.cpp.o.d"
  "endtoend_test"
  "endtoend_test.pdb"
  "endtoend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
