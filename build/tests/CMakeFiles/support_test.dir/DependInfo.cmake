
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/SupportCastingTest.cpp" "tests/CMakeFiles/support_test.dir/SupportCastingTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/SupportCastingTest.cpp.o.d"
  "/root/repo/tests/SupportRandomTest.cpp" "tests/CMakeFiles/support_test.dir/SupportRandomTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/SupportRandomTest.cpp.o.d"
  "/root/repo/tests/SupportUnionFindTest.cpp" "tests/CMakeFiles/support_test.dir/SupportUnionFindTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/SupportUnionFindTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collections/CMakeFiles/ade_collections.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ade_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
