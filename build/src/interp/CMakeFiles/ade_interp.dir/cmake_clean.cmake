file(REMOVE_RECURSE
  "CMakeFiles/ade_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/ade_interp.dir/Interpreter.cpp.o.d"
  "libade_interp.a"
  "libade_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
