# Empty compiler generated dependencies file for ade_interp.
# This may be replaced when dependencies are built.
