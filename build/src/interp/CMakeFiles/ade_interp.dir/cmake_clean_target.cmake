file(REMOVE_RECURSE
  "libade_interp.a"
)
