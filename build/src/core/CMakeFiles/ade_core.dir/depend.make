# Empty dependencies file for ade_core.
# This may be replaced when dependencies are built.
