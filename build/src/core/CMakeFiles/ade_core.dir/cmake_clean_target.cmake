file(REMOVE_RECURSE
  "libade_core.a"
)
