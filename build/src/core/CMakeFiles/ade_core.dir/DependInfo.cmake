
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Analysis.cpp" "src/core/CMakeFiles/ade_core.dir/Analysis.cpp.o" "gcc" "src/core/CMakeFiles/ade_core.dir/Analysis.cpp.o.d"
  "/root/repo/src/core/Cloning.cpp" "src/core/CMakeFiles/ade_core.dir/Cloning.cpp.o" "gcc" "src/core/CMakeFiles/ade_core.dir/Cloning.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "src/core/CMakeFiles/ade_core.dir/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ade_core.dir/Pipeline.cpp.o.d"
  "/root/repo/src/core/Plan.cpp" "src/core/CMakeFiles/ade_core.dir/Plan.cpp.o" "gcc" "src/core/CMakeFiles/ade_core.dir/Plan.cpp.o.d"
  "/root/repo/src/core/Transform.cpp" "src/core/CMakeFiles/ade_core.dir/Transform.cpp.o" "gcc" "src/core/CMakeFiles/ade_core.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ade_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ade_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
