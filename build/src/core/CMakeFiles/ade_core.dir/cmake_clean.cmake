file(REMOVE_RECURSE
  "CMakeFiles/ade_core.dir/Analysis.cpp.o"
  "CMakeFiles/ade_core.dir/Analysis.cpp.o.d"
  "CMakeFiles/ade_core.dir/Cloning.cpp.o"
  "CMakeFiles/ade_core.dir/Cloning.cpp.o.d"
  "CMakeFiles/ade_core.dir/Pipeline.cpp.o"
  "CMakeFiles/ade_core.dir/Pipeline.cpp.o.d"
  "CMakeFiles/ade_core.dir/Plan.cpp.o"
  "CMakeFiles/ade_core.dir/Plan.cpp.o.d"
  "CMakeFiles/ade_core.dir/Transform.cpp.o"
  "CMakeFiles/ade_core.dir/Transform.cpp.o.d"
  "libade_core.a"
  "libade_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
