file(REMOVE_RECURSE
  "CMakeFiles/ade_stats.dir/Stats.cpp.o"
  "CMakeFiles/ade_stats.dir/Stats.cpp.o.d"
  "libade_stats.a"
  "libade_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
