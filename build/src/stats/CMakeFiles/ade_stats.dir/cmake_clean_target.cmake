file(REMOVE_RECURSE
  "libade_stats.a"
)
