# Empty dependencies file for ade_stats.
# This may be replaced when dependencies are built.
