# Empty dependencies file for ade_parser.
# This may be replaced when dependencies are built.
