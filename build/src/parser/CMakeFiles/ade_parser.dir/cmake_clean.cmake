file(REMOVE_RECURSE
  "CMakeFiles/ade_parser.dir/Lexer.cpp.o"
  "CMakeFiles/ade_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/ade_parser.dir/Parser.cpp.o"
  "CMakeFiles/ade_parser.dir/Parser.cpp.o.d"
  "libade_parser.a"
  "libade_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
