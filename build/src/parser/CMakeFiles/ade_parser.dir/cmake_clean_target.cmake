file(REMOVE_RECURSE
  "libade_parser.a"
)
