# Empty dependencies file for ade_support.
# This may be replaced when dependencies are built.
