file(REMOVE_RECURSE
  "CMakeFiles/ade_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/ade_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/ade_support.dir/RawOstream.cpp.o"
  "CMakeFiles/ade_support.dir/RawOstream.cpp.o.d"
  "libade_support.a"
  "libade_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
