file(REMOVE_RECURSE
  "libade_support.a"
)
