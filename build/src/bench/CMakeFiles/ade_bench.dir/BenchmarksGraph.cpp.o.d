src/bench/CMakeFiles/ade_bench.dir/BenchmarksGraph.cpp.o: \
 /root/repo/src/bench/BenchmarksGraph.cpp /usr/include/stdc-predef.h \
 /root/repo/src/bench/BenchmarksInternal.h
