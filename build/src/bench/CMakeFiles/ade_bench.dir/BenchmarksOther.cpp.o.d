src/bench/CMakeFiles/ade_bench.dir/BenchmarksOther.cpp.o: \
 /root/repo/src/bench/BenchmarksOther.cpp /usr/include/stdc-predef.h \
 /root/repo/src/bench/BenchmarksInternal.h
