file(REMOVE_RECURSE
  "CMakeFiles/ade_bench.dir/Benchmarks.cpp.o"
  "CMakeFiles/ade_bench.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/ade_bench.dir/BenchmarksGraph.cpp.o"
  "CMakeFiles/ade_bench.dir/BenchmarksGraph.cpp.o.d"
  "CMakeFiles/ade_bench.dir/BenchmarksOther.cpp.o"
  "CMakeFiles/ade_bench.dir/BenchmarksOther.cpp.o.d"
  "CMakeFiles/ade_bench.dir/Harness.cpp.o"
  "CMakeFiles/ade_bench.dir/Harness.cpp.o.d"
  "CMakeFiles/ade_bench.dir/Workloads.cpp.o"
  "CMakeFiles/ade_bench.dir/Workloads.cpp.o.d"
  "libade_bench.a"
  "libade_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
