file(REMOVE_RECURSE
  "libade_bench.a"
)
