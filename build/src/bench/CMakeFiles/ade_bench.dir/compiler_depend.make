# Empty compiler generated dependencies file for ade_bench.
# This may be replaced when dependencies are built.
