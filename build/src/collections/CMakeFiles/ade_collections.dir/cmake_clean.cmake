file(REMOVE_RECURSE
  "CMakeFiles/ade_collections.dir/RoaringBitSet.cpp.o"
  "CMakeFiles/ade_collections.dir/RoaringBitSet.cpp.o.d"
  "libade_collections.a"
  "libade_collections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_collections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
