# Empty dependencies file for ade_collections.
# This may be replaced when dependencies are built.
