file(REMOVE_RECURSE
  "libade_collections.a"
)
