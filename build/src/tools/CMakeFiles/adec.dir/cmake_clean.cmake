file(REMOVE_RECURSE
  "CMakeFiles/adec.dir/adec.cpp.o"
  "CMakeFiles/adec.dir/adec.cpp.o.d"
  "adec"
  "adec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
