# Empty dependencies file for adec.
# This may be replaced when dependencies are built.
