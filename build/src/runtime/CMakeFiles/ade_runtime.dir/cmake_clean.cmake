file(REMOVE_RECURSE
  "CMakeFiles/ade_runtime.dir/RtCollection.cpp.o"
  "CMakeFiles/ade_runtime.dir/RtCollection.cpp.o.d"
  "CMakeFiles/ade_runtime.dir/Stats.cpp.o"
  "CMakeFiles/ade_runtime.dir/Stats.cpp.o.d"
  "libade_runtime.a"
  "libade_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
