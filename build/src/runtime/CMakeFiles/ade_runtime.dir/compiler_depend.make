# Empty compiler generated dependencies file for ade_runtime.
# This may be replaced when dependencies are built.
