file(REMOVE_RECURSE
  "libade_runtime.a"
)
