file(REMOVE_RECURSE
  "libade_ir.a"
)
