file(REMOVE_RECURSE
  "CMakeFiles/ade_ir.dir/IR.cpp.o"
  "CMakeFiles/ade_ir.dir/IR.cpp.o.d"
  "CMakeFiles/ade_ir.dir/Printer.cpp.o"
  "CMakeFiles/ade_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/ade_ir.dir/Type.cpp.o"
  "CMakeFiles/ade_ir.dir/Type.cpp.o.d"
  "CMakeFiles/ade_ir.dir/Verifier.cpp.o"
  "CMakeFiles/ade_ir.dir/Verifier.cpp.o.d"
  "libade_ir.a"
  "libade_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ade_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
