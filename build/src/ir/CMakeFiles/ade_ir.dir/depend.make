# Empty dependencies file for ade_ir.
# This may be replaced when dependencies are built.
