//===- Lexer.cpp - Token stream for the .memoir syntax --------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace ade;
using namespace ade::parser;

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

std::vector<Token> Lexer::lex(std::string_view Src) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  size_t I = 0, N = Src.size();
  size_t LineStart = 0; // Offset of the current line's first character.
  size_t TokStart = 0;  // Offset where the current token began.

  auto emit = [&](TokenKind K, std::string Text = "") {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = static_cast<unsigned>(TokStart - LineStart) + 1;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Src[I];
    TokStart = I;
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    // Punctuation.
    switch (C) {
    case '(':
      emit(TokenKind::LParen);
      ++I;
      continue;
    case ')':
      emit(TokenKind::RParen);
      ++I;
      continue;
    case '{':
      emit(TokenKind::LBrace);
      ++I;
      continue;
    case '}':
      emit(TokenKind::RBrace);
      ++I;
      continue;
    case '[':
      emit(TokenKind::LBracket);
      ++I;
      continue;
    case ']':
      emit(TokenKind::RBracket);
      ++I;
      continue;
    case '<':
      emit(TokenKind::Less);
      ++I;
      continue;
    case '>':
      emit(TokenKind::Greater);
      ++I;
      continue;
    case ',':
      emit(TokenKind::Comma);
      ++I;
      continue;
    case ':':
      emit(TokenKind::Colon);
      ++I;
      continue;
    case '=':
      emit(TokenKind::Equal);
      ++I;
      continue;
    default:
      break;
    }
    if (C == '-' && I + 1 < N && Src[I + 1] == '>') {
      emit(TokenKind::Arrow);
      I += 2;
      continue;
    }
    // '#pragma'
    if (C == '#') {
      size_t Start = ++I;
      while (I < N && isIdentChar(Src[I]))
        ++I;
      if (Src.substr(Start, I - Start) == "pragma") {
        emit(TokenKind::Pragma);
        continue;
      }
      emit(TokenKind::Error, "unexpected '#'");
      return Tokens;
    }
    // Names.
    if (C == '%' || C == '@') {
      size_t Start = ++I;
      while (I < N && isIdentChar(Src[I]))
        ++I;
      if (I == Start) {
        emit(TokenKind::Error, "empty name after sigil");
        return Tokens;
      }
      emit(C == '%' ? TokenKind::LocalName : TokenKind::GlobalName,
           std::string(Src.substr(Start, I - Start)));
      continue;
    }
    // Strings.
    if (C == '"') {
      size_t Start = ++I;
      while (I < N && Src[I] != '"' && Src[I] != '\n')
        ++I;
      if (I == N || Src[I] != '"') {
        emit(TokenKind::Error, "unterminated string literal");
        return Tokens;
      }
      emit(TokenKind::StringLit, std::string(Src.substr(Start, I - Start)));
      ++I;
      continue;
    }
    // Numbers (optionally negative).
    bool Negative = C == '-';
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (Negative && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Src[I + 1])))) {
      size_t Start = I;
      if (Negative)
        ++I;
      bool IsFloat = false;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '.' || Src[I] == 'e' || Src[I] == 'E' ||
                       ((Src[I] == '+' || Src[I] == '-') &&
                        (Src[I - 1] == 'e' || Src[I - 1] == 'E')))) {
        if (Src[I] == '.' || Src[I] == 'e' || Src[I] == 'E')
          IsFloat = true;
        ++I;
      }
      std::string Text(Src.substr(Start, I - Start));
      Token T;
      T.Line = Line;
      T.Col = static_cast<unsigned>(Start - LineStart) + 1;
      T.Text = Text;
      if (IsFloat) {
        T.Kind = TokenKind::FloatLit;
        T.FloatValue = std::strtod(Text.c_str(), nullptr);
      } else {
        T.Kind = TokenKind::IntLit;
        T.IntIsNegative = Negative;
        T.IntValue = std::strtoull(Negative ? Text.c_str() + 1 : Text.c_str(),
                                   nullptr, 10);
      }
      Tokens.push_back(std::move(T));
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && isIdentChar(Src[I]))
        ++I;
      emit(TokenKind::Ident, std::string(Src.substr(Start, I - Start)));
      continue;
    }
    emit(TokenKind::Error,
         std::string("unexpected character '") + C + "'");
    return Tokens;
  }
  TokStart = N;
  emit(TokenKind::Eof);
  return Tokens;
}
