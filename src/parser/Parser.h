//===- Parser.h - Textual .memoir parsing -----------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR syntax (modeled on the paper's Figures 1-2 with
/// structured control flow and `#pragma ade` directives from Listing 5).
///
/// Grammar sketch:
/// \code
///   module   := (global | function)*
///   global   := "global" @name ":" type
///   function := "fn" @name "(" (%name ":" type),* ")" ("->" type)? "{"
///                 inst* "}"
///             | "extern" "fn" @name "(" type,* ")" ("->" type)?
///   inst     := (%name,+ "=")? operation
///   operation examples:
///     const 5 : u32            const 1.5 : f64          const true
///     new Map{BitMap}<idx,u32> read %m, %k              write %m, %k, %v
///     insert %s, %k            has %s, %k               union %a, %b
///     enc %e, %v   dec %e, %i  enum.add %e, %v          gget @g
///     if %c { ... yield %a } else { ... yield %b }
///     foreach %m -> [%k, %v] iter(%acc = %init) { ... yield %next }
///     forrange %lo, %hi -> [%i] { ... yield }
///     dowhile iter(%x = %init) { ... yield %cond, %next }
///     call @f(%a, %b)          ret %v
///   directive := "#pragma" "ade" ( "enumerate" | "noenumerate" | "noshare"
///              | "noshare(" %name ")" | "share" "group(" string ")"
///              | "select(" ident ")" )*   — attaches to the next `new`
/// \endcode
///
/// Comments run from "//" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_PARSER_PARSER_H
#define ADE_PARSER_PARSER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ade {
namespace ir {
class Module;
}

namespace parser {

/// Parses \p Source into a module. On failure returns null and fills
/// \p Errors with "line N: message" diagnostics. The parser recovers
/// from statement- and definition-level errors (synchronizing to the
/// next statement or top-level entity), so one run reports every
/// diagnostic in the file, capped at 20 plus a "too many errors" note.
/// The returned module has NOT been verified; callers should run the
/// verifier.
std::unique_ptr<ir::Module> parseModule(std::string_view Source,
                                        std::vector<std::string> &Errors);

/// Parses and verifies, aborting with diagnostics on failure (tests/tools).
std::unique_ptr<ir::Module> parseModuleOrDie(std::string_view Source);

} // namespace parser
} // namespace ade

#endif // ADE_PARSER_PARSER_H
