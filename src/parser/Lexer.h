//===- Lexer.h - Token stream for the .memoir syntax ------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef ADE_PARSER_LEXER_H
#define ADE_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ade {
namespace parser {

/// Lexical token kinds.
enum class TokenKind : uint8_t {
    Eof,
    Ident,      // bare identifier / keyword
    LocalName,  // %name (text excludes '%')
    GlobalName, // @name (text excludes '@')
    IntLit,
    FloatLit,
    StringLit, // "..." (text excludes quotes)
    Pragma,    // '#pragma'
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Less,
    Greater,
    Comma,
    Colon,
    Equal,
  Arrow, // ->
  Error,
};

/// One lexical token. Identifier-like tokens keep their text; literals
/// carry decoded payloads.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  uint64_t IntValue = 0;
  bool IntIsNegative = false;
  double FloatValue = 0;
  unsigned Line = 0;
  /// 1-based column of the token's first character.
  unsigned Col = 0;
};

/// Tokenizes an entire buffer up front.
class Lexer {
public:
  /// Lexes \p Source; on bad input the token list ends with an Error token
  /// whose Text holds the message.
  static std::vector<Token> lex(std::string_view Source);
};

} // namespace parser
} // namespace ade

#endif // ADE_PARSER_LEXER_H
