//===- Parser.cpp - Textual .memoir parsing -------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "parser/Lexer.h"
#include "support/ErrorHandling.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

using namespace ade;
using namespace ade::ir;
using namespace ade::parser;

namespace {

class ParserImpl {
public:
  ParserImpl(std::string_view Source, std::vector<std::string> &Errors)
      : Tokens(Lexer::lex(Source)), Errors(Errors) {}

  std::unique_ptr<Module> run() {
    auto Mod = std::make_unique<Module>();
    M = Mod.get();
    if (!Tokens.empty() && Tokens.back().Kind == TokenKind::Error) {
      Errors.push_back("line " + std::to_string(Tokens.back().Line) + ": " +
                       Tokens.back().Text);
      return nullptr;
    }
    // Both passes recover from statement- and definition-level errors so
    // one run reports every diagnostic in the file (capped at MaxErrors);
    // parsing still fails as a whole if any error was recorded.
    scanSignatures();
    if (!FatalStop) {
      Pos = 0;
      parseTopLevel();
    }
    if (!Errors.empty())
      return nullptr;
    return Mod;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }
  bool is(TokenKind K) const { return cur().Kind == K; }
  bool isIdent(const char *S) const {
    return cur().Kind == TokenKind::Ident && cur().Text == S;
  }
  Token take() { return Tokens[Pos++]; }
  void skip() { ++Pos; }

  bool fail(const std::string &Msg) {
    if (FatalStop)
      return false;
    Errors.push_back("line " + std::to_string(cur().Line) + ": " + Msg);
    if (Errors.size() >= MaxErrors) {
      Errors.push_back("too many errors; giving up");
      FatalStop = true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Error recovery
  //===--------------------------------------------------------------------===//

  /// Statement-level recovery: discards the rest of the statement that
  /// began on \p StmtLine — up to the next source line at this nesting
  /// level or the enclosing region's '}' — so the rest of the region
  /// still gets parsed and diagnosed. Nested brace groups are stepped
  /// over whole.
  void syncToStatement(unsigned StmtLine) {
    unsigned Depth = 0;
    while (!is(TokenKind::Eof)) {
      if (is(TokenKind::LBrace)) {
        ++Depth;
        skip();
        continue;
      }
      if (is(TokenKind::RBrace)) {
        if (Depth == 0)
          return; // The enclosing region's close — leave it for the caller.
        --Depth;
        skip();
        continue;
      }
      if (Depth == 0 && cur().Line != StmtLine)
        return;
      skip();
    }
  }

  /// Definition-level recovery: skips to the next 'fn'/'global'/'extern'
  /// keyword, stepping over whole brace groups (function bodies) so body
  /// statements are not mistaken for top-level entities.
  void syncToTopLevel() {
    while (!is(TokenKind::Eof)) {
      if (is(TokenKind::LBrace)) {
        skipUntilMatched(TokenKind::LBrace, TokenKind::RBrace);
        continue;
      }
      if (isIdent("fn") || isIdent("global") || isIdent("extern"))
        return;
      skip();
    }
  }

  bool expect(TokenKind K, const char *What) {
    if (!is(K))
      return fail(std::string("expected ") + What);
    skip();
    return true;
  }

  bool expectIdent(const char *S) {
    if (!isIdent(S))
      return fail(std::string("expected '") + S + "'");
    skip();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Pass 1: function signatures (allows forward calls)
  //===--------------------------------------------------------------------===//

  bool scanSignatures() {
    while (!is(TokenKind::Eof) && !FatalStop) {
      if (isIdent("fn")) {
        if (!scanFunction(/*External=*/false))
          syncToTopLevel();
        continue;
      }
      if (isIdent("extern")) {
        skip();
        if (!isIdent("fn")) {
          fail("expected 'fn' after 'extern'");
          syncToTopLevel();
          continue;
        }
        if (!scanFunction(/*External=*/true))
          syncToTopLevel();
        continue;
      }
      skip();
    }
    return !FatalStop;
  }

  bool scanFunction(bool External) {
    skip(); // 'fn'
    if (!is(TokenKind::GlobalName))
      return fail("expected function name after 'fn'");
    std::string Name = take().Text;
    if (M->getFunction(Name))
      return fail("duplicate function @" + Name);
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    struct Param {
      std::string Name;
      Type *Ty;
    };
    std::vector<Param> Params;
    while (!is(TokenKind::RParen)) {
      Param P;
      if (External) {
        // Extern declarations list bare types.
        if (is(TokenKind::LocalName)) {
          P.Name = take().Text;
          if (!expect(TokenKind::Colon, "':'"))
            return false;
        }
      } else {
        if (!is(TokenKind::LocalName))
          return fail("expected parameter name");
        P.Name = take().Text;
        if (!expect(TokenKind::Colon, "':'"))
          return false;
      }
      P.Ty = parseType();
      if (!P.Ty)
        return false;
      Params.push_back(std::move(P));
      if (is(TokenKind::Comma))
        skip();
      else
        break;
    }
    if (!expect(TokenKind::RParen, "')'"))
      return false;
    Type *RetTy = M->types().voidTy();
    if (is(TokenKind::Arrow)) {
      skip();
      RetTy = parseType();
      if (!RetTy)
        return false;
    }
    Function *F = M->createFunction(Name, RetTy, External);
    for (Param &P : Params)
      F->addArg(P.Ty, P.Name);
    if (External)
      return true;
    // Skip the body.
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    unsigned Depth = 1;
    while (Depth) {
      if (is(TokenKind::Eof))
        return fail("unexpected end of input in function body");
      if (is(TokenKind::LBrace))
        ++Depth;
      else if (is(TokenKind::RBrace))
        --Depth;
      skip();
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Pass 2: full parse
  //===--------------------------------------------------------------------===//

  bool parseTopLevel() {
    while (!is(TokenKind::Eof) && !FatalStop) {
      if (isIdent("global")) {
        if (!parseGlobal())
          syncToTopLevel();
        continue;
      }
      if (isIdent("extern")) {
        // Signature already registered; skip "extern fn @f(...) [-> T]".
        skip();
        skip(); // fn
        skip(); // @name
        skipUntilMatched(TokenKind::LParen, TokenKind::RParen);
        if (is(TokenKind::Arrow)) {
          skip();
          if (!parseType())
            syncToTopLevel();
        }
        continue;
      }
      if (isIdent("fn")) {
        if (!parseFunctionBody())
          syncToTopLevel();
        continue;
      }
      fail("expected 'global', 'fn' or 'extern' at top level");
      syncToTopLevel();
    }
    return !FatalStop;
  }

  void skipUntilMatched(TokenKind Open, TokenKind Close) {
    if (!is(Open))
      return;
    skip();
    unsigned Depth = 1;
    while (Depth && !is(TokenKind::Eof)) {
      if (is(Open))
        ++Depth;
      else if (is(Close))
        --Depth;
      skip();
    }
  }

  bool parseGlobal() {
    skip(); // 'global'
    if (!is(TokenKind::GlobalName))
      return fail("expected global name");
    std::string Name = take().Text;
    if (!expect(TokenKind::Colon, "':'"))
      return false;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    if (M->getGlobal(Name))
      return fail("duplicate global @" + Name);
    M->createGlobal(Name, Ty);
    return true;
  }

  bool parseFunctionBody() {
    skip(); // 'fn'
    Function *F =
        is(TokenKind::GlobalName) ? M->getFunction(cur().Text) : nullptr;
    if (!F || F->isExternal() || !ParsedBodies.insert(F).second) {
      // The signature pass already diagnosed this definition (malformed
      // header or duplicate name); skip its body without re-reporting.
      while (!is(TokenKind::Eof) && !is(TokenKind::LBrace))
        skip();
      skipUntilMatched(TokenKind::LBrace, TokenKind::RBrace);
      return true;
    }
    skip(); // name
    skipUntilMatched(TokenKind::LParen, TokenKind::RParen);
    if (is(TokenKind::Arrow)) {
      skip();
      if (!parseType())
        return false;
    }
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    Locals.clear();
    for (unsigned I = 0; I != F->numArgs(); ++I)
      Locals[F->arg(I)->name()] = F->arg(I);
    CurFn = F;
    return parseRegionBody(F->body());
  }

  /// Parses instructions until the closing '}' (consumed). A failed
  /// statement does not abandon the region: we synchronize to the next
  /// statement and keep going so every diagnostic gets reported.
  bool parseRegionBody(Region &R) {
    while (!is(TokenKind::RBrace)) {
      if (is(TokenKind::Eof))
        return fail("unexpected end of input in region");
      unsigned StmtLine = cur().Line;
      if (!parseInst(R)) {
        if (FatalStop)
          return false;
        syncToStatement(StmtLine);
      }
    }
    skip(); // '}'
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  Type *parseType() {
    if (!is(TokenKind::Ident)) {
      fail("expected a type");
      return nullptr;
    }
    std::string Name = take().Text;
    TypeContext &TC = M->types();
    if (Name == "void")
      return TC.voidTy();
    if (Name == "bool")
      return TC.boolTy();
    if (Name == "ptr")
      return TC.ptrTy();
    if (Name == "idx")
      return TC.indexTy();
    if ((Name[0] == 'u' || Name[0] == 'i') && Name.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(Name[1]))) {
      unsigned Bits = static_cast<unsigned>(std::atoi(Name.c_str() + 1));
      if (Bits != 8 && Bits != 16 && Bits != 32 && Bits != 64) {
        fail("unsupported integer width in type " + Name);
        return nullptr;
      }
      return TC.intTy(Bits, Name[0] == 'i');
    }
    if (Name == "f32")
      return TC.floatTy(32);
    if (Name == "f64")
      return TC.floatTy(64);
    if (Name == "Seq" || Name == "Set" || Name == "Map" || Name == "Enum") {
      Selection Sel = Selection::Empty;
      if (is(TokenKind::LBrace)) {
        skip();
        if (!is(TokenKind::Ident)) {
          fail("expected selection name");
          return nullptr;
        }
        if (!parseSelection(take().Text, Sel))
          return nullptr;
        if (!expect(TokenKind::RBrace, "'}'"))
          return nullptr;
      }
      if (!expect(TokenKind::Less, "'<'"))
        return nullptr;
      Type *First = parseType();
      if (!First)
        return nullptr;
      Type *Second = nullptr;
      if (Name == "Map") {
        if (!expect(TokenKind::Comma, "','"))
          return nullptr;
        Second = parseType();
        if (!Second)
          return nullptr;
      }
      if (!expect(TokenKind::Greater, "'>'"))
        return nullptr;
      if (Name == "Seq")
        return TC.seqTy(First, Sel);
      if (Name == "Set")
        return TC.setTy(First, Sel);
      if (Name == "Map")
        return TC.mapTy(First, Second, Sel);
      return TC.enumTy(First);
    }
    fail("unknown type '" + Name + "'");
    return nullptr;
  }

  bool parseSelection(const std::string &Name, Selection &Out) {
    static const std::pair<const char *, Selection> Table[] = {
        {"Array", Selection::Array},
        {"HashSet", Selection::HashSet},
        {"FlatSet", Selection::FlatSet},
        {"SwissSet", Selection::SwissSet},
        {"BitSet", Selection::BitSet},
        {"SparseBitSet", Selection::SparseBitSet},
        {"HashMap", Selection::HashMap},
        {"SwissMap", Selection::SwissMap},
        {"BitMap", Selection::BitMap},
    };
    for (auto &[Str, Sel] : Table) {
      if (Name == Str) {
        Out = Sel;
        return true;
      }
    }
    return fail("unknown selection '" + Name + "'");
  }

  //===--------------------------------------------------------------------===//
  // Values
  //===--------------------------------------------------------------------===//

  Value *parseValueRef() {
    if (!is(TokenKind::LocalName)) {
      fail("expected a value reference");
      return nullptr;
    }
    Token T = take();
    auto It = Locals.find(T.Text);
    if (It == Locals.end()) {
      fail("use of undefined value %" + T.Text);
      return nullptr;
    }
    return It->second;
  }

  bool parseValueList(std::vector<Value *> &Out) {
    Value *First = parseValueRef();
    if (!First)
      return false;
    Out.push_back(First);
    while (is(TokenKind::Comma)) {
      skip();
      Value *Next = parseValueRef();
      if (!Next)
        return false;
      Out.push_back(Next);
    }
    return true;
  }

  void bind(const std::string &Name, Value *V) {
    V->setName(Name);
    Locals[Name] = V;
  }

  //===--------------------------------------------------------------------===//
  // Directives (Listing 5)
  //===--------------------------------------------------------------------===//

  bool parseDirective() {
    unsigned PragmaLine = cur().Line;
    skip(); // '#pragma'
    if (!expectIdent("ade"))
      return false;
    Directive D;
    while (is(TokenKind::Ident) && cur().Line == PragmaLine) {
      std::string Word = take().Text;
      if (Word == "enumerate") {
        D.EnumerateMode = Directive::Enumerate::Force;
      } else if (Word == "noenumerate") {
        D.EnumerateMode = Directive::Enumerate::Forbid;
      } else if (Word == "noshare") {
        if (is(TokenKind::LParen)) {
          skip();
          if (!is(TokenKind::LocalName))
            return fail("expected %name in noshare(...)");
          D.NoShareWith.push_back(take().Text);
          if (!expect(TokenKind::RParen, "')'"))
            return false;
        } else {
          D.NoShare = true;
        }
      } else if (Word == "share") {
        if (!expectIdent("group") || !expect(TokenKind::LParen, "'('"))
          return false;
        if (!is(TokenKind::StringLit))
          return fail("expected group name string");
        D.ShareGroup = take().Text;
        if (!expect(TokenKind::RParen, "')'"))
          return false;
      } else if (Word == "select") {
        if (!expect(TokenKind::LParen, "'('"))
          return false;
        if (!is(TokenKind::Ident))
          return fail("expected selection name");
        if (!parseSelection(take().Text, D.Select))
          return false;
        if (!expect(TokenKind::RParen, "')'"))
          return false;
      } else {
        return fail("unknown directive '" + Word + "'");
      }
    }
    Pending = std::move(D);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Instructions
  //===--------------------------------------------------------------------===//

  /// True if the upcoming tokens are "%a (, %b)* =".
  bool startsResultList() const {
    if (!is(TokenKind::LocalName))
      return false;
    size_t Ahead = 1;
    while (true) {
      const Token &T = peek(Ahead);
      if (T.Kind == TokenKind::Equal)
        return true;
      if (T.Kind != TokenKind::Comma)
        return false;
      if (peek(Ahead + 1).Kind != TokenKind::LocalName)
        return false;
      Ahead += 2;
    }
  }

  bool parseInst(Region &R) {
    if (is(TokenKind::Pragma))
      return parseDirective();

    std::vector<std::string> ResultNames;
    if (startsResultList()) {
      ResultNames.push_back(take().Text);
      while (is(TokenKind::Comma)) {
        skip();
        ResultNames.push_back(take().Text);
      }
      skip(); // '='
    }

    if (!is(TokenKind::Ident))
      return fail("expected an operation mnemonic");
    SrcLoc Loc{cur().Line, cur().Col};
    std::string Op = take().Text;

    IRBuilder B(*M, &R);
    B.setCurrentLoc(Loc);

    auto bindSingle = [&](Value *V) -> bool {
      if (ResultNames.size() != 1)
        return fail("operation '" + Op + "' produces exactly one result");
      bind(ResultNames[0], V);
      return true;
    };
    auto noResults = [&]() -> bool {
      if (!ResultNames.empty())
        return fail("operation '" + Op + "' produces no results");
      return true;
    };

    // Simple binary/unary scalar operations.
    static const std::unordered_map<std::string, Opcode> BinOps = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"div", Opcode::Div},
        {"rem", Opcode::Rem},   {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},   {"shr", Opcode::Shr},
        {"min", Opcode::Min},   {"max", Opcode::Max},
        {"eq", Opcode::CmpEq},  {"ne", Opcode::CmpNe},
        {"lt", Opcode::CmpLt},  {"le", Opcode::CmpLe},
        {"gt", Opcode::CmpGt},  {"ge", Opcode::CmpGe},
    };
    if (auto It = BinOps.find(Op); It != BinOps.end()) {
      Value *A = parseValueRef();
      if (!A || !expect(TokenKind::Comma, "','"))
        return false;
      Value *Bv = parseValueRef();
      if (!Bv)
        return false;
      return bindSingle(B.binary(It->second, A, Bv));
    }
    if (Op == "neg" || Op == "not") {
      Value *A = parseValueRef();
      if (!A)
        return false;
      Opcode Code = Op == "neg" ? Opcode::Neg : Opcode::Not;
      return bindSingle(B.create(Code, {A->type()}, {A})->result());
    }
    if (Op == "select") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 3)
        return fail("select requires 3 operands");
      return bindSingle(B.select(Vs[0], Vs[1], Vs[2]));
    }
    if (Op == "cast") {
      Value *A = parseValueRef();
      if (!A || !expect(TokenKind::Colon, "':'"))
        return false;
      Type *Ty = parseType();
      if (!Ty)
        return false;
      return bindSingle(B.create(Opcode::Cast, {Ty}, {A})->result());
    }
    if (Op == "const")
      return parseConst(B, ResultNames);
    if (Op == "new") {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!Ty->isCollection())
        return fail("new requires a collection type");
      std::optional<Directive> Dir;
      std::swap(Dir, Pending);
      Value *V = B.newColl(Ty, "", std::move(Dir));
      return bindSingle(V);
    }
    if (Op == "read") {
      Value *Coll = parseValueRef();
      if (!Coll || !expect(TokenKind::Comma, "','"))
        return false;
      Value *Key = parseValueRef();
      if (!Key)
        return false;
      if (!isa<SeqType>(Coll->type()) && !isa<MapType>(Coll->type()))
        return fail("read requires a Seq or Map");
      return bindSingle(B.read(Coll, Key));
    }
    if (Op == "write") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 3)
        return fail("write requires coll, key, value");
      B.write(Vs[0], Vs[1], Vs[2]);
      return noResults();
    }
    if (Op == "insert" || Op == "remove") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail(Op + " requires coll, key");
      if (Op == "insert")
        B.insert(Vs[0], Vs[1]);
      else
        B.remove(Vs[0], Vs[1]);
      return noResults();
    }
    if (Op == "has") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail("has requires coll, key");
      return bindSingle(B.has(Vs[0], Vs[1]));
    }
    if (Op == "size") {
      Value *Coll = parseValueRef();
      if (!Coll)
        return false;
      return bindSingle(B.size(Coll));
    }
    if (Op == "clear") {
      Value *Coll = parseValueRef();
      if (!Coll)
        return false;
      B.clear(Coll);
      return noResults();
    }
    if (Op == "reserve") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail("reserve requires coll, count");
      B.reserve(Vs[0], Vs[1]);
      return noResults();
    }
    if (Op == "append") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail("append requires seq, value");
      B.append(Vs[0], Vs[1]);
      return noResults();
    }
    if (Op == "pop") {
      Value *Seq = parseValueRef();
      if (!Seq)
        return false;
      if (!isa<SeqType>(Seq->type()))
        return fail("pop requires a Seq");
      return bindSingle(B.pop(Seq));
    }
    if (Op == "union") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail("union requires dst, src");
      B.unionInto(Vs[0], Vs[1]);
      return noResults();
    }
    if (Op == "enc" || Op == "dec" || Op == "enum.add") {
      std::vector<Value *> Vs;
      if (!parseValueList(Vs) || Vs.size() != 2)
        return fail(Op + " requires enum, value");
      if (!isa<EnumType>(Vs[0]->type()))
        return fail(Op + " requires an Enum operand");
      Value *V = Op == "enc"   ? B.enc(Vs[0], Vs[1])
                 : Op == "dec" ? B.dec(Vs[0], Vs[1])
                               : B.enumAdd(Vs[0], Vs[1]);
      return bindSingle(V);
    }
    if (Op == "gget") {
      if (!is(TokenKind::GlobalName))
        return fail("expected global name");
      const GlobalVariable *G = M->getGlobal(take().Text);
      if (!G)
        return fail("unknown global");
      return bindSingle(B.globalGet(G));
    }
    if (Op == "gset") {
      if (!is(TokenKind::GlobalName))
        return fail("expected global name");
      const GlobalVariable *G = M->getGlobal(take().Text);
      if (!G)
        return fail("unknown global");
      if (!expect(TokenKind::Comma, "','"))
        return false;
      Value *V = parseValueRef();
      if (!V)
        return false;
      B.globalSet(G, V);
      return noResults();
    }
    if (Op == "call")
      return parseCall(B, ResultNames);
    if (Op == "ret") {
      if (is(TokenKind::LocalName)) {
        Value *V = parseValueRef();
        if (!V)
          return false;
        B.ret(V);
      } else {
        B.ret();
      }
      return noResults();
    }
    if (Op == "yield") {
      std::vector<Value *> Vs;
      if (is(TokenKind::LocalName) && !parseValueList(Vs))
        return false;
      B.yield(Vs);
      return noResults();
    }
    if (Op == "if")
      return parseIf(B, ResultNames);
    if (Op == "foreach")
      return parseForEach(B, ResultNames);
    if (Op == "forrange")
      return parseForRange(B, ResultNames);
    if (Op == "dowhile")
      return parseDoWhile(B, ResultNames);
    return fail("unknown operation '" + Op + "'");
  }

  bool parseConst(IRBuilder &B, const std::vector<std::string> &Names) {
    if (Names.size() != 1)
      return fail("const produces exactly one result");
    if (isIdent("true") || isIdent("false")) {
      bool V = take().Text == "true";
      bind(Names[0], B.constBool(V));
      return true;
    }
    if (is(TokenKind::IntLit)) {
      Token T = take();
      if (!expect(TokenKind::Colon, "': type' after const"))
        return false;
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (auto *FT = dyn_cast<FloatType>(Ty)) {
        double V = static_cast<double>(T.IntValue);
        if (T.IntIsNegative)
          V = -V;
        Instruction *I = B.create(Opcode::ConstFloat, {FT}, {});
        I->setFpAttr(V);
        bind(Names[0], I->result());
        return true;
      }
      if (!isa<IntType>(Ty) && !isa<PtrType>(Ty))
        return fail("integer constant requires an integer type");
      uint64_t Raw = T.IntValue;
      if (T.IntIsNegative)
        Raw = static_cast<uint64_t>(-static_cast<int64_t>(Raw));
      bind(Names[0], B.constInt(Raw, Ty));
      return true;
    }
    if (is(TokenKind::FloatLit)) {
      Token T = take();
      if (!expect(TokenKind::Colon, "': type' after const"))
        return false;
      Type *Ty = parseType();
      if (!Ty)
        return false;
      if (!isa<FloatType>(Ty))
        return fail("float constant requires a float type");
      Instruction *I = B.create(Opcode::ConstFloat, {Ty}, {});
      I->setFpAttr(T.FloatValue);
      bind(Names[0], I->result());
      return true;
    }
    return fail("expected a literal after const");
  }

  bool parseCall(IRBuilder &B, const std::vector<std::string> &Names) {
    if (!is(TokenKind::GlobalName))
      return fail("expected callee name");
    std::string Callee = take().Text;
    Function *F = M->getFunction(Callee);
    if (!F)
      return fail("unknown function @" + Callee);
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    std::vector<Value *> Args;
    if (!is(TokenKind::RParen)) {
      if (!parseValueList(Args))
        return false;
    }
    if (!expect(TokenKind::RParen, "')'"))
      return false;
    Value *Result = B.call(F, Args);
    if (Result) {
      if (Names.size() != 1)
        return fail("call to non-void function requires one result name");
      bind(Names[0], Result);
      return true;
    }
    if (!Names.empty())
      return fail("call to void function produces no results");
    return true;
  }

  /// Finalizes a structured op: creates one result per (post-skip) yielded
  /// value of \p R and binds \p Names to them.
  bool finalizeStructured(Instruction *I, Region *R,
                          const std::vector<std::string> &Names,
                          unsigned YieldSkip) {
    if (R->empty() ||
        (R->back()->op() != Opcode::Yield && R->back()->op() != Opcode::Ret))
      return fail("structured region must end with yield or ret");
    if (R->back()->op() == Opcode::Ret) {
      // Early-exit region: for ifs, derive results from the other arm;
      // otherwise the construct has no results.
      if (I->op() == Opcode::If && R == I->region(0) &&
          !I->region(1)->empty() &&
          I->region(1)->back()->op() == Opcode::Yield)
        return finalizeStructured(I, I->region(1), Names, YieldSkip);
      if (!Names.empty())
        return fail("a ret-terminated region yields no results");
      return true;
    }
    Instruction *Y = R->back();
    if (Y->numOperands() < YieldSkip)
      return fail("yield is missing the loop condition");
    unsigned NumResults = Y->numOperands() - YieldSkip;
    if (Names.size() != NumResults)
      return fail("expected " + std::to_string(NumResults) +
                  " result names, found " + std::to_string(Names.size()));
    for (unsigned Idx = 0; Idx != NumResults; ++Idx)
      bind(Names[Idx],
           I->addResult(Y->operand(Idx + YieldSkip)->type(), Names[Idx]));
    return true;
  }

  /// Parses "iter(%a = %v, ...)" if present; appends the initial values as
  /// operands and declares matching carried block arguments.
  bool parseIterClause(Instruction *I, Region *R) {
    if (!isIdent("iter"))
      return true;
    skip();
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    while (!is(TokenKind::RParen)) {
      if (!is(TokenKind::LocalName))
        return fail("expected carried value name");
      std::string Name = take().Text;
      if (!expect(TokenKind::Equal, "'='"))
        return false;
      Value *Init = parseValueRef();
      if (!Init)
        return false;
      I->appendOperand(Init);
      BlockArg *Arg = R->addArg(Init->type(), Name);
      bind(Name, Arg);
      if (is(TokenKind::Comma))
        skip();
      else
        break;
    }
    return expect(TokenKind::RParen, "')'");
  }

  bool parseIf(IRBuilder &B, const std::vector<std::string> &Names) {
    Value *Cond = parseValueRef();
    if (!Cond)
      return false;
    Instruction *I = B.create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    if (!parseRegionBody(*I->region(0)))
      return false;
    if (!expectIdent("else") || !expect(TokenKind::LBrace, "'{'"))
      return false;
    if (!parseRegionBody(*I->region(1)))
      return false;
    return finalizeStructured(I, I->region(0), Names, 0);
  }

  /// Parses "-> [%a, %b]" binding \p Count region arguments of the given
  /// types.
  bool parseRegionArgBinders(Region *R, const std::vector<Type *> &Types) {
    if (!expect(TokenKind::Arrow, "'->'") ||
        !expect(TokenKind::LBracket, "'['"))
      return false;
    for (size_t Idx = 0; Idx != Types.size(); ++Idx) {
      if (Idx && !expect(TokenKind::Comma, "','"))
        return false;
      if (!is(TokenKind::LocalName))
        return fail("expected loop binding name");
      std::string Name = take().Text;
      BlockArg *Arg = R->addArg(Types[Idx], Name);
      bind(Name, Arg);
    }
    return expect(TokenKind::RBracket, "']'");
  }

  bool parseForEach(IRBuilder &B, const std::vector<std::string> &Names) {
    Value *Coll = parseValueRef();
    if (!Coll)
      return false;
    std::vector<Type *> BinderTys;
    Type *CollTy = Coll->type();
    if (auto *Seq = dyn_cast<SeqType>(CollTy))
      BinderTys = {M->types().intTy(64, false), Seq->element()};
    else if (auto *Mp = dyn_cast<MapType>(CollTy))
      BinderTys = {Mp->key(), Mp->value()};
    else if (auto *St = dyn_cast<SetType>(CollTy))
      BinderTys = {St->key()};
    else
      return fail("foreach requires a collection");
    Instruction *I = B.create(Opcode::ForEach, {}, {Coll}, /*NumRegions=*/1);
    if (!parseRegionArgBinders(I->region(0), BinderTys))
      return false;
    if (!parseIterClause(I, I->region(0)))
      return false;
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    if (!parseRegionBody(*I->region(0)))
      return false;
    return finalizeStructured(I, I->region(0), Names, 0);
  }

  bool parseForRange(IRBuilder &B, const std::vector<std::string> &Names) {
    Value *Lo = parseValueRef();
    if (!Lo || !expect(TokenKind::Comma, "','"))
      return false;
    Value *Hi = parseValueRef();
    if (!Hi)
      return false;
    Instruction *I =
        B.create(Opcode::ForRange, {}, {Lo, Hi}, /*NumRegions=*/1);
    if (!parseRegionArgBinders(I->region(0), {Lo->type()}))
      return false;
    if (!parseIterClause(I, I->region(0)))
      return false;
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    if (!parseRegionBody(*I->region(0)))
      return false;
    return finalizeStructured(I, I->region(0), Names, 0);
  }

  bool parseDoWhile(IRBuilder &B, const std::vector<std::string> &Names) {
    Instruction *I = B.create(Opcode::DoWhile, {}, {}, /*NumRegions=*/1);
    if (!parseIterClause(I, I->region(0)))
      return false;
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    if (!parseRegionBody(*I->region(0)))
      return false;
    return finalizeStructured(I, I->region(0), Names, /*YieldSkip=*/1);
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Module *M = nullptr;
  Function *CurFn = nullptr;
  std::vector<std::string> &Errors;
  std::unordered_map<std::string, Value *> Locals;
  std::optional<Directive> Pending;
  /// Diagnostic cap: after this many errors a "too many errors" note is
  /// appended and both passes stop instead of drowning the user.
  static constexpr size_t MaxErrors = 20;
  /// Set by fail() once MaxErrors is reached; checked by the recovery
  /// loops to abandon the parse.
  bool FatalStop = false;
  /// Functions whose bodies pass 2 has already consumed; a duplicate
  /// definition (diagnosed in pass 1) is skipped, not parsed twice.
  std::unordered_set<const Function *> ParsedBodies;
};

} // namespace

std::unique_ptr<Module>
ade::parser::parseModule(std::string_view Source,
                         std::vector<std::string> &Errors) {
  ParserImpl P(Source, Errors);
  return P.run();
}

std::unique_ptr<Module> ade::parser::parseModuleOrDie(std::string_view Source) {
  std::vector<std::string> Errors;
  auto M = parseModule(Source, Errors);
  if (!M) {
    std::fprintf(stderr, "parse failed:\n");
    for (const std::string &E : Errors)
      std::fprintf(stderr, "  %s\n", E.c_str());
    reportFatalError("could not parse module");
  }
  verifyOrDie(*M);
  return M;
}
