//===- Json.h - Streaming JSON writer and small reader ----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable JSON layer shared by the diagnostics engine, the statistics
/// registry, the interpreter profiler and the trace exporter.
///
/// \c json::Writer is a streaming emitter over \c RawOstream that handles
/// commas, indentation and string escaping. Containers opened with
/// \c Inline=true render on a single line ("{\"k\": 1, \"v\": 2}"), which is
/// the compact style the diagnostics JSON always used; non-inline containers
/// render pretty-printed with two-space indentation.
///
/// \c json::parse is a small recursive-descent reader used by tests (and by
/// anything that needs to round-trip the files we emit); it builds a
/// \c json::Value tree and reports the first syntax error.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_JSON_H
#define ADE_SUPPORT_JSON_H

#include "support/RawOstream.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ade {
namespace json {

/// Appends \p S to \p OS with JSON string escaping, without quotes.
void escape(RawOstream &OS, std::string_view S);

/// Appends \p S to \p OS as a quoted, escaped JSON string literal.
void quote(RawOstream &OS, std::string_view S);

/// Streaming JSON emitter. Usage:
/// \code
///   json::Writer W(OS);
///   W.beginObject();
///   W.key("count").value(uint64_t(3));
///   W.key("sites").beginArray();
///   W.beginObject(/*Inline=*/true).key("line").value(uint64_t(9)).endObject();
///   W.endArray();
///   W.endObject();
/// \endcode
class Writer {
public:
  explicit Writer(RawOstream &OS) : OS(OS) {}

  Writer &beginObject(bool Inline = false) { return open('{', Inline); }
  Writer &endObject() { return close('}'); }
  Writer &beginArray(bool Inline = false) { return open('[', Inline); }
  Writer &endArray() { return close(']'); }

  /// Emits a member key; must be followed by exactly one value or container.
  Writer &key(std::string_view K);

  Writer &value(std::string_view V);
  Writer &value(const char *V) { return value(std::string_view(V)); }
  Writer &value(const std::string &V) { return value(std::string_view(V)); }
  Writer &value(uint64_t V);
  Writer &value(int64_t V);
  Writer &value(unsigned V) { return value(uint64_t(V)); }
  Writer &value(int V) { return value(int64_t(V)); }
  Writer &value(double V);
  Writer &value(bool V);
  Writer &null();

  template <typename T> Writer &member(std::string_view K, T &&V) {
    return key(K).value(std::forward<T>(V));
  }

  /// Depth of currently open containers (0 when the document is complete).
  unsigned depth() const { return unsigned(Stack.size()); }

private:
  Writer &open(char Bracket, bool Inline);
  Writer &close(char Bracket);
  /// Emits the comma/newline/indent owed before the next key or value.
  void separate();

  struct Level {
    bool Inline;
    bool First = true;
  };

  RawOstream &OS;
  std::vector<Level> Stack;
  /// True immediately after key(): the next value continues the member.
  bool AfterKey = false;
};

/// A parsed JSON document node.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Bool; }
  double asNumber() const {
    return Rep == NumRep::Unsigned ? double(UNum) : Num;
  }
  /// Exact for integer-literal numbers anywhere in the uint64 range
  /// (profiler counters exceed 2^53 on long runs, where a double
  /// round-trip would silently corrupt them).
  uint64_t asUint() const {
    if (Rep == NumRep::Unsigned)
      return UNum;
    return Num < 0 ? 0 : uint64_t(Num);
  }
  int64_t asInt() const {
    if (Rep == NumRep::Unsigned)
      return UNum > uint64_t(INT64_MAX) ? INT64_MAX : int64_t(UNum);
    return int64_t(Num);
  }
  /// True when the number was an integer literal held exactly.
  bool isExactUint() const { return Rep == NumRep::Unsigned; }
  const std::string &asString() const { return Str; }

  const std::vector<Value> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Looks up an object member; returns null if absent or not an object.
  const Value *find(std::string_view Key) const;

  /// Array element access; asserts in-range.
  const Value &operator[](size_t Idx) const { return Elems[Idx]; }
  size_t size() const { return isObject() ? Members.size() : Elems.size(); }

  static Value makeNull() { return Value(Kind::Null); }
  static Value makeBool(bool B) {
    Value V(Kind::Bool);
    V.Bool = B;
    return V;
  }
  static Value makeNumber(double N) {
    Value V(Kind::Number);
    V.Num = N;
    return V;
  }
  static Value makeUnsigned(uint64_t N) {
    Value V(Kind::Number);
    V.Rep = NumRep::Unsigned;
    V.UNum = N;
    V.Num = double(N);
    return V;
  }
  static Value makeString(std::string S) {
    Value V(Kind::String);
    V.Str = std::move(S);
    return V;
  }
  static Value makeArray() { return Value(Kind::Array); }
  static Value makeObject() { return Value(Kind::Object); }

  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;

private:
  enum class NumRep { Double, Unsigned };

  explicit Value(Kind K) : K(K) {}

  Kind K = Kind::Null;
  bool Bool = false;
  /// Double view of the number (approximate when Rep is Unsigned and the
  /// payload exceeds 2^53).
  double Num = 0;
  /// Exact payload when the literal was a non-negative integer.
  uint64_t UNum = 0;
  NumRep Rep = NumRep::Double;
  std::string Str;
};

/// Parses \p Text as a single JSON document. On failure returns nullptr and,
/// if \p Error is non-null, stores a message with byte offset.
std::unique_ptr<Value> parse(std::string_view Text,
                             std::string *Error = nullptr);

} // namespace json
} // namespace ade

#endif // ADE_SUPPORT_JSON_H
