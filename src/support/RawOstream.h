//===- RawOstream.h - Lightweight output streams ----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal analog of LLVM's \c raw_ostream: a non-template stream class
/// that writes to a \c FILE* or an owned \c std::string. Library code uses
/// this instead of \c <iostream> (which injects static constructors).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_RAWOSTREAM_H
#define ADE_SUPPORT_RAWOSTREAM_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ade {

/// Abstract byte-oriented output stream.
class RawOstream {
public:
  virtual ~RawOstream();

  RawOstream &operator<<(char C) {
    writeBytes(&C, 1);
    return *this;
  }
  RawOstream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }
  RawOstream &operator<<(std::string_view Str) {
    writeBytes(Str.data(), Str.size());
    return *this;
  }
  RawOstream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }
  RawOstream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  RawOstream &operator<<(uint64_t N);
  RawOstream &operator<<(int64_t N);
  RawOstream &operator<<(uint32_t N) { return *this << uint64_t(N); }
  RawOstream &operator<<(int32_t N) { return *this << int64_t(N); }
  RawOstream &operator<<(double D);
  RawOstream &operator<<(const void *P);

  /// Appends \p N formatted with \p Width right-justified columns.
  RawOstream &padded(uint64_t N, unsigned Width);

  /// Indents by \p N spaces.
  RawOstream &indent(unsigned N);

  virtual void flush() {}

protected:
  virtual void writeBytes(const char *Data, size_t Size) = 0;
};

/// Stream that appends to an external std::string.
class RawStringOstream : public RawOstream {
public:
  explicit RawStringOstream(std::string &Buffer) : Buffer(Buffer) {}

  /// The accumulated contents.
  std::string_view str() const { return Buffer; }

private:
  void writeBytes(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

  std::string &Buffer;
};

/// Stream that writes to a C \c FILE*, unowned.
class RawFileOstream : public RawOstream {
public:
  explicit RawFileOstream(std::FILE *File) : File(File) {}

  void flush() override { std::fflush(File); }

private:
  void writeBytes(const char *Data, size_t Size) override {
    std::fwrite(Data, 1, Size, File);
  }

  std::FILE *File;
};

/// Returns a stream connected to stdout.
RawOstream &outs();

/// Returns a stream connected to stderr.
RawOstream &errs();

} // namespace ade

#endif // ADE_SUPPORT_RAWOSTREAM_H
