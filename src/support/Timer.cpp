//===- Timer.cpp - Wall-clock timers and timer groups ---------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include "support/Json.h"
#include "support/RawOstream.h"

#include <cassert>
#include <chrono>
#include <cstdio>

using namespace ade;

double ade::steadySeconds() {
  auto Now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(Now).count();
}

void Timer::start() {
  assert(!Running && "timer already running");
  Running = true;
  StartedAt = steadySeconds();
}

void Timer::stop() {
  assert(Running && "timer not running");
  Accumulated += steadySeconds() - StartedAt;
  Running = false;
  ++Runs;
}

double Timer::seconds() const {
  double S = Accumulated;
  if (Running)
    S += steadySeconds() - StartedAt;
  return S;
}

size_t TimerGroup::phaseIndex(std::string_view Name) {
  for (size_t I = 0; I < Phases.size(); ++I)
    if (Phases[I].Name == Name)
      return I;
  Phases.push_back(Phase{std::string(Name), 0, 0});
  return Phases.size() - 1;
}

void TimerGroup::charge(size_t Index, double Seconds) {
  assert(Index < Phases.size());
  Phases[Index].Seconds += Seconds;
  ++Phases[Index].Runs;
}

double TimerGroup::totalSeconds() const {
  double Total = 0;
  for (const Phase &P : Phases)
    Total += P.Seconds;
  return Total;
}

void TimerGroup::printReport(RawOstream &OS, std::string_view Title) const {
  size_t NameWidth = 5; // "total"
  for (const Phase &P : Phases)
    NameWidth = std::max(NameWidth, P.Name.size());
  double Total = totalSeconds();
  OS << "===-- " << Title << " --===\n";
  for (const Phase &P : Phases) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%10.6f  %5.1f%%", P.Seconds,
                  Total > 0 ? 100.0 * P.Seconds / Total : 0.0);
    OS << "  " << P.Name;
    OS.indent(unsigned(NameWidth - P.Name.size()));
    OS << Buf << '\n';
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%10.6f  100.0%%", Total);
  OS << "  total";
  OS.indent(unsigned(NameWidth - 5));
  OS << Buf << '\n';
}

void TimerGroup::writeJson(json::Writer &W) const {
  W.beginObject();
  for (const Phase &P : Phases)
    W.key(P.Name).value(P.Seconds);
  W.endObject();
}
