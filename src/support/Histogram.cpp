//===- Histogram.cpp - Log-linear u64 histograms --------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include "support/ErrorHandling.h"
#include "support/Json.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace ade;

Histogram::Histogram(unsigned SubBucketBits)
    : Bits(std::clamp(SubBucketBits, 1u, 16u)) {}

size_t Histogram::bucketIndex(uint64_t V) const {
  // Values below 2^b get exact unit buckets; above that, the top b bits
  // after the leading one select a sub-bucket of [2^e, 2^(e+1)).
  const uint64_t B = 1ull << Bits;
  if (V < B)
    return size_t(V);
  unsigned Exp = 63 - unsigned(std::countl_zero(V));
  return size_t(B + uint64_t(Exp - Bits) * B + ((V >> (Exp - Bits)) - B));
}

uint64_t Histogram::bucketLo(size_t Index) const {
  const uint64_t B = 1ull << Bits;
  if (Index < B)
    return Index;
  uint64_t Off = Index - B;
  unsigned Exp = Bits + unsigned(Off / B);
  uint64_t Sub = Off % B;
  return (B + Sub) << (Exp - Bits);
}

uint64_t Histogram::bucketHi(size_t Index) const {
  const uint64_t B = 1ull << Bits;
  if (Index < B)
    return Index;
  uint64_t Off = Index - B;
  unsigned Exp = Bits + unsigned(Off / B);
  uint64_t Sub = Off % B;
  uint64_t Width = 1ull << (Exp - Bits);
  return ((B + Sub) << (Exp - Bits)) + (Width - 1);
}

uint64_t Histogram::bucketMid(size_t Index) const {
  uint64_t Lo = bucketLo(Index), Hi = bucketHi(Index);
  return Lo + (Hi - Lo) / 2;
}

void Histogram::record(uint64_t V, uint64_t N) {
  if (N == 0)
    return;
  size_t Index = bucketIndex(V);
  if (Index >= Buckets.size())
    Buckets.resize(Index + 1, 0);
  Buckets[Index] += N;
  Count += N;
  Sum += V * N;
  MinV = std::min(MinV, V);
  MaxV = std::max(MaxV, V);
}

uint64_t Histogram::quantile(double Q) const {
  if (Count == 0)
    return 0;
  // Clamp without std::clamp: NaN comparisons are unordered, so
  // std::clamp(NaN, ...) — and the uint64_t(ceil(NaN)) that would follow
  // — is undefined. A NaN quantile degrades to Q = 0 (the minimum).
  if (!(Q > 0.0))
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Rank of the requested order statistic, 1-based.
  uint64_t Rank = uint64_t(std::ceil(Q * double(Count)));
  if (Rank == 0)
    Rank = 1;
  // Deserialized histograms may lack the exact extrema (fromJson degrades
  // them to bucket bounds), so defend the Lo <= Hi precondition of the
  // final clamp rather than inherit UB from malformed input.
  uint64_t Lo = std::min(MinV, MaxV), Hi = std::max(MinV, MaxV);
  uint64_t Seen = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return std::clamp(bucketMid(I), Lo, Hi);
  }
  return Hi;
}

void Histogram::merge(const Histogram &Other) {
  if (Bits != Other.Bits)
    reportFatalError("Histogram::merge: sub-bucket widths differ");
  if (Other.Count == 0)
    return;
  if (Other.Buckets.size() > Buckets.size())
    Buckets.resize(Other.Buckets.size(), 0);
  for (size_t I = 0; I < Other.Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  MinV = std::min(MinV, Other.MinV);
  MaxV = std::max(MaxV, Other.MaxV);
}

void Histogram::clear() {
  Count = 0;
  Sum = 0;
  MinV = UINT64_MAX;
  MaxV = 0;
  Buckets.clear();
}

bool Histogram::operator==(const Histogram &Other) const {
  if (Bits != Other.Bits || Count != Other.Count || Sum != Other.Sum ||
      min() != Other.min() || MaxV != Other.MaxV)
    return false;
  // Trailing zero buckets are not significant.
  size_t N = std::max(Buckets.size(), Other.Buckets.size());
  for (size_t I = 0; I < N; ++I) {
    uint64_t A = I < Buckets.size() ? Buckets[I] : 0;
    uint64_t B = I < Other.Buckets.size() ? Other.Buckets[I] : 0;
    if (A != B)
      return false;
  }
  return true;
}

std::vector<std::pair<size_t, uint64_t>> Histogram::nonEmptyBuckets() const {
  std::vector<std::pair<size_t, uint64_t>> Out;
  for (size_t I = 0; I < Buckets.size(); ++I)
    if (Buckets[I])
      Out.emplace_back(I, Buckets[I]);
  return Out;
}

void Histogram::writeJson(json::Writer &W) const {
  W.beginObject(/*Inline=*/true);
  W.member("b", Bits);
  W.member("count", Count);
  W.member("sum", Sum);
  W.member("min", min());
  W.member("max", MaxV);
  W.key("buckets").beginArray(/*Inline=*/true);
  for (const auto &[Index, N] : nonEmptyBuckets()) {
    W.beginArray(/*Inline=*/true);
    W.value(uint64_t(Index)).value(N);
    W.endArray();
  }
  W.endArray();
  W.endObject();
}

bool Histogram::fromJson(const json::Value &V, Histogram &Out,
                         std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (!V.isObject())
    return Fail("histogram: expected an object");
  const json::Value *B = V.find("b");
  if (!B || !B->isNumber())
    return Fail("histogram: missing 'b'");
  Histogram H(unsigned(B->asUint()));
  const json::Value *Buckets = V.find("buckets");
  if (!Buckets || !Buckets->isArray())
    return Fail("histogram: missing 'buckets'");
  for (const json::Value &Pair : Buckets->elements()) {
    if (!Pair.isArray() || Pair.size() != 2 || !Pair[0].isNumber() ||
        !Pair[1].isNumber())
      return Fail("histogram: malformed bucket entry");
    size_t Index = size_t(Pair[0].asUint());
    uint64_t N = Pair[1].asUint();
    if (Index >= H.Buckets.size())
      H.Buckets.resize(Index + 1, 0);
    H.Buckets[Index] += N;
    H.Count += N;
  }
  // Count/sum/min/max are carried explicitly: bucket midpoints cannot
  // reconstruct the exact sum or extrema.
  if (const json::Value *C = V.find("count")) {
    if (C->asUint() != H.Count)
      return Fail("histogram: 'count' disagrees with bucket totals");
  }
  if (const json::Value *S = V.find("sum"))
    H.Sum = S->asUint();
  const json::Value *MinKey = V.find("min");
  const json::Value *MaxKey = V.find("max");
  if (MinKey)
    H.MinV = H.Count ? MinKey->asUint() : UINT64_MAX;
  if (MaxKey)
    H.MaxV = MaxKey->asUint();
  // Documents missing "min"/"max" would otherwise leave a non-empty
  // histogram with the empty-state sentinels MinV = UINT64_MAX > MaxV =
  // 0, poisoning every quantile clamp. Degrade absent extrema to the
  // outermost bucket bounds (the tightest values the buckets support).
  if (H.Count && (!MinKey || !MaxKey)) {
    size_t FirstIdx = 0, LastIdx = 0;
    bool SawAny = false;
    for (size_t I = 0; I < H.Buckets.size(); ++I)
      if (H.Buckets[I]) {
        LastIdx = I;
        if (!SawAny)
          FirstIdx = I;
        SawAny = true;
      }
    if (!MinKey)
      H.MinV = H.bucketLo(FirstIdx);
    if (!MaxKey)
      H.MaxV = H.bucketHi(LastIdx);
  }
  Out = std::move(H);
  return true;
}
