//===- CrashHandler.h - Signal handlers and crash context -------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style crash containment: \c installCrashHandlers registers signal
/// handlers that, on SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT, print the stack
/// of \c CrashContext frames pushed by long-running phases (pipeline
/// passes, the interpreter's active call chain, a fuzzer's current seed)
/// before the process dies. A crash report then says *where* the process
/// was — "interpreting @main" inside "fuzz seed 1234" — instead of nothing.
///
/// Frames copy their detail text at construction into fixed storage, so
/// the signal handler only ever calls async-signal-safe \c write().
///
/// Multi-thread behavior (the serving runtime runs many workers): frame
/// stacks are thread-local, the report names the faulting kernel thread
/// id, and a reentrancy guard serializes concurrent faults — the first
/// faulting thread reports and re-raises while later ones park, and a
/// fault *inside* the handler skips the report and dies immediately
/// instead of recursing. The handler still only uses async-signal-safe
/// calls (write, nanosleep, signal, raise).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_CRASHHANDLER_H
#define ADE_SUPPORT_CRASHHANDLER_H

#include <string>

namespace ade {

/// Registers the crash signal handlers (idempotent). After printing the
/// context stack the handler restores the default disposition and
/// re-raises, so exit codes and core dumps behave as without handlers.
void installCrashHandlers();

/// Prints the current thread's context stack, most recent frame first, to
/// file descriptor \p Fd using only async-signal-safe calls. Exposed for
/// the handler and for tests.
void printCrashContextStack(int Fd);

/// Number of frames currently on this thread's context stack (tests).
unsigned crashContextDepth();

/// Registers a best-effort crash-dump hook, run at most once from the
/// crash signal handler after the context stack is printed and before
/// the process re-raises. Intended for last-gasp diagnostics like the
/// serving runtime's flight-recorder dump. The hook runs in signal
/// context and is *not* held to async-signal-safety (it typically
/// formats JSON and writes a file); the handler's reentrancy guard
/// ensures a fault inside the hook kills the process instead of
/// recursing, so the worst case is a truncated dump. Pass null to
/// clear. \p Arg is forwarded to the hook verbatim.
void setCrashDumpHook(void (*Hook)(void *Arg), void *Arg);

/// One pretty-stack-trace frame, active for the lifetime of the object:
///
///   CrashContext CC("interpreting", "@" + F->name());
///
/// \p Phase must be a string literal (stored by pointer); \p Detail is
/// copied into the frame (truncated to an internal bound).
class CrashContext {
public:
  explicit CrashContext(const char *Phase, const std::string &Detail = {});
  CrashContext(const CrashContext &) = delete;
  CrashContext &operator=(const CrashContext &) = delete;
  ~CrashContext();
};

} // namespace ade

#endif // ADE_SUPPORT_CRASHHANDLER_H
