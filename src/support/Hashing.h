//===- Hashing.h - Hash functions shared across the project ----*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer mixing and combining hash functions. All hash-based collection
/// implementations in \c src/collections route 64-bit keys through
/// \c hashU64 so that hash quality is uniform across implementations and
/// benchmark comparisons measure table organization, not hash choice.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_HASHING_H
#define ADE_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ade {

/// Finalizer from splitmix64: a fast, well-distributed 64-bit mixer.
inline uint64_t hashU64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an existing seed with another hash value (boost-style).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (hashU64(Value) + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                 (Seed >> 2));
}

/// FNV-1a over bytes, for string keys.
inline uint64_t hashBytes(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace ade

#endif // ADE_SUPPORT_HASHING_H
