//===- Trace.cpp - Chrome trace-event recorder ----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Timer.h"

using namespace ade;

static TraceRecorder *ActiveRecorder = nullptr;

TraceRecorder *TraceRecorder::active() { return ActiveRecorder; }
void TraceRecorder::setActive(TraceRecorder *Recorder) {
  ActiveRecorder = Recorder;
}

TraceRecorder::TraceRecorder() : EpochSeconds(steadySeconds()) {}

uint64_t TraceRecorder::nowMicros() const {
  double Elapsed = steadySeconds() - EpochSeconds;
  return Elapsed <= 0 ? 0 : uint64_t(Elapsed * 1e6);
}

void TraceRecorder::addComplete(std::string_view Name, const char *Category,
                                uint64_t StartMicros, uint64_t DurMicros) {
  Events.push_back(Event{Event::Kind::Complete, std::string(Name), Category,
                         StartMicros, DurMicros,
                         {}});
}

void TraceRecorder::addCounter(
    std::string_view Name, const char *Category, uint64_t TsMicros,
    std::vector<std::pair<std::string, uint64_t>> Series) {
  Events.push_back(Event{Event::Kind::Counter, std::string(Name), Category,
                         TsMicros, 0, std::move(Series)});
}

void TraceRecorder::write(RawOstream &OS) const {
  json::Writer W(OS);
  W.beginObject();
  W.key("traceEvents").beginArray();
  for (const Event &E : Events) {
    W.beginObject(/*Inline=*/true);
    W.member("name", E.Name)
        .member("cat", E.Category)
        .member("ph", E.K == Event::Kind::Counter ? "C" : "X")
        .member("ts", E.StartMicros);
    if (E.K == Event::Kind::Complete)
      W.member("dur", E.DurMicros);
    W.member("pid", uint64_t(1)).member("tid", uint64_t(1));
    if (E.K == Event::Kind::Counter) {
      W.key("args").beginObject(/*Inline=*/true);
      for (const auto &[Key, Val] : E.Series)
        W.member(Key, Val);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.key("displayTimeUnit").value("ms");
  W.endObject();
  OS << '\n';
}
