//===- ErrorHandling.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an \c ade_unreachable marker analogous to
/// LLVM's \c report_fatal_error / \c llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_ERRORHANDLING_H
#define ADE_SUPPORT_ERRORHANDLING_H

namespace ade {

/// Prints \p Msg (plus any live CrashContext frames) to stderr and exits
/// with status 2 — the tools' "internal error" exit code. Used for
/// unrecoverable conditions: broken invariants, or malformed input fed to
/// an entry point that documents it must be pre-validated.
[[noreturn]] void reportFatalError(const char *Msg);

/// Implementation hook for \c ade_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace ade

/// Marks a point in code that should never be reached. In all builds this
/// prints the message with source location and aborts; reaching it is
/// unconditionally a bug.
#define ade_unreachable(Msg)                                                   \
  ::ade::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // ADE_SUPPORT_ERRORHANDLING_H
