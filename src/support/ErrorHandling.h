//===- ErrorHandling.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an \c ade_unreachable marker analogous to
/// LLVM's \c report_fatal_error / \c llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_ERRORHANDLING_H
#define ADE_SUPPORT_ERRORHANDLING_H

namespace ade {

/// Prints \p Msg to stderr and aborts. Used for unrecoverable conditions
/// that can be triggered by user input (e.g. a malformed .memoir file fed
/// to a tool that did not check parser diagnostics).
[[noreturn]] void reportFatalError(const char *Msg);

/// Implementation hook for \c ade_unreachable.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace ade

/// Marks a point in code that should never be reached. In all builds this
/// prints the message with source location and aborts; reaching it is
/// unconditionally a bug.
#define ade_unreachable(Msg)                                                   \
  ::ade::unreachableInternal(Msg, __FILE__, __LINE__)

#endif // ADE_SUPPORT_ERRORHANDLING_H
