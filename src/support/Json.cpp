//===- Json.cpp - Streaming JSON writer and small reader ------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ade;
using namespace ade::json;

void json::escape(RawOstream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
      } else {
        OS << C;
      }
    }
  }
}

void json::quote(RawOstream &OS, std::string_view S) {
  OS << '"';
  escape(OS, S);
  OS << '"';
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void Writer::separate() {
  if (Stack.empty())
    return;
  Level &L = Stack.back();
  if (L.First) {
    L.First = false;
    if (!L.Inline)
      (OS << '\n').indent(2 * unsigned(Stack.size()));
  } else if (L.Inline) {
    OS << ", ";
  } else {
    (OS << ",\n").indent(2 * unsigned(Stack.size()));
  }
}

Writer &Writer::open(char Bracket, bool Inline) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  bool Effective = Inline || (!Stack.empty() && Stack.back().Inline);
  OS << Bracket;
  Stack.push_back(Level{Effective});
  return *this;
}

Writer &Writer::close(char Bracket) {
  assert(!Stack.empty() && !AfterKey && "unbalanced close");
  Level L = Stack.back();
  Stack.pop_back();
  if (!L.Inline && !L.First)
    (OS << '\n').indent(2 * unsigned(Stack.size()));
  OS << Bracket;
  return *this;
}

Writer &Writer::key(std::string_view K) {
  assert(!AfterKey && "key() immediately after key()");
  separate();
  json::quote(OS, K);
  OS << ": ";
  AfterKey = true;
  return *this;
}

Writer &Writer::value(std::string_view V) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  json::quote(OS, V);
  return *this;
}

Writer &Writer::value(uint64_t V) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  OS << V;
  return *this;
}

Writer &Writer::value(int64_t V) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  OS << V;
  return *this;
}

Writer &Writer::value(double V) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  // JSON has no literal for non-finite numbers.
  if (!std::isfinite(V))
    V = 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  OS << Buf;
  return *this;
}

Writer &Writer::value(bool V) {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  OS << (V ? "true" : "false");
  return *this;
}

Writer &Writer::null() {
  if (AfterKey)
    AfterKey = false;
  else
    separate();
  OS << "null";
  return *this;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

const Value *Value::find(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::unique_ptr<Value> run() {
    skipSpace();
    Value V = Value::makeNull();
    if (!parseValue(V))
      return nullptr;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing characters after document");
      return nullptr;
    }
    return std::make_unique<Value>(std::move(V));
  }

private:
  bool fail(const char *Msg) {
    if (Error && Error->empty())
      *Error = std::string(Msg) + " at offset " + std::to_string(Pos);
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipSpace() {
    while (!atEnd() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                        peek() == '\r'))
      ++Pos;
  }

  bool expect(char C, const char *Msg) {
    if (atEnd() || peek() != C)
      return fail(Msg);
    ++Pos;
    return true;
  }

  bool parseValue(Value &Out) {
    if (atEnd())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::makeString(std::move(S));
      return true;
    }
    case 't':
      if (Text.substr(Pos, 4) != "true")
        return fail("invalid literal");
      Pos += 4;
      Out = Value::makeBool(true);
      return true;
    case 'f':
      if (Text.substr(Pos, 5) != "false")
        return fail("invalid literal");
      Pos += 5;
      Out = Value::makeBool(false);
      return true;
    case 'n':
      if (Text.substr(Pos, 4) != "null")
        return fail("invalid literal");
      Pos += 4;
      Out = Value::makeNull();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Out = Value::makeObject();
    skipSpace();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (!expect(':', "expected ':' in object"))
        return false;
      skipSpace();
      Value V = Value::makeNull();
      if (!parseValue(V))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipSpace();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      return expect('}', "expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Out = Value::makeArray();
    skipSpace();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      Value V = Value::makeNull();
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipSpace();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      return expect(']', "expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (atEnd() || peek() != '"')
      return fail("expected string");
    ++Pos;
    while (!atEnd()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (atEnd())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // Encode the BMP codepoint as UTF-8 (surrogate pairs unsupported).
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    while (!atEnd() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' || peek() == '+' ||
                        peek() == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    std::string Buf(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    // Non-negative integer literals stay exact through uint64: profiler
    // counters above 2^53 must not be rounded by a double round-trip, and
    // out-of-range integers fail loudly instead of saturating.
    if (Buf.find_first_of(".eE-") == std::string::npos) {
      errno = 0;
      unsigned long long U = std::strtoull(Buf.c_str(), &End, 10);
      if (End != Buf.c_str() + Buf.size())
        return fail("invalid number");
      if (errno == ERANGE)
        return fail("integer overflows uint64");
      Out = Value::makeUnsigned(U);
      return true;
    }
    double D = std::strtod(Buf.c_str(), &End);
    if (End != Buf.c_str() + Buf.size())
      return fail("invalid number");
    Out = Value::makeNumber(D);
    return true;
  }

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::unique_ptr<Value> json::parse(std::string_view Text, std::string *Error) {
  return Parser(Text, Error).run();
}
