//===- RawOstream.cpp -----------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RawOstream.h"

#include <cinttypes>

using namespace ade;

RawOstream::~RawOstream() = default;

RawOstream &RawOstream::operator<<(uint64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  writeBytes(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::operator<<(int64_t N) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  writeBytes(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::operator<<(double D) {
  char Buf[40];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  writeBytes(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::operator<<(const void *P) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%p", P);
  writeBytes(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::padded(uint64_t N, unsigned Width) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%*" PRIu64,
                          static_cast<int>(Width), N);
  writeBytes(Buf, static_cast<size_t>(Len));
  return *this;
}

RawOstream &RawOstream::indent(unsigned N) {
  for (unsigned I = 0; I != N; ++I)
    writeBytes(" ", 1);
  return *this;
}

RawOstream &ade::outs() {
  static RawFileOstream Stream(stdout);
  return Stream;
}

RawOstream &ade::errs() {
  static RawFileOstream Stream(stderr);
  return Stream;
}
