//===- Remark.cpp - Optimization remarks ----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

#include "support/Json.h"
#include "support/RawOstream.h"

#include <regex>

using namespace ade;
using namespace ade::remarks;

const char *ade::remarks::kindName(Kind K) {
  switch (K) {
  case Kind::Passed:
    return "passed";
  case Kind::Missed:
    return "missed";
  case Kind::Analysis:
    return "analysis";
  }
  return "analysis";
}

bool ade::remarks::kindFromName(std::string_view Name, Kind &Out) {
  if (Name == "passed")
    Out = Kind::Passed;
  else if (Name == "missed")
    Out = Kind::Missed;
  else if (Name == "analysis")
    Out = Kind::Analysis;
  else
    return false;
  return true;
}

Arg Arg::str(std::string Key, std::string Value) {
  Arg A;
  A.Key = std::move(Key);
  A.Ty = Type::String;
  A.Str = std::move(Value);
  return A;
}

Arg Arg::uint(std::string Key, uint64_t Value) {
  Arg A;
  A.Key = std::move(Key);
  A.Ty = Type::UInt;
  A.UInt = Value;
  return A;
}

Arg Arg::sint(std::string Key, int64_t Value) {
  Arg A;
  A.Key = std::move(Key);
  A.Ty = Type::Int;
  A.Int = Value;
  return A;
}

Arg Arg::boolean(std::string Key, bool Value) {
  Arg A;
  A.Key = std::move(Key);
  A.Ty = Type::Bool;
  A.Flag = Value;
  return A;
}

std::string Arg::valueText() const {
  switch (Ty) {
  case Type::String:
    return Str;
  case Type::UInt:
    return std::to_string(UInt);
  case Type::Int:
    return std::to_string(Int);
  case Type::Bool:
    return Flag ? "true" : "false";
  }
  return Str;
}

const Arg *Remark::arg(std::string_view Key) const {
  for (const Arg &A : Args)
    if (A.Key == Key)
      return &A;
  return nullptr;
}

std::string Remark::message() const {
  std::string Out = Pass + ":" + Name;
  for (const Arg &A : Args) {
    Out += ' ';
    Out += A.Key;
    Out += '=';
    if (A.Ty == Arg::Type::String) {
      Out += '\'';
      Out += A.Str;
      Out += '\'';
    } else {
      Out += A.valueText();
    }
  }
  return Out;
}

size_t RemarkStream::add(Kind K, std::string Pass, std::string Name) {
  Remark R;
  R.Id = NextId++;
  R.K = K;
  R.Pass = std::move(Pass);
  R.Name = std::move(Name);
  ++Counts[static_cast<size_t>(K)];
  Remarks.push_back(std::move(R));
  return Remarks.size() - 1;
}

const Remark *RemarkStream::byId(uint64_t Id) const {
  // Ids are increasing but not necessarily dense after a filtered
  // round-trip; binary-search the sorted id order.
  size_t Lo = 0, Hi = Remarks.size();
  while (Lo != Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Remarks[Mid].Id < Id)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo != Remarks.size() && Remarks[Lo].Id == Id)
    return &Remarks[Lo];
  return nullptr;
}

unsigned RemarkStream::chainDepth(const Remark &R) const {
  unsigned Best = 0;
  for (uint64_t P : R.Parents)
    if (const Remark *Parent = byId(P))
      Best = std::max(Best, chainDepth(*Parent));
  return Best + 1;
}

bool RemarkStream::verify(std::string *Error) const {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  uint64_t PrevId = 0;
  for (const Remark &R : Remarks) {
    if (R.Id == 0)
      return Fail("remark with unassigned id 0");
    if (R.Id <= PrevId)
      return Fail("remark ids not strictly increasing at id " +
                  std::to_string(R.Id));
    for (uint64_t P : R.Parents) {
      if (P >= R.Id)
        return Fail("remark " + std::to_string(R.Id) +
                    " references non-earlier parent " + std::to_string(P));
      if (!byId(P))
        return Fail("remark " + std::to_string(R.Id) +
                    " references unknown parent " + std::to_string(P));
    }
    PrevId = R.Id;
  }
  return true;
}

bool RemarkStream::matchesFilter(std::string_view Pass,
                                 const std::string &Filter) {
  std::regex RE(Filter, std::regex::ECMAScript);
  return std::regex_match(Pass.begin(), Pass.end(), RE);
}

bool RemarkStream::validateFilter(const std::string &Filter,
                                  std::string *Error) {
  try {
    std::regex RE(Filter, std::regex::ECMAScript);
  } catch (const std::regex_error &E) {
    if (Error)
      *Error = E.what();
    return false;
  }
  return true;
}

void RemarkStream::writeJson(RawOstream &OS, std::string_view File,
                             const std::string *PassFilter) const {
  json::Writer W(OS);
  W.beginObject();
  W.member("schemaVersion", RemarkSchemaVersion);
  W.member("file", File);
  W.key("remarks").beginArray();
  for (const Remark &R : Remarks) {
    if (PassFilter && !matchesFilter(R.Pass, *PassFilter))
      continue;
    W.beginObject(/*Inline=*/true);
    W.member("id", R.Id)
        .member("kind", kindName(R.K))
        .member("pass", R.Pass)
        .member("name", R.Name)
        .member("function", R.Function)
        .member("line", uint64_t(R.Line))
        .member("col", uint64_t(R.Col));
    W.key("parents").beginArray(/*Inline=*/true);
    for (uint64_t P : R.Parents)
      W.value(P);
    W.endArray();
    W.key("args").beginArray(/*Inline=*/true);
    for (const Arg &A : R.Args) {
      W.beginObject(/*Inline=*/true);
      W.key("key").value(A.Key);
      switch (A.Ty) {
      case Arg::Type::String:
        W.key("value").value(A.Str);
        break;
      case Arg::Type::UInt:
        W.key("value").value(A.UInt);
        break;
      case Arg::Type::Int:
        W.key("value").value(A.Int);
        break;
      case Arg::Type::Bool:
        W.key("value").value(A.Flag);
        break;
      }
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

bool RemarkStream::readJson(std::string_view Text, std::string *Error,
                            std::string *File) {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  std::string ParseError;
  auto Doc = json::parse(Text, &ParseError);
  if (!Doc)
    return Fail(ParseError);
  if (!Doc->isObject())
    return Fail("remarks document is not an object");
  const json::Value *Version = Doc->find("schemaVersion");
  if (!Version || !Version->isNumber())
    return Fail("missing schemaVersion");
  if (Version->asUint() != RemarkSchemaVersion)
    return Fail("unsupported schemaVersion " +
                std::to_string(Version->asUint()) + " (expected " +
                std::to_string(RemarkSchemaVersion) + ")");
  if (File) {
    const json::Value *F = Doc->find("file");
    *File = F && F->isString() ? F->asString() : std::string();
  }
  const json::Value *List = Doc->find("remarks");
  if (!List || !List->isArray())
    return Fail("missing remarks array");

  std::vector<Remark> Parsed;
  uint64_t MaxId = 0;
  for (const json::Value &E : List->elements()) {
    if (!E.isObject())
      return Fail("remark entry is not an object");
    Remark R;
    const json::Value *Id = E.find("id");
    const json::Value *KindV = E.find("kind");
    const json::Value *Pass = E.find("pass");
    const json::Value *Name = E.find("name");
    if (!Id || !Id->isNumber() || !KindV || !KindV->isString() || !Pass ||
        !Pass->isString() || !Name || !Name->isString())
      return Fail("remark entry missing id/kind/pass/name");
    R.Id = Id->asUint();
    if (!kindFromName(KindV->asString(), R.K))
      return Fail("unknown remark kind '" + KindV->asString() + "'");
    R.Pass = Pass->asString();
    R.Name = Name->asString();
    if (const json::Value *F = E.find("function"); F && F->isString())
      R.Function = F->asString();
    if (const json::Value *L = E.find("line"); L && L->isNumber())
      R.Line = unsigned(L->asUint());
    if (const json::Value *C = E.find("col"); C && C->isNumber())
      R.Col = unsigned(C->asUint());
    if (const json::Value *Ps = E.find("parents")) {
      if (!Ps->isArray())
        return Fail("remark parents is not an array");
      for (const json::Value &P : Ps->elements()) {
        if (!P.isNumber())
          return Fail("remark parent is not a number");
        R.Parents.push_back(P.asUint());
      }
    }
    if (const json::Value *As = E.find("args")) {
      if (!As->isArray())
        return Fail("remark args is not an array");
      for (const json::Value &AV : As->elements()) {
        if (!AV.isObject())
          return Fail("remark arg is not an object");
        const json::Value *Key = AV.find("key");
        const json::Value *Val = AV.find("value");
        if (!Key || !Key->isString() || !Val)
          return Fail("remark arg missing key/value");
        switch (Val->kind()) {
        case json::Value::Kind::String:
          R.Args.push_back(Arg::str(Key->asString(), Val->asString()));
          break;
        case json::Value::Kind::Bool:
          R.Args.push_back(Arg::boolean(Key->asString(), Val->asBool()));
          break;
        case json::Value::Kind::Number:
          if (Val->isExactUint())
            R.Args.push_back(Arg::uint(Key->asString(), Val->asUint()));
          else
            R.Args.push_back(Arg::sint(Key->asString(), Val->asInt()));
          break;
        default:
          return Fail("remark arg value of unsupported type");
        }
      }
    }
    MaxId = std::max(MaxId, R.Id);
    Parsed.push_back(std::move(R));
  }

  Remarks = std::move(Parsed);
  Counts[0] = Counts[1] = Counts[2] = 0;
  for (const Remark &R : Remarks)
    ++Counts[static_cast<size_t>(R.K)];
  NextId = MaxId + 1;
  if (!verify(Error))
    return false;
  return true;
}
