//===- Remark.h - Optimization remarks --------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style optimization remarks: structured, per-decision telemetry the
/// pipeline emits while it compiles. Every remark records
///
///  - a \c Kind: \c Passed (an optimization was applied), \c Missed (an
///    optimization was considered and blocked, with the blocking threshold
///    or directive), or \c Analysis (evidence a decision was based on);
///  - the emitting pass and a remark name (e.g. "plan" / "enum-created");
///  - a source location and enclosing function, threaded from the lexer;
///  - typed key/value arguments carrying the decision's evidence;
///  - a provenance chain: ids of the earlier remarks this decision
///    depends on (e.g. selection:select <- share:merged <- plan:enum-created).
///
/// \c RemarkStream owns the remarks of one compilation, assigns ids,
/// serializes to JSON (`adec --remarks=FILE`) and reads the same JSON back
/// (the `ade-remarks` viewer and the round-trip tests). The support layer
/// is IR-agnostic: locations are plain function/line/col triples; the
/// IR-aware conveniences live in core/RemarkEmitter.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_REMARK_H
#define ADE_SUPPORT_REMARK_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ade {

class RawOstream;

namespace remarks {

/// Version stamp of the remarks JSON schema; readers reject other versions.
constexpr uint64_t RemarkSchemaVersion = 1;

enum class Kind : uint8_t { Passed, Missed, Analysis };

/// Printable name of \p K ("passed" / "missed" / "analysis").
const char *kindName(Kind K);

/// Parses a kind name; false when \p Name is not a kind.
bool kindFromName(std::string_view Name, Kind &Out);

/// One typed key/value argument of a remark.
struct Arg {
  enum class Type : uint8_t { String, UInt, Int, Bool };

  std::string Key;
  Type Ty = Type::String;
  std::string Str;
  uint64_t UInt = 0;
  int64_t Int = 0;
  bool Flag = false;

  static Arg str(std::string Key, std::string Value);
  static Arg uint(std::string Key, uint64_t Value);
  static Arg sint(std::string Key, int64_t Value);
  static Arg boolean(std::string Key, bool Value);

  /// The value rendered as text (for reports and messages).
  std::string valueText() const;

  bool operator==(const Arg &O) const {
    return Key == O.Key && Ty == O.Ty && Str == O.Str && UInt == O.UInt &&
           Int == O.Int && Flag == O.Flag;
  }
};

/// One compiler decision record.
struct Remark {
  /// Unique id within the stream, 1-based in emission order.
  uint64_t Id = 0;
  Kind K = Kind::Analysis;
  /// The emitting pass, the unit `--remarks-filter` matches against.
  std::string Pass;
  /// The decision name within the pass, e.g. "enum-created".
  std::string Name;
  /// Enclosing function; empty for module-level decisions.
  std::string Function;
  /// Source position; 0/0 when the decision has no single anchor.
  unsigned Line = 0;
  unsigned Col = 0;
  std::vector<Arg> Args;
  /// Ids of the earlier decisions this one depends on (provenance).
  std::vector<uint64_t> Parents;

  bool hasLoc() const { return Line != 0; }

  /// The argument named \p Key, or null.
  const Arg *arg(std::string_view Key) const;

  /// "pass:name arg1=v1 arg2=v2 ..." — the one-line report form.
  std::string message() const;
};

/// The remarks of one compilation: emission, counting, JSON round-trip
/// and provenance-chain queries.
class RemarkStream {
public:
  /// Appends a remark of \p K from \p Pass named \p Name and returns its
  /// index (stable; remarks are never removed).
  size_t add(Kind K, std::string Pass, std::string Name);

  Remark &at(size_t Idx) { return Remarks[Idx]; }
  const std::vector<Remark> &remarks() const { return Remarks; }
  size_t size() const { return Remarks.size(); }
  bool empty() const { return Remarks.empty(); }

  /// The remark with id \p Id, or null.
  const Remark *byId(uint64_t Id) const;

  /// Number of remarks of \p K.
  uint64_t count(Kind K) const { return Counts[static_cast<size_t>(K)]; }

  /// Length of the longest parent chain starting at \p R (1 = no parents).
  unsigned chainDepth(const Remark &R) const;

  /// Checks provenance integrity: ids are unique, 1-based and increasing,
  /// and every parent resolves to an *earlier* remark (so chains are
  /// acyclic by construction). Returns false with a message otherwise.
  bool verify(std::string *Error = nullptr) const;

  /// Writes the remarks JSON document. \p File names the compiled module.
  /// When \p PassFilter is non-null, only remarks whose pass matches the
  /// regex are written (see matchesFilter).
  void writeJson(RawOstream &OS, std::string_view File,
                 const std::string *PassFilter = nullptr) const;

  /// Parses a remarks JSON document produced by writeJson, replacing this
  /// stream's contents. False (with a message) on malformed input or a
  /// schema-version mismatch. The source file name is stored in \p File
  /// when non-null.
  bool readJson(std::string_view Text, std::string *Error = nullptr,
                std::string *File = nullptr);

  /// True when \p Pass matches \p Filter as an (anchored) ECMAScript
  /// regex. Callers must have validated the regex with validateFilter.
  static bool matchesFilter(std::string_view Pass, const std::string &Filter);

  /// Validates a `--remarks-filter` regex; false with a message when the
  /// expression does not compile.
  static bool validateFilter(const std::string &Filter,
                             std::string *Error = nullptr);

private:
  std::vector<Remark> Remarks;
  uint64_t Counts[3] = {0, 0, 0};
  uint64_t NextId = 1;
};

} // namespace remarks
} // namespace ade

#endif // ADE_SUPPORT_REMARK_H
