//===- Trace.h - Chrome trace-event recorder --------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in recorder for the Chrome trace-event JSON format, loadable in
/// chrome://tracing and Perfetto. Compile phases and interpreted function
/// activations are recorded as complete events (\c "ph":"X") with
/// microsecond \c ts / \c dur fields; per-phase counters (e.g. the number
/// of optimization remarks each pass emitted — the pipeline's decision
/// density) are recorded as counter events (\c "ph":"C") and render as a
/// stacked track.
///
/// Recording is globally opt-in: \c TraceRecorder::active() is null unless a
/// driver installed a recorder with \c setActive, so instrumented code pays
/// one pointer load (typically hoisted) when tracing is off.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_TRACE_H
#define ADE_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ade {

class RawOstream;

/// Records complete ("X") trace events relative to its construction time.
class TraceRecorder {
public:
  TraceRecorder();

  /// Microseconds elapsed since this recorder was constructed.
  uint64_t nowMicros() const;

  /// Records one complete event covering [StartMicros, StartMicros+DurMicros].
  void addComplete(std::string_view Name, const char *Category,
                   uint64_t StartMicros, uint64_t DurMicros);

  /// Records one counter sample at \p TsMicros: a named track with one or
  /// more series values ("ph":"C" in the trace viewer).
  void addCounter(std::string_view Name, const char *Category,
                  uint64_t TsMicros,
                  std::vector<std::pair<std::string, uint64_t>> Series);

  size_t eventCount() const { return Events.size(); }

  /// Writes {"traceEvents": [...]} in Chrome trace-event JSON.
  void write(RawOstream &OS) const;

  /// The process-wide recorder, or null when tracing is off.
  static TraceRecorder *active();
  static void setActive(TraceRecorder *Recorder);

private:
  struct Event {
    enum class Kind : uint8_t { Complete, Counter };
    Kind K = Kind::Complete;
    std::string Name;
    const char *Category;
    uint64_t StartMicros;
    uint64_t DurMicros;
    /// Counter series (Kind::Counter only).
    std::vector<std::pair<std::string, uint64_t>> Series;
  };

  std::vector<Event> Events;
  double EpochSeconds;
};

/// RAII scope recording a complete event on the active recorder (no-op when
/// tracing is off).
class TraceScope {
public:
  TraceScope(std::string_view Name, const char *Category)
      : Recorder(TraceRecorder::active()) {
    if (Recorder) {
      this->Name = Name;
      this->Category = Category;
      StartMicros = Recorder->nowMicros();
    }
  }
  ~TraceScope() {
    if (Recorder)
      Recorder->addComplete(Name, Category, StartMicros,
                            Recorder->nowMicros() - StartMicros);
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  TraceRecorder *Recorder;
  std::string Name;
  const char *Category = nullptr;
  uint64_t StartMicros = 0;
};

} // namespace ade

#endif // ADE_SUPPORT_TRACE_H
