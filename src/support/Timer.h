//===- Timer.h - Wall-clock timers and timer groups -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing for pass and phase reports (analog of LLVM's Timer /
/// TimerGroup). A \c Timer accumulates across start/stop cycles; a
/// \c TimerGroup names a set of phases, remembers insertion order, and can
/// render a text report or append itself to a \c json::Writer.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_TIMER_H
#define ADE_SUPPORT_TIMER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ade {

class RawOstream;
namespace json {
class Writer;
}

/// Monotonic wall clock in seconds (steady, arbitrary epoch).
double steadySeconds();

/// An accumulating stopwatch.
class Timer {
public:
  void start();
  void stop();
  bool isRunning() const { return Running; }

  /// Accumulated seconds, including the running segment if active.
  double seconds() const;

  /// Number of completed start/stop cycles.
  uint64_t runs() const { return Runs; }

  void reset() {
    Accumulated = 0;
    Runs = 0;
    Running = false;
  }

private:
  double Accumulated = 0;
  double StartedAt = 0;
  uint64_t Runs = 0;
  bool Running = false;
};

/// An ordered collection of named timers, one per phase.
class TimerGroup {
public:
  struct Phase {
    std::string Name;
    double Seconds = 0;
    uint64_t Runs = 0;
  };

  /// RAII scope that charges its lifetime to one phase of a group.
  class Scope {
  public:
    Scope(TimerGroup &Group, std::string_view Name)
        : Group(Group), Index(Group.phaseIndex(Name)),
          StartedAt(steadySeconds()) {}
    ~Scope() { Group.charge(Index, steadySeconds() - StartedAt); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    TimerGroup &Group;
    size_t Index;
    double StartedAt;
  };

  /// Finds or creates the phase named \p Name; stable insertion order.
  size_t phaseIndex(std::string_view Name);

  /// Adds \p Seconds (one run) to phase \p Index.
  void charge(size_t Index, double Seconds);

  const std::vector<Phase> &phases() const { return Phases; }
  double totalSeconds() const;

  /// Renders an aligned text report with per-phase percentages.
  void printReport(RawOstream &OS, std::string_view Title) const;

  /// Appends {"name": seconds, ...} as a JSON object.
  void writeJson(json::Writer &W) const;

private:
  std::vector<Phase> Phases;
};

} // namespace ade

#endif // ADE_SUPPORT_TIMER_H
