//===- Histogram.h - Log-linear u64 histograms ------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An HDR-style log-linear histogram over uint64_t samples with a bounded
/// relative quantile error, the building block of the runtime telemetry
/// channels (latency and probe-length distributions) and of the bench
/// schema-v2 trial distributions.
///
/// Bucketing policy: values below 2^b (b = \c subBucketBits, default 5)
/// land in exact unit buckets; every higher power-of-two range [2^e,
/// 2^(e+1)) is split into 2^b equal sub-buckets. A quantile query returns
/// the midpoint of the bucket holding the requested rank, so the reported
/// value differs from the exact order statistic by at most a factor of
/// 2^-b (3.125% at the default width) — see \c relativeError.
///
/// Histograms with the same sub-bucket width merge losslessly by bucket
/// addition, which is associative and commutative: per-shard or per-trial
/// histograms aggregate to exactly the histogram of the combined sample.
/// The JSON form (\c writeJson / \c fromJson) round-trips bucket-exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_HISTOGRAM_H
#define ADE_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace ade {
namespace json {
class Writer;
class Value;
} // namespace json

/// A mergeable log-linear histogram of uint64_t samples.
class Histogram {
public:
  /// \p SubBucketBits is b above: each power-of-two range splits into 2^b
  /// sub-buckets. Clamped to [1, 16].
  explicit Histogram(unsigned SubBucketBits = 5);

  /// Records \p N occurrences of \p V.
  void record(uint64_t V, uint64_t N = 1);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  /// Exact smallest / largest recorded value (0 when empty).
  uint64_t min() const { return Count ? MinV : 0; }
  uint64_t max() const { return MaxV; }
  double mean() const { return Count ? double(Sum) / double(Count) : 0; }
  bool empty() const { return Count == 0; }

  /// The value at quantile \p Q in [0, 1]: the midpoint of the bucket
  /// holding the rank-ceil(Q*count) smallest sample, clamped into
  /// [min, max] so p0/p100 are exact. 0 when empty.
  uint64_t quantile(double Q) const;

  uint64_t p50() const { return quantile(0.50); }
  uint64_t p90() const { return quantile(0.90); }
  uint64_t p99() const { return quantile(0.99); }
  uint64_t p999() const { return quantile(0.999); }

  /// Worst-case relative error of \c quantile: 2^-subBucketBits.
  double relativeError() const { return 1.0 / double(1ull << Bits); }

  unsigned subBucketBits() const { return Bits; }

  /// Adds every sample of \p Other. Both sides must share a sub-bucket
  /// width; the merge is then exact (bucket-wise addition).
  void merge(const Histogram &Other);

  void clear();

  bool operator==(const Histogram &Other) const;

  /// Bucket math, exposed for tests and the snapshot viewers.
  size_t bucketIndex(uint64_t V) const;
  uint64_t bucketLo(size_t Index) const;
  uint64_t bucketHi(size_t Index) const;
  uint64_t bucketMid(size_t Index) const;

  /// Non-empty buckets as (index, count), in increasing index order.
  std::vector<std::pair<size_t, uint64_t>> nonEmptyBuckets() const;

  /// Appends this histogram as one JSON object:
  /// {"b": bits, "count": c, "sum": s, "min": m, "max": M,
  ///  "buckets": [[index, count], ...]}.
  void writeJson(json::Writer &W) const;

  /// Rebuilds a histogram from the \c writeJson object form. On failure
  /// returns false and, if \p Error is non-null, stores a message.
  static bool fromJson(const json::Value &V, Histogram &Out,
                       std::string *Error = nullptr);

private:
  unsigned Bits;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinV = UINT64_MAX;
  uint64_t MaxV = 0;
  /// Grown lazily to the highest recorded bucket.
  std::vector<uint64_t> Buckets;
};

} // namespace ade

#endif // ADE_SUPPORT_HISTOGRAM_H
