//===- Casting.h - isa/cast/dyn_cast templates ------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reimplementation of LLVM's hand-rolled RTTI: \c isa<>, \c cast<>
/// and \c dyn_cast<>. Classes opt in by providing a static \c classof
/// predicate over the base class, typically keyed on a kind enumerator.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_CASTING_H
#define ADE_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace ade {

/// Returns true if \p Val is an instance of \p To.
///
/// \p Val must be non-null; use \c isa_and_present for possibly-null values.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Returns true if \p Val is non-null and an instance of \p To.
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && To::classof(Val);
}

/// Checked downcast: asserts that \p Val is an instance of \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null when \p Val is not an instance of \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like \c dyn_cast, but tolerates a null \p Val.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return isa_and_present<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ade

#endif // ADE_SUPPORT_CASTING_H
