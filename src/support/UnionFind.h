//===- UnionFind.h - Disjoint-set forest ------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A disjoint-set forest with union-by-rank and path compression, used by
/// the interprocedural enumeration unification of Algorithm 5 and by the
/// MST benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_UNIONFIND_H
#define ADE_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ade {

/// Disjoint-set forest over dense indices [0, size()).
class UnionFind {
public:
  UnionFind() = default;
  explicit UnionFind(size_t N) { grow(N); }

  /// Number of elements tracked.
  size_t size() const { return Parent.size(); }

  /// Ensures elements [0, N) exist, each initially a singleton.
  void grow(size_t N) {
    size_t Old = Parent.size();
    if (N <= Old)
      return;
    Parent.resize(N);
    Rank.resize(N, 0);
    for (size_t I = Old; I != N; ++I)
      Parent[I] = static_cast<uint32_t>(I);
  }

  /// Adds a fresh singleton and returns its index.
  uint32_t makeSet() {
    uint32_t Id = static_cast<uint32_t>(Parent.size());
    Parent.push_back(Id);
    Rank.push_back(0);
    return Id;
  }

  /// Returns the representative of \p X, compressing the path.
  uint32_t find(uint32_t X) {
    assert(X < Parent.size() && "find() out of range");
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the sets containing \p A and \p B; returns the new root.
  uint32_t unite(uint32_t A, uint32_t B) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    return RA;
  }

  /// Returns true if \p A and \p B are in the same set.
  bool connected(uint32_t A, uint32_t B) { return find(A) == find(B); }

  /// Number of distinct sets.
  size_t numSets() {
    size_t N = 0;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Parent.size()); I != E; ++I)
      if (find(I) == I)
        ++N;
    return N;
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

/// Disjoint-set forest keyed by arbitrary pointers or handles, built on top
/// of \c UnionFind. Used where the element universe is discovered lazily
/// (e.g. IR values in Algorithm 5).
template <typename T> class KeyedUnionFind {
public:
  /// Returns the dense id for \p Key, creating a singleton on first use.
  uint32_t id(const T &Key) {
    auto [It, Inserted] = Ids.try_emplace(Key, 0);
    if (Inserted)
      It->second = Impl.makeSet();
    return It->second;
  }

  /// Returns true if \p Key has been registered.
  bool contains(const T &Key) const { return Ids.count(Key) != 0; }

  uint32_t find(const T &Key) { return Impl.find(id(Key)); }
  uint32_t unite(const T &A, const T &B) { return Impl.unite(id(A), id(B)); }
  bool connected(const T &A, const T &B) {
    return Impl.find(id(A)) == Impl.find(id(B));
  }
  size_t size() const { return Ids.size(); }

  /// Invokes \p Fn(key, representativeId) for every registered key.
  template <typename FnT> void forEach(FnT Fn) {
    for (auto &[Key, Id] : Ids)
      Fn(Key, Impl.find(Id));
  }

private:
  UnionFind Impl;
  std::unordered_map<T, uint32_t> Ids;
};

} // namespace ade

#endif // ADE_SUPPORT_UNIONFIND_H
