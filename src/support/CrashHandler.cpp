//===- CrashHandler.cpp - Signal handlers and crash context ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CrashHandler.h"

#include <atomic>
#include <csignal>
#include <cstring>
#include <ctime>

#include <sys/syscall.h>
#include <unistd.h>

using namespace ade;

namespace {

/// One stored frame. Detail is copied so the signal handler never chases a
/// pointer into freed memory.
struct ContextFrame {
  const char *Phase = nullptr;
  char Detail[120] = {0};
};

constexpr unsigned MaxFrames = 64;

/// The per-thread frame stack. Frames beyond MaxFrames are counted (so the
/// report can say "... N more") but not stored.
thread_local ContextFrame Frames[MaxFrames];
thread_local unsigned FrameDepth = 0;

/// write() that ignores the result (there is nothing to do about a failed
/// write while crashing).
void rawWrite(int Fd, const char *S, size_t N) {
  ssize_t Unused = ::write(Fd, S, N);
  (void)Unused;
}

void rawWrite(int Fd, const char *S) { rawWrite(Fd, S, std::strlen(S)); }

/// Async-signal-safe unsigned-to-decimal.
void rawWriteNum(int Fd, unsigned long V) {
  char Buf[24];
  char *P = Buf + sizeof(Buf);
  do {
    *--P = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V);
  rawWrite(Fd, P, static_cast<size_t>(Buf + sizeof(Buf) - P));
}

const char *signalName(int Sig) {
  switch (Sig) {
  case SIGSEGV:
    return "SIGSEGV";
  case SIGBUS:
    return "SIGBUS";
  case SIGILL:
    return "SIGILL";
  case SIGFPE:
    return "SIGFPE";
  case SIGABRT:
    return "SIGABRT";
  default:
    return "signal";
  }
}

/// Kernel thread id (async-signal-safe, unlike std::this_thread::get_id).
long currentTid() {
#ifdef SYS_gettid
  return long(::syscall(SYS_gettid));
#else
  return long(::getpid());
#endif
}

/// Thread id currently printing a crash report; 0 = none. With several
/// worker threads, two can fault at once — only the first reports, and
/// the rest park until the report re-raises and kills the process, so
/// their output never interleaves with (or recurses into) the report.
std::atomic<long> CrashingTid{0};

/// Best-effort crash-dump hook (see setCrashDumpHook).
std::atomic<void (*)(void *)> CrashHook{nullptr};
std::atomic<void *> CrashHookArg{nullptr};

void crashSignalHandler(int Sig) {
  long Tid = currentTid();
  long Expected = 0;
  if (!CrashingTid.compare_exchange_strong(Expected, Tid,
                                           std::memory_order_acq_rel)) {
    if (Expected == Tid) {
      // The handler itself faulted (report code crashed, or the same
      // thread re-entered): skip reporting entirely and die with the
      // new signal before recursing.
      std::signal(Sig, SIG_DFL);
      ::raise(Sig);
      return;
    }
    // Another thread is mid-report; its re-raise ends the process. Sleep
    // rather than spin so we do not steal the reporting thread's only
    // core on small machines.
    for (;;) {
      struct timespec TS = {0, 50 * 1000 * 1000};
      ::nanosleep(&TS, nullptr);
    }
  }
  rawWrite(2, "\n=== ade crash handler: caught ");
  rawWrite(2, signalName(Sig));
  rawWrite(2, " on thread ");
  rawWriteNum(2, static_cast<unsigned long>(Tid));
  rawWrite(2, " ===\n");
  printCrashContextStack(2);
  // Last-gasp diagnostics: the hook runs exactly once (exchange), after
  // the always-safe context report, so a hook failure can only cost the
  // dump — the same-thread reentrancy path above kills the process
  // before the handler could recurse.
  if (void (*Hook)(void *) =
          CrashHook.exchange(nullptr, std::memory_order_acq_rel)) {
    rawWrite(2, "=== ade crash handler: writing flight dump ===\n");
    Hook(CrashHookArg.load(std::memory_order_acquire));
  }
  // Restore the default disposition and re-raise so the process dies with
  // the original signal (preserving core dumps and wait-status semantics).
  std::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

} // namespace

void ade::installCrashHandlers() {
  static std::atomic<bool> Installed{false};
  if (Installed.exchange(true, std::memory_order_acq_rel))
    return;
  for (int Sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = crashSignalHandler;
    sigemptyset(&SA.sa_mask);
    // SA_NODEFER is unnecessary: the handler re-raises after resetting to
    // SIG_DFL, and the re-raised signal is delivered on return.
    SA.sa_flags = 0;
    sigaction(Sig, &SA, nullptr);
  }
}

void ade::printCrashContextStack(int Fd) {
  if (FrameDepth == 0) {
    rawWrite(Fd, "(no crash context frames)\n");
    return;
  }
  unsigned Stored = FrameDepth < MaxFrames ? FrameDepth : MaxFrames;
  if (FrameDepth > MaxFrames) {
    rawWrite(Fd, "... ");
    rawWriteNum(Fd, FrameDepth - MaxFrames);
    rawWrite(Fd, " deeper frame(s) not recorded\n");
  }
  for (unsigned I = Stored; I != 0; --I) {
    const ContextFrame &F = Frames[I - 1];
    rawWrite(Fd, "#");
    rawWriteNum(Fd, Stored - I);
    rawWrite(Fd, " ");
    rawWrite(Fd, F.Phase ? F.Phase : "?");
    if (F.Detail[0]) {
      rawWrite(Fd, ": ");
      rawWrite(Fd, F.Detail);
    }
    rawWrite(Fd, "\n");
  }
}

unsigned ade::crashContextDepth() { return FrameDepth; }

void ade::setCrashDumpHook(void (*Hook)(void *), void *Arg) {
  // Argument first: a handler firing between the two stores sees either
  // the old consistent pair or (new arg, old hook) — never a new hook
  // with a stale argument.
  CrashHookArg.store(Arg, std::memory_order_release);
  CrashHook.store(Hook, std::memory_order_release);
}

ade::CrashContext::CrashContext(const char *Phase, const std::string &Detail) {
  if (FrameDepth < MaxFrames) {
    ContextFrame &F = Frames[FrameDepth];
    F.Phase = Phase;
    size_t N = Detail.size() < sizeof(F.Detail) - 1 ? Detail.size()
                                                    : sizeof(F.Detail) - 1;
    std::memcpy(F.Detail, Detail.data(), N);
    F.Detail[N] = 0;
  }
  ++FrameDepth;
}

ade::CrashContext::~CrashContext() { --FrameDepth; }
