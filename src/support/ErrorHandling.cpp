//===- ErrorHandling.cpp --------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include "support/CrashHandler.h"

#include <cstdio>
#include <cstdlib>

using namespace ade;

void ade::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::fflush(stderr);
  printCrashContextStack(2);
  // Exit code 2 is the tools' "internal error" status, distinguishing a
  // compiler/runtime invariant failure from ordinary diagnostics (1).
  std::exit(2);
}

void ade::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::fflush(stderr);
  // Abort (rather than exit) so the crash handler fires and a debugger or
  // core dump sees the original stack.
  std::abort();
}
