//===- ErrorHandling.cpp --------------------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace ade;

void ade::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

void ade::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
