//===- Random.h - Deterministic pseudo-random generation --------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small xoshiro256**-based PRNG used by workload generators and tests so
/// that runs are reproducible independent of the standard library's
/// \c std::mt19937 implementation details.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SUPPORT_RANDOM_H
#define ADE_SUPPORT_RANDOM_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>

namespace ade {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eedULL) {
    // Seed the state with splitmix64 as recommended by the xoshiro authors.
    for (uint64_t &Word : State) {
      Seed += 0x9e3779b97f4a7c15ULL;
      Word = hashU64(Seed);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for Bound << 2^64 and tests only need uniform-ish.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform value in [Lo, Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ade

#endif // ADE_SUPPORT_RANDOM_H
