//===- Queue.h - Bounded admission queue ------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's bounded MPMC request queue — the admission-control
/// boundary. Producers never block: tryPush either enqueues or reports
/// the queue full, and the caller sheds (responds Shed) instead of
/// queueing unboundedly; that is what keeps p99 bounded under overload
/// (see DESIGN.md "Serving runtime": shed policy). Consumers block on a
/// condition variable until work or shutdown arrives.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_QUEUE_H
#define ADE_SERVE_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace ade {
namespace serve {

template <typename T> class BoundedQueue {
public:
  explicit BoundedQueue(size_t Capacity) : Capacity(Capacity ? Capacity : 1) {}

  /// Enqueues \p Item unless the queue is at capacity or closed; never
  /// blocks. \p DepthOut (optional) receives the depth observed at the
  /// decision, full or not, for shed telemetry.
  bool tryPush(T Item, size_t *DepthOut = nullptr) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (DepthOut)
        *DepthOut = Items.size();
      if (Closed || Items.size() >= Capacity)
        return false;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false).
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  /// Wakes every consumer; subsequent pushes fail, pops drain the
  /// remaining items then return false.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

  size_t capacity() const { return Capacity; }

private:
  const size_t Capacity;
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_QUEUE_H
