//===- Workload.h - Request streams, execution semantics, oracle *- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic request-stream generation (Zipfian key popularity),
/// the single definition of request *semantics* shared by the
/// concurrent server and the single-threaded oracle, and the response
/// digests the differential soak compares.
///
/// Determinism under concurrency rests on three properties:
///  1. **Phased streams.** Every stream's BulkInserts form phase 1 and
///     its reads (lookups, graph queries, program calls) form phase 2,
///     with a client-side barrier between them. Phase-1 responses are
///     order-independent (an insert reports its key count, not a
///     "newly inserted" count that racing streams would split
///     nondeterministically), and duplicate inserts are commutative
///     because a key's value is a pure function of the key
///     (\c valueOf). So the store state at the barrier — and every
///     phase-2 response read from that frozen state — is independent
///     of worker interleaving.
///  2. **Fault decisions keyed on request id** (serve/FaultPlan.h):
///     the oracle fails exactly the requests the server failed.
///  3. **Shed-retry.** Admission rejections are timing-dependent, so
///     the client retries Shed responses with backoff until accepted;
///     the digest only ever sees final statuses. Wall-clock deadlines
///     are likewise excluded from oracle-compared runs.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_WORKLOAD_H
#define ADE_SERVE_WORKLOAD_H

#include "serve/FaultPlan.h"
#include "serve/Request.h"
#include "support/Random.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ade {
namespace serve {

/// Shape of the synthetic key space and graph relation; shared verbatim
/// by server and oracle so derived keys and edges agree.
struct Geometry {
  /// Keys live in [0, KeyUniverse). Also the dense-bitset universe.
  uint64_t KeyUniverse = 1 << 16;
  /// Graph BFS depth bound per query.
  unsigned GraphDepth = 3;
  /// Visited-set cap per query (keeps worst-case work bounded).
  unsigned MaxVisited = 128;
};

/// The value stored for a key: a pure function of the key, so racing
/// duplicate inserts write the same bytes (see file comment).
inline uint64_t valueOf(uint64_t Key) {
  return hashU64(Key ^ 0x76616c7565ULL);
}

/// The I-th key of a bulk insert based at \p Base.
inline uint64_t bulkKeyAt(const Geometry &G, uint64_t Base, uint32_t I) {
  return hashU64(Base + 0x9e3779b9ULL * (I + 1)) % G.KeyUniverse;
}

/// The fixed out-edges of \p Key in the synthetic graph relation (an
/// edge exists when the target key is present in the store).
inline void neighborsOf(const Geometry &G, uint64_t Key, uint64_t Out[3]) {
  Out[0] = hashU64(Key ^ 0x6e31) % G.KeyUniverse;
  Out[1] = hashU64(Key ^ 0x6e32) % G.KeyUniverse;
  Out[2] = hashU64(Key ^ 0x6e33) % G.KeyUniverse;
}

/// Zipfian key sampler (Gray et al.'s method), the standard model for
/// popularity-skewed serving traffic: rank-1 keys dominate, which is
/// what makes shard striping and lock-free reads earn their keep.
class Zipfian {
public:
  Zipfian(uint64_t N, double Theta);

  /// Next key in [0, N). Ranks are scattered with a hash so popular
  /// keys spread across shards.
  uint64_t sample(Rng &R) const;

private:
  uint64_t N;
  double Theta;
  double Alpha;
  double Zetan;
  double Eta;
};

/// One run's workload shape.
struct WorkloadSpec {
  uint64_t Seed = 1;
  uint32_t Streams = 8;
  /// Phase-1 BulkInserts per stream.
  uint32_t InsertsPerStream = 32;
  /// Keys per BulkInsert.
  uint32_t BulkCount = 16;
  /// Phase-2 read ops per stream.
  uint32_t ReadsPerStream = 256;
  /// Phase-2 op mix (remainder after lookup+graph goes to program
  /// calls when a program function is available, else to lookups).
  double LookupFrac = 0.70;
  double GraphFrac = 0.20;
  double ZipfTheta = 0.99;
  /// Emit ProgramCall requests (requires the loaded module to export
  /// the serve function).
  bool ProgramCalls = false;
  Geometry Geo;
};

/// Request id layout: stream in the high word, sequence in the low, so
/// ids are unique and the fault plan keys off both.
inline uint64_t requestId(uint32_t Stream, uint32_t Seq) {
  return (uint64_t(Stream) << 32) | Seq;
}

/// Builds stream \p Stream in submission order: phase-1 inserts first,
/// then phase-2 reads. Deterministic in (Spec, Stream).
std::vector<Request> buildStream(const WorkloadSpec &Spec, uint32_t Stream);

/// Index of the first phase-2 request in a built stream.
inline uint32_t phaseBoundary(const WorkloadSpec &Spec) {
  return Spec.InsertsPerStream;
}

/// Order-independent digest of one stream's responses taken in
/// sequence order: FNV-1a over (id, status, value) triples.
uint64_t streamDigest(const std::vector<Response> &Responses);

/// Executes \p R against a store, the single semantics definition (see
/// file comment). \p StoreT provides:
///   bool mapGet(uint64_t Key, uint64_t &Val);
///   void upsert(uint64_t Key, uint64_t Val);   // map + membership set
///   bool setHas(uint64_t Key);
/// \p ProgramFn runs a ProgramCall: Response(uint64_t Key, bool
/// ExhaustBudget); pass one that returns Error for modules without a
/// serve function. \p D carries the fault plan's decision for R.Id —
/// only ExhaustBudget matters here (timing faults are the caller's).
template <typename StoreT, typename ProgramFnT>
Response executeRequest(const Request &R, StoreT &Store,
                        const Geometry &G, const FaultDecision &D,
                        ProgramFnT &&ProgramFn) {
  Response Resp;
  Resp.Id = R.Id;
  switch (R.Op) {
  case RequestOp::PointLookup: {
    if (D.ExhaustBudget) {
      Resp.Status = ResponseStatus::Budget;
      break;
    }
    uint64_t Val = 0;
    if (Store.mapGet(R.Key, Val)) {
      Resp.Status = ResponseStatus::Ok;
      Resp.Value = Val;
    } else {
      Resp.Status = ResponseStatus::NotFound;
    }
    break;
  }
  case RequestOp::BulkInsert: {
    if (D.ExhaustBudget) {
      // The whole batch is skipped, deterministically, on server and
      // oracle alike — a half-applied batch would make phase-1 state
      // depend on where the budget tripped.
      Resp.Status = ResponseStatus::Budget;
      break;
    }
    for (uint32_t I = 0; I != R.Count; ++I) {
      uint64_t Key = bulkKeyAt(G, R.Key, I);
      Store.upsert(Key, valueOf(Key));
    }
    Resp.Status = ResponseStatus::Ok;
    Resp.Value = R.Count;
    break;
  }
  case RequestOp::GraphQuery: {
    if (D.ExhaustBudget) {
      Resp.Status = ResponseStatus::Budget;
      break;
    }
    // Bounded BFS; the digest is a commutative sum so it does not
    // depend on visit order (it would not anyway: the frontier walk
    // is deterministic over a frozen store).
    std::vector<uint64_t> Frontier{R.Key % G.KeyUniverse};
    std::vector<uint64_t> Visited;
    uint64_t Digest = 0;
    for (unsigned Depth = 0;
         Depth != G.GraphDepth && !Frontier.empty() &&
         Visited.size() < G.MaxVisited;
         ++Depth) {
      std::vector<uint64_t> Next;
      for (uint64_t Node : Frontier) {
        uint64_t Nbr[3];
        neighborsOf(G, Node, Nbr);
        for (uint64_t Target : Nbr) {
          if (!Store.setHas(Target))
            continue;
          bool Seen = false;
          for (uint64_t V : Visited)
            if (V == Target) {
              Seen = true;
              break;
            }
          if (Seen || Visited.size() >= G.MaxVisited)
            continue;
          Visited.push_back(Target);
          Digest += hashU64(Target);
          Next.push_back(Target);
        }
      }
      Frontier = std::move(Next);
    }
    Resp.Status = ResponseStatus::Ok;
    Resp.Value = Digest + Visited.size();
    break;
  }
  case RequestOp::ProgramCall:
    Resp = ProgramFn(R.Key, D.ExhaustBudget);
    Resp.Id = R.Id;
    break;
  }
  return Resp;
}

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_WORKLOAD_H
