//===- AtomicBitSet.h - Word-atomic concurrent bitset -----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent counterpart of collections/BitSet for the serving
/// runtime: a set over enumeration indices [0, k) whose membership test
/// is a single word-atomic load, so readers never block — the property
/// ADE's dense selections make cheap (an enumerated key *is* the bit
/// position). Writers serialize on one internal mutex (bit writes are
/// fetch_or/fetch_and, the mutex exists for growth), and growth
/// publishes a new word array and retires the old one through an
/// EpochDomain so in-flight readers finish on the array they loaded.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_ATOMICBITSET_H
#define ADE_SERVE_ATOMICBITSET_H

#include "serve/Epoch.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace ade {
namespace serve {

/// A dynamically growing bitset with lock-free membership tests.
/// Readers must hold an EpochDomain::Guard on the domain passed at
/// construction while calling contains().
class AtomicBitSet {
public:
  /// \p UniverseHint pre-sizes for keys < UniverseHint (rounded up to a
  /// word); the universe still grows organically past it.
  explicit AtomicBitSet(EpochDomain &Domain, uint64_t UniverseHint = 0)
      : Domain(Domain) {
    uint64_t NWords = (UniverseHint + 63) / 64;
    if (NWords == 0)
      NWords = 1;
    Words.store(newWords(NWords), std::memory_order_release);
    NumWords.store(NWords, std::memory_order_release);
  }

  ~AtomicBitSet() {
    // Retired arrays belong to the domain; only the live one is ours.
    delete[] Words.load(std::memory_order_relaxed);
  }

  AtomicBitSet(const AtomicBitSet &) = delete;
  AtomicBitSet &operator=(const AtomicBitSet &) = delete;

  /// Lock-free membership test (epoch guard required). Keys beyond the
  /// current universe are absent.
  bool contains(uint64_t Key) const {
    uint64_t Word = Key >> 6;
    // Acquire on the count pairs with the release publish in grow():
    // a count that covers Word guarantees the array pointer read next
    // spans it.
    if (Word >= NumWords.load(std::memory_order_acquire))
      return false;
    const std::atomic<uint64_t> *W = Words.load(std::memory_order_acquire);
    return (W[Word].load(std::memory_order_acquire) >> (Key & 63)) & 1;
  }

  /// Inserts \p Key, growing the universe if needed; true if newly set.
  bool insert(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    uint64_t Word = Key >> 6;
    if (Word >= NumWords.load(std::memory_order_relaxed))
      grow(Word + 1);
    std::atomic<uint64_t> *W = Words.load(std::memory_order_relaxed);
    uint64_t Bit = uint64_t(1) << (Key & 63);
    uint64_t Old = W[Word].fetch_or(Bit, std::memory_order_release);
    if (Old & Bit)
      return false;
    Count.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Removes \p Key; true if it was present.
  bool remove(uint64_t Key) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    uint64_t Word = Key >> 6;
    if (Word >= NumWords.load(std::memory_order_relaxed))
      return false;
    std::atomic<uint64_t> *W = Words.load(std::memory_order_relaxed);
    uint64_t Bit = uint64_t(1) << (Key & 63);
    uint64_t Old = W[Word].fetch_and(~Bit, std::memory_order_release);
    if (!(Old & Bit))
      return false;
    Count.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t size() const { return Count.load(std::memory_order_relaxed); }
  uint64_t universeSize() const {
    return NumWords.load(std::memory_order_acquire) * 64;
  }

private:
  static std::atomic<uint64_t> *newWords(uint64_t N) {
    auto *W = new std::atomic<uint64_t>[N];
    for (uint64_t I = 0; I != N; ++I)
      W[I].store(0, std::memory_order_relaxed);
    return W;
  }

  /// Called under WriteMu. Publishes a copy at >= NeedWords words and
  /// retires the old array to the epoch domain.
  void grow(uint64_t NeedWords) {
    uint64_t OldN = NumWords.load(std::memory_order_relaxed);
    uint64_t NewN = OldN ? OldN : 1;
    while (NewN < NeedWords)
      NewN *= 2;
    std::atomic<uint64_t> *Old = Words.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *New = newWords(NewN);
    for (uint64_t I = 0; I != OldN; ++I)
      New[I].store(Old[I].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    // Publish the array before the count that advertises it (see
    // contains()).
    Words.store(New, std::memory_order_release);
    NumWords.store(NewN, std::memory_order_release);
    Domain.retireArray(Old);
  }

  EpochDomain &Domain;
  std::mutex WriteMu;
  std::atomic<std::atomic<uint64_t> *> Words{nullptr};
  std::atomic<uint64_t> NumWords{0};
  std::atomic<uint64_t> Count{0};
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_ATOMICBITSET_H
