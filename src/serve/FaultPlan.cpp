//===- FaultPlan.cpp - Deterministic fault injection ----------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/FaultPlan.h"

#include "support/Hashing.h"

#include <cstdio>
#include <cstdlib>

using namespace ade;
using namespace ade::serve;

/// Deterministic uniform draw in [0, 1) for (seed, id, salt). Each fault
/// class uses a distinct salt so its decisions are independent.
static double drawFor(uint64_t Seed, uint64_t Id, uint64_t Salt) {
  uint64_t H = hashU64(Seed ^ hashU64(Id + Salt));
  return double(H >> 11) * 0x1.0p-53;
}

FaultDecision FaultPlan::decide(uint64_t Id) const {
  FaultDecision D;
  if (DelayP > 0 && drawFor(Seed, Id, 0x64656c61) < DelayP)
    D.DelayMicros = DelayMicros;
  if (StormP > 0 && drawFor(Seed, Id, 0x73746f72) < StormP)
    D.StormSpins = StormSpins;
  if (BudgetP > 0 && drawFor(Seed, Id, 0x62756467) < BudgetP)
    D.ExhaustBudget = true;
  return D;
}

/// Parses "P" or "P:N" into \p Prob (and \p Amount when the field has
/// one); false on malformed or out-of-range values.
static bool parseProbAmount(const std::string &Value, double &Prob,
                            uint32_t *Amount) {
  const char *S = Value.c_str();
  char *End = nullptr;
  Prob = std::strtod(S, &End);
  if (End == S || Prob < 0 || Prob > 1)
    return false;
  if (*End == '\0')
    return true; // the amount keeps its default
  if (*End != ':' || !Amount)
    return false;
  const char *A = End + 1;
  unsigned long N = std::strtoul(A, &End, 10);
  if (End == A || *End != '\0')
    return false;
  *Amount = uint32_t(N);
  return true;
}

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out,
                      std::string *Error) {
  FaultPlan Plan;
  // Amount defaults applied when "P" is given without ":N".
  Plan.DelayMicros = 100;
  Plan.StormSpins = 64;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Field = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;
    if (Field.empty())
      continue;
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos) {
      if (Error)
        *Error = "field '" + Field + "' is not key=value";
      return false;
    }
    std::string Key = Field.substr(0, Eq);
    std::string Value = Field.substr(Eq + 1);
    bool Ok;
    if (Key == "seed") {
      char *End = nullptr;
      Plan.Seed = std::strtoull(Value.c_str(), &End, 10);
      Ok = End != Value.c_str() && *End == '\0';
    } else if (Key == "delay") {
      Ok = parseProbAmount(Value, Plan.DelayP, &Plan.DelayMicros);
    } else if (Key == "storm") {
      Ok = parseProbAmount(Value, Plan.StormP, &Plan.StormSpins);
    } else if (Key == "budget") {
      Ok = parseProbAmount(Value, Plan.BudgetP, nullptr);
    } else {
      if (Error)
        *Error = "unknown fault field '" + Key + "'";
      return false;
    }
    if (!Ok) {
      if (Error)
        *Error = "malformed value for '" + Key + "': '" + Value + "'";
      return false;
    }
  }
  Out = Plan;
  return true;
}

std::string FaultPlan::describe() const {
  if (!enabled())
    return "off";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "seed=%llu,delay=%g:%u,storm=%g:%u,budget=%g",
                static_cast<unsigned long long>(Seed), DelayP, DelayMicros,
                StormP, StormSpins, BudgetP);
  return Buf;
}
