//===- Epoch.cpp - Epoch-based memory reclamation -------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Epoch.h"

#include <algorithm>
#include <cassert>

using namespace ade;
using namespace ade::serve;

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
  // No readers can be live here (participants must have unregistered),
  // so everything retired is reclaimable.
  for (const RetiredBlock &B : Retired)
    B.Deleter(B.Block);
  assert(Participants.empty() && "participants outlive their domain");
}

EpochDomain::Participant *EpochDomain::registerThread() {
  auto *P = new Participant();
  std::lock_guard<std::mutex> Lock(Mu);
  Participants.push_back(P);
  return P;
}

void EpochDomain::unregisterThread(Participant *P) {
  assert(P->Pinned.load(std::memory_order_relaxed) == 0 &&
         "unregistering while pinned");
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Participants.erase(
        std::find(Participants.begin(), Participants.end(), P));
  }
  delete P;
}

void EpochDomain::pin(Participant *P) {
  assert(P->Pinned.load(std::memory_order_relaxed) == 0 && "already pinned");
  // Publish the observed epoch, then re-check that it did not advance
  // while we were publishing: a concurrent collect() that read our slot
  // as unpinned may have bumped the epoch, and probing a structure with
  // a stale pin would defeat the E-2 reclamation argument.
  uint64_t E = Global.load(std::memory_order_seq_cst);
  for (;;) {
    P->Pinned.store(E, std::memory_order_seq_cst);
    uint64_t Now = Global.load(std::memory_order_seq_cst);
    if (Now == E)
      return;
    E = Now;
  }
}

void EpochDomain::unpin(Participant *P) {
  P->Pinned.store(0, std::memory_order_release);
}

void EpochDomain::retire(void *Block, void (*Deleter)(void *)) {
  RetiredLive.fetch_add(1, std::memory_order_relaxed);
  TotalRetired.fetch_add(1, std::memory_order_relaxed);
  bool Try;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Retired.push_back({Global.load(std::memory_order_relaxed), Block,
                       Deleter});
    // Amortize the participant scan: one advance attempt every few
    // retirements keeps the retired list short without making every
    // resize pay for a full scan.
    Try = ++RetireTick >= 8;
    if (Try)
      RetireTick = 0;
  }
  if (Try)
    collect();
}

bool EpochDomain::allObserved(uint64_t E) const {
  for (const Participant *P : Participants) {
    uint64_t Pin = P->Pinned.load(std::memory_order_seq_cst);
    if (Pin != 0 && Pin != E)
      return false;
  }
  return true;
}

size_t EpochDomain::collect() {
  std::vector<RetiredBlock> Free;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    uint64_t E = Global.load(std::memory_order_seq_cst);
    if (allObserved(E))
      Global.store(E + 1, std::memory_order_seq_cst);
    // Blocks retired at R are free once Global >= R + 2 (see header).
    uint64_t Now = Global.load(std::memory_order_relaxed);
    auto Mid = std::partition(
        Retired.begin(), Retired.end(),
        [Now](const RetiredBlock &B) { return B.Epoch + 2 > Now; });
    Free.assign(Mid, Retired.end());
    Retired.erase(Mid, Retired.end());
  }
  for (const RetiredBlock &B : Free)
    B.Deleter(B.Block);
  RetiredLive.fetch_sub(Free.size(), std::memory_order_relaxed);
  return Free.size();
}

size_t EpochDomain::retiredCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Retired.size();
}
