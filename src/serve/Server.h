//===- Server.h - Concurrent serving runtime --------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adesrv serving runtime: a worker pool over one loaded (and
/// ADE-compiled) module, a bounded admission queue, shared sharded
/// collections, per-request deadlines, and deterministic fault
/// injection. See DESIGN.md "Serving runtime" for the full picture.
///
/// Shed policy (documented contract, asserted by bench/srv_scaling):
/// a request is shed at admission — never after it was accepted — when
///  (1) the bounded queue is full (hard backpressure), or
///  (2) the queue is at least half full AND the rolling p99 request
///      latency exceeds ServeConfig::ShedP99Ns (tail-latency guard;
///      off when ShedP99Ns is 0).
/// Shedding responds immediately with ResponseStatus::Shed, which the
/// client harness classifies as retryable-with-backoff. Accepted
/// requests always get exactly one terminal response; a request whose
/// wall-clock deadline expires (in queue or mid-execution via the
/// engines' cancellation points) gets ResponseStatus::Deadline.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_SERVER_H
#define ADE_SERVE_SERVER_H

#include "serve/AtomicBitSet.h"
#include "serve/ConcurrentMap.h"
#include "serve/Epoch.h"
#include "serve/FaultPlan.h"
#include "serve/Queue.h"
#include "serve/Request.h"
#include "serve/Span.h"
#include "serve/Workload.h"
#include "support/Histogram.h"
#include "vm/Engine.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ade {
namespace runtime {
class Telemetry;
}
namespace serve {

/// The shared mutable state every worker serves from: the value map,
/// the membership set, and its dense-bitset mirror for keys inside the
/// enumerated universe (the fast path graph queries probe).
struct SharedStore {
  explicit SharedStore(const Geometry &G)
      : Map(Domain), Set(Domain), Dense(Domain, G.KeyUniverse),
        DenseBound(G.KeyUniverse) {}

  EpochDomain Domain;
  ShardedSwissMap Map;
  ShardedHashSet Set;
  AtomicBitSet Dense;
  uint64_t DenseBound;
};

/// Store-concept adapter (see Workload.h executeRequest) binding a
/// SharedStore to one registered epoch participant: every read pins the
/// epoch for its duration, so reclamation of resized tables can never
/// free storage under a probe.
class SharedStoreView {
public:
  /// Per-request op accounting for traced requests (single-threaded:
  /// each view belongs to one worker). Write ops attribute to up to
  /// MaxShardEntries distinct shards — enough for a whole BulkInsert on
  /// a Zipfian stream — with the rest pooled in an overflow bucket.
  /// Reads are lock-free and hot (a graph query probes hundreds of
  /// keys), so they only bump a flat counter, never the shard table.
  struct RequestStats {
    static constexpr unsigned MaxShardEntries = 4;
    struct ShardWrites {
      uint32_t Shard = 0;
      uint64_t Ops = 0;
      uint64_t LockWaitNs = 0;
    };
    ShardWrites Writes[MaxShardEntries];
    unsigned NumWrites = 0;
    uint64_t OverflowOps = 0;
    uint64_t OverflowWaitNs = 0;
    uint64_t ReadOps = 0;
    /// Epoch pins taken (one per store op).
    uint64_t Pins = 0;
  };

  SharedStoreView(SharedStore &S, EpochDomain::Participant *P)
      : S(S), P(P) {}

  /// Arms (or disarms) per-op accounting for the next request. With
  /// tracing off every op costs exactly one predictable branch.
  void beginRequest(bool TraceOn) {
    Tracing = TraceOn;
    if (TraceOn)
      St = RequestStats();
  }

  const RequestStats &requestStats() const { return St; }

  bool mapGet(uint64_t Key, uint64_t &Val) {
    EpochDomain::Guard G(S.Domain, P);
    if (Tracing) {
      ++St.ReadOps;
      ++St.Pins;
    }
    return S.Map.get(Key, Val);
  }

  void upsert(uint64_t Key, uint64_t Val) {
    EpochDomain::Guard G(S.Domain, P);
    if (!Tracing) {
      S.Map.set(Key, Val);
      S.Set.insert(Key);
    } else {
      ++St.Pins;
      uint64_t Wait = 0;
      S.Map.set(Key, Val, &Wait);
      S.Set.insert(Key, &Wait);
      // Map and set share the same striping (low key bits), so one
      // entry covers both tables' ops on this key.
      chargeWrite(uint32_t(S.Map.shardOf(Key)), 2, Wait);
    }
    if (Key < S.DenseBound)
      S.Dense.insert(Key);
  }

  bool setHas(uint64_t Key) {
    EpochDomain::Guard G(S.Domain, P);
    if (Tracing) {
      ++St.ReadOps;
      ++St.Pins;
    }
    // Dense keys answer from the word-atomic bitset (one load);
    // stragglers fall back to the sharded set.
    if (Key < S.DenseBound)
      return S.Dense.contains(Key);
    return S.Set.has(Key);
  }

private:
  void chargeWrite(uint32_t Shard, uint64_t Ops, uint64_t WaitNs) {
    for (unsigned I = 0; I != St.NumWrites; ++I)
      if (St.Writes[I].Shard == Shard) {
        St.Writes[I].Ops += Ops;
        St.Writes[I].LockWaitNs += WaitNs;
        return;
      }
    if (St.NumWrites < RequestStats::MaxShardEntries) {
      auto &E = St.Writes[St.NumWrites++];
      E.Shard = Shard;
      E.Ops = Ops;
      E.LockWaitNs = WaitNs;
      return;
    }
    St.OverflowOps += Ops;
    St.OverflowWaitNs += WaitNs;
  }

  SharedStore &S;
  EpochDomain::Participant *P;
  bool Tracing = false;
  RequestStats St;
};

struct ServeConfig {
  unsigned Threads = 1;
  size_t QueueCapacity = 256;
  vm::EngineKind Engine = vm::EngineKind::Vm;
  /// Per-ProgramCall engine budgets (InterpOptions).
  uint64_t MaxSteps = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 4096;
  /// Per-request wall-clock deadline, measured from submission
  /// (0 = none). Timing-dependent: keep 0 for oracle-compared runs.
  uint64_t DeadlineMs = 0;
  /// Tail-latency shed trigger (see shed policy above; 0 = off).
  uint64_t ShedP99Ns = 0;
  FaultPlan Faults;
  /// Function ProgramCall requests invoke (@serve by convention; names
  /// are stored without the sigil).
  std::string ProgramFunction = "serve";
  /// Optional shared telemetry sink (thread-safe) for shed/guard-rail
  /// journal events and collection channels.
  runtime::Telemetry *Tel = nullptr;
  /// Optional request tracer / flight recorder (see serve/Span.h).
  /// Null turns tracing off entirely; when set, its Options control
  /// head sampling and ring sizes, and it must be constructed with at
  /// least Threads worker lanes. Owned by the host (adesrv keeps one
  /// across rounds so crash dumps stay valid).
  FlightRecorder *Flight = nullptr;
  Geometry Geo;
};

/// Aggregated server counters and distributions (stats() snapshot).
struct ServerStats {
  uint64_t Accepted = 0;
  uint64_t Shed = 0;
  uint64_t Completed = 0;
  /// Terminal statuses of completed requests, by ResponseStatus.
  uint64_t ByStatus[6] = {};
  uint64_t DelaysInjected = 0;
  uint64_t StormsInjected = 0;
  uint64_t BudgetsInjected = 0;
  /// Accept-to-completion latency of completed requests.
  Histogram LatencyNs;
  /// Queue depth observed at each accepted admission.
  Histogram DepthAtAccept;
  uint64_t MapSize = 0;
  uint64_t SetSize = 0;
  uint64_t ShardRehashes = 0;
};

class Server {
public:
  /// Response delivery: invoked exactly once per accepted request, on
  /// the worker thread that completed it.
  using Callback = std::function<void(const Response &)>;

  /// \p M must outlive the server and is shared (read-only) by every
  /// worker's engine.
  Server(const ir::Module &M, ServeConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Admits \p R or sheds it (see shed policy). On false the caller
  /// owns the Shed response; \p Done was not and will not be invoked.
  bool submit(const Request &R, Callback Done);

  /// Blocks until every accepted request has completed — the client's
  /// phase barrier between bulk-insert and read phases.
  void drain();

  /// Stops accepting work, drains the queue, joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  ServerStats stats() const;

  /// True when the loaded module exports Config.ProgramFunction.
  bool hasProgramFunction() const { return ProgramFn != nullptr; }

  const ServeConfig &config() const { return Config; }
  SharedStore &store() { return Store; }

  /// Pushes the current per-shard contention and epoch-reclamation
  /// gauges into Config.Tel's snapshot (no-op without a sink). Hosts
  /// call it right before writing the metrics snapshot.
  void publishGauges() const;

private:
  struct Job {
    Request Req;
    Callback Done;
    uint64_t SubmitNs = 0;
    /// Tracing timestamps (set only when a flight recorder is
    /// attached): admission completion and queue depth at accept.
    uint64_t AdmitNs = 0;
    uint32_t DepthAtAccept = 0;
  };

  /// Per-worker mutable state; stats are merged on demand.
  struct Worker {
    unsigned Index = 0;
    std::thread Thread;
    interp::CancelCell Cancel;
    mutable std::mutex StatsMu;
    uint64_t Completed = 0;
    uint64_t ByStatus[6] = {};
    uint64_t DelaysInjected = 0;
    uint64_t StormsInjected = 0;
    uint64_t BudgetsInjected = 0;
    Histogram LatencyNs;
  };

  void workerMain(Worker &W);
  Response runJob(const Job &J, Worker &W, SharedStoreView &View,
                  std::unique_ptr<vm::Engine> &Eng, uint64_t &EngineCalls,
                  TraceBuilder *TB);
  bool shedByPolicy(size_t Depth);
  void refreshTailP99();

  const ir::Module &Module;
  ServeConfig Config;
  const ir::Function *ProgramFn = nullptr;
  SharedStore Store;
  BoundedQueue<Job> Queue;
  std::vector<std::unique_ptr<Worker>> Workers;

  /// Admission-side counters (submit() callers' threads).
  mutable std::mutex AdmissionMu;
  uint64_t Accepted = 0;
  uint64_t Shed = 0;
  Histogram DepthAtAccept;

  /// Completion tracking for drain().
  mutable std::mutex DrainMu;
  std::condition_variable DrainCv;
  uint64_t CompletedTotal = 0;

  /// Cached rolling p99 for the shed policy, refreshed every few
  /// hundred admissions (merging histograms per submit would serialize
  /// admission).
  std::atomic<uint64_t> CachedP99Ns{0};
  std::atomic<uint64_t> AdmissionTick{0};

  std::atomic<bool> Stopped{false};
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_SERVER_H
