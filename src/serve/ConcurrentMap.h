//===- ConcurrentMap.h - Sharded concurrent hash collections ----*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving runtime's concurrent counterparts of SwissMap/HashSet:
/// open-addressing tables striped into power-of-two shards by the low
/// bits of the key. ADE's enumerated keys (`idx in [0, N)`) make that
/// striping uniform by construction — consecutive indices land on
/// consecutive shards — so a Zipfian-popular key contends only with its
/// own shard's writers.
///
/// Concurrency contract:
///  - Writers (insert/set/remove) take the owning shard's mutex; shards
///    never share storage, so writers on different shards never touch
///    the same cache lines.
///  - Readers (has/get) are lock-free: they probe the shard's table
///    through word-atomic tag/key/value slots under an epoch guard
///    (serve/Epoch.h) and never block, even during a concurrent resize
///    — the resizing writer publishes a fresh table pointer and retires
///    the old one to the epoch domain, and in-flight readers finish
///    their probe on whichever table they loaded.
///
/// Slot layout mirrors collections/SwissTable: a control byte per slot
/// (0x00 empty, 0x01 tombstone, 0x80|h2 full, where h2 is a 7-bit hash
/// tag) in front of the key (and value) words. Probing is byte-at-a-
/// time linear rather than 16-byte SWAR groups: tags are individually
/// atomic here, and the single-byte acquire load is what lets a reader
/// synchronize with the writer's key/value publication.
///
/// Publication protocol (per slot): a writer stores the key and value
/// with relaxed order, then the full-tag with release; a reader loads
/// the tag with acquire, and a matching tag makes the key/value reads
/// that follow well-defined. A slot's key is written exactly once per
/// table (remove leaves a tombstone; only a resize recycles slots into
/// a fresh table), so readers can never observe a torn or re-keyed
/// slot.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_CONCURRENTMAP_H
#define ADE_SERVE_CONCURRENTMAP_H

#include "serve/Epoch.h"
#include "support/Hashing.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace ade {
namespace serve {

/// Per-shard lock-contention gauges (write-path acquisitions only; the
/// read path never takes the lock). Exposed in the telemetry snapshot
/// and, per request, as table-op span lock-wait time.
struct ShardContention {
  uint32_t Shard = 0;
  uint64_t Acquisitions = 0;
  uint64_t WaitTotalNs = 0;
  uint64_t WaitMaxNs = 0;
};

namespace detail {

enum : uint8_t { SlotEmpty = 0x00, SlotTombstone = 0x01 };

inline uint8_t fullTag(uint64_t Hash) {
  return uint8_t(0x80 | (Hash >> 57));
}

/// One shard: a mutex-owned open-addressing table with atomic slots.
/// \p WithValue selects map (true) or set (false) layout.
template <bool WithValue> class ConcurrentShard {
public:
  explicit ConcurrentShard(EpochDomain &Domain) : Domain(Domain) {
    Table.store(newTable(InitialCapacity), std::memory_order_release);
  }

  ~ConcurrentShard() { delete Table.load(std::memory_order_relaxed); }

  ConcurrentShard(const ConcurrentShard &) = delete;
  ConcurrentShard &operator=(const ConcurrentShard &) = delete;

  /// Lock-free lookup (epoch guard required). For maps \p Val receives
  /// the mapped value on a hit.
  bool find(uint64_t Key, uint64_t *Val) const {
    const TableData *T = Table.load(std::memory_order_acquire);
    uint64_t H = hashU64(Key);
    uint8_t Tag = fullTag(H);
    uint64_t Idx = H & T->Mask;
    for (;;) {
      uint8_t S = T->Tags[Idx].load(std::memory_order_acquire);
      if (S == SlotEmpty)
        return false;
      if (S == Tag && T->Keys[Idx].load(std::memory_order_relaxed) == Key) {
        if constexpr (WithValue)
          if (Val)
            *Val = T->Vals[Idx].load(std::memory_order_acquire);
        return true;
      }
      Idx = (Idx + 1) & T->Mask;
    }
  }

  /// Inserts (or, for maps with \p Overwrite, updates) under the shard
  /// mutex. Returns true when the key was newly inserted. \p WaitNs
  /// (optional) accumulates time spent waiting for the shard lock.
  bool insert(uint64_t Key, uint64_t Val, bool Overwrite,
              uint64_t *WaitNs = nullptr) {
    lockContended(WaitNs);
    std::lock_guard<std::mutex> Lock(Mu, std::adopt_lock);
    TableData *T = Table.load(std::memory_order_relaxed);
    // Keep a slack of empties so reader probes terminate: grow at 7/8
    // occupancy counting tombstones (they extend probe chains too).
    if ((T->Used + 1) * 8 >= (T->Mask + 1) * 7)
      T = rehash(T);
    uint64_t H = hashU64(Key);
    uint8_t Tag = fullTag(H);
    uint64_t Idx = H & T->Mask;
    // Tombstoned slots are never reused in place: re-keying a slot
    // would let a racing reader pair a stale matching tag with the new
    // key and the old value. Tombstones only disappear at the next
    // rehash (Used counts them, so they still trigger growth).
    for (;;) {
      uint8_t S = T->Tags[Idx].load(std::memory_order_relaxed);
      if (S == SlotEmpty)
        break;
      if (S == Tag && T->Keys[Idx].load(std::memory_order_relaxed) == Key) {
        if constexpr (WithValue)
          if (Overwrite)
            T->Vals[Idx].store(Val, std::memory_order_release);
        return false;
      }
      Idx = (Idx + 1) & T->Mask;
    }
    ++T->Used;
    T->Keys[Idx].store(Key, std::memory_order_relaxed);
    if constexpr (WithValue)
      T->Vals[Idx].store(Val, std::memory_order_relaxed);
    T->Tags[Idx].store(Tag, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool remove(uint64_t Key, uint64_t *WaitNs = nullptr) {
    lockContended(WaitNs);
    std::lock_guard<std::mutex> Lock(Mu, std::adopt_lock);
    TableData *T = Table.load(std::memory_order_relaxed);
    uint64_t H = hashU64(Key);
    uint8_t Tag = fullTag(H);
    uint64_t Idx = H & T->Mask;
    for (;;) {
      uint8_t S = T->Tags[Idx].load(std::memory_order_relaxed);
      if (S == SlotEmpty)
        return false;
      if (S == Tag && T->Keys[Idx].load(std::memory_order_relaxed) == Key) {
        T->Tags[Idx].store(SlotTombstone, std::memory_order_release);
        Count.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      Idx = (Idx + 1) & T->Mask;
    }
  }

  uint64_t size() const { return Count.load(std::memory_order_relaxed); }

  /// Visits every element under the shard mutex (invariant checks and
  /// drains; not a consistent cross-shard snapshot).
  void forEachLocked(
      const std::function<void(uint64_t, uint64_t)> &Fn) const {
    std::lock_guard<std::mutex> Lock(Mu);
    const TableData *T = Table.load(std::memory_order_relaxed);
    for (uint64_t I = 0; I <= T->Mask; ++I) {
      uint8_t S = T->Tags[I].load(std::memory_order_relaxed);
      if (S != SlotEmpty && S != SlotTombstone) {
        uint64_t V = 0;
        if constexpr (WithValue)
          V = T->Vals[I].load(std::memory_order_relaxed);
        Fn(T->Keys[I].load(std::memory_order_relaxed), V);
      }
    }
  }

  /// The shard lock, exposed for the fault plan's contention storms.
  std::mutex &mutex() const { return Mu; }

  /// Completed storage reorganizations (tests/telemetry).
  uint64_t rehashes() const {
    return Rehashes.load(std::memory_order_relaxed);
  }

  /// Contention gauge snapshot (relaxed reads; exact at quiescence).
  ShardContention contention() const {
    ShardContention C;
    C.Acquisitions = Acquisitions.load(std::memory_order_relaxed);
    C.WaitTotalNs = WaitTotalNs.load(std::memory_order_relaxed);
    C.WaitMaxNs = WaitMaxNs.load(std::memory_order_relaxed);
    return C;
  }

private:
  static uint64_t steadyNs() {
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
  }

  /// Acquires Mu, charging the contention gauges. The uncontended path
  /// (try_lock succeeds) reads no clock at all, so the gauges cost one
  /// relaxed increment per write op; only actual waiting is timed.
  void lockContended(uint64_t *WaitNs) {
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (Mu.try_lock())
      return;
    uint64_t T0 = steadyNs();
    Mu.lock();
    uint64_t Wait = steadyNs() - T0;
    if (WaitNs)
      *WaitNs += Wait;
    WaitTotalNs.fetch_add(Wait, std::memory_order_relaxed);
    uint64_t Prev = WaitMaxNs.load(std::memory_order_relaxed);
    while (Wait > Prev &&
           !WaitMaxNs.compare_exchange_weak(Prev, Wait,
                                            std::memory_order_relaxed))
      ;
  }
  struct TableData {
    uint64_t Mask = 0;
    /// Live + tombstoned slots (monotonic per table).
    uint64_t Used = 0;
    std::atomic<uint8_t> *Tags = nullptr;
    std::atomic<uint64_t> *Keys = nullptr;
    std::atomic<uint64_t> *Vals = nullptr;

    ~TableData() {
      delete[] Tags;
      delete[] Keys;
      delete[] Vals;
    }
  };

  static constexpr uint64_t InitialCapacity = 16;

  static TableData *newTable(uint64_t Capacity) {
    assert((Capacity & (Capacity - 1)) == 0 && "capacity not a power of 2");
    auto *T = new TableData();
    T->Mask = Capacity - 1;
    T->Tags = new std::atomic<uint8_t>[Capacity];
    T->Keys = new std::atomic<uint64_t>[Capacity];
    if constexpr (WithValue)
      T->Vals = new std::atomic<uint64_t>[Capacity];
    for (uint64_t I = 0; I != Capacity; ++I) {
      T->Tags[I].store(SlotEmpty, std::memory_order_relaxed);
      T->Keys[I].store(0, std::memory_order_relaxed);
      if constexpr (WithValue)
        T->Vals[I].store(0, std::memory_order_relaxed);
    }
    return T;
  }

  /// Called under Mu. Builds a table sized for the live count (dropping
  /// tombstones), publishes it, and retires the old one.
  TableData *rehash(TableData *Old) {
    uint64_t Live = Count.load(std::memory_order_relaxed);
    uint64_t Capacity = InitialCapacity;
    // Target <= 1/2 occupancy after the rebuild so growth is geometric
    // even when the trigger was tombstone accumulation.
    while (Live * 2 >= Capacity)
      Capacity *= 2;
    TableData *T = newTable(Capacity);
    for (uint64_t I = 0; I <= Old->Mask; ++I) {
      uint8_t S = Old->Tags[I].load(std::memory_order_relaxed);
      if (S == SlotEmpty || S == SlotTombstone)
        continue;
      uint64_t Key = Old->Keys[I].load(std::memory_order_relaxed);
      uint64_t H = hashU64(Key);
      uint64_t Idx = H & T->Mask;
      while (T->Tags[Idx].load(std::memory_order_relaxed) != SlotEmpty)
        Idx = (Idx + 1) & T->Mask;
      T->Keys[Idx].store(Key, std::memory_order_relaxed);
      if constexpr (WithValue)
        T->Vals[Idx].store(Old->Vals[I].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      T->Tags[Idx].store(fullTag(H), std::memory_order_relaxed);
      ++T->Used;
    }
    Table.store(T, std::memory_order_release);
    Domain.retireObject(Old);
    Rehashes.fetch_add(1, std::memory_order_relaxed);
    return T;
  }

  EpochDomain &Domain;
  mutable std::mutex Mu;
  std::atomic<TableData *> Table{nullptr};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Rehashes{0};
  /// Contention gauges (see lockContended).
  std::atomic<uint64_t> Acquisitions{0};
  std::atomic<uint64_t> WaitTotalNs{0};
  std::atomic<uint64_t> WaitMaxNs{0};
};

/// Shared shard-striping shell of the sharded map and set.
template <bool WithValue> class ShardedTable {
public:
  /// \p ShardCount is rounded up to a power of two (default 64: enough
  /// stripes that 32 writers rarely collide, small enough to stay
  /// cache-resident).
  explicit ShardedTable(EpochDomain &Domain, unsigned ShardCount = 64) {
    unsigned N = 1;
    while (N < ShardCount && N < 4096)
      N *= 2;
    Shards.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      Shards.push_back(
          std::make_unique<ConcurrentShard<WithValue>>(Domain));
    Mask = N - 1;
  }

  uint64_t size() const {
    uint64_t Sum = 0;
    for (const auto &S : Shards)
      Sum += S->size();
    return Sum;
  }

  size_t shardCount() const { return Shards.size(); }
  std::mutex &shardMutex(size_t I) const { return Shards[I]->mutex(); }
  /// The shard \p Key lives on: its low bits, i.e. the enumeration-idx
  /// stripe (see file comment).
  size_t shardOf(uint64_t Key) const { return size_t(Key & Mask); }

  uint64_t rehashes() const {
    uint64_t Sum = 0;
    for (const auto &S : Shards)
      Sum += S->rehashes();
    return Sum;
  }

  /// Per-shard write-lock contention gauges, indexed by shard.
  std::vector<ShardContention> contention() const {
    std::vector<ShardContention> Out;
    Out.reserve(Shards.size());
    for (unsigned I = 0; I != Shards.size(); ++I) {
      ShardContention C = Shards[I]->contention();
      C.Shard = I;
      Out.push_back(C);
    }
    return Out;
  }

  void forEachLocked(
      const std::function<void(uint64_t, uint64_t)> &Fn) const {
    for (const auto &S : Shards)
      S->forEachLocked(Fn);
  }

protected:
  ConcurrentShard<WithValue> &shard(uint64_t Key) {
    return *Shards[Key & Mask];
  }
  const ConcurrentShard<WithValue> &shard(uint64_t Key) const {
    return *Shards[Key & Mask];
  }

private:
  std::vector<std::unique_ptr<ConcurrentShard<WithValue>>> Shards;
  uint64_t Mask = 0;
};

} // namespace detail

/// Concurrent map from u64 keys to u64 values (see file comment for the
/// locking contract; readers need an EpochDomain::Guard).
class ShardedSwissMap : public detail::ShardedTable<true> {
public:
  using detail::ShardedTable<true>::ShardedTable;

  bool has(uint64_t Key) const { return shard(Key).find(Key, nullptr); }
  bool get(uint64_t Key, uint64_t &Val) const {
    return shard(Key).find(Key, &Val);
  }
  /// Insert-or-overwrite. \p WaitNs (optional) accumulates shard
  /// lock-wait time for request tracing.
  void set(uint64_t Key, uint64_t Val, uint64_t *WaitNs = nullptr) {
    shard(Key).insert(Key, Val, true, WaitNs);
  }
  /// Insert only if absent; true when inserted.
  bool insert(uint64_t Key, uint64_t Val, uint64_t *WaitNs = nullptr) {
    return shard(Key).insert(Key, Val, false, WaitNs);
  }
  bool remove(uint64_t Key, uint64_t *WaitNs = nullptr) {
    return shard(Key).remove(Key, WaitNs);
  }
};

/// Concurrent set over u64 keys (same contract).
class ShardedHashSet : public detail::ShardedTable<false> {
public:
  using detail::ShardedTable<false>::ShardedTable;

  bool has(uint64_t Key) const { return shard(Key).find(Key, nullptr); }
  /// True when newly inserted.
  bool insert(uint64_t Key, uint64_t *WaitNs = nullptr) {
    return shard(Key).insert(Key, 0, false, WaitNs);
  }
  bool remove(uint64_t Key, uint64_t *WaitNs = nullptr) {
    return shard(Key).remove(Key, WaitNs);
  }
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_CONCURRENTMAP_H
