//===- Span.cpp - Request-scoped tracing and flight recorder --------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Span.h"

#include "support/ErrorHandling.h"
#include "support/Hashing.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>

using namespace ade;
using namespace ade::serve;

const char *ade::serve::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Admission:
    return "admission";
  case SpanKind::QueueWait:
    return "queue-wait";
  case SpanKind::TableOp:
    return "table-op";
  case SpanKind::EngineExec:
    return "engine-exec";
  case SpanKind::Epoch:
    return "epoch";
  case SpanKind::NumKinds:
    break;
  }
  ade_unreachable("unknown span kind");
}

void FlightRecorder::Ring::init(unsigned N) {
  Cap = N ? N : 1;
  Slots = std::make_unique<Slot[]>(Cap);
}

void FlightRecorder::Ring::push(const Trace &T) {
  uint64_t H = Head.load(std::memory_order_relaxed);
  Slot &S = Slots[H % Cap];
  // Odd = write in flight: a concurrent best-effort reader (the crash
  // hook) skips the slot instead of copying a half-written trace.
  S.Seq.store(2 * H + 1, std::memory_order_release);
  S.T = T;
  S.Seq.store(2 * H + 2, std::memory_order_release);
  Head.store(H + 1, std::memory_order_release);
}

void FlightRecorder::Ring::snapshot(std::vector<Trace> &Out) const {
  uint64_t H = Head.load(std::memory_order_acquire);
  uint64_t First = H > Cap ? H - Cap : 0;
  for (uint64_t I = First; I != H; ++I) {
    const Slot &S = Slots[I % Cap];
    uint64_t Seq = S.Seq.load(std::memory_order_acquire);
    // Keep the copy only when the slot was stable at this generation
    // before and after: a racing producer flips Seq odd first.
    if (Seq != 2 * I + 2)
      continue;
    Trace T = S.T;
    if (S.Seq.load(std::memory_order_acquire) == 2 * I + 2)
      Out.push_back(T);
  }
}

FlightRecorder::FlightRecorder(Options O) : Opts(O) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.SampleEvery == 0)
    Opts.SampleEvery = 1;
  // One lane per worker plus the shared admission lane for shed traces.
  Lanes.reserve(Opts.Workers + 1);
  for (unsigned I = 0; I != Opts.Workers + 1; ++I) {
    Lanes.push_back(std::make_unique<Lane>());
    Lanes.back()->Recent.init(Opts.RecentPerLane);
    Lanes.back()->Sampled.init(Opts.SampledPerLane);
  }
}

bool FlightRecorder::shouldTrace(uint64_t RequestId) const {
  if (Opts.SampleEvery <= 1)
    return true;
  // Hash rather than modulo the raw id: ids are (stream << 32 | seq), so
  // raw modulo would systematically trace or skip whole streams.
  return hashU64(RequestId ^ 0x74726163ULL) % Opts.SampleEvery == 0;
}

bool FlightRecorder::interesting(const Trace &T) const {
  switch (T.Status) {
  case ResponseStatus::Shed:
  case ResponseStatus::Budget:
  case ResponseStatus::Deadline:
  case ResponseStatus::Error:
    return true;
  case ResponseStatus::Ok:
  case ResponseStatus::NotFound:
    break;
  }
  if (T.Flags &
      (Trace::FaultDelay | Trace::FaultStorm | Trace::FaultBudget))
    return true;
  uint64_t Thr = TailNs.load(std::memory_order_relaxed);
  return Thr != 0 && T.TotalNs > Thr;
}

void FlightRecorder::recordCompleted(unsigned LaneIdx, const Trace &TIn) {
  assert(LaneIdx < Lanes.size() && "lane out of range");
  Trace T = TIn;
  uint64_t Thr = TailNs.load(std::memory_order_relaxed);
  if (Thr != 0 && T.TotalNs > Thr)
    T.Flags |= uint8_t(Trace::SlowTail);
  T.Worker = LaneIdx;

  bool Keep = interesting(T);
  Recorded.fetch_add(1, std::memory_order_relaxed);
  if (Keep)
    SampledCount.fetch_add(1, std::memory_order_relaxed);
  if (T.DroppedSpans)
    DroppedSpans.fetch_add(T.DroppedSpans, std::memory_order_relaxed);

  auto Charge = [&](Lane &L) {
    // Every completed trace contributes to the stage histograms —
    // tail sampling only decides whether the full tree is kept.
    for (unsigned I = 0; I != T.NumSpans; ++I)
      L.Stage[size_t(T.Spans[I].Kind)].record(T.Spans[I].DurNs);
    ++L.StatusCounts[size_t(T.Status)];
    L.Recent.push(T);
    if (Keep)
      L.Sampled.push(T);
  };

  if (LaneIdx == admissionLane()) {
    // Shed traces arrive from many submitter threads; serialize them
    // (this lane is off the accepted-request hot path).
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    Charge(*Lanes[LaneIdx]);
  } else {
    Charge(*Lanes[LaneIdx]);
  }
}

std::vector<Trace> FlightRecorder::recentTraces() const {
  std::vector<Trace> Out;
  for (const auto &L : Lanes)
    L->Recent.snapshot(Out);
  std::sort(Out.begin(), Out.end(), [](const Trace &A, const Trace &B) {
    return A.SubmitNs < B.SubmitNs;
  });
  return Out;
}

std::vector<Trace> FlightRecorder::sampledTraces() const {
  std::vector<Trace> Out;
  for (const auto &L : Lanes)
    L->Sampled.snapshot(Out);
  std::sort(Out.begin(), Out.end(), [](const Trace &A, const Trace &B) {
    return A.SubmitNs < B.SubmitNs;
  });
  return Out;
}

Histogram FlightRecorder::stageHistogram(SpanKind K) const {
  Histogram H;
  for (const auto &L : Lanes)
    H.merge(L->Stage[size_t(K)]);
  return H;
}

void FlightRecorder::writeTraceJson(json::Writer &W, const Trace &T) const {
  W.beginObject(/*Inline=*/true);
  W.member("id", T.Id);
  W.member("op", requestOpName(T.Op));
  W.member("status", responseStatusName(T.Status));
  W.member("worker", uint64_t(T.Worker));
  if (T.Flags) {
    W.key("flags").beginArray(/*Inline=*/true);
    if (T.Flags & Trace::FaultDelay)
      W.value("delay");
    if (T.Flags & Trace::FaultStorm)
      W.value("storm");
    if (T.Flags & Trace::FaultBudget)
      W.value("budget");
    if (T.Flags & Trace::SlowTail)
      W.value("slow-tail");
    W.endArray();
  }
  W.member("submitNs", T.SubmitNs);
  W.member("totalNs", T.TotalNs);
  if (T.DroppedSpans)
    W.member("droppedSpans", uint64_t(T.DroppedSpans));
  W.key("spans").beginArray();
  for (unsigned I = 0; I != T.NumSpans; ++I) {
    const Span &S = T.Spans[I];
    W.beginObject(/*Inline=*/true);
    W.member("kind", spanKindName(S.Kind));
    W.member("startNs", S.StartNs);
    W.member("durNs", S.DurNs);
    if (S.Shard != Span::NoShard)
      W.member("shard", uint64_t(S.Shard));
    W.member("a", S.A);
    if (S.B)
      W.member("b", S.B);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void FlightRecorder::writeJson(json::Writer &W, const char *Reason) const {
  W.beginObject();
  W.member("flightSchemaVersion", uint64_t(1));
  W.member("reason", Reason);
  W.member("sampleEvery", Opts.SampleEvery);
  W.member("tailThresholdNs", tailThresholdNs());
  W.member("tracesRecorded", tracesRecorded());
  W.member("tracesSampled", tracesSampled());
  W.member("spansDropped", spansDropped());

  W.key("statusCounts").beginObject(/*Inline=*/true);
  {
    uint64_t Totals[6] = {};
    for (const auto &L : Lanes)
      for (unsigned S = 0; S != 6; ++S)
        Totals[S] += L->StatusCounts[S];
    for (unsigned S = 0; S != 6; ++S)
      if (Totals[S])
        W.member(responseStatusName(ResponseStatus(S)), Totals[S]);
  }
  W.endObject();

  W.key("stages").beginArray();
  for (unsigned K = 0; K != unsigned(SpanKind::NumKinds); ++K) {
    Histogram H = stageHistogram(SpanKind(K));
    if (H.empty())
      continue;
    W.beginObject(/*Inline=*/true);
    W.member("stage", spanKindName(SpanKind(K)));
    W.member("count", H.count());
    W.member("p50Ns", H.p50());
    W.member("p90Ns", H.p90());
    W.member("p99Ns", H.p99());
    W.member("maxNs", H.max());
    W.endObject();
  }
  W.endArray();

  W.key("lanes").beginArray();
  for (unsigned I = 0; I != Lanes.size(); ++I) {
    const Lane &L = *Lanes[I];
    W.beginObject();
    W.member("lane", uint64_t(I));
    W.member("role", I == admissionLane() ? "admission" : "worker");
    std::vector<Trace> Recent, Sampled;
    L.Recent.snapshot(Recent);
    L.Sampled.snapshot(Sampled);
    W.key("recent").beginArray();
    for (const Trace &T : Recent)
      writeTraceJson(W, T);
    W.endArray();
    W.key("sampled").beginArray();
    for (const Trace &T : Sampled)
      writeTraceJson(W, T);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void FlightRecorder::mergeIntoTrace(TraceRecorder &TR) const {
  // Span times are absolute steady-clock ns; the trace recorder's
  // timeline is microseconds since its construction. Anchor the two
  // with one paired reading so request spans land beside compile-phase
  // events instead of at bogus offsets.
  uint64_t NowMic = TR.nowMicros();
  uint64_t NowNs = uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  uint64_t EpochNs = NowNs - NowMic * 1000;

  auto ToMicros = [EpochNs](uint64_t AbsNs) -> uint64_t {
    return AbsNs > EpochNs ? (AbsNs - EpochNs) / 1000 : 0;
  };

  for (const Trace &T : sampledTraces()) {
    std::string Prefix = std::string("srv:") + requestOpName(T.Op) + ":" +
                         responseStatusName(T.Status);
    TR.addComplete(Prefix, "serve", ToMicros(T.SubmitNs),
                   T.TotalNs / 1000);
    for (unsigned I = 0; I != T.NumSpans; ++I) {
      const Span &S = T.Spans[I];
      TR.addComplete(std::string("srv:") + spanKindName(S.Kind), "serve",
                     ToMicros(T.SubmitNs + S.StartNs), S.DurNs / 1000);
    }
  }
}
