//===- Request.h - Serving-runtime request taxonomy -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response vocabulary shared by the server, the client
/// harness, the single-threaded oracle and the soak test. Requests are
/// plain data so the oracle can replay the exact stream the server saw,
/// and responses carry only deterministic payloads (status + value) so
/// two executions of one stream digest identically (see Workload.h).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_REQUEST_H
#define ADE_SERVE_REQUEST_H

#include <cstdint>

namespace ade {
namespace serve {

/// What a request asks the server to do.
enum class RequestOp : uint8_t {
  /// Probe the shared map: hit returns the stored value.
  PointLookup,
  /// Insert Count keys derived from Key (see Workload::bulkKeyAt) into
  /// the shared map and membership set.
  BulkInsert,
  /// Bounded BFS over the synthetic edge relation rooted at Key (see
  /// Workload.h); returns an order-independent digest of the reachable
  /// set.
  GraphQuery,
  /// Invoke the loaded .memoir program's @serve function on the
  /// worker's engine with Key as argument.
  ProgramCall,
};

const char *requestOpName(RequestOp Op);

/// One request. Ids are unique per run and drive the deterministic
/// fault plan; (Stream, SeqInStream) addresses the response slot in the
/// client's digest order.
struct Request {
  uint64_t Id = 0;
  uint32_t Stream = 0;
  uint32_t SeqInStream = 0;
  RequestOp Op = RequestOp::PointLookup;
  uint64_t Key = 0;
  /// BulkInsert: number of derived keys.
  uint32_t Count = 0;
};

/// How a request concluded. The client harness classifies Shed as
/// retryable (backoff and resubmit) and everything else as final.
enum class ResponseStatus : uint8_t {
  Ok,
  /// PointLookup miss (deterministic, not an error).
  NotFound,
  /// Rejected at admission (queue full / overload); retryable.
  Shed,
  /// A guard-rail budget (steps/bytes/depth) tripped — either a real
  /// engine InterpError or a fault-plan injected exhaustion.
  Budget,
  /// The per-request wall-clock deadline expired (cooperative
  /// cancellation; excluded from oracle-compared streams because it is
  /// timing-dependent).
  Deadline,
  /// The program diagnosed a runtime error (InterpError other than a
  /// budget/deadline).
  Error,
};

const char *responseStatusName(ResponseStatus S);

struct Response {
  uint64_t Id = 0;
  ResponseStatus Status = ResponseStatus::Ok;
  /// Deterministic payload (lookup value, insert count, BFS digest,
  /// program result); 0 for non-Ok statuses.
  uint64_t Value = 0;
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_REQUEST_H
