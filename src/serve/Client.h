//===- Client.h - Client harness and differential oracle --------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the serving runtime: stream submission with
/// retry-with-backoff on shed responses, the phase barrier that makes
/// concurrent runs digest-comparable (see Workload.h), and the
/// single-threaded oracle that replays the same streams sequentially
/// for the differential soak test.
///
/// Retry classification: ResponseStatus::Shed is the only retryable
/// status — it means the request was never accepted, so resubmission
/// cannot double-apply it. Everything else (Ok, NotFound, Budget,
/// Deadline, Error) is terminal. Backoff is exponential from 50us,
/// doubling per consecutive shed of the same request, capped at 5ms.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_CLIENT_H
#define ADE_SERVE_CLIENT_H

#include "serve/Server.h"
#include "serve/Workload.h"

#include <cstdint>
#include <vector>

namespace ade {
namespace serve {

struct ClientOptions {
  /// Retry shed responses until accepted (required for oracle-compared
  /// runs); when false a shed becomes the request's terminal response.
  bool RetryShed = true;
  /// Client threads submitting concurrently (streams are distributed
  /// round-robin across them).
  unsigned SubmitThreads = 2;
};

struct ClientResult {
  /// Per-stream response digests, index = stream id.
  std::vector<uint64_t> Digests;
  uint64_t Submitted = 0;
  /// Shed responses observed (each adds a retry when RetryShed).
  uint64_t Sheds = 0;
  /// Responses per terminal status, by ResponseStatus.
  uint64_t ByStatus[6] = {};
};

/// Runs the full phased workload against \p S: submits every stream's
/// phase-1 inserts, waits for the barrier (Server::drain), submits
/// phase 2, drains again, then digests each stream's responses in
/// sequence order.
ClientResult runClient(Server &S, const WorkloadSpec &Spec,
                       const ClientOptions &Options = {});

/// Replays the same workload sequentially on a private store and a
/// single engine — the differential oracle. Applies the same fault
/// plan and budgets as \p Config so deterministic failures match;
/// \p Config.DeadlineMs must be 0 for comparable digests (deadlines
/// are timing-dependent). Runs on the calling thread.
std::vector<uint64_t> runOracle(const ir::Module &M,
                                const WorkloadSpec &Spec,
                                const ServeConfig &Config,
                                vm::EngineKind Engine = vm::EngineKind::Tree);

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_CLIENT_H
