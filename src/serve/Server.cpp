//===- Server.cpp - Concurrent serving runtime ----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "interp/InterpError.h"
#include "runtime/Telemetry.h"

#include <chrono>

using namespace ade;
using namespace ade::serve;

Server::Server(const ir::Module &M, ServeConfig ConfigIn)
    : Module(M), Config(std::move(ConfigIn)), Store(Config.Geo),
      Queue(Config.QueueCapacity) {
  if (Config.Threads == 0)
    Config.Threads = 1;
  ProgramFn = Module.getFunction(Config.ProgramFunction);
  Workers.reserve(Config.Threads);
  for (unsigned I = 0; I != Config.Threads; ++I) {
    Workers.push_back(std::make_unique<Worker>());
    Worker &W = *Workers.back();
    W.Thread = std::thread([this, &W] { workerMain(W); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (Stopped.exchange(true))
    return;
  Queue.close();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

bool Server::shedByPolicy(size_t Depth) {
  // Policy rule (2), the tail-latency guard: only bite when the queue
  // is also building up, so a single slow request during an idle period
  // does not flip the server into shedding.
  if (!Config.ShedP99Ns || Depth * 2 < Queue.capacity())
    return false;
  return CachedP99Ns.load(std::memory_order_relaxed) > Config.ShedP99Ns;
}

bool Server::submit(const Request &R, Callback Done) {
  Job J;
  J.Req = R;
  J.Done = std::move(Done);
  J.SubmitNs = runtime::Telemetry::nowNanos();

  // Refresh the rolling p99 every few hundred admissions (merging the
  // per-worker histograms on every submit would serialize admission).
  if (Config.ShedP99Ns &&
      (AdmissionTick.fetch_add(1, std::memory_order_relaxed) & 255) == 0) {
    Histogram H;
    for (const auto &W : Workers) {
      std::lock_guard<std::mutex> Lock(W->StatsMu);
      H.merge(W->LatencyNs);
    }
    CachedP99Ns.store(H.empty() ? 0 : H.p99(), std::memory_order_relaxed);
  }

  size_t Depth = Queue.depth();
  bool Admitted = !Stopped.load(std::memory_order_relaxed) &&
                  !shedByPolicy(Depth) && Queue.tryPush(std::move(J), &Depth);
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    if (Admitted) {
      ++Accepted;
      DepthAtAccept.record(Depth);
    } else {
      ++Shed;
    }
  }
  if (!Admitted && Config.Tel)
    Config.Tel->recordShed(Depth, R.Id);
  return Admitted;
}

void Server::drain() {
  uint64_t Target;
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    Target = Accepted;
  }
  std::unique_lock<std::mutex> Lock(DrainMu);
  DrainCv.wait(Lock, [this, Target] { return CompletedTotal >= Target; });
}

void Server::workerMain(Worker &W) {
  EpochDomain::Participant *P = Store.Domain.registerThread();
  SharedStoreView View(Store, P);
  std::unique_ptr<vm::Engine> Eng;
  uint64_t EngineCalls = 0;

  Job J;
  while (Queue.pop(J)) {
    Response Resp = runJob(J, W, View, Eng, EngineCalls);
    uint64_t Lat = runtime::Telemetry::nowNanos() - J.SubmitNs;
    {
      std::lock_guard<std::mutex> Lock(W.StatsMu);
      ++W.Completed;
      ++W.ByStatus[size_t(Resp.Status)];
      W.LatencyNs.record(Lat);
    }
    if (J.Done)
      J.Done(Resp);
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
      ++CompletedTotal;
    }
    DrainCv.notify_all();
  }

  // Engines allocate from the store-free interpreter arena; drop ours
  // before leaving the epoch domain.
  Eng.reset();
  Store.Domain.unregisterThread(P);
}

Response Server::runJob(const Job &J, Worker &W, SharedStoreView &View,
                        std::unique_ptr<vm::Engine> &Eng,
                        uint64_t &EngineCalls) {
  const Request &R = J.Req;
  FaultDecision D = Config.Faults.decide(R.Id);

  if (D.DelayMicros) {
    std::this_thread::sleep_for(std::chrono::microseconds(D.DelayMicros));
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.DelaysInjected;
  }
  if (D.StormSpins) {
    // Contention storm: hammer a rotating window of shard locks so
    // writers on those shards serialize behind us. Readers stay
    // unaffected — their lock-free probes are the property under test.
    size_t NShards = Store.Map.shardCount();
    for (uint32_t I = 0; I != D.StormSpins; ++I) {
      std::lock_guard<std::mutex> Lock(
          Store.Map.shardMutex((R.Key + I) % NShards));
    }
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.StormsInjected;
  }
  if (D.ExhaustBudget) {
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.BudgetsInjected;
  }

  // Per-request deadline, measured from submission: a request that
  // already overstayed in the queue fails without executing; one that
  // expires mid-program is cancelled cooperatively by the engine.
  uint64_t DeadlineNs = 0;
  if (Config.DeadlineMs) {
    DeadlineNs = J.SubmitNs + Config.DeadlineMs * 1000000ull;
    if (runtime::Telemetry::nowNanos() > DeadlineNs) {
      if (Config.Tel)
        Config.Tel->recordGuardRail(runtime::GuardRailKind::Wall,
                                    Config.DeadlineMs);
      Response Resp;
      Resp.Id = R.Id;
      Resp.Status = ResponseStatus::Deadline;
      return Resp;
    }
  }

  auto ProgramFn = [&](uint64_t Key, bool Exhaust) -> Response {
    Response Resp;
    if (Exhaust) {
      Resp.Status = ResponseStatus::Budget;
      return Resp;
    }
    if (!this->ProgramFn) {
      Resp.Status = ResponseStatus::Error;
      return Resp;
    }
    // Interpreter arenas keep program-allocated collections alive for
    // the engine's lifetime, so a resident engine would grow without
    // bound; recycling it every N calls caps that at a constant.
    if (!Eng || ++EngineCalls % 256 == 0) {
      interp::InterpOptions Opts;
      Opts.MaxSteps = Config.MaxSteps;
      Opts.MaxBytes = Config.MaxBytes;
      Opts.MaxDepth = Config.MaxDepth;
      Opts.Cancel = &W.Cancel;
      Opts.Tel = Config.Tel;
      Eng = std::make_unique<vm::Engine>(Config.Engine, Module, Opts);
    }
    W.Cancel.DeadlineNs.store(DeadlineNs, std::memory_order_relaxed);
    // MaxSteps is a per-request budget: the engine's cumulative counter
    // must not leak one request's work into the next (the oracle resets
    // identically, so budget trips stay digest-comparable).
    Eng->resetCallBudget();
    try {
      Resp.Value = Eng->call(this->ProgramFn, {Key});
      Resp.Status = ResponseStatus::Ok;
    } catch (const interp::InterpError &E) {
      Resp.Value = 0;
      switch (E.kind()) {
      case interp::InterpErrorKind::StepBudget:
      case interp::InterpErrorKind::MemoryBudget:
      case interp::InterpErrorKind::DepthBudget:
        Resp.Status = ResponseStatus::Budget;
        break;
      case interp::InterpErrorKind::Deadline:
        Resp.Status = ResponseStatus::Deadline;
        break;
      case interp::InterpErrorKind::Undefined:
        Resp.Status = ResponseStatus::Error;
        break;
      }
    }
    W.Cancel.DeadlineNs.store(0, std::memory_order_relaxed);
    return Resp;
  };

  return executeRequest(R, View, Config.Geo, D, ProgramFn);
}

ServerStats Server::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    Out.Accepted = Accepted;
    Out.Shed = Shed;
    Out.DepthAtAccept = DepthAtAccept;
  }
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> Lock(W->StatsMu);
    Out.Completed += W->Completed;
    for (unsigned I = 0; I != 6; ++I)
      Out.ByStatus[I] += W->ByStatus[I];
    Out.DelaysInjected += W->DelaysInjected;
    Out.StormsInjected += W->StormsInjected;
    Out.BudgetsInjected += W->BudgetsInjected;
    Out.LatencyNs.merge(W->LatencyNs);
  }
  Out.MapSize = Store.Map.size();
  Out.SetSize = Store.Set.size();
  Out.ShardRehashes = Store.Map.rehashes() + Store.Set.rehashes();
  return Out;
}
