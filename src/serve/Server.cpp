//===- Server.cpp - Concurrent serving runtime ----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "interp/InterpError.h"
#include "runtime/Telemetry.h"

#include <chrono>

using namespace ade;
using namespace ade::serve;

Server::Server(const ir::Module &M, ServeConfig ConfigIn)
    : Module(M), Config(std::move(ConfigIn)), Store(Config.Geo),
      Queue(Config.QueueCapacity) {
  if (Config.Threads == 0)
    Config.Threads = 1;
  ProgramFn = Module.getFunction(Config.ProgramFunction);
  // A recorder with fewer worker lanes than threads would alias traces
  // across workers; refuse it rather than corrupt the rings.
  if (Config.Flight && Config.Flight->workerLanes() < Config.Threads)
    Config.Flight = nullptr;
  Workers.reserve(Config.Threads);
  for (unsigned I = 0; I != Config.Threads; ++I) {
    Workers.push_back(std::make_unique<Worker>());
    Worker &W = *Workers.back();
    W.Index = I;
    W.Thread = std::thread([this, &W] { workerMain(W); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (Stopped.exchange(true))
    return;
  Queue.close();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

bool Server::shedByPolicy(size_t Depth) {
  // Policy rule (2), the tail-latency guard: only bite when the queue
  // is also building up, so a single slow request during an idle period
  // does not flip the server into shedding.
  if (!Config.ShedP99Ns || Depth * 2 < Queue.capacity())
    return false;
  return CachedP99Ns.load(std::memory_order_relaxed) > Config.ShedP99Ns;
}

void Server::refreshTailP99() {
  Histogram H;
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> Lock(W->StatsMu);
    H.merge(W->LatencyNs);
  }
  uint64_t P99 = H.empty() ? 0 : H.p99();
  CachedP99Ns.store(P99, std::memory_order_relaxed);
  if (Config.Flight)
    Config.Flight->noteTailLatency(P99);
}

bool Server::submit(const Request &R, Callback Done) {
  uint64_t SubmitNs = runtime::Telemetry::nowNanos();
  Job J;
  J.Req = R;
  J.Done = std::move(Done);
  J.SubmitNs = SubmitNs;

  // Refresh the rolling p99 every few hundred admissions (merging the
  // per-worker histograms on every submit would serialize admission).
  // The flight recorder's tail sampler reuses the same refresh.
  if ((Config.ShedP99Ns || Config.Flight) &&
      (AdmissionTick.fetch_add(1, std::memory_order_relaxed) & 255) == 0)
    refreshTailP99();

  bool Traced = Config.Flight && Config.Flight->shouldTrace(R.Id);
  size_t Depth = Queue.depth();
  if (Traced) {
    // One clock read: the admission span covers the shed-policy check
    // plus the enqueue, and doubles as the queue-wait start.
    J.AdmitNs = runtime::Telemetry::nowNanos();
    J.DepthAtAccept = uint32_t(Depth);
  }
  bool Admitted = !Stopped.load(std::memory_order_relaxed) &&
                  !shedByPolicy(Depth) && Queue.tryPush(std::move(J), &Depth);
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    if (Admitted) {
      ++Accepted;
      DepthAtAccept.record(Depth);
    } else {
      ++Shed;
    }
  }
  if (!Admitted) {
    if (Config.Tel)
      Config.Tel->recordShed(Depth, R.Id);
    if (Traced) {
      // Shed requests never reach a worker: their whole span tree is
      // the admission decision, recorded on the admission lane.
      uint64_t Now = runtime::Telemetry::nowNanos();
      TraceBuilder TB;
      TB.open(R, SubmitNs);
      Span &S = TB.addSpan(SpanKind::Admission, SubmitNs,
                           Now > SubmitNs ? Now - SubmitNs : 0);
      S.A = Depth;
      S.B = 1;
      TB.close(ResponseStatus::Shed, Now);
      Config.Flight->recordCompleted(Config.Flight->admissionLane(),
                                     TB.trace());
    }
  }
  return Admitted;
}

void Server::drain() {
  uint64_t Target;
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    Target = Accepted;
  }
  std::unique_lock<std::mutex> Lock(DrainMu);
  DrainCv.wait(Lock, [this, Target] { return CompletedTotal >= Target; });
}

void Server::workerMain(Worker &W) {
  EpochDomain::Participant *P = Store.Domain.registerThread();
  SharedStoreView View(Store, P);
  std::unique_ptr<vm::Engine> Eng;
  uint64_t EngineCalls = 0;

  Job J;
  while (Queue.pop(J)) {
    // A traced job carries AdmitNs from submit(); build the span tree
    // on this worker's stack and close it exactly once per request.
    bool Traced = Config.Flight && J.AdmitNs != 0;
    TraceBuilder TB;
    if (Traced) {
      uint64_t PopNs = runtime::Telemetry::nowNanos();
      TB.open(J.Req, J.SubmitNs);
      TB.addSpan(SpanKind::Admission, J.SubmitNs, J.AdmitNs - J.SubmitNs)
          .A = J.DepthAtAccept;
      TB.addSpan(SpanKind::QueueWait, J.AdmitNs,
                 PopNs > J.AdmitNs ? PopNs - J.AdmitNs : 0)
          .A = J.DepthAtAccept;
    }
    Response Resp = runJob(J, W, View, Eng, EngineCalls,
                           Traced ? &TB : nullptr);
    uint64_t EndNs = runtime::Telemetry::nowNanos();
    uint64_t Lat = EndNs - J.SubmitNs;
    if (Traced) {
      TB.close(Resp.Status, EndNs);
      Config.Flight->recordCompleted(W.Index, TB.trace());
    }
    {
      std::lock_guard<std::mutex> Lock(W.StatsMu);
      ++W.Completed;
      ++W.ByStatus[size_t(Resp.Status)];
      W.LatencyNs.record(Lat);
    }
    if (J.Done)
      J.Done(Resp);
    {
      std::lock_guard<std::mutex> Lock(DrainMu);
      ++CompletedTotal;
    }
    DrainCv.notify_all();
  }

  // Engines allocate from the store-free interpreter arena; drop ours
  // before leaving the epoch domain.
  Eng.reset();
  Store.Domain.unregisterThread(P);
}

Response Server::runJob(const Job &J, Worker &W, SharedStoreView &View,
                        std::unique_ptr<vm::Engine> &Eng,
                        uint64_t &EngineCalls, TraceBuilder *TB) {
  const Request &R = J.Req;
  FaultDecision D = Config.Faults.decide(R.Id);
  if (TB) {
    if (D.DelayMicros)
      TB->setFlag(Trace::FaultDelay);
    if (D.StormSpins)
      TB->setFlag(Trace::FaultStorm);
    if (D.ExhaustBudget)
      TB->setFlag(Trace::FaultBudget);
  }

  if (D.DelayMicros) {
    std::this_thread::sleep_for(std::chrono::microseconds(D.DelayMicros));
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.DelaysInjected;
  }
  if (D.StormSpins) {
    // Contention storm: hammer a rotating window of shard locks so
    // writers on those shards serialize behind us. Readers stay
    // unaffected — their lock-free probes are the property under test.
    size_t NShards = Store.Map.shardCount();
    for (uint32_t I = 0; I != D.StormSpins; ++I) {
      std::lock_guard<std::mutex> Lock(
          Store.Map.shardMutex((R.Key + I) % NShards));
    }
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.StormsInjected;
  }
  if (D.ExhaustBudget) {
    std::lock_guard<std::mutex> Lock(W.StatsMu);
    ++W.BudgetsInjected;
  }

  // Per-request deadline, measured from submission: a request that
  // already overstayed in the queue fails without executing; one that
  // expires mid-program is cancelled cooperatively by the engine.
  uint64_t DeadlineNs = 0;
  if (Config.DeadlineMs) {
    DeadlineNs = J.SubmitNs + Config.DeadlineMs * 1000000ull;
    if (runtime::Telemetry::nowNanos() > DeadlineNs) {
      if (Config.Tel)
        Config.Tel->recordGuardRail(runtime::GuardRailKind::Wall,
                                    Config.DeadlineMs);
      Response Resp;
      Resp.Id = R.Id;
      Resp.Status = ResponseStatus::Deadline;
      return Resp;
    }
  }

  auto ProgramFn = [&](uint64_t Key, bool Exhaust) -> Response {
    Response Resp;
    if (Exhaust) {
      Resp.Status = ResponseStatus::Budget;
      return Resp;
    }
    if (!this->ProgramFn) {
      Resp.Status = ResponseStatus::Error;
      return Resp;
    }
    // Interpreter arenas keep program-allocated collections alive for
    // the engine's lifetime, so a resident engine would grow without
    // bound; recycling it every N calls caps that at a constant.
    if (!Eng || ++EngineCalls % 256 == 0) {
      interp::InterpOptions Opts;
      Opts.MaxSteps = Config.MaxSteps;
      Opts.MaxBytes = Config.MaxBytes;
      Opts.MaxDepth = Config.MaxDepth;
      Opts.Cancel = &W.Cancel;
      Opts.Tel = Config.Tel;
      Eng = std::make_unique<vm::Engine>(Config.Engine, Module, Opts);
    }
    W.Cancel.DeadlineNs.store(DeadlineNs, std::memory_order_relaxed);
    // MaxSteps is a per-request budget: the engine's cumulative counter
    // must not leak one request's work into the next (the oracle resets
    // identically, so budget trips stay digest-comparable).
    Eng->resetCallBudget();
    // Engine-exec span baselines: engine steps (InterpStats) and
    // cancellation polls (CancelCell) are cumulative, so deltas around
    // the call attribute exactly this request's consumption.
    uint64_t EngStartNs = 0, Steps0 = 0, Polls0 = 0;
    if (TB) {
      EngStartNs = runtime::Telemetry::nowNanos();
      Steps0 = Eng->stats().InstructionsExecuted;
      Polls0 = W.Cancel.Polls.load(std::memory_order_relaxed);
    }
    try {
      Resp.Value = Eng->call(this->ProgramFn, {Key});
      Resp.Status = ResponseStatus::Ok;
    } catch (const interp::InterpError &E) {
      Resp.Value = 0;
      switch (E.kind()) {
      case interp::InterpErrorKind::StepBudget:
      case interp::InterpErrorKind::MemoryBudget:
      case interp::InterpErrorKind::DepthBudget:
        Resp.Status = ResponseStatus::Budget;
        break;
      case interp::InterpErrorKind::Deadline:
        Resp.Status = ResponseStatus::Deadline;
        break;
      case interp::InterpErrorKind::Undefined:
        Resp.Status = ResponseStatus::Error;
        break;
      }
    }
    W.Cancel.DeadlineNs.store(0, std::memory_order_relaxed);
    if (TB) {
      uint64_t EngEndNs = runtime::Telemetry::nowNanos();
      Span &S = TB->addSpan(SpanKind::EngineExec, EngStartNs,
                            EngEndNs > EngStartNs ? EngEndNs - EngStartNs
                                                  : 0);
      S.A = Eng->stats().InstructionsExecuted - Steps0;
      S.B = W.Cancel.Polls.load(std::memory_order_relaxed) - Polls0;
    }
    return Resp;
  };

  if (!TB)
    return executeRequest(R, View, Config.Geo, D, ProgramFn);

  // Traced: bracket the store/engine section, then turn the view's
  // per-op accounting into table-op and epoch spans. Span bounds are
  // the exec section (per-op timing would put clock reads on lock-free
  // read paths hot enough to blow the tracing overhead budget).
  uint64_t ExecStartNs = runtime::Telemetry::nowNanos();
  View.beginRequest(true);
  Response Resp = executeRequest(R, View, Config.Geo, D, ProgramFn);
  View.beginRequest(false);
  uint64_t ExecDurNs = runtime::Telemetry::nowNanos() - ExecStartNs;

  const SharedStoreView::RequestStats &VS = View.requestStats();
  for (unsigned I = 0; I != VS.NumWrites; ++I) {
    Span &S = TB->addSpan(SpanKind::TableOp, ExecStartNs, ExecDurNs);
    S.Shard = VS.Writes[I].Shard;
    S.A = VS.Writes[I].Ops;
    S.B = VS.Writes[I].LockWaitNs;
  }
  if (VS.OverflowOps) {
    Span &S = TB->addSpan(SpanKind::TableOp, ExecStartNs, ExecDurNs);
    S.A = VS.OverflowOps;
    S.B = VS.OverflowWaitNs;
  }
  if (VS.ReadOps)
    TB->addSpan(SpanKind::TableOp, ExecStartNs, ExecDurNs).A = VS.ReadOps;
  if (VS.Pins) {
    Span &S = TB->addSpan(SpanKind::Epoch, ExecStartNs, ExecDurNs);
    S.A = VS.Pins;
    S.B = Store.Domain.retiredApprox();
  }
  return Resp;
}

ServerStats Server::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(AdmissionMu);
    Out.Accepted = Accepted;
    Out.Shed = Shed;
    Out.DepthAtAccept = DepthAtAccept;
  }
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> Lock(W->StatsMu);
    Out.Completed += W->Completed;
    for (unsigned I = 0; I != 6; ++I)
      Out.ByStatus[I] += W->ByStatus[I];
    Out.DelaysInjected += W->DelaysInjected;
    Out.StormsInjected += W->StormsInjected;
    Out.BudgetsInjected += W->BudgetsInjected;
    Out.LatencyNs.merge(W->LatencyNs);
  }
  Out.MapSize = Store.Map.size();
  Out.SetSize = Store.Set.size();
  Out.ShardRehashes = Store.Map.rehashes() + Store.Set.rehashes();
  return Out;
}

void Server::publishGauges() const {
  if (!Config.Tel)
    return;
  std::vector<runtime::Telemetry::ShardContentionRow> Rows;
  auto Append = [&Rows](const char *Table,
                        std::vector<ShardContention> Shards) {
    for (const ShardContention &C : Shards) {
      if (!C.Acquisitions)
        continue;
      runtime::Telemetry::ShardContentionRow R;
      R.Table = Table;
      R.Shard = C.Shard;
      R.Acquisitions = C.Acquisitions;
      R.WaitTotalNs = C.WaitTotalNs;
      R.WaitMaxNs = C.WaitMaxNs;
      Rows.push_back(std::move(R));
    }
  };
  Append("map", Store.Map.contention());
  Append("set", Store.Set.contention());
  Config.Tel->publishShardContention(std::move(Rows));

  runtime::Telemetry::EpochGauges G;
  G.GlobalEpoch = Store.Domain.globalEpoch();
  G.RetiredLive = Store.Domain.retiredApprox();
  G.TotalRetired = Store.Domain.totalRetired();
  Config.Tel->publishEpochGauges(G);
}
