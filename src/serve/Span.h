//===- Span.h - Request-scoped tracing and flight recorder ------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped tracing for the serving runtime: each traced request
/// carries a \c TraceBuilder from admission through the worker pool and
/// records a small span tree — admission, queue-wait, per-shard
/// table-op (lock-wait time and shard id), engine-exec (step budget
/// consumed and cancellation polls via \c interp::CancelCell) and epoch
/// (pin count, reclamation lag). Completed traces land in per-worker
/// ring buffers inside the \c FlightRecorder.
///
/// Sampling is **tail-based**: every completed trace charges the stage
/// histograms, but a trace is kept in full (the "sampled" ring) only
/// when its outcome is interesting — Shed, Deadline, Budget, Error, a
/// fault-plan injection, or total latency above the rolling p99 the
/// server feeds in via \c noteTailLatency. A separate "recent" ring
/// keeps the last N completed traces per worker unconditionally: the
/// flight-recorder view dumped on crash, on shed/deadline storms, or on
/// demand (`adesrv --flight-out`). An optional head-sampling rate
/// (\c Options::SampleEvery) bounds tracing overhead by tracing only
/// 1-in-N requests, keyed deterministically on the request id.
///
/// Concurrency: span collection happens entirely on the owning worker's
/// stack (no shared state). The completed-trace hand-off writes the
/// worker's own rings through a per-slot sequence counter (odd while a
/// write is in flight), so the producer never blocks and a best-effort
/// reader — the crash-dump hook — can skip slots mid-write. The
/// admission lane (shed traces, written from submitter threads) is the
/// one multi-producer lane and serializes on an internal mutex; it is
/// off the accepted-request hot path. Orderly dumps (end of run, storm,
/// on demand) run at quiescence — after drain/stop — so they read fully
/// stable rings.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_SPAN_H
#define ADE_SERVE_SPAN_H

#include "serve/Request.h"
#include "support/Histogram.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ade {

class TraceRecorder;

namespace json {
class Writer;
}

namespace serve {

/// Stages of a request's span tree.
enum class SpanKind : uint8_t {
  /// Admission decision (shed policy + enqueue). A = queue depth at the
  /// decision, B = 1 when the request was shed.
  Admission,
  /// Time between enqueue and a worker dequeuing the job. A = queue
  /// depth at accept.
  QueueWait,
  /// Shared-store operations. Per-shard write spans carry the shard id,
  /// A = ops on that shard, B = shard lock-wait ns; the cross-shard
  /// read aggregate uses Shard = NoShard with A = lock-free read ops.
  TableOp,
  /// Engine execution of a ProgramCall. A = engine steps consumed,
  /// B = cancellation polls observed (CancelCell::Polls delta).
  EngineExec,
  /// Epoch-protected section. A = epoch pins taken by the request,
  /// B = retired blocks still awaiting reclamation (reclamation lag).
  Epoch,
  NumKinds,
};

const char *spanKindName(SpanKind K);

/// One completed span. Times are relative to the owning trace's
/// SubmitNs so traces stay meaningful across ring copies.
struct Span {
  static constexpr uint32_t NoShard = ~uint32_t(0);

  SpanKind Kind = SpanKind::Admission;
  /// TableOp write spans: owning shard; NoShard otherwise.
  uint32_t Shard = NoShard;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  /// Per-kind payloads (see SpanKind).
  uint64_t A = 0;
  uint64_t B = 0;
};

/// One request's completed span tree, fixed-size so ring slots never
/// allocate. Spans beyond MaxSpans are counted in DroppedSpans.
struct Trace {
  static constexpr unsigned MaxSpans = 12;

  /// Fault-plan injections observed by this request, plus the
  /// tail-sampling verdict.
  enum Flag : uint8_t {
    FaultDelay = 1,
    FaultStorm = 2,
    FaultBudget = 4,
    /// Total latency exceeded the rolling-p99 tail threshold.
    SlowTail = 8,
  };

  uint64_t Id = 0;
  /// Absolute steady-clock ns of submission (span times are relative).
  uint64_t SubmitNs = 0;
  uint64_t TotalNs = 0;
  /// Worker index, or the recorder's admission lane for shed traces.
  uint32_t Worker = 0;
  RequestOp Op = RequestOp::PointLookup;
  ResponseStatus Status = ResponseStatus::Ok;
  uint8_t Flags = 0;
  uint8_t NumSpans = 0;
  uint8_t DroppedSpans = 0;
  Span Spans[MaxSpans];
};

/// Builds one request's trace on the owning thread's stack. The span
/// tree is closed exactly once: close() asserts single completion, and
/// the server only hands closed traces to the recorder.
class TraceBuilder {
public:
  void open(const Request &R, uint64_t SubmitNs) {
    assert(!Opened && "trace opened twice");
    Opened = true;
    T = Trace();
    T.Id = R.Id;
    T.Op = R.Op;
    T.SubmitNs = SubmitNs;
  }

  bool opened() const { return Opened; }
  bool closed() const { return Closed; }

  /// Appends a completed span; \p StartNs is absolute steady-clock ns.
  /// Returns a scratch span (not stored) once the tree is full, after
  /// bumping DroppedSpans — callers can set payloads unconditionally.
  Span &addSpan(SpanKind K, uint64_t StartNs, uint64_t DurNs) {
    assert(Opened && !Closed && "span outside open trace");
    Span *S;
    if (T.NumSpans < Trace::MaxSpans) {
      S = &T.Spans[T.NumSpans++];
    } else {
      ++T.DroppedSpans;
      S = &Overflow;
    }
    *S = Span();
    S->Kind = K;
    S->StartNs = StartNs > T.SubmitNs ? StartNs - T.SubmitNs : 0;
    S->DurNs = DurNs;
    return *S;
  }

  void setFlag(Trace::Flag F) { T.Flags |= uint8_t(F); }

  /// Completes the tree. Must be called exactly once per open().
  void close(ResponseStatus Status, uint64_t EndNs) {
    assert(Opened && "closing a never-opened trace");
    assert(!Closed && "trace closed twice");
    Closed = true;
    T.Status = Status;
    T.TotalNs = EndNs > T.SubmitNs ? EndNs - T.SubmitNs : 0;
  }

  const Trace &trace() const {
    assert(Closed && "reading an unclosed trace");
    return T;
  }

private:
  Trace T;
  Span Overflow;
  bool Opened = false;
  bool Closed = false;
};

/// Per-worker trace rings plus stage histograms: the tail sampler and
/// the flight recorder (see file comment for the concurrency contract).
class FlightRecorder {
public:
  struct Options {
    /// Worker lanes; lane Workers (one past the last worker) is the
    /// admission lane for traces shed before any worker saw them.
    unsigned Workers = 1;
    /// Flight ring: last N completed traces kept per lane.
    unsigned RecentPerLane = 64;
    /// Tail-sampled ring: last N *interesting* traces kept per lane.
    unsigned SampledPerLane = 64;
    /// Head sampling: trace 1 in N requests (<=1 = every request),
    /// keyed on the request id so the choice is deterministic. The
    /// default rate bounds tracing overhead on sub-microsecond
    /// requests to well under the 5% CI gate (srv_scaling
    /// --assert-trace-overhead): a fully traced request costs a few
    /// hundred ns (clock reads + ring hand-off), which full-rate
    /// tracing cannot hide. Soaks that must capture *every* outcome
    /// (adesrv --trace-sample=1) opt into full-rate explicitly.
    uint64_t SampleEvery = 64;
  };

  explicit FlightRecorder(Options O);

  unsigned workerLanes() const { return unsigned(Lanes.size()) - 1; }
  unsigned admissionLane() const { return unsigned(Lanes.size()) - 1; }

  /// Head-sampling decision for \p RequestId (deterministic).
  bool shouldTrace(uint64_t RequestId) const;

  /// Feeds the rolling p99 the tail sampler compares total latency
  /// against (the server refreshes it from its latency histograms).
  void noteTailLatency(uint64_t P99Ns) {
    TailNs.store(P99Ns, std::memory_order_relaxed);
  }
  uint64_t tailThresholdNs() const {
    return TailNs.load(std::memory_order_relaxed);
  }

  /// The tail-sampling predicate (exposed for tests).
  bool interesting(const Trace &T) const;

  /// Hands a completed trace to lane \p Lane: charges the stage
  /// histograms, stamps SlowTail, keeps it in the recent ring and — when
  /// interesting — the sampled ring. Single producer per worker lane;
  /// the admission lane serializes internally.
  void recordCompleted(unsigned Lane, const Trace &T);

  uint64_t tracesRecorded() const {
    return Recorded.load(std::memory_order_relaxed);
  }
  uint64_t tracesSampled() const {
    return SampledCount.load(std::memory_order_relaxed);
  }
  uint64_t spansDropped() const {
    return DroppedSpans.load(std::memory_order_relaxed);
  }

  /// Ring snapshots across all lanes, oldest first (best-effort under
  /// concurrent writes; exact at quiescence).
  std::vector<Trace> recentTraces() const;
  std::vector<Trace> sampledTraces() const;

  /// Stage histogram for \p K merged over every lane.
  Histogram stageHistogram(SpanKind K) const;

  /// Writes the flight dump document: stage breakdown percentiles plus
  /// every lane's recent and sampled traces. \p Reason is stamped into
  /// the document ("end-of-run", "storm", "crash", "on-demand").
  void writeJson(json::Writer &W, const char *Reason) const;

  /// Mirrors the sampled traces onto \p TR as Chrome trace-event
  /// complete events (category "serve"), aligning steady-clock span
  /// times with the recorder's epoch so request spans merge with
  /// compile-phase events on the same timeline.
  void mergeIntoTrace(TraceRecorder &TR) const;

private:
  /// One ring slot, guarded by a per-slot sequence counter: odd while
  /// the producer is writing, even when stable (the value is 2*turn+2
  /// after the turn's write, so a reader can pair a slot with its
  /// generation).
  struct Slot {
    std::atomic<uint64_t> Seq{0};
    Trace T;
  };

  struct Ring {
    std::unique_ptr<Slot[]> Slots;
    unsigned Cap = 0;
    std::atomic<uint64_t> Head{0};

    void init(unsigned N);
    void push(const Trace &T);
    /// Appends stable slots, oldest first.
    void snapshot(std::vector<Trace> &Out) const;
  };

  struct Lane {
    Ring Recent;
    Ring Sampled;
    Histogram Stage[size_t(SpanKind::NumKinds)];
    uint64_t StatusCounts[6] = {};
  };

  void writeTraceJson(json::Writer &W, const Trace &T) const;

  Options Opts;
  std::vector<std::unique_ptr<Lane>> Lanes;
  /// Serializes the multi-producer admission lane only.
  std::mutex AdmissionMu;
  std::atomic<uint64_t> TailNs{0};
  std::atomic<uint64_t> Recorded{0};
  std::atomic<uint64_t> SampledCount{0};
  std::atomic<uint64_t> DroppedSpans{0};
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_SPAN_H
