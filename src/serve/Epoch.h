//===- Epoch.h - Epoch-based memory reclamation -----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR) in the style of FreeBSD's epoch(9) and
/// crossbeam: readers pin the current global epoch for the duration of a
/// lock-free operation, writers retire replaced storage (an old hash
/// table, a grown bitset's word array) instead of freeing it, and the
/// domain frees a retired block only once every pinned reader has moved
/// two epochs past it — at which point no thread can still hold a
/// pointer into it. This is what lets the sharded collections' `has` /
/// `read` paths run without taking the shard lock: a resize publishes a
/// new table pointer and retires the old one, and concurrent readers
/// finish their probe sequence on whichever table they pinned.
///
/// The classic 3-epoch argument: a reader pinned at epoch E can hold
/// references retired at E or E-1 (retired by a writer it raced), but
/// never E-2 — the global epoch only advances when every pinned reader
/// has observed the current value, so by the time the epoch reaches E+2
/// every reader that could have seen the block has unpinned.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_EPOCH_H
#define ADE_SERVE_EPOCH_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ade {
namespace serve {

/// One reclamation domain: a set of participating threads plus the
/// retired-block lists. Collections sharing a domain amortize its epoch
/// bookkeeping; adesrv uses one domain per Server.
class EpochDomain {
public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain &) = delete;
  EpochDomain &operator=(const EpochDomain &) = delete;

  /// A thread's registration in the domain. Cheap to keep for the
  /// thread's lifetime; release with unregisterThread.
  struct Participant;

  /// Registers the calling thread (idempotent per Participant). Must be
  /// balanced with unregisterThread before the domain is destroyed.
  Participant *registerThread();
  void unregisterThread(Participant *P);

  /// Pins/unpins the calling thread's participant. While pinned, any
  /// pointer loaded from an epoch-protected structure stays valid.
  /// Non-reentrant per participant (use Guard).
  void pin(Participant *P);
  void unpin(Participant *P);

  /// RAII pin for one protected operation.
  class Guard {
  public:
    Guard(EpochDomain &D, Participant *P) : D(D), P(P) { D.pin(P); }
    ~Guard() { D.unpin(P); }
    Guard(const Guard &) = delete;
    Guard &operator=(const Guard &) = delete;

  private:
    EpochDomain &D;
    Participant *P;
  };

  /// Hands \p Block to the domain for deferred destruction via
  /// \p Deleter once no reader can still reference it. Callable while
  /// pinned (a writer retiring under its shard lock usually is).
  void retire(void *Block, void (*Deleter)(void *));

  /// Convenience for new[]-allocated arrays and new-allocated objects.
  template <typename T> void retireArray(T *Block) {
    retire(Block, [](void *P) { delete[] static_cast<T *>(P); });
  }
  template <typename T> void retireObject(T *Block) {
    retire(Block, [](void *P) { delete static_cast<T *>(P); });
  }

  /// Attempts one epoch advance and frees every block that became
  /// unreachable. Called automatically every few retirements; tests and
  /// shutdown paths call it directly. Returns the number of blocks freed.
  size_t collect();

  /// Blocks currently awaiting reclamation (tests).
  size_t retiredCount() const;

  /// Lock-free mirror of retiredCount(): the reclamation-lag gauge the
  /// tracing layer reads per request (exact at quiescence; may lag a
  /// concurrent retire/collect by a few blocks).
  uint64_t retiredApprox() const {
    return RetiredLive.load(std::memory_order_relaxed);
  }

  /// Total blocks ever retired (monotonic, lock-free).
  uint64_t totalRetired() const {
    return TotalRetired.load(std::memory_order_relaxed);
  }

  uint64_t globalEpoch() const {
    return Global.load(std::memory_order_acquire);
  }

private:
  struct RetiredBlock {
    uint64_t Epoch;
    void *Block;
    void (*Deleter)(void *);
  };

  /// True when every currently pinned participant has observed \p E.
  bool allObserved(uint64_t E) const;

  std::atomic<uint64_t> Global{2};

  /// Lock-free gauges (see retiredApprox / totalRetired).
  std::atomic<uint64_t> RetiredLive{0};
  std::atomic<uint64_t> TotalRetired{0};

  mutable std::mutex Mu;
  std::vector<Participant *> Participants;
  std::vector<RetiredBlock> Retired;
  /// Retirements since the last collect() attempt.
  unsigned RetireTick = 0;
};

struct EpochDomain::Participant {
  /// 0 = unpinned; otherwise the global epoch value observed at pin.
  std::atomic<uint64_t> Pinned{0};
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_EPOCH_H
