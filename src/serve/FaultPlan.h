//===- FaultPlan.h - Deterministic fault injection --------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fault injection for the serving runtime. Every decision
/// is a pure function of (seed, request id), so the single-threaded
/// oracle replaying a stream makes exactly the same decisions as the
/// 8-thread server under soak — injected *timing* faults (delays, shard
/// -lock contention storms) perturb scheduling without changing any
/// response, and injected *budget exhaustion* fails the same requests
/// on both sides, keeping digests bit-identical.
///
/// Plan format (--fault-plan=SPEC), comma-separated key=value:
///
///   seed=N            decision seed (default 1)
///   delay=P:USEC      with probability P, sleep USEC before executing
///   storm=P:SPINS     with probability P, lock/unlock a rotating set of
///                     shard mutexes SPINS times (contention storm)
///   budget=P          with probability P, run the request under an
///                     exhausted step budget -> ResponseStatus::Budget
///
/// Example: --fault-plan=seed=42,delay=0.01:200,storm=0.005:50,budget=0.02
///
//===----------------------------------------------------------------------===//

#ifndef ADE_SERVE_FAULTPLAN_H
#define ADE_SERVE_FAULTPLAN_H

#include <cstdint>
#include <string>

namespace ade {
namespace serve {

/// What to inject for one request.
struct FaultDecision {
  /// Sleep this long before executing (0 = none).
  uint32_t DelayMicros = 0;
  /// Lock/unlock rotating shard mutexes this many times (0 = none).
  uint32_t StormSpins = 0;
  /// Execute under an exhausted budget, failing deterministically.
  bool ExhaustBudget = false;
};

class FaultPlan {
public:
  /// Parses the SPEC format above; false (with \p Error set) on
  /// malformed input. An empty spec is the all-off plan.
  static bool parse(const std::string &Spec, FaultPlan &Out,
                    std::string *Error);

  /// True when any fault has nonzero probability.
  bool enabled() const {
    return DelayP > 0 || StormP > 0 || BudgetP > 0;
  }

  /// The (deterministic) faults for request \p Id.
  FaultDecision decide(uint64_t Id) const;

  /// Round-trippable spec string ("off" when disabled).
  std::string describe() const;

  uint64_t seed() const { return Seed; }

private:
  uint64_t Seed = 1;
  double DelayP = 0;
  uint32_t DelayMicros = 0;
  double StormP = 0;
  uint32_t StormSpins = 0;
  double BudgetP = 0;
};

} // namespace serve
} // namespace ade

#endif // ADE_SERVE_FAULTPLAN_H
