//===- Workload.cpp - Request streams and digests -------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Workload.h"

#include <cmath>

using namespace ade;
using namespace ade::serve;

const char *serve::requestOpName(RequestOp Op) {
  switch (Op) {
  case RequestOp::PointLookup:
    return "lookup";
  case RequestOp::BulkInsert:
    return "insert";
  case RequestOp::GraphQuery:
    return "graph";
  case RequestOp::ProgramCall:
    return "program";
  }
  return "?";
}

const char *serve::responseStatusName(ResponseStatus S) {
  switch (S) {
  case ResponseStatus::Ok:
    return "ok";
  case ResponseStatus::NotFound:
    return "not-found";
  case ResponseStatus::Shed:
    return "shed";
  case ResponseStatus::Budget:
    return "budget";
  case ResponseStatus::Deadline:
    return "deadline";
  case ResponseStatus::Error:
    return "error";
  }
  return "?";
}

static double zeta(uint64_t N, double Theta) {
  double Sum = 0;
  for (uint64_t I = 1; I <= N; ++I)
    Sum += 1.0 / std::pow(double(I), Theta);
  return Sum;
}

Zipfian::Zipfian(uint64_t N, double Theta) : N(N ? N : 1), Theta(Theta) {
  Zetan = zeta(this->N, Theta);
  double Zeta2 = zeta(2, Theta);
  Alpha = 1.0 / (1.0 - Theta);
  Eta = (1.0 - std::pow(2.0 / double(this->N), 1.0 - Theta)) /
        (1.0 - Zeta2 / Zetan);
}

uint64_t Zipfian::sample(Rng &R) const {
  double U = R.nextDouble();
  double Uz = U * Zetan;
  uint64_t Rank;
  if (Uz < 1.0)
    Rank = 0;
  else if (Uz < 1.0 + std::pow(0.5, Theta))
    Rank = 1;
  else
    Rank = uint64_t(double(N) *
                    std::pow(Eta * U - Eta + 1.0, Alpha));
  if (Rank >= N)
    Rank = N - 1;
  // Scatter ranks over the key space so the most popular keys do not
  // all share the low-order shard stripes.
  return hashU64(Rank * 0x100000001b3ULL) % N;
}

std::vector<Request> serve::buildStream(const WorkloadSpec &Spec,
                                        uint32_t Stream) {
  std::vector<Request> Out;
  Out.reserve(Spec.InsertsPerStream + Spec.ReadsPerStream);
  Rng R(hashCombine(Spec.Seed, Stream));
  Zipfian Z(Spec.Geo.KeyUniverse, Spec.ZipfTheta);
  uint32_t Seq = 0;
  for (uint32_t I = 0; I != Spec.InsertsPerStream; ++I, ++Seq) {
    Request Req;
    Req.Id = requestId(Stream, Seq);
    Req.Stream = Stream;
    Req.SeqInStream = Seq;
    Req.Op = RequestOp::BulkInsert;
    Req.Key = R.nextBelow(Spec.Geo.KeyUniverse);
    Req.Count = Spec.BulkCount;
    Out.push_back(Req);
  }
  for (uint32_t I = 0; I != Spec.ReadsPerStream; ++I, ++Seq) {
    Request Req;
    Req.Id = requestId(Stream, Seq);
    Req.Stream = Stream;
    Req.SeqInStream = Seq;
    double Mix = R.nextDouble();
    if (Mix < Spec.LookupFrac) {
      Req.Op = RequestOp::PointLookup;
    } else if (Mix < Spec.LookupFrac + Spec.GraphFrac) {
      Req.Op = RequestOp::GraphQuery;
    } else if (Spec.ProgramCalls) {
      Req.Op = RequestOp::ProgramCall;
    } else {
      Req.Op = RequestOp::PointLookup;
    }
    Req.Key = Z.sample(R);
    Out.push_back(Req);
  }
  return Out;
}

uint64_t serve::streamDigest(const std::vector<Response> &Responses) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 0x100000001b3ULL;
    }
  };
  for (const Response &R : Responses) {
    Mix(R.Id);
    Mix(uint64_t(R.Status));
    Mix(R.Value);
  }
  return H;
}
