//===- Client.cpp - Client harness and differential oracle ----------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "interp/InterpError.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace ade;
using namespace ade::serve;

namespace {

/// All streams' requests plus response slots addressed by (stream,
/// seq). Slots are written exactly once, from whichever worker thread
/// completes the request; the drain barrier orders those writes before
/// the client reads them.
struct StreamState {
  std::vector<std::vector<Request>> Requests;
  std::vector<std::vector<Response>> Responses;
};

} // namespace

/// Submits requests [Begin, End) of the given streams, retrying sheds
/// per the options. Returns (submitted, sheds).
static void submitRange(Server &S, StreamState &State,
                        const std::vector<uint32_t> &Streams, uint32_t Begin,
                        uint32_t End, const ClientOptions &Options,
                        std::atomic<uint64_t> &Submitted,
                        std::atomic<uint64_t> &Sheds) {
  for (uint32_t Stream : Streams) {
    const std::vector<Request> &Reqs = State.Requests[Stream];
    uint32_t Hi = std::min<uint32_t>(End, uint32_t(Reqs.size()));
    for (uint32_t Seq = Begin; Seq < Hi; ++Seq) {
      const Request &R = Reqs[Seq];
      Response *Slot = &State.Responses[Stream][Seq];
      unsigned BackoffUs = 50;
      for (;;) {
        bool Ok = S.submit(R, [Slot](const Response &Resp) {
          *Slot = Resp;
        });
        Submitted.fetch_add(1, std::memory_order_relaxed);
        if (Ok)
          break;
        Sheds.fetch_add(1, std::memory_order_relaxed);
        if (!Options.RetryShed) {
          Slot->Id = R.Id;
          Slot->Status = ResponseStatus::Shed;
          Slot->Value = 0;
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(BackoffUs));
        if (BackoffUs < 5000)
          BackoffUs *= 2;
      }
    }
  }
}

/// One submission phase across SubmitThreads client threads, then the
/// drain barrier.
static void runPhase(Server &S, StreamState &State, uint32_t Begin,
                     uint32_t End, const ClientOptions &Options,
                     std::atomic<uint64_t> &Submitted,
                     std::atomic<uint64_t> &Sheds) {
  unsigned NThreads = std::max(1u, Options.SubmitThreads);
  std::vector<std::vector<uint32_t>> Assignment(NThreads);
  for (uint32_t Stream = 0; Stream != State.Requests.size(); ++Stream)
    Assignment[Stream % NThreads].push_back(Stream);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NThreads; ++T) {
    if (Assignment[T].empty())
      continue;
    Threads.emplace_back([&, T] {
      submitRange(S, State, Assignment[T], Begin, End, Options, Submitted,
                  Sheds);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  S.drain();
}

ClientResult serve::runClient(Server &S, const WorkloadSpec &Spec,
                              const ClientOptions &Options) {
  StreamState State;
  State.Requests.reserve(Spec.Streams);
  State.Responses.resize(Spec.Streams);
  for (uint32_t Stream = 0; Stream != Spec.Streams; ++Stream) {
    State.Requests.push_back(buildStream(Spec, Stream));
    State.Responses[Stream].resize(State.Requests.back().size());
  }

  std::atomic<uint64_t> Submitted{0}, Sheds{0};
  uint32_t Boundary = phaseBoundary(Spec);
  runPhase(S, State, 0, Boundary, Options, Submitted, Sheds);
  runPhase(S, State, Boundary, ~uint32_t(0), Options, Submitted, Sheds);

  ClientResult Out;
  Out.Submitted = Submitted.load();
  Out.Sheds = Sheds.load();
  Out.Digests.reserve(Spec.Streams);
  for (uint32_t Stream = 0; Stream != Spec.Streams; ++Stream) {
    for (const Response &R : State.Responses[Stream])
      ++Out.ByStatus[size_t(R.Status)];
    Out.Digests.push_back(streamDigest(State.Responses[Stream]));
  }
  return Out;
}

namespace {

/// The oracle's private store: the same semantics as SharedStore via
/// plain standard containers — deliberately a different implementation
/// so the soak cross-checks the concurrent structures against an
/// independent one.
struct RefStore {
  std::unordered_map<uint64_t, uint64_t> Map;
  std::unordered_set<uint64_t> Set;

  bool mapGet(uint64_t Key, uint64_t &Val) {
    auto It = Map.find(Key);
    if (It == Map.end())
      return false;
    Val = It->second;
    return true;
  }
  void upsert(uint64_t Key, uint64_t Val) {
    Map[Key] = Val;
    Set.insert(Key);
  }
  bool setHas(uint64_t Key) { return Set.count(Key) != 0; }
};

} // namespace

std::vector<uint64_t> serve::runOracle(const ir::Module &M,
                                       const WorkloadSpec &Spec,
                                       const ServeConfig &Config,
                                       vm::EngineKind Engine) {
  RefStore Store;
  const ir::Function *Fn = M.getFunction(Config.ProgramFunction);
  std::unique_ptr<vm::Engine> Eng;
  uint64_t EngineCalls = 0;
  auto ProgramFn = [&](uint64_t Key, bool Exhaust) -> Response {
    Response Resp;
    if (Exhaust) {
      Resp.Status = ResponseStatus::Budget;
      return Resp;
    }
    if (!Fn) {
      Resp.Status = ResponseStatus::Error;
      return Resp;
    }
    // Mirror the server's engine-recycling cadence (results do not
    // depend on it; memory does).
    if (!Eng || ++EngineCalls % 256 == 0) {
      interp::InterpOptions Opts;
      Opts.MaxSteps = Config.MaxSteps;
      Opts.MaxBytes = Config.MaxBytes;
      Opts.MaxDepth = Config.MaxDepth;
      Eng = std::make_unique<vm::Engine>(Engine, M, Opts);
    }
    Eng->resetCallBudget(); // per-request budget, as the server does
    try {
      Resp.Value = Eng->call(Fn, {Key});
      Resp.Status = ResponseStatus::Ok;
    } catch (const interp::InterpError &E) {
      Resp.Value = 0;
      switch (E.kind()) {
      case interp::InterpErrorKind::StepBudget:
      case interp::InterpErrorKind::MemoryBudget:
      case interp::InterpErrorKind::DepthBudget:
        Resp.Status = ResponseStatus::Budget;
        break;
      case interp::InterpErrorKind::Deadline:
        Resp.Status = ResponseStatus::Deadline;
        break;
      case interp::InterpErrorKind::Undefined:
        Resp.Status = ResponseStatus::Error;
        break;
      }
    }
    return Resp;
  };

  std::vector<std::vector<Request>> Streams;
  std::vector<std::vector<Response>> Responses(Spec.Streams);
  for (uint32_t Stream = 0; Stream != Spec.Streams; ++Stream) {
    Streams.push_back(buildStream(Spec, Stream));
    Responses[Stream].resize(Streams.back().size());
  }

  // Phase 1 for every stream, then phase 2 — the sequential image of
  // the client's barrier. Within a phase, stream-then-sequence order;
  // phase-1 responses are order-independent so this choice is
  // arbitrary but fixed.
  uint32_t Boundary = phaseBoundary(Spec);
  for (int Phase = 0; Phase != 2; ++Phase) {
    for (uint32_t Stream = 0; Stream != Spec.Streams; ++Stream) {
      const std::vector<Request> &Reqs = Streams[Stream];
      uint32_t Lo = Phase == 0 ? 0 : Boundary;
      uint32_t Hi = Phase == 0 ? std::min<uint32_t>(Boundary,
                                                    uint32_t(Reqs.size()))
                               : uint32_t(Reqs.size());
      for (uint32_t Seq = Lo; Seq < Hi; ++Seq) {
        FaultDecision D = Config.Faults.decide(Reqs[Seq].Id);
        // Timing faults (delay/storm) are no-ops sequentially.
        Responses[Stream][Seq] =
            executeRequest(Reqs[Seq], Store, Spec.Geo, D, ProgramFn);
      }
    }
  }

  std::vector<uint64_t> Digests;
  Digests.reserve(Spec.Streams);
  for (uint32_t Stream = 0; Stream != Spec.Streams; ++Stream)
    Digests.push_back(streamDigest(Responses[Stream]));
  return Digests;
}
