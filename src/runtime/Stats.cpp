//===- Stats.cpp - Dynamic operation statistics ---------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Stats.h"

#include "support/ErrorHandling.h"

using namespace ade;
using namespace ade::runtime;

const char *ade::runtime::opCategoryName(OpCategory C) {
  switch (C) {
  case OpCategory::Read:
    return "read";
  case OpCategory::Write:
    return "write";
  case OpCategory::Insert:
    return "insert";
  case OpCategory::Remove:
    return "remove";
  case OpCategory::Has:
    return "has";
  case OpCategory::Size:
    return "size";
  case OpCategory::Clear:
    return "clear";
  case OpCategory::Reserve:
    return "reserve";
  case OpCategory::Iterate:
    return "iterate";
  case OpCategory::Union:
    return "union";
  case OpCategory::Enc:
    return "enc";
  case OpCategory::Dec:
    return "dec";
  case OpCategory::EnumAdd:
    return "add";
  case OpCategory::NumCategories:
    break;
  }
  ade_unreachable("unknown op category");
}
