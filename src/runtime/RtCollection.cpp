//===- RtCollection.cpp - Type-erased runtime collections -----------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtCollection.h"

#include "runtime/RtConcrete.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <atomic>

using namespace ade;
using namespace ade::ir;
using namespace ade::runtime;

/// Monotonic count of runtime-collection destructions; see
/// RtCollection::destructionEpoch(). Relaxed is sufficient: readers only
/// compare snapshots taken on the same thread as the destructions.
static std::atomic<uint64_t> DestructionEpochCounter{0};

RtCollection::~RtCollection() {
  // Invalidate any state keyed on this object's address before the
  // allocator can recycle it: the telemetry scratch (a recycled address
  // must never be charged to the stale allocation site) and, via the
  // epoch bump, every engine-side cache holding this pointer.
  TelScratch = TelemetryScratch();
  DestructionEpochCounter.fetch_add(1, std::memory_order_relaxed);
}

uint64_t RtCollection::destructionEpoch() {
  return DestructionEpochCounter.load(std::memory_order_relaxed);
}

bool ade::runtime::selectionIsDense(Selection Sel) {
  switch (Sel) {
  case Selection::Array:
  case Selection::BitSet:
  case Selection::SparseBitSet:
  case Selection::BitMap:
    return true;
  case Selection::Empty:
  case Selection::HashSet:
  case Selection::FlatSet:
  case Selection::SwissSet:
  case Selection::HashMap:
  case Selection::SwissMap:
    return false;
  }
  ade_unreachable("unknown selection");
}

const char *ade::runtime::rtKindName(RtKind K) {
  switch (K) {
  case RtKind::Seq:
    return "seq";
  case RtKind::Set:
    return "set";
  case RtKind::Map:
    return "map";
  }
  ade_unreachable("unknown collection kind");
}

// The concrete adapters live in RtConcrete.h (shared with the bytecode
// VM's inline caches); this file keeps only the selection factory.

std::unique_ptr<RtCollection>
ade::runtime::createCollection(const Type *Ty,
                               const RuntimeDefaults &Defaults) {
  if (isa<SeqType>(Ty))
    return std::make_unique<ArraySeq>();
  if (const auto *Set = dyn_cast<SetType>(Ty)) {
    Selection Sel = Set->selection() == Selection::Empty ? Defaults.SetImpl
                                                         : Set->selection();
    switch (Sel) {
    case Selection::HashSet:
      return std::make_unique<RtHashSet>();
    case Selection::SwissSet:
      return std::make_unique<RtSwissSet>();
    case Selection::FlatSet:
      return std::make_unique<RtFlatSet>();
    case Selection::BitSet:
      return std::make_unique<RtBitSet>();
    case Selection::SparseBitSet:
      return std::make_unique<RtRoaringSet>();
    default:
      reportFatalError("invalid selection for a Set");
    }
  }
  if (const auto *Map = dyn_cast<MapType>(Ty)) {
    Selection Sel = Map->selection() == Selection::Empty ? Defaults.MapImpl
                                                         : Map->selection();
    switch (Sel) {
    case Selection::HashMap:
      return std::make_unique<RtHashMap>();
    case Selection::SwissMap:
      return std::make_unique<RtSwissMap>();
    case Selection::BitMap:
      return std::make_unique<RtBitMap>();
    default:
      reportFatalError("invalid selection for a Map");
    }
  }
  reportFatalError("createCollection requires a collection type");
}
