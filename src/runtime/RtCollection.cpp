//===- RtCollection.cpp - Type-erased runtime collections -----------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtCollection.h"

#include "collections/BitMap.h"
#include "collections/BitSet.h"
#include "collections/FlatSet.h"
#include "collections/HashMap.h"
#include "collections/HashSet.h"
#include "collections/RoaringBitSet.h"
#include "collections/Sequence.h"
#include "collections/SwissMap.h"
#include "collections/SwissSet.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace ade;
using namespace ade::ir;
using namespace ade::runtime;

bool ade::runtime::selectionIsDense(Selection Sel) {
  switch (Sel) {
  case Selection::Array:
  case Selection::BitSet:
  case Selection::SparseBitSet:
  case Selection::BitMap:
    return true;
  case Selection::Empty:
  case Selection::HashSet:
  case Selection::FlatSet:
  case Selection::SwissSet:
  case Selection::HashMap:
  case Selection::SwissMap:
    return false;
  }
  ade_unreachable("unknown selection");
}

const char *ade::runtime::rtKindName(RtKind K) {
  switch (K) {
  case RtKind::Seq:
    return "seq";
  case RtKind::Set:
    return "set";
  case RtKind::Map:
    return "map";
  }
  ade_unreachable("unknown collection kind");
}

namespace {

//===----------------------------------------------------------------------===//
// Sequences
//===----------------------------------------------------------------------===//

class ArraySeq final : public RtSeq {
public:
  ArraySeq() : RtSeq(Selection::Array) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override { Impl.reserve(size_t(N)); }

  uint64_t get(uint64_t Idx) const override {
    if (Idx >= Impl.size())
      throw RtError{"sequence read out of bounds"};
    return Impl.at(Idx);
  }
  void set(uint64_t Idx, uint64_t Value) override {
    if (Idx >= Impl.size())
      throw RtError{"sequence write out of bounds"};
    Impl.set(Idx, Value);
  }
  void append(uint64_t Value) override { Impl.append(Value); }
  uint64_t pop() override {
    if (Impl.empty())
      throw RtError{"pop of an empty sequence"};
    return Impl.popBack();
  }
  void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }

private:
  Sequence<uint64_t> Impl;
};

//===----------------------------------------------------------------------===//
// Sets
//===----------------------------------------------------------------------===//

/// Generic adapter over the templated set implementations.
template <typename SetT, Selection Sel> class SetAdapter final : public RtSet {
public:
  SetAdapter() : RtSet(Sel) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override {
    if constexpr (requires(SetT &S) { S.reserve(size_t(N)); })
      Impl.reserve(size_t(N));
  }
  ProbeCounters probeCounters() const override {
    if constexpr (requires(const SetT &S) { S.probeCount(); S.rehashCount(); })
      return {Impl.probeCount(), Impl.rehashCount()};
    else
      return {};
  }
  uint64_t universeBound() const override {
    if constexpr (requires(const SetT &S) { S.universeSize(); })
      return Impl.universeSize();
    else
      return 0;
  }

  bool has(uint64_t Key) const override { return Impl.contains(Key); }
  bool insert(uint64_t Key) override { return Impl.insert(Key); }
  bool remove(uint64_t Key) override { return Impl.remove(Key); }
  void forEach(const std::function<void(uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }
  void unionWith(const RtSet &Other) override {
    // Fast path when both sides share the representation (the selection
    // uniquely identifies the adapter type, so the cast is safe).
    if (Other.impl() == Sel) {
      Impl.unionWith(static_cast<const SetAdapter &>(Other).Impl);
      return;
    }
    Other.forEach([&](uint64_t Key) { Impl.insert(Key); });
  }

  SetT Impl;
};

using RtHashSet = SetAdapter<HashSet<uint64_t>, Selection::HashSet>;
using RtSwissSet = SetAdapter<SwissSet<uint64_t>, Selection::SwissSet>;
using RtFlatSet = SetAdapter<FlatSet<uint64_t>, Selection::FlatSet>;
using RtBitSet = SetAdapter<BitSet, Selection::BitSet>;
using RtRoaringSet = SetAdapter<RoaringBitSet, Selection::SparseBitSet>;

//===----------------------------------------------------------------------===//
// Maps
//===----------------------------------------------------------------------===//

template <typename MapT, Selection Sel> class MapAdapter final : public RtMap {
public:
  MapAdapter() : RtMap(Sel) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override {
    if constexpr (requires(MapT &M) { M.reserve(size_t(N)); })
      Impl.reserve(size_t(N));
  }
  ProbeCounters probeCounters() const override {
    if constexpr (requires(const MapT &M) { M.probeCount(); M.rehashCount(); })
      return {Impl.probeCount(), Impl.rehashCount()};
    else
      return {};
  }
  uint64_t universeBound() const override {
    if constexpr (requires(const MapT &M) { M.universeSize(); })
      return Impl.universeSize();
    else
      return 0;
  }

  bool has(uint64_t Key) const override { return Impl.contains(Key); }
  uint64_t get(uint64_t Key, bool &Found) const override {
    const uint64_t *V = Impl.lookup(Key);
    Found = V != nullptr;
    return Found ? *V : 0;
  }
  void set(uint64_t Key, uint64_t Value) override {
    Impl.insertOrAssign(Key, Value);
  }
  bool insertDefault(uint64_t Key, uint64_t Value) override {
    return Impl.tryInsert(Key, Value);
  }
  bool remove(uint64_t Key) override { return Impl.remove(Key); }
  void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }

private:
  MapT Impl;
};

using RtHashMap = MapAdapter<HashMap<uint64_t, uint64_t>, Selection::HashMap>;
using RtSwissMap =
    MapAdapter<SwissMap<uint64_t, uint64_t>, Selection::SwissMap>;
using RtBitMap = MapAdapter<BitMap<uint64_t>, Selection::BitMap>;

} // namespace

std::unique_ptr<RtCollection>
ade::runtime::createCollection(const Type *Ty,
                               const RuntimeDefaults &Defaults) {
  if (isa<SeqType>(Ty))
    return std::make_unique<ArraySeq>();
  if (const auto *Set = dyn_cast<SetType>(Ty)) {
    Selection Sel = Set->selection() == Selection::Empty ? Defaults.SetImpl
                                                         : Set->selection();
    switch (Sel) {
    case Selection::HashSet:
      return std::make_unique<RtHashSet>();
    case Selection::SwissSet:
      return std::make_unique<RtSwissSet>();
    case Selection::FlatSet:
      return std::make_unique<RtFlatSet>();
    case Selection::BitSet:
      return std::make_unique<RtBitSet>();
    case Selection::SparseBitSet:
      return std::make_unique<RtRoaringSet>();
    default:
      reportFatalError("invalid selection for a Set");
    }
  }
  if (const auto *Map = dyn_cast<MapType>(Ty)) {
    Selection Sel = Map->selection() == Selection::Empty ? Defaults.MapImpl
                                                         : Map->selection();
    switch (Sel) {
    case Selection::HashMap:
      return std::make_unique<RtHashMap>();
    case Selection::SwissMap:
      return std::make_unique<RtSwissMap>();
    case Selection::BitMap:
      return std::make_unique<RtBitMap>();
    default:
      reportFatalError("invalid selection for a Map");
    }
  }
  reportFatalError("createCollection requires a collection type");
}
