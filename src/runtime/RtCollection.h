//===- RtCollection.h - Type-erased runtime collections ---------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime objects the interpreter executes collection operations on.
/// Elements are 64-bit encoded scalars (integers/identifiers directly,
/// floats by bit pattern, nested collections as pointers); the concrete
/// storage is one of the Table I implementations from src/collections.
///
/// Every implementation reports whether its accesses are *dense* (array
/// indexing: Array/Bit{Set,Map}/SparseBitSet) or *sparse* (search-based:
/// Hash/Swiss/Flat) — the classification behind Table II.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_RUNTIME_RTCOLLECTION_H
#define ADE_RUNTIME_RTCOLLECTION_H

#include "collections/Enumeration.h"
#include "ir/Type.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace ade {
namespace runtime {

/// Identifies the runtime collection flavor.
enum class RtKind : uint8_t { Seq, Set, Map };

/// A recoverable runtime-collection error (e.g. an out-of-bounds sequence
/// access) triggered by the executed program rather than by an internal
/// invariant. The interpreter catches it and rethrows an interp::InterpError
/// carrying the offending instruction's source location; host code driving
/// collections directly sees it as the terminal diagnostic it is.
struct RtError {
  const char *Message;
};

/// True when accesses to \p Sel are array-like (dense); false for
/// search-based (sparse) implementations. Sequences (Array) are dense.
bool selectionIsDense(ir::Selection Sel);

/// Short lower-case name of \p K ("seq", "set", "map"), for reports and
/// JSON documents.
const char *rtKindName(RtKind K);

/// Cumulative internal key-location work counters, surfaced to the
/// profiler and telemetry. \c Probes counts storage accesses performed to
/// locate a key (hash-probe sequence steps, binary-search comparisons,
/// bitset word reads); \c Rehashes counts storage reorganizations (table
/// rehashes, array reallocations, organic universe growth, Roaring
/// container promotions/demotions). Zero only for RtSeq (Array), whose
/// accesses are direct indexing.
struct ProbeCounters {
  uint64_t Probes = 0;
  uint64_t Rehashes = 0;
};

/// Base of all runtime collections.
class RtCollection {
public:
  RtCollection(RtKind K, ir::Selection Impl) : TheKind(K), Impl(Impl) {}
  /// Clears the telemetry scratch and bumps the global destruction epoch,
  /// invalidating every address-keyed cache of this object (telemetry
  /// site bindings, the bytecode VM's inline caches) before the allocator
  /// can recycle the address.
  virtual ~RtCollection();

  /// Monotonic count of RtCollection destructions. Address-keyed caches
  /// (e.g. the VM's monomorphic inline caches) snapshot it alongside the
  /// pointer: an unchanged epoch proves the pointed-to object was never
  /// destroyed, so a matching pointer still identifies the same
  /// collection and the same concrete adapter type.
  static uint64_t destructionEpoch();

  RtKind kind() const { return TheKind; }
  ir::Selection impl() const { return Impl; }
  bool isDense() const { return selectionIsDense(Impl); }

  virtual uint64_t size() const = 0;
  virtual size_t memoryBytes() const = 0;
  virtual void clear() = 0;
  /// Capacity pre-sizing hint: prepare for \p N elements so subsequent
  /// insertions avoid incremental growth (rehash storms). Implementations
  /// without a meaningful capacity ignore it; never shrinks.
  virtual void reserve(uint64_t N) { (void)N; }
  virtual ProbeCounters probeCounters() const { return {}; }

  /// For dense (universe-indexed) implementations, one past the largest
  /// key the collection has capacity for; 0 when the representation has
  /// no universe (search-based storage). Telemetry uses size() against
  /// this bound to detect sparse<->dense occupancy crossings.
  virtual uint64_t universeBound() const { return 0; }

  /// Per-collection scratch owned by the attached runtime::Telemetry
  /// sink (see Telemetry.h): the allocation-site id plus the cumulative
  /// state its sampled detections diff against. Lives on the collection
  /// so registration and sampling stay free of per-collection map
  /// bookkeeping; meaningless unless a sink is attached.
  struct TelemetryScratch {
    /// Registered site id + 1; 0 = not registered with the sink.
    uint32_t SitePlus1 = 0;
    /// Occupancy state for crossing detection: 0 unknown, 1 sparse,
    /// 2 dense.
    uint8_t OccState = 0;
    /// Identity token of the sink *generation* that wrote SitePlus1 (see
    /// Telemetry::ownerToken). A mismatch means the binding is stale —
    /// written by a different sink, or by the same sink before a reset()
    /// discarded its site table — and must not be trusted even when
    /// SitePlus1 happens to be in range.
    uint64_t Owner = 0;
    /// Cumulative rehash counter at the last sample point.
    uint64_t LastRehashes = 0;
  };
  TelemetryScratch &telemetryScratch() const { return TelScratch; }

private:
  const RtKind TheKind;
  const ir::Selection Impl;
  mutable TelemetryScratch TelScratch;
};

/// Runtime sequence (resizable array of 64-bit elements).
class RtSeq : public RtCollection {
public:
  explicit RtSeq(ir::Selection Impl) : RtCollection(RtKind::Seq, Impl) {}

  static bool classof(const RtCollection *C) {
    return C->kind() == RtKind::Seq;
  }

  virtual uint64_t get(uint64_t Idx) const = 0;
  virtual void set(uint64_t Idx, uint64_t Value) = 0;
  virtual void append(uint64_t Value) = 0;
  virtual uint64_t pop() = 0;
  virtual void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const = 0;
};

/// Runtime set over 64-bit encoded keys.
class RtSet : public RtCollection {
public:
  explicit RtSet(ir::Selection Impl) : RtCollection(RtKind::Set, Impl) {}

  static bool classof(const RtCollection *C) {
    return C->kind() == RtKind::Set;
  }

  virtual bool has(uint64_t Key) const = 0;
  virtual bool insert(uint64_t Key) = 0;
  virtual bool remove(uint64_t Key) = 0;
  virtual void forEach(const std::function<void(uint64_t)> &Fn) const = 0;
  /// Adds every member of \p Other (implementations provide fast paths for
  /// matching representations).
  virtual void unionWith(const RtSet &Other) = 0;
};

/// Runtime map from 64-bit encoded keys to 64-bit encoded values.
class RtMap : public RtCollection {
public:
  explicit RtMap(ir::Selection Impl) : RtCollection(RtKind::Map, Impl) {}

  static bool classof(const RtCollection *C) {
    return C->kind() == RtKind::Map;
  }

  virtual bool has(uint64_t Key) const = 0;
  /// Returns the value for \p Key; \p Found reports presence.
  virtual uint64_t get(uint64_t Key, bool &Found) const = 0;
  /// Inserts or overwrites.
  virtual void set(uint64_t Key, uint64_t Value) = 0;
  /// Inserts \p Value only if the key is absent; true when inserted.
  virtual bool insertDefault(uint64_t Key, uint64_t Value) = 0;
  virtual bool remove(uint64_t Key) = 0;
  virtual void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const = 0;
};

/// Runtime enumeration (the Enum of SIII-B) over 64-bit encoded keys.
class RtEnum {
public:
  uint64_t encode(uint64_t Key) const { return Impl.encode(Key); }
  uint64_t decode(uint64_t Id) const { return Impl.decode(Id); }
  std::pair<uint64_t, bool> add(uint64_t Key) { return Impl.add(Key); }
  bool contains(uint64_t Key) const { return Impl.contains(Key); }
  uint64_t size() const { return Impl.size(); }
  size_t memoryBytes() const { return Impl.memoryBytes(); }

private:
  Enumeration<uint64_t> Impl;
};

/// Defaults applied when a collection type carries no selection (the
/// MEMOIR baseline behavior; RQ5 swaps these to the Swiss flavors).
struct RuntimeDefaults {
  ir::Selection SeqImpl = ir::Selection::Array;
  ir::Selection SetImpl = ir::Selection::HashSet;
  ir::Selection MapImpl = ir::Selection::HashMap;
};

/// Instantiates the runtime collection for \p Ty, honoring its selection
/// annotation and falling back to \p Defaults.
std::unique_ptr<RtCollection> createCollection(const ir::Type *Ty,
                                               const RuntimeDefaults &Defaults);

} // namespace runtime
} // namespace ade

#endif // ADE_RUNTIME_RTCOLLECTION_H
