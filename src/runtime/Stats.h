//===- Stats.h - Dynamic operation statistics -------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters behind the paper's Figure 4 (dynamic collection-operation
/// breakdown) and Table II (sparse vs dense access counts). An *access* is
/// one operation on an associative collection or enumeration; it is dense
/// when the implementation reaches storage by array indexing
/// (Bit{Set,Map}, SparseBitSet, decode) and sparse when it searches
/// (Hash/Swiss/Flat tables, encode/add). Sequence operations are not
/// counted as accesses, matching the paper's all-sparse baselines for
/// benchmarks that use sequences heavily.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_RUNTIME_STATS_H
#define ADE_RUNTIME_STATS_H

#include <cstdint>

namespace ade {
namespace runtime {

/// Categories of dynamic collection operations (Figure 4's breakdown).
enum class OpCategory : uint8_t {
  Read,
  Write,
  Insert,
  Remove,
  Has,
  Size,
  Clear,
  Reserve,
  Iterate, // One count per element visited.
  Union,   // One count per source element merged.
  Enc,
  Dec,
  EnumAdd,
  NumCategories,
};

/// Printable name of \p C.
const char *opCategoryName(OpCategory C);

/// Aggregated dynamic statistics for one interpreter run.
struct InterpStats {
  static constexpr unsigned NumCats =
      static_cast<unsigned>(OpCategory::NumCategories);

  uint64_t Sparse = 0;
  uint64_t Dense = 0;
  uint64_t ByCategory[NumCats] = {};
  uint64_t InstructionsExecuted = 0;

  void record(OpCategory Cat, bool IsDense, uint64_t N = 1) {
    ByCategory[static_cast<unsigned>(Cat)] += N;
    (IsDense ? Dense : Sparse) += N;
  }

  uint64_t category(OpCategory Cat) const {
    return ByCategory[static_cast<unsigned>(Cat)];
  }

  uint64_t totalAccesses() const { return Sparse + Dense; }

  void reset() { *this = InterpStats(); }
};

} // namespace runtime
} // namespace ade

#endif // ADE_RUNTIME_STATS_H
