//===- Telemetry.h - Runtime metrics and event journal ----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in runtime telemetry for the interpreter: latency/probe-length
/// histogram channels per collection class, and a fixed-capacity ring
/// journal of collection lifecycle events attributed to allocation
/// sites (the same source snapshotting \c interp::Profiler uses).
///
/// Attribution is *site-keyed*: one record per allocating instruction
/// (or host label), not per collection instance, so benchmarks that
/// churn through thousands of short-lived collections pay one hot map
/// lookup per creation instead of a record allocation. The cumulative
/// state sampled detections diff against lives in a small scratch
/// struct on the collection itself (\c RtCollection::telemetryScratch).
///
/// Sampling contract: the interpreter charges 1-in-N collection operations
/// (N = 2^Options::SampleShift, default 256) to the telemetry sink; the
/// unsampled fast path costs one pointer test plus a tick-and-mask. A
/// sampled op records wall latency and the op's probe count into the
/// (kind, impl) channel, and *detects* cumulative state changes —
/// rehash-counter deltas and occupancy-threshold crossings — so those
/// journal events carry cumulative totals and may cover up to N ops.
/// Clear, reserve and guard-rail events are always recorded, sampling
/// aside, because they are rare and individually meaningful.
///
/// Snapshots serialize every channel, per-collection record and the
/// journal to JSON (\c writeSnapshotJson) and mirror channel percentiles
/// as Chrome-trace counter series (\c emitTraceCounters) on the active
/// \c TraceRecorder.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_RUNTIME_TELEMETRY_H
#define ADE_RUNTIME_TELEMETRY_H

#include "ir/IR.h"
#include "runtime/RtCollection.h"
#include "runtime/Stats.h"
#include "support/Histogram.h"

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ade {
namespace json {
class Writer;
}

namespace runtime {

/// Version stamp of the metrics snapshot JSON document. v2 added the
/// serving runtime's per-shard contention and epoch-reclamation gauges
/// ("serve" section) and the journal ring's high-water mark; v1
/// documents remain readable by ade-metrics.
constexpr uint64_t MetricsSchemaVersion = 2;

/// Journal event taxonomy.
enum class EventKind : uint8_t {
  /// The collection reorganized its storage (hash rehash, realloc,
  /// organic universe growth, Roaring container conversion). Detected at
  /// sample points: A = cumulative rehash count, B = delta since the
  /// previous sample of this collection.
  Rehash,
  /// An explicit capacity pre-sizing hint ran. Always recorded; A = N.
  Reserve,
  /// The collection was emptied. Always recorded; A = size before.
  Clear,
  /// Occupancy rose across the dense threshold (size * 8 >= universe).
  /// Detected at sample points; A = size, B = universe bound.
  OccupancyDense,
  /// Occupancy fell below half the dense threshold (hysteresis, so a
  /// collection hovering at the boundary does not flap). A/B as above.
  OccupancySparse,
  /// An interpreter guard rail tripped (step/memory/depth/wall budget,
  /// or a serving-runtime request deadline, which trips the wall rail).
  /// Always recorded, with no collection; A = rail id, B = the limit.
  GuardRail,
  /// The serving runtime's admission control shed a request. Always
  /// recorded, with no collection; A = queue depth at the decision,
  /// B = the request id.
  Shed,
  NumKinds,
};

const char *eventKindName(EventKind K);

/// Parses an eventKindName() back; returns false on unknown names.
bool eventKindFromName(std::string_view Name, EventKind &Out);

/// Guard-rail ids carried in GuardRail events' A payload.
enum class GuardRailKind : uint8_t { Steps, Bytes, Depth, Wall };

const char *guardRailName(GuardRailKind K);

/// Runtime metrics sink attached via \c interp::InterpOptions::Tel.
///
/// Thread-safe: one sink may be shared by several engines running on
/// different threads (the serving runtime does this for its worker
/// pool). All mutation and snapshotting serializes on one internal
/// mutex; since the interpreter only reaches the sink for 1-in-N
/// sampled ops plus rare lifecycle events, contention stays off the
/// hot path. Per-collection TelemetryScratch is likewise only touched
/// under that mutex.
class Telemetry {
public:
  struct Options {
    /// Sample 1 in 2^SampleShift collection ops (0 = every op).
    unsigned SampleShift = 8;
    /// Ring capacity of the event journal; the oldest events are
    /// overwritten (and counted as dropped) once it fills.
    size_t JournalCapacity = 4096;
  };

  /// One journal entry. Fixed-size; the collection is referenced by its
  /// allocation-site id so entries outlive the collection.
  struct Event {
    /// Global emission order (monotonic even across ring overwrites).
    uint64_t Seq = 0;
    /// Nanoseconds since this Telemetry instance was constructed.
    uint64_t WhenNs = 0;
    EventKind Kind = EventKind::Rehash;
    /// Allocation-site id, or ~0 for process-level events (guard rails).
    uint64_t Site = NoSite;
    /// Payloads, per EventKind.
    uint64_t A = 0;
    uint64_t B = 0;
  };

  static constexpr uint64_t NoSite = ~uint64_t(0);

  /// One record per allocation site (allocating instruction, or host
  /// label). Source location and names are snapshotted at first
  /// registration, like the Profiler's; every collection the site
  /// creates accumulates into the same record.
  struct SiteInfo {
    uint64_t Id = 0;
    ir::SrcLoc Loc;
    /// "@name" for globals, "<external>" for host inputs, else empty.
    std::string Label;
    /// Function containing the allocating instruction (empty otherwise).
    std::string Function;
    RtKind Kind = RtKind::Seq;
    ir::Selection Impl = ir::Selection::Empty;
    /// Collections this site has created.
    uint64_t Created = 0;
    uint64_t SampledOps = 0;
    uint64_t Events[size_t(EventKind::NumKinds)] = {};
  };

  /// One histogram channel per (collection kind, implementation) class.
  struct Channel {
    Histogram LatencyNs;
    Histogram ProbeLen;
    uint64_t SampledOps = 0;
  };
  using ChannelKey = std::pair<RtKind, ir::Selection>;

  static constexpr size_t NumRtKinds = size_t(RtKind::Map) + 1;
  static constexpr size_t NumSelections = size_t(ir::Selection::BitMap) + 1;

  Telemetry();
  explicit Telemetry(Options Opts);

  /// Process-unique identity of this sink generation, stamped into each
  /// registered collection's TelemetryScratch and regenerated by reset().
  /// siteFor trusts a scratch binding only when its owner matches, so a
  /// site id written by another sink — or by this sink before a reset —
  /// can never charge events to an unrelated record, even when it
  /// happens to be in range.
  uint64_t ownerToken() const;

  uint64_t sampleRate() const { return uint64_t(1) << Opts.SampleShift; }
  /// Tick mask for the interpreter's 1-in-N test: sample when
  /// (++tick & mask) == 0.
  uint64_t sampleMask() const { return sampleRate() - 1; }

  /// Nanoseconds on the steady clock (monotonic, not wall time).
  static uint64_t nowNanos();

  /// Notes that \p C exists; \p Site is its allocating instruction (or
  /// null with \p Label describing the origin). Binds C's telemetry
  /// scratch to the site's record; after the first collection from a
  /// site this is one hash lookup.
  void registerCollection(const RtCollection *C, const ir::Instruction *Site,
                          std::string Label = {});

  /// Charges one sampled operation on \p C: \p LatNs wall latency and
  /// \p ProbeDelta storage probes for this op. Also runs the sampled
  /// detections (rehash deltas against the collection's cumulative
  /// counter, occupancy crossings against universeBound).
  void recordSampledOp(const RtCollection *C, OpCategory Cat, uint64_t LatNs,
                       uint64_t ProbeDelta);

  /// Always-recorded lifecycle events.
  void recordClear(const RtCollection *C, uint64_t SizeBefore);
  void recordReserve(const RtCollection *C, uint64_t N);
  void recordGuardRail(GuardRailKind Rail, uint64_t Limit);
  /// Serving-runtime admission events (process-level, no collection).
  void recordShed(uint64_t QueueDepth, uint64_t RequestId);

  /// One shard's write-lock contention gauges, published by the serving
  /// runtime (serve/ConcurrentMap.h) into the snapshot's "serve"
  /// section.
  struct ShardContentionRow {
    std::string Table;
    uint32_t Shard = 0;
    uint64_t Acquisitions = 0;
    uint64_t WaitTotalNs = 0;
    uint64_t WaitMaxNs = 0;
  };

  /// Epoch-reclamation gauges (serve/Epoch.h): reclamation lag is
  /// RetiredLive — blocks retired but not yet freed.
  struct EpochGauges {
    uint64_t GlobalEpoch = 0;
    uint64_t RetiredLive = 0;
    uint64_t TotalRetired = 0;
  };

  /// Publishes serving-runtime gauges into the next snapshot (schema v2
  /// "serve" section); each call replaces the previous set.
  void publishShardContention(std::vector<ShardContentionRow> Rows);
  void publishEpochGauges(const EpochGauges &G);

  /// Journal contents, oldest first, plus how many were overwritten.
  std::vector<Event> journalEvents() const;
  uint64_t droppedEvents() const;

  /// High-water mark of the journal ring (slots ever occupied; equals
  /// capacity once the ring has wrapped and started dropping).
  uint64_t journalHighWater() const;

  /// Total journal events emitted per kind (including dropped ones).
  uint64_t eventCount(EventKind K) const;

  /// Allocation-site records in first-registration order.
  std::vector<const SiteInfo *> sites() const;

  /// Non-empty channels in deterministic (kind, impl) order. Built from
  /// the flat channel table on each call (the table itself is indexed,
  /// not searched, so the sampled hot path stays lookup-free).
  std::map<ChannelKey, Channel> channels() const;

  uint64_t sampledOps() const;

  void reset();

  /// Writes the full metrics snapshot document: schema stamp, sample
  /// rate, channels (with embedded histograms and convenience
  /// percentiles), per-site records and the journal.
  void writeSnapshotJson(json::Writer &W) const;

  /// Mirrors channel percentiles and journal totals as Chrome-trace
  /// counter series on the active TraceRecorder (no-op when tracing is
  /// off). Also invoked automatically every 1024 samples so traces get a
  /// periodic counter track without explicit flushes.
  void emitTraceCounters() const;

private:
  /// Unlocked internals; public entry points take Mu then delegate here
  /// so compound paths (snapshot -> channels/sites/journal, sampled op
  /// -> siteFor -> register) never re-acquire the mutex.
  SiteInfo &siteFor(const RtCollection *C);
  void registerCollectionLocked(const RtCollection *C,
                                const ir::Instruction *Site,
                                std::string Label);
  void push(EventKind K, uint64_t Site, uint64_t A, uint64_t B);
  std::vector<Event> journalEventsLocked() const;
  std::vector<const SiteInfo *> sitesLocked() const;
  std::map<ChannelKey, Channel> channelsLocked() const;
  void emitTraceCountersLocked() const;

  /// Serializes every mutation and snapshot (see class comment).
  mutable std::mutex Mu;
  Options Opts;
  uint64_t StartNs = 0;
  /// See ownerToken().
  uint64_t Token = 0;
  uint64_t NextSeq = 0;
  uint64_t Dropped = 0;
  uint64_t TotalSamples = 0;
  uint64_t KindTotals[size_t(EventKind::NumKinds)] = {};

  /// Ring buffer: Ring[Seq % Capacity] once full.
  std::vector<Event> Ring;

  /// Serving-runtime gauges for the snapshot's "serve" section (schema
  /// v2); empty/absent until a server publishes them.
  std::vector<ShardContentionRow> ShardRows;
  EpochGauges Epoch;
  bool EpochPublished = false;

  /// Flat (kind, impl) channel table: direct indexing keeps the sampled
  /// path free of map lookups. Entries with SampledOps == 0 are unused.
  Channel ChanTab[NumRtKinds][NumSelections];

  /// Site records in first-registration order (deque: stable addresses
  /// as sites are appended).
  std::deque<SiteInfo> Sites;
  /// Allocating instruction -> index into Sites.
  std::unordered_map<const ir::Instruction *, uint32_t> SiteIds;
  /// Host label -> index into Sites (registrations without a site).
  std::unordered_map<std::string, uint32_t> LabelIds;
};

} // namespace runtime
} // namespace ade

#endif // ADE_RUNTIME_TELEMETRY_H
