//===- Telemetry.cpp - Runtime metrics and event journal ------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Telemetry.h"

#include "support/ErrorHandling.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

using namespace ade;
using namespace ade::ir;
using namespace ade::runtime;

const char *ade::runtime::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Rehash:
    return "rehash";
  case EventKind::Reserve:
    return "reserve";
  case EventKind::Clear:
    return "clear";
  case EventKind::OccupancyDense:
    return "occupancy-dense";
  case EventKind::OccupancySparse:
    return "occupancy-sparse";
  case EventKind::GuardRail:
    return "guard-rail";
  case EventKind::Shed:
    return "shed";
  case EventKind::NumKinds:
    break;
  }
  ade_unreachable("unknown event kind");
}

bool ade::runtime::eventKindFromName(std::string_view Name, EventKind &Out) {
  for (unsigned K = 0; K != unsigned(EventKind::NumKinds); ++K)
    if (Name == eventKindName(EventKind(K))) {
      Out = EventKind(K);
      return true;
    }
  return false;
}

const char *ade::runtime::guardRailName(GuardRailKind K) {
  switch (K) {
  case GuardRailKind::Steps:
    return "steps";
  case GuardRailKind::Bytes:
    return "bytes";
  case GuardRailKind::Depth:
    return "depth";
  case GuardRailKind::Wall:
    return "wall";
  }
  ade_unreachable("unknown guard rail");
}

/// Process-unique owner tokens: one per sink *generation*, consumed by
/// the constructor and by every reset(). Zero is never issued, so a
/// default-initialized TelemetryScratch can never masquerade as owned.
static uint64_t nextOwnerToken() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Telemetry::Telemetry() : Telemetry(Options()) {}

Telemetry::Telemetry(Options Opts) : Opts(Opts) {
  this->Opts.SampleShift = std::min(this->Opts.SampleShift, 30u);
  if (this->Opts.JournalCapacity == 0)
    this->Opts.JournalCapacity = 1;
  StartNs = nowNanos();
  Token = nextOwnerToken();
}

uint64_t Telemetry::nowNanos() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

uint64_t Telemetry::ownerToken() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Token;
}

Telemetry::SiteInfo &Telemetry::siteFor(const RtCollection *C) {
  RtCollection::TelemetryScratch &Scr = C->telemetryScratch();
  // The binding is trusted only when this sink generation wrote it: a
  // zero id means never registered, and a foreign owner token means the
  // id was written by a different sink or by this sink before a reset()
  // discarded the site table — such an id can be in range yet point at
  // an unrelated record, so charging it would misattribute events.
  // Either way, fall back to the shared host record.
  if (Scr.SitePlus1 == 0 || Scr.Owner != Token || Scr.SitePlus1 > Sites.size())
    registerCollectionLocked(C, nullptr, {});
  return Sites[Scr.SitePlus1 - 1];
}

void Telemetry::registerCollection(const RtCollection *C,
                                   const Instruction *Site,
                                   std::string Label) {
  std::lock_guard<std::mutex> Lock(Mu);
  registerCollectionLocked(C, Site, std::move(Label));
}

void Telemetry::registerCollectionLocked(const RtCollection *C,
                                         const Instruction *Site,
                                         std::string Label) {
  uint32_t Id;
  if (Site) {
    auto [It, Inserted] = SiteIds.try_emplace(Site, 0);
    bool Fresh = Inserted;
    if (!Inserted) {
      // Instruction addresses can be recycled once a module is destroyed
      // (one sink often outlives many modules, e.g. across a benchmark
      // suite). The record snapshots the site's identity, so a mismatch
      // means a recycled address: start a fresh record instead of
      // merging unrelated sites.
      const SiteInfo &Old = Sites[It->second];
      const Function *F = Site->parentFunction();
      if (Old.Kind != C->kind() || Old.Impl != C->impl() ||
          Old.Loc.Line != Site->loc().Line ||
          Old.Loc.Col != Site->loc().Col ||
          (F ? Old.Function != F->name() : !Old.Function.empty()))
        Fresh = true;
    }
    if (Fresh) {
      It->second = uint32_t(Sites.size());
      SiteInfo &Info = Sites.emplace_back();
      Info.Id = It->second;
      Info.Loc = Site->loc();
      if (const Function *F = Site->parentFunction())
        Info.Function = F->name();
      Info.Kind = C->kind();
      Info.Impl = C->impl();
    }
    Id = It->second;
  } else {
    if (Label.empty())
      Label = "<external>";
    auto [It, Inserted] = LabelIds.try_emplace(std::move(Label), 0);
    if (Inserted) {
      It->second = uint32_t(Sites.size());
      SiteInfo &Info = Sites.emplace_back();
      Info.Id = It->second;
      Info.Label = It->first;
      Info.Kind = C->kind();
      Info.Impl = C->impl();
    }
    Id = It->second;
  }
  ++Sites[Id].Created;
  RtCollection::TelemetryScratch &Scr = C->telemetryScratch();
  Scr.SitePlus1 = Id + 1;
  Scr.OccState = 0;
  Scr.Owner = Token;
  Scr.LastRehashes = C->probeCounters().Rehashes;
}

void Telemetry::push(EventKind K, uint64_t Site, uint64_t A, uint64_t B) {
  Event E;
  E.Seq = NextSeq++;
  E.WhenNs = nowNanos() - StartNs;
  E.Kind = K;
  E.Site = Site;
  E.A = A;
  E.B = B;
  ++KindTotals[size_t(K)];
  if (Ring.size() < Opts.JournalCapacity) {
    Ring.push_back(E);
    return;
  }
  ++Dropped;
  Ring[size_t(E.Seq % Opts.JournalCapacity)] = E;
}

void Telemetry::recordSampledOp(const RtCollection *C, OpCategory Cat,
                                uint64_t LatNs, uint64_t ProbeDelta) {
  (void)Cat;
  std::lock_guard<std::mutex> Lock(Mu);
  Channel &Ch = ChanTab[size_t(C->kind())][size_t(C->impl())];
  Ch.LatencyNs.record(LatNs);
  Ch.ProbeLen.record(ProbeDelta);
  ++Ch.SampledOps;

  SiteInfo &Info = siteFor(C);
  ++Info.SampledOps;

  // Sampled detections: compare cumulative state against the last sample
  // of this collection. A rehash event therefore summarizes up to
  // sampleRate() ops (cumulative total in A, delta in B).
  RtCollection::TelemetryScratch &Scr = C->telemetryScratch();
  uint64_t Rehashes = C->probeCounters().Rehashes;
  if (Rehashes > Scr.LastRehashes) {
    push(EventKind::Rehash, Info.Id, Rehashes, Rehashes - Scr.LastRehashes);
    ++Info.Events[size_t(EventKind::Rehash)];
  }
  Scr.LastRehashes = Rehashes;

  if (uint64_t Universe = C->universeBound()) {
    uint64_t Size = C->size();
    // Same 1/8 occupancy ratio the selection heuristic uses; the sparse
    // edge sits at half that (1/16) so boundary-hovering cannot flap.
    bool Dense = Size * 8 >= Universe;
    bool Sparse = Size * 16 < Universe;
    if (Scr.OccState == 0) {
      Scr.OccState = Dense ? 2 : 1;
    } else if (Dense && Scr.OccState == 1) {
      Scr.OccState = 2;
      push(EventKind::OccupancyDense, Info.Id, Size, Universe);
      ++Info.Events[size_t(EventKind::OccupancyDense)];
    } else if (Sparse && Scr.OccState == 2) {
      Scr.OccState = 1;
      push(EventKind::OccupancySparse, Info.Id, Size, Universe);
      ++Info.Events[size_t(EventKind::OccupancySparse)];
    }
  }

  // Periodic counter mirror so long traces carry a metrics track without
  // explicit flushes from the host.
  if (++TotalSamples % 1024 == 0)
    emitTraceCountersLocked();
}

void Telemetry::recordClear(const RtCollection *C, uint64_t SizeBefore) {
  std::lock_guard<std::mutex> Lock(Mu);
  SiteInfo &Info = siteFor(C);
  push(EventKind::Clear, Info.Id, SizeBefore, 0);
  ++Info.Events[size_t(EventKind::Clear)];
}

void Telemetry::recordReserve(const RtCollection *C, uint64_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  SiteInfo &Info = siteFor(C);
  push(EventKind::Reserve, Info.Id, N, 0);
  ++Info.Events[size_t(EventKind::Reserve)];
}

void Telemetry::recordGuardRail(GuardRailKind Rail, uint64_t Limit) {
  std::lock_guard<std::mutex> Lock(Mu);
  push(EventKind::GuardRail, NoSite, uint64_t(Rail), Limit);
}

void Telemetry::recordShed(uint64_t QueueDepth, uint64_t RequestId) {
  std::lock_guard<std::mutex> Lock(Mu);
  push(EventKind::Shed, NoSite, QueueDepth, RequestId);
}

std::vector<Telemetry::Event> Telemetry::journalEventsLocked() const {
  std::vector<Event> Out(Ring);
  std::sort(Out.begin(), Out.end(),
            [](const Event &A, const Event &B) { return A.Seq < B.Seq; });
  return Out;
}

std::vector<Telemetry::Event> Telemetry::journalEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return journalEventsLocked();
}

uint64_t Telemetry::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

uint64_t Telemetry::journalHighWater() const {
  std::lock_guard<std::mutex> Lock(Mu);
  // The ring only grows toward capacity, so its size is the high-water
  // mark of occupied slots.
  return Ring.size();
}

void Telemetry::publishShardContention(std::vector<ShardContentionRow> Rows) {
  std::lock_guard<std::mutex> Lock(Mu);
  ShardRows = std::move(Rows);
}

void Telemetry::publishEpochGauges(const EpochGauges &G) {
  std::lock_guard<std::mutex> Lock(Mu);
  Epoch = G;
  EpochPublished = true;
}

uint64_t Telemetry::eventCount(EventKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return KindTotals[size_t(K)];
}

uint64_t Telemetry::sampledOps() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TotalSamples;
}

std::vector<const Telemetry::SiteInfo *> Telemetry::sitesLocked() const {
  std::vector<const SiteInfo *> Out;
  Out.reserve(Sites.size());
  for (const SiteInfo &S : Sites)
    Out.push_back(&S);
  return Out;
}

std::vector<const Telemetry::SiteInfo *> Telemetry::sites() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return sitesLocked();
}

std::map<Telemetry::ChannelKey, Telemetry::Channel>
Telemetry::channelsLocked() const {
  std::map<ChannelKey, Channel> Out;
  for (size_t K = 0; K != NumRtKinds; ++K)
    for (size_t S = 0; S != NumSelections; ++S)
      if (ChanTab[K][S].SampledOps)
        Out[{RtKind(K), ir::Selection(S)}] = ChanTab[K][S];
  return Out;
}

std::map<Telemetry::ChannelKey, Telemetry::Channel>
Telemetry::channels() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return channelsLocked();
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  NextSeq = 0;
  Dropped = 0;
  TotalSamples = 0;
  std::fill(std::begin(KindTotals), std::end(KindTotals), 0);
  Ring.clear();
  for (size_t K = 0; K != NumRtKinds; ++K)
    for (size_t S = 0; S != NumSelections; ++S)
      ChanTab[K][S] = Channel();
  Sites.clear();
  SiteIds.clear();
  LabelIds.clear();
  ShardRows.clear();
  Epoch = EpochGauges();
  EpochPublished = false;
  StartNs = nowNanos();
  // Site ids handed out before the reset are meaningless against the now
  // empty table; a fresh owner token invalidates every outstanding
  // TelemetryScratch binding in one step.
  Token = nextOwnerToken();
}

void Telemetry::writeSnapshotJson(json::Writer &W) const {
  std::lock_guard<std::mutex> Lock(Mu);
  W.beginObject();
  W.member("schemaVersion", MetricsSchemaVersion);
  W.member("sampleRate", sampleRate());
  W.member("sampledOps", TotalSamples);

  W.key("channels").beginArray();
  for (const auto &[Key, Ch] : channelsLocked()) {
    W.beginObject();
    W.member("kind", rtKindName(Key.first));
    W.member("impl", selectionName(Key.second));
    W.member("sampledOps", Ch.SampledOps);
    W.member("latencyP50Ns", Ch.LatencyNs.p50());
    W.member("latencyP99Ns", Ch.LatencyNs.p99());
    W.key("latencyNs");
    Ch.LatencyNs.writeJson(W);
    W.key("probeLen");
    Ch.ProbeLen.writeJson(W);
    W.endObject();
  }
  W.endArray();

  W.key("sites").beginArray();
  for (const SiteInfo *Info : sitesLocked()) {
    W.beginObject(/*Inline=*/true);
    W.member("id", Info->Id);
    W.member("kind", rtKindName(Info->Kind));
    W.member("impl", selectionName(Info->Impl));
    if (!Info->Label.empty())
      W.member("label", Info->Label);
    if (!Info->Function.empty())
      W.member("function", Info->Function);
    if (Info->Loc.Line) {
      W.member("line", uint64_t(Info->Loc.Line));
      W.member("col", uint64_t(Info->Loc.Col));
    }
    W.member("created", Info->Created);
    W.member("sampledOps", Info->SampledOps);
    W.key("events").beginObject(/*Inline=*/true);
    for (unsigned K = 0; K != unsigned(EventKind::NumKinds); ++K)
      if (Info->Events[K])
        W.member(eventKindName(EventKind(K)), Info->Events[K]);
    W.endObject();
    W.endObject();
  }
  W.endArray();

  // Schema v2: serving-runtime gauges, present once a server published
  // them (adesrv does right before writing the snapshot).
  if (!ShardRows.empty() || EpochPublished) {
    W.key("serve").beginObject();
    W.key("shards").beginArray();
    for (const ShardContentionRow &R : ShardRows) {
      W.beginObject(/*Inline=*/true);
      W.member("table", R.Table);
      W.member("shard", uint64_t(R.Shard));
      W.member("lockAcquisitions", R.Acquisitions);
      W.member("lockWaitTotalNs", R.WaitTotalNs);
      W.member("lockWaitMaxNs", R.WaitMaxNs);
      W.endObject();
    }
    W.endArray();
    if (EpochPublished) {
      W.key("epoch").beginObject(/*Inline=*/true);
      W.member("globalEpoch", Epoch.GlobalEpoch);
      W.member("retiredLive", Epoch.RetiredLive);
      W.member("totalRetired", Epoch.TotalRetired);
      W.endObject();
    }
    W.endObject();
  }

  W.key("journal").beginObject();
  W.member("capacity", uint64_t(Opts.JournalCapacity));
  W.member("highWater", uint64_t(Ring.size()));
  W.member("dropped", Dropped);
  W.key("totals").beginObject(/*Inline=*/true);
  for (unsigned K = 0; K != unsigned(EventKind::NumKinds); ++K)
    if (KindTotals[K])
      W.member(eventKindName(EventKind(K)), KindTotals[K]);
  W.endObject();
  W.key("events").beginArray();
  for (const Event &E : journalEventsLocked()) {
    W.beginObject(/*Inline=*/true);
    W.member("seq", E.Seq);
    W.member("tNs", E.WhenNs);
    W.member("kind", eventKindName(E.Kind));
    if (E.Site != NoSite)
      W.member("site", E.Site);
    if (E.Kind == EventKind::GuardRail)
      W.member("rail", guardRailName(GuardRailKind(E.A)));
    else
      W.member("a", E.A);
    if (E.B)
      W.member("b", E.B);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.endObject();
}

void Telemetry::emitTraceCounters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  emitTraceCountersLocked();
}

void Telemetry::emitTraceCountersLocked() const {
  TraceRecorder *TR = TraceRecorder::active();
  if (!TR)
    return;
  uint64_t Ts = TR->nowMicros();
  for (const auto &[Key, Ch] : channelsLocked()) {
    std::string Name = std::string("telemetry:") + rtKindName(Key.first) +
                       ":" + selectionName(Key.second);
    TR->addCounter(Name, "telemetry", Ts,
                   {{"latencyP50Ns", Ch.LatencyNs.p50()},
                    {"latencyP99Ns", Ch.LatencyNs.p99()},
                    {"sampledOps", Ch.SampledOps}});
  }
  std::vector<std::pair<std::string, uint64_t>> Totals;
  for (unsigned K = 0; K != unsigned(EventKind::NumKinds); ++K)
    if (KindTotals[K])
      Totals.emplace_back(eventKindName(EventKind(K)), KindTotals[K]);
  if (!Totals.empty())
    TR->addCounter("telemetry:events", "telemetry", Ts, std::move(Totals));
}
