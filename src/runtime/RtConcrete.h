//===- RtConcrete.h - Concrete runtime collection adapters ------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete adapters binding the Table I container implementations to
/// the type-erased RtCollection interface. Hoisted out of RtCollection.cpp
/// so the bytecode VM's monomorphic inline caches can, after validating a
/// (collection pointer, destruction epoch) key, static_cast to the
/// concrete adapter and call the underlying container without the virtual
/// hop — inlining a BitSet membership test down to a bit probe.
///
/// The selection tag uniquely identifies the adapter type (one adapter
/// per Selection), so `impl()` is a sound discriminant for the casts.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_RUNTIME_RTCONCRETE_H
#define ADE_RUNTIME_RTCONCRETE_H

#include "collections/BitMap.h"
#include "collections/BitSet.h"
#include "collections/FlatSet.h"
#include "collections/HashMap.h"
#include "collections/HashSet.h"
#include "collections/RoaringBitSet.h"
#include "collections/Sequence.h"
#include "collections/SwissMap.h"
#include "collections/SwissSet.h"
#include "runtime/RtCollection.h"

namespace ade {
namespace runtime {

//===----------------------------------------------------------------------===//
// Sequences
//===----------------------------------------------------------------------===//

class ArraySeq final : public RtSeq {
public:
  ArraySeq() : RtSeq(ir::Selection::Array) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override { Impl.reserve(size_t(N)); }

  uint64_t get(uint64_t Idx) const override {
    if (Idx >= Impl.size())
      throw RtError{"sequence read out of bounds"};
    return Impl.at(Idx);
  }
  void set(uint64_t Idx, uint64_t Value) override {
    if (Idx >= Impl.size())
      throw RtError{"sequence write out of bounds"};
    Impl.set(Idx, Value);
  }
  void append(uint64_t Value) override { Impl.append(Value); }
  uint64_t pop() override {
    if (Impl.empty())
      throw RtError{"pop of an empty sequence"};
    return Impl.popBack();
  }
  void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }

  Sequence<uint64_t> Impl;
};

//===----------------------------------------------------------------------===//
// Sets
//===----------------------------------------------------------------------===//

/// Generic adapter over the templated set implementations.
template <typename SetT, ir::Selection Sel>
class SetAdapter final : public RtSet {
public:
  SetAdapter() : RtSet(Sel) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override {
    if constexpr (requires(SetT &S) { S.reserve(size_t(N)); })
      Impl.reserve(size_t(N));
  }
  ProbeCounters probeCounters() const override {
    if constexpr (requires(const SetT &S) { S.probeCount(); S.rehashCount(); })
      return {Impl.probeCount(), Impl.rehashCount()};
    else
      return {};
  }
  uint64_t universeBound() const override {
    if constexpr (requires(const SetT &S) { S.universeSize(); })
      return Impl.universeSize();
    else
      return 0;
  }

  bool has(uint64_t Key) const override { return Impl.contains(Key); }
  bool insert(uint64_t Key) override { return Impl.insert(Key); }
  bool remove(uint64_t Key) override { return Impl.remove(Key); }
  void forEach(const std::function<void(uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }
  void unionWith(const RtSet &Other) override {
    // Fast path when both sides share the representation (the selection
    // uniquely identifies the adapter type, so the cast is safe).
    if (Other.impl() == Sel) {
      Impl.unionWith(static_cast<const SetAdapter &>(Other).Impl);
      return;
    }
    Other.forEach([&](uint64_t Key) { Impl.insert(Key); });
  }

  SetT Impl;
};

using RtHashSet = SetAdapter<HashSet<uint64_t>, ir::Selection::HashSet>;
using RtSwissSet = SetAdapter<SwissSet<uint64_t>, ir::Selection::SwissSet>;
using RtFlatSet = SetAdapter<FlatSet<uint64_t>, ir::Selection::FlatSet>;
using RtBitSet = SetAdapter<BitSet, ir::Selection::BitSet>;
using RtRoaringSet = SetAdapter<RoaringBitSet, ir::Selection::SparseBitSet>;

//===----------------------------------------------------------------------===//
// Maps
//===----------------------------------------------------------------------===//

template <typename MapT, ir::Selection Sel>
class MapAdapter final : public RtMap {
public:
  MapAdapter() : RtMap(Sel) {}

  uint64_t size() const override { return Impl.size(); }
  size_t memoryBytes() const override { return Impl.memoryBytes(); }
  void clear() override { Impl.clear(); }
  void reserve(uint64_t N) override {
    if constexpr (requires(MapT &M) { M.reserve(size_t(N)); })
      Impl.reserve(size_t(N));
  }
  ProbeCounters probeCounters() const override {
    if constexpr (requires(const MapT &M) { M.probeCount(); M.rehashCount(); })
      return {Impl.probeCount(), Impl.rehashCount()};
    else
      return {};
  }
  uint64_t universeBound() const override {
    if constexpr (requires(const MapT &M) { M.universeSize(); })
      return Impl.universeSize();
    else
      return 0;
  }

  bool has(uint64_t Key) const override { return Impl.contains(Key); }
  uint64_t get(uint64_t Key, bool &Found) const override {
    const uint64_t *V = Impl.lookup(Key);
    Found = V != nullptr;
    return Found ? *V : 0;
  }
  void set(uint64_t Key, uint64_t Value) override {
    Impl.insertOrAssign(Key, Value);
  }
  bool insertDefault(uint64_t Key, uint64_t Value) override {
    return Impl.tryInsert(Key, Value);
  }
  bool remove(uint64_t Key) override { return Impl.remove(Key); }
  void forEach(
      const std::function<void(uint64_t, uint64_t)> &Fn) const override {
    Impl.forEach(Fn);
  }

  MapT Impl;
};

using RtHashMap =
    MapAdapter<HashMap<uint64_t, uint64_t>, ir::Selection::HashMap>;
using RtSwissMap =
    MapAdapter<SwissMap<uint64_t, uint64_t>, ir::Selection::SwissMap>;
using RtBitMap = MapAdapter<BitMap<uint64_t>, ir::Selection::BitMap>;

} // namespace runtime
} // namespace ade

#endif // ADE_RUNTIME_RTCONCRETE_H
