//===- Printer.cpp - Textual IR emission ----------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/IR.h"
#include "support/ErrorHandling.h"
#include "support/RawOstream.h"

#include <unordered_map>
#include <unordered_set>

using namespace ade;
using namespace ade::ir;

namespace {

/// Per-function printing state: stable SSA names for every value.
class FunctionPrinter {
public:
  FunctionPrinter(const Function &F, RawOstream &OS) : F(F), OS(OS) {}

  void print() {
    if (F.isExternal()) {
      OS << "extern fn @" << F.name() << "(";
      for (unsigned I = 0; I != F.numArgs(); ++I) {
        if (I)
          OS << ", ";
        OS << F.arg(I)->type()->str();
      }
      OS << ")";
      printRetSuffix();
      OS << "\n";
      return;
    }
    OS << "fn @" << F.name() << "(";
    for (unsigned I = 0; I != F.numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << nameOf(F.arg(I)) << ": " << F.arg(I)->type()->str();
    }
    OS << ")";
    printRetSuffix();
    OS << " {\n";
    printRegion(F.body(), 2);
    OS << "}\n";
  }

private:
  void printRetSuffix() {
    if (!F.returnType()->isVoid())
      OS << " -> " << F.returnType()->str();
  }

  std::string nameOf(const Value *V) {
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Base = V->name().empty() ? "t" : V->name();
    std::string Candidate = "%" + Base;
    unsigned Suffix = 0;
    while (Taken.count(Candidate))
      Candidate = "%" + Base + std::to_string(Suffix++);
    Taken.insert(Candidate);
    Names.emplace(V, Candidate);
    return Candidate;
  }

  void printResults(const Instruction *I) {
    if (I->numResults() == 0)
      return;
    for (unsigned R = 0; R != I->numResults(); ++R) {
      if (R)
        OS << ", ";
      OS << nameOf(I->result(R));
    }
    OS << " = ";
  }

  void printOperands(const Instruction *I, unsigned From = 0) {
    for (unsigned Idx = From; Idx != I->numOperands(); ++Idx) {
      if (Idx != From)
        OS << ", ";
      OS << nameOf(I->operand(Idx));
    }
  }

  void printDirective(const Directive &D, unsigned Indent) {
    OS.indent(Indent) << "#pragma ade";
    if (D.EnumerateMode == Directive::Enumerate::Force)
      OS << " enumerate";
    else if (D.EnumerateMode == Directive::Enumerate::Forbid)
      OS << " noenumerate";
    if (D.NoShare)
      OS << " noshare";
    for (const std::string &Name : D.NoShareWith)
      OS << " noshare(%" << Name << ")";
    if (!D.ShareGroup.empty())
      OS << " share group(\"" << D.ShareGroup << "\")";
    if (D.Select != Selection::Empty)
      OS << " select(" << selectionName(D.Select) << ")";
    OS << "\n";
  }

  void printIterClause(const Instruction *I, unsigned FirstInit,
                       unsigned FirstCarriedArg) {
    if (I->numOperands() == FirstInit)
      return;
    OS << " iter(";
    const Region *R = I->region(0);
    for (unsigned Idx = FirstInit; Idx != I->numOperands(); ++Idx) {
      if (Idx != FirstInit)
        OS << ", ";
      OS << nameOf(R->arg(FirstCarriedArg + (Idx - FirstInit))) << " = "
         << nameOf(I->operand(Idx));
    }
    OS << ")";
  }

  void printRegionArgs(const Region *R, unsigned Count) {
    OS << " -> [";
    for (unsigned Idx = 0; Idx != Count; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << nameOf(R->arg(Idx));
    }
    OS << "]";
  }

  void printInst(const Instruction *I, unsigned Indent) {
    if (const Directive *D = I->directive())
      printDirective(*D, Indent);
    OS.indent(Indent);
    switch (I->op()) {
    case Opcode::ConstInt: {
      printResults(I);
      const auto *IT = cast<IntType>(I->result()->type());
      if (IT->isSigned())
        OS << "const " << I->intAttr();
      else
        OS << "const " << static_cast<uint64_t>(I->intAttr());
      OS << " : " << IT->str();
      break;
    }
    case Opcode::ConstFloat: {
      printResults(I);
      OS << "const " << I->fpAttr();
      // Ensure re-parse as float even for integral values like 2.
      double V = I->fpAttr();
      if (V == static_cast<double>(static_cast<int64_t>(V)))
        OS << ".0";
      OS << " : " << I->result()->type()->str();
      break;
    }
    case Opcode::ConstBool:
      printResults(I);
      OS << "const " << (I->intAttr() ? "true" : "false");
      break;
    case Opcode::Cast:
      printResults(I);
      OS << "cast ";
      printOperands(I);
      OS << " : " << I->result()->type()->str();
      break;
    case Opcode::New:
      printResults(I);
      OS << "new " << I->result()->type()->str();
      break;
    case Opcode::GlobalGet:
      printResults(I);
      OS << "gget @" << I->symbol();
      break;
    case Opcode::GlobalSet:
      OS << "gset @" << I->symbol() << ", ";
      printOperands(I);
      break;
    case Opcode::Call:
      printResults(I);
      OS << "call @" << I->symbol() << "(";
      printOperands(I);
      OS << ")";
      break;
    case Opcode::If: {
      printResults(I);
      OS << "if " << nameOf(I->operand(0)) << " {\n";
      printRegion(*I->region(0), Indent + 2);
      OS.indent(Indent) << "} else {\n";
      printRegion(*I->region(1), Indent + 2);
      OS.indent(Indent) << "}";
      break;
    }
    case Opcode::ForEach: {
      printResults(I);
      OS << "foreach " << nameOf(I->operand(0));
      const Region *R = I->region(0);
      unsigned KeyArgs = R->numArgs() - (I->numOperands() - 1);
      printRegionArgs(R, KeyArgs);
      printIterClause(I, /*FirstInit=*/1, /*FirstCarriedArg=*/KeyArgs);
      OS << " {\n";
      printRegion(*R, Indent + 2);
      OS.indent(Indent) << "}";
      break;
    }
    case Opcode::ForRange: {
      printResults(I);
      OS << "forrange " << nameOf(I->operand(0)) << ", "
         << nameOf(I->operand(1));
      printRegionArgs(I->region(0), 1);
      printIterClause(I, /*FirstInit=*/2, /*FirstCarriedArg=*/1);
      OS << " {\n";
      printRegion(*I->region(0), Indent + 2);
      OS.indent(Indent) << "}";
      break;
    }
    case Opcode::DoWhile: {
      printResults(I);
      OS << "dowhile";
      printIterClause(I, /*FirstInit=*/0, /*FirstCarriedArg=*/0);
      OS << " {\n";
      printRegion(*I->region(0), Indent + 2);
      OS.indent(Indent) << "}";
      break;
    }
    default:
      // Uniform "op operands..." syntax.
      printResults(I);
      OS << opcodeName(I->op());
      if (I->numOperands()) {
        OS << " ";
        printOperands(I);
      }
      break;
    }
    OS << "\n";
  }

  void printRegion(const Region &R, unsigned Indent) {
    for (const Instruction *I : R)
      printInst(I, Indent);
  }

  const Function &F;
  RawOstream &OS;
  std::unordered_map<const Value *, std::string> Names;
  std::unordered_set<std::string> Taken;
};

} // namespace

void ade::ir::printFunction(const Function &F, RawOstream &OS) {
  FunctionPrinter(F, OS).print();
}

void ade::ir::printModule(const Module &M, RawOstream &OS) {
  bool First = true;
  for (const auto &G : M.globals()) {
    OS << "global @" << G->Name << " : " << G->Ty->str() << "\n";
    First = false;
  }
  for (const auto &F : M.functions()) {
    if (!First)
      OS << "\n";
    printFunction(*F, OS);
    First = false;
  }
}

std::string ade::ir::toString(const Module &M) {
  std::string Out;
  RawStringOstream OS(Out);
  printModule(M, OS);
  return Out;
}

std::string ade::ir::toString(const Function &F) {
  std::string Out;
  RawStringOstream OS(Out);
  printFunction(F, OS);
  return Out;
}
