//===- Printer.h - Textual IR emission --------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules/functions in the textual .memoir syntax accepted by the
/// parser (round-trip tested). See docs in Parser.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_PRINTER_H
#define ADE_IR_PRINTER_H

#include <string>

namespace ade {
class RawOstream;
namespace ir {
class Module;
class Function;

/// Prints \p M in textual syntax to \p OS.
void printModule(const Module &M, RawOstream &OS);

/// Prints a single function.
void printFunction(const Function &F, RawOstream &OS);

/// Returns the textual syntax of \p M as a string.
std::string toString(const Module &M);

/// Returns the textual syntax of \p F as a string.
std::string toString(const Function &F);

} // namespace ir
} // namespace ade

#endif // ADE_IR_PRINTER_H
