//===- IR.h - MEMOIR-like collection IR -------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection-oriented IR of SIII-A (Figures 1-2): functions of
/// structured control flow (if / for-each / for-range / do-while regions)
/// over SSA scalars and first-class collection values.
///
/// Deviations from MEMOIR, documented in DESIGN.md: collection updates
/// mutate in place instead of producing a new SSA state (so the paper's
/// Redefs(v) collapses to the allocation and its aliases), structured
/// region results replace phi functions, and enumerations live in module
/// globals. Nested collections are accessed by a Read that returns the
/// inner collection by reference, which is how the nesting case of
/// Algorithm 1 surfaces.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_IR_H
#define ADE_IR_IR_H

#include "ir/Type.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ade {
namespace ir {

class Instruction;
class Region;
class Function;
class Module;

/// A position in the textual source an instruction was parsed from.
/// Line 0 means "no location" (programmatically built IR); instructions
/// inserted by transforms inherit the location of the site they patch.
struct SrcLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SrcLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }
};

//===----------------------------------------------------------------------===//
// Values and uses
//===----------------------------------------------------------------------===//

/// One operand slot of an instruction referencing a value.
struct Use {
  Instruction *User;
  unsigned OpIdx;

  bool operator==(const Use &Other) const {
    return User == Other.User && OpIdx == Other.OpIdx;
  }
};

/// Base class of everything an operand can reference: function arguments,
/// region (block) arguments, and instruction results.
class Value {
public:
  enum class Kind : uint8_t { Argument, BlockArg, InstResult };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  Kind kind() const { return TheKind; }
  Type *type() const { return Ty; }

  /// Retypes the value. Used by the ADE transform when it rewrites an
  /// allocation's key type to idx; the verifier re-checks consistency.
  void setType(Type *NewTy) { Ty = NewTy; }

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  const std::vector<Use> &uses() const { return Uses; }
  bool hasUses() const { return !Uses.empty(); }

  /// Rewrites every use of this value to reference \p New instead.
  void replaceAllUsesWith(Value *New);

protected:
  Value(Kind K, Type *Ty, std::string Name)
      : TheKind(K), Ty(Ty), Name(std::move(Name)) {}

private:
  friend class Instruction;
  void addUse(Use U) { Uses.push_back(U); }
  void removeUse(Use U);

  const Kind TheKind;
  Type *Ty;
  std::string Name;
  std::vector<Use> Uses;
};

/// A function parameter.
class Argument : public Value {
public:
  Argument(Function *Parent, unsigned Index, Type *Ty, std::string Name)
      : Value(Kind::Argument, Ty, std::move(Name)), Parent(Parent),
        Index(Index) {}

  static bool classof(const Value *V) {
    return V->kind() == Kind::Argument;
  }

  Function *parent() const { return Parent; }
  unsigned index() const { return Index; }

private:
  Function *Parent;
  unsigned Index;
};

/// A region parameter: loop key/value bindings and loop-carried values.
class BlockArg : public Value {
public:
  BlockArg(Region *Parent, unsigned Index, Type *Ty, std::string Name)
      : Value(Kind::BlockArg, Ty, std::move(Name)), Parent(Parent),
        Index(Index) {}

  static bool classof(const Value *V) {
    return V->kind() == Kind::BlockArg;
  }

  Region *parent() const { return Parent; }
  unsigned index() const { return Index; }

private:
  Region *Parent;
  unsigned Index;
};

/// One result of an instruction.
class InstResult : public Value {
public:
  InstResult(Instruction *Parent, unsigned Index, Type *Ty, std::string Name)
      : Value(Kind::InstResult, Ty, std::move(Name)), Parent(Parent),
        Index(Index) {}

  static bool classof(const Value *V) {
    return V->kind() == Kind::InstResult;
  }

  Instruction *parent() const { return Parent; }
  unsigned index() const { return Index; }

private:
  Instruction *Parent;
  unsigned Index;
};

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// Every operation of Figure 1, plus the enumeration translations the ADE
/// transform inserts and structured control flow.
enum class Opcode : uint8_t {
  // Constants (payload in intAttr/fpAttr).
  ConstInt,
  ConstFloat,
  ConstBool,
  // Scalar arithmetic and logic.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
  Neg,
  Not,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Select, // select(cond, a, b)
  Cast,   // numeric conversion to the result type
  // Collection construction / query / update (Figure 1).
  New,    // result type is the collection type; may carry a Directive
  Read,   // read(coll, key) -> element; on nested colls returns the inner
          // collection by reference
  Write,  // write(coll, key, value)
  Insert, // insert(set, key) / insert(map, key) with default value
  Remove, // remove(coll, key)
  Has,    // has(coll, key) -> bool
  Size,   // size(coll) -> u64
  Clear,  // clear(coll)
  Reserve, // reserve(coll, n): capacity pre-sizing hint, no results
  Append, // append(seq, value)
  Pop,    // pop(seq) -> value
  Union,  // union(dstSet, srcSet)
  // Enumeration translations (SIII-B). The enumeration operand is a value
  // of EnumType, typically a GlobalGet of the enumeration global.
  Enc,     // enc(enum, key) -> idx
  Dec,     // dec(enum, idx) -> key
  EnumAdd, // add(enum, key) -> idx (adds if missing)
  // Module globals.
  GlobalGet, // symbol attr -> value
  GlobalSet, // (value), symbol attr
  // Structured control flow.
  If,       // (cond) {then}{else} -> yielded results
  ForEach,  // (coll, inits...) {key[,value], carried...} -> finals
  ForRange, // (lo, hi, inits...) {i, carried...} -> finals
  DoWhile,  // (inits...) {carried...}, yield(cond, nexts...) -> finals
  Yield,    // region terminator carrying merge values
  // Calls and returns.
  Call, // (args...), symbol attr -> 0/1 results
  Ret,  // (optional value)
};

/// Returns the mnemonic of \p Op (e.g. "read").
const char *opcodeName(Opcode Op);

/// True for operations that access a collection through operand 0 (query
/// and update operations of Figure 1).
bool isCollectionAccess(Opcode Op);

/// Per-allocation user directives of SIII-I (Listing 5), attached to New.
struct Directive {
  enum class Enumerate : uint8_t { Default, Force, Forbid };

  Enumerate EnumerateMode = Enumerate::Default;
  /// Never share this collection's enumeration with any other.
  bool NoShare = false;
  /// noshare(c): never share with these named allocations.
  std::vector<std::string> NoShareWith;
  /// share group("name"): force-share with every allocation in the group.
  std::string ShareGroup;
  /// select(Impl): force this implementation.
  Selection Select = Selection::Empty;

  bool isDefault() const {
    return EnumerateMode == Enumerate::Default && !NoShare &&
           NoShareWith.empty() && ShareGroup.empty() &&
           Select == Selection::Empty;
  }
};

/// A single IR operation: opcode, operands, results, nested regions and
/// constant/symbol attributes. One concrete class covers all opcodes
/// (analyses dispatch on the opcode), in the style of MLIR's generic op.
class Instruction {
public:
  Instruction(Opcode Op, const std::vector<Type *> &ResultTypes,
              const std::vector<Value *> &Operands, unsigned NumRegions);
  Instruction(const Instruction &) = delete;
  Instruction &operator=(const Instruction &) = delete;
  ~Instruction();

  Opcode op() const { return TheOpcode; }

  // Operands.
  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *operand(unsigned Idx) const {
    assert(Idx < Operands.size() && "operand index out of range");
    return Operands[Idx];
  }
  void setOperand(unsigned Idx, Value *V);
  /// Appends \p V as a new trailing operand.
  void appendOperand(Value *V);
  const std::vector<Value *> &operands() const { return Operands; }

  // Results.
  unsigned numResults() const {
    return static_cast<unsigned>(Results.size());
  }
  InstResult *result(unsigned Idx = 0) const {
    assert(Idx < Results.size() && "result index out of range");
    return Results[Idx].get();
  }
  /// Appends a fresh result of type \p Ty (used when building loops whose
  /// carried values are discovered incrementally).
  InstResult *addResult(Type *Ty, std::string Name = "");

  // Regions.
  unsigned numRegions() const {
    return static_cast<unsigned>(Regions.size());
  }
  Region *region(unsigned Idx) const;

  // Attributes.
  int64_t intAttr() const { return IntAttr; }
  void setIntAttr(int64_t V) { IntAttr = V; }
  double fpAttr() const { return FpAttr; }
  void setFpAttr(double V) { FpAttr = V; }
  const std::string &symbol() const { return Symbol; }
  void setSymbol(std::string S) { Symbol = std::move(S); }

  /// The user directive attached to a New, if any.
  const Directive *directive() const {
    return Dir.has_value() ? &*Dir : nullptr;
  }
  void setDirective(Directive D) { Dir = std::move(D); }

  /// Source position (invalid for programmatically built instructions).
  SrcLoc loc() const { return Loc; }
  void setLoc(SrcLoc L) { Loc = L; }

  // Structure.
  Region *parent() const { return Parent; }
  Function *parentFunction() const;
  Module *parentModule() const;

  /// Removes this instruction from its parent region and destroys it. All
  /// results must be unused.
  void eraseFromParent();

  /// Scratch id for whole-module numbering passes (e.g. the interpreter's
  /// compiled-slot table). Owned by whichever pass ran last. Relaxed
  /// atomic so concurrent engines over one shared module may renumber
  /// in parallel — safe only because every numbering pass is a
  /// deterministic pre-order walk, so racing writers store identical
  /// values (the serving runtime relies on this).
  uint32_t scratchId() const {
    return Scratch.load(std::memory_order_relaxed);
  }
  void setScratchId(uint32_t Id) const {
    Scratch.store(Id, std::memory_order_relaxed);
  }

private:
  friend class Region;

  Opcode TheOpcode;
  std::vector<Value *> Operands;
  std::vector<std::unique_ptr<InstResult>> Results;
  std::vector<std::unique_ptr<Region>> Regions;
  int64_t IntAttr = 0;
  double FpAttr = 0;
  std::string Symbol;
  std::optional<Directive> Dir;
  SrcLoc Loc;
  Region *Parent = nullptr;
  mutable std::atomic<uint32_t> Scratch{0};
};

//===----------------------------------------------------------------------===//
// Regions
//===----------------------------------------------------------------------===//

/// A straight-line list of instructions with block arguments; the body of
/// a function or of a structured control-flow operation.
class Region {
public:
  Region() = default;
  explicit Region(Instruction *ParentInst) : ParentInst(ParentInst) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  ~Region() {
    // Destroy instructions in reverse: users before their operands'
    // definitions, so use-list unregistration never touches freed values.
    while (!Insts.empty())
      Insts.pop_back();
  }

  Instruction *parentInst() const { return ParentInst; }
  Function *parentFunction() const { return ParentFn; }

  /// The function this region (transitively) belongs to.
  Function *function() const;

  // Block arguments.
  BlockArg *addArg(Type *Ty, std::string Name = "");
  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }
  BlockArg *arg(unsigned Idx) const {
    assert(Idx < Args.size() && "region arg index out of range");
    return Args[Idx].get();
  }

  // Instructions.
  size_t size() const { return Insts.size(); }
  bool empty() const { return Insts.empty(); }
  Instruction *inst(size_t Idx) const { return Insts[Idx].get(); }
  Instruction *back() const {
    assert(!Insts.empty() && "back() of empty region");
    return Insts.back().get();
  }

  /// Appends \p Inst, taking ownership.
  Instruction *push(std::unique_ptr<Instruction> Inst);

  /// Inserts \p Inst immediately before \p Before (which must be in this
  /// region), taking ownership.
  Instruction *insertBefore(Instruction *Before,
                            std::unique_ptr<Instruction> Inst);

  /// Inserts \p Inst immediately after \p After.
  Instruction *insertAfter(Instruction *After,
                           std::unique_ptr<Instruction> Inst);

  /// Position of \p Inst in this region.
  size_t indexOf(const Instruction *Inst) const;

  /// Removes and destroys \p Inst; its results must be unused.
  void erase(Instruction *Inst);

  /// Iteration support (over raw pointers; mutation-safe only for reads).
  class iterator {
  public:
    explicit iterator(const std::unique_ptr<Instruction> *P) : P(P) {}
    Instruction *operator*() const { return P->get(); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    bool operator!=(const iterator &O) const { return P != O.P; }

  private:
    const std::unique_ptr<Instruction> *P;
  };
  iterator begin() const { return iterator(Insts.data()); }
  iterator end() const { return iterator(Insts.data() + Insts.size()); }

private:
  friend class Function;

  Instruction *ParentInst = nullptr;
  Function *ParentFn = nullptr;
  std::vector<std::unique_ptr<BlockArg>> Args;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// A function: typed parameters, a return type and a body region. External
/// functions (declarations) have no body and model calls whose effects ADE
/// must treat conservatively (SIII-F).
class Function {
public:
  Function(Module *Parent, std::string Name, Type *RetTy, bool External)
      : Parent(Parent), Name(std::move(Name)), RetTy(RetTy),
        External(External) {
    Body.ParentFn = this;
  }

  Module *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  Type *returnType() const { return RetTy; }
  void setReturnType(Type *Ty) { RetTy = Ty; }
  bool isExternal() const { return External; }

  Argument *addArg(Type *Ty, std::string Name = "");
  unsigned numArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *arg(unsigned Idx) const {
    assert(Idx < Args.size() && "argument index out of range");
    return Args[Idx].get();
  }

  Region &body() { return Body; }
  const Region &body() const { return Body; }

private:
  Module *Parent;
  std::string Name;
  Type *RetTy;
  bool External;
  std::vector<std::unique_ptr<Argument>> Args;
  Region Body;
};

/// A module-level mutable cell holding a collection or enumeration shared
/// across functions (SIII-F stores interprocedural enumerations this way).
struct GlobalVariable {
  std::string Name;
  Type *Ty;
};

/// A translation unit: uniqued types, globals and functions.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  TypeContext &types() { return Types; }

  Function *createFunction(std::string Name, Type *RetTy,
                           bool External = false);
  Function *getFunction(const std::string &Name) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }
  /// Deletes \p F from the module (test-case reduction). The caller must
  /// ensure no call instruction references it.
  void removeFunction(Function *F);

  GlobalVariable *createGlobal(std::string Name, Type *Ty);
  GlobalVariable *getGlobal(const std::string &Name) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }
  /// Deletes \p G from the module (test-case reduction). The caller must
  /// ensure no gget/gset instruction references it.
  void removeGlobal(GlobalVariable *G);

  /// Returns a module-unique name with the given prefix (for enumeration
  /// globals and function clones).
  std::string uniqueName(const std::string &Prefix);

private:
  TypeContext Types;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::unordered_map<std::string, Function *> FuncMap;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::unordered_map<std::string, GlobalVariable *> GlobalMap;
  uint64_t NextUnique = 0;
};

} // namespace ir
} // namespace ade

#endif // ADE_IR_IR_H
