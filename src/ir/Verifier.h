//===- Verifier.h - IR structural and type checking -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates module well-formedness: region terminators, operand typing
/// per opcode, structured dominance of uses, carried-value arities, global
/// and call-site consistency. Run after parsing and after every transform.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_VERIFIER_H
#define ADE_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ade {
namespace ir {
class Module;

/// Verifies \p M, appending one human-readable message per problem to
/// \p Errors. Returns true when the module is well-formed.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Convenience wrapper that aborts with the first error (for tests/tools).
void verifyOrDie(const Module &M);

} // namespace ir
} // namespace ade

#endif // ADE_IR_VERIFIER_H
