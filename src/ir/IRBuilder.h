//===- IRBuilder.h - Convenience builder for the IR -------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appends instructions to a region with type inference for results, plus
/// structured-control-flow helpers that take the loop/branch body as a
/// callback. Used by tests, benchmark programs and the ADE transform.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_IRBUILDER_H
#define ADE_IR_IRBUILDER_H

#include "ir/IR.h"

#include "support/ErrorHandling.h"

#include <functional>

namespace ade {
namespace ir {

/// Instruction factory with an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}
  IRBuilder(Module &M, Region *R) : M(M), InsertRegion(R) {}

  Module &module() { return M; }
  TypeContext &types() { return M.types(); }

  /// Appends at the end of \p R from now on.
  void setInsertionPoint(Region *R) {
    InsertRegion = R;
    InsertBefore = nullptr;
  }

  /// Inserts before \p Inst from now on. Subsequent instructions inherit
  /// \p Inst's source location (transform-inserted code is attributed to
  /// the site it patches).
  void setInsertionPointBefore(Instruction *Inst) {
    InsertRegion = Inst->parent();
    InsertBefore = Inst;
    CurLoc = Inst->loc();
  }

  /// Inserts after \p Inst (by repositioning before its successor) — the
  /// insertion point then tracks subsequent inserts in order.
  void setInsertionPointAfter(Instruction *Inst) {
    Region *R = Inst->parent();
    size_t Idx = R->indexOf(Inst);
    InsertRegion = R;
    InsertBefore = Idx + 1 < R->size() ? R->inst(Idx + 1) : nullptr;
    CurLoc = Inst->loc();
  }

  Region *insertionRegion() const { return InsertRegion; }

  /// Source location stamped on every subsequently created instruction
  /// (the parser points it at each statement's mnemonic).
  void setCurrentLoc(SrcLoc Loc) { CurLoc = Loc; }
  SrcLoc currentLoc() const { return CurLoc; }

  /// Creates and inserts a raw instruction.
  Instruction *create(Opcode Op, const std::vector<Type *> &ResultTypes,
                      const std::vector<Value *> &Operands,
                      unsigned NumRegions = 0) {
    assert(InsertRegion && "no insertion point set");
    auto Inst =
        std::make_unique<Instruction>(Op, ResultTypes, Operands, NumRegions);
    Inst->setLoc(CurLoc);
    if (InsertBefore)
      return InsertRegion->insertBefore(InsertBefore, std::move(Inst));
    return InsertRegion->push(std::move(Inst));
  }

  // Constants -------------------------------------------------------------

  Value *constInt(uint64_t V, Type *Ty) {
    Instruction *I = create(Opcode::ConstInt, {Ty}, {});
    I->setIntAttr(static_cast<int64_t>(V));
    return I->result();
  }
  Value *constU64(uint64_t V) { return constInt(V, types().intTy(64, false)); }
  Value *constU32(uint64_t V) { return constInt(V, types().intTy(32, false)); }
  Value *constI64(int64_t V) {
    return constInt(static_cast<uint64_t>(V), types().intTy(64, true));
  }
  Value *constIdx(uint64_t V) { return constInt(V, types().indexTy()); }
  Value *constF64(double V) {
    Instruction *I = create(Opcode::ConstFloat, {types().floatTy(64)}, {});
    I->setFpAttr(V);
    return I->result();
  }
  Value *constBool(bool V) {
    Instruction *I = create(Opcode::ConstBool, {types().boolTy()}, {});
    I->setIntAttr(V);
    return I->result();
  }

  // Arithmetic ------------------------------------------------------------

  Value *binary(Opcode Op, Value *A, Value *B) {
    bool IsCmp = Op >= Opcode::CmpEq && Op <= Opcode::CmpGe;
    Type *Ty = IsCmp ? static_cast<Type *>(types().boolTy()) : A->type();
    return create(Op, {Ty}, {A, B})->result();
  }
  Value *add(Value *A, Value *B) { return binary(Opcode::Add, A, B); }
  Value *sub(Value *A, Value *B) { return binary(Opcode::Sub, A, B); }
  Value *mul(Value *A, Value *B) { return binary(Opcode::Mul, A, B); }
  Value *div(Value *A, Value *B) { return binary(Opcode::Div, A, B); }
  Value *rem(Value *A, Value *B) { return binary(Opcode::Rem, A, B); }
  Value *min(Value *A, Value *B) { return binary(Opcode::Min, A, B); }
  Value *max(Value *A, Value *B) { return binary(Opcode::Max, A, B); }
  Value *eq(Value *A, Value *B) { return binary(Opcode::CmpEq, A, B); }
  Value *ne(Value *A, Value *B) { return binary(Opcode::CmpNe, A, B); }
  Value *lt(Value *A, Value *B) { return binary(Opcode::CmpLt, A, B); }
  Value *le(Value *A, Value *B) { return binary(Opcode::CmpLe, A, B); }
  Value *gt(Value *A, Value *B) { return binary(Opcode::CmpGt, A, B); }
  Value *ge(Value *A, Value *B) { return binary(Opcode::CmpGe, A, B); }
  Value *logicalAnd(Value *A, Value *B) { return binary(Opcode::And, A, B); }
  Value *logicalOr(Value *A, Value *B) { return binary(Opcode::Or, A, B); }
  Value *logicalNot(Value *A) {
    return create(Opcode::Not, {A->type()}, {A})->result();
  }
  Value *select(Value *Cond, Value *A, Value *B) {
    return create(Opcode::Select, {A->type()}, {Cond, A, B})->result();
  }
  Value *castTo(Value *V, Type *Ty) {
    if (V->type() == Ty)
      return V;
    return create(Opcode::Cast, {Ty}, {V})->result();
  }

  // Collections -------------------------------------------------------------

  /// Allocates a collection of type \p Ty.
  Value *newColl(Type *Ty, std::string Name = "",
                 std::optional<Directive> Dir = std::nullopt) {
    assert(Ty->isCollection() && "new requires a collection type");
    Instruction *I = create(Opcode::New, {Ty}, {});
    if (!Name.empty())
      I->result()->setName(std::move(Name));
    if (Dir)
      I->setDirective(std::move(*Dir));
    return I->result();
  }

  /// read(coll, key). The result type follows the collection type: seq
  /// element, map value; reading a nested collection yields the inner
  /// collection by reference.
  Value *read(Value *Coll, Value *Key) {
    Type *Ty = Coll->type();
    Type *ResultTy = nullptr;
    if (auto *Seq = dyn_cast<SeqType>(Ty))
      ResultTy = Seq->element();
    else if (auto *Map = dyn_cast<MapType>(Ty))
      ResultTy = Map->value();
    else
      ade_unreachable("read on a non-readable collection");
    return create(Opcode::Read, {ResultTy}, {Coll, Key})->result();
  }

  void write(Value *Coll, Value *Key, Value *V) {
    create(Opcode::Write, {}, {Coll, Key, V});
  }
  void insert(Value *Coll, Value *Key) {
    create(Opcode::Insert, {}, {Coll, Key});
  }
  void remove(Value *Coll, Value *Key) {
    create(Opcode::Remove, {}, {Coll, Key});
  }
  Value *has(Value *Coll, Value *Key) {
    return create(Opcode::Has, {types().boolTy()}, {Coll, Key})->result();
  }
  Value *size(Value *Coll) {
    return create(Opcode::Size, {types().intTy(64, false)}, {Coll})->result();
  }
  void clear(Value *Coll) { create(Opcode::Clear, {}, {Coll}); }

  void reserve(Value *Coll, Value *N) {
    create(Opcode::Reserve, {}, {Coll, N});
  }
  void append(Value *Seq, Value *V) { create(Opcode::Append, {}, {Seq, V}); }
  Value *pop(Value *Seq) {
    auto *Ty = cast<SeqType>(Seq->type());
    return create(Opcode::Pop, {Ty->element()}, {Seq})->result();
  }
  void unionInto(Value *Dst, Value *Src) {
    create(Opcode::Union, {}, {Dst, Src});
  }

  // Enumerations ------------------------------------------------------------

  Value *enc(Value *Enum, Value *Key) {
    return create(Opcode::Enc, {types().indexTy()}, {Enum, Key})->result();
  }
  Value *dec(Value *Enum, Value *Id) {
    auto *Ty = cast<EnumType>(Enum->type());
    return create(Opcode::Dec, {Ty->key()}, {Enum, Id})->result();
  }
  Value *enumAdd(Value *Enum, Value *Key) {
    return create(Opcode::EnumAdd, {types().indexTy()}, {Enum, Key})
        ->result();
  }

  // Globals -----------------------------------------------------------------

  Value *globalGet(const GlobalVariable *G) {
    Instruction *I = create(Opcode::GlobalGet, {G->Ty}, {});
    I->setSymbol(G->Name);
    return I->result();
  }
  void globalSet(const GlobalVariable *G, Value *V) {
    Instruction *I = create(Opcode::GlobalSet, {}, {V});
    I->setSymbol(G->Name);
  }

  // Control flow ------------------------------------------------------------

  using BodyFn = std::function<std::vector<Value *>(IRBuilder &)>;

  /// if Cond { Then } else { Else }; both callbacks return the values they
  /// yield, which become the results of the if.
  std::vector<Value *> createIf(Value *Cond, const BodyFn &Then,
                                const BodyFn &Else) {
    Instruction *I = create(Opcode::If, {}, {Cond}, /*NumRegions=*/2);
    buildRegionBody(I->region(0), Then);
    buildRegionBody(I->region(1), Else);
    return finalizeResults(I, I->region(0));
  }

  /// foreach over \p Coll. The callback receives (builder, key[, value],
  /// carried...) and returns the next carried values.
  using LoopBodyFn =
      std::function<std::vector<Value *>(IRBuilder &, std::vector<Value *>)>;

  std::vector<Value *> forEach(Value *Coll, const std::vector<Value *> &Inits,
                               const LoopBodyFn &Body) {
    std::vector<Value *> Operands = {Coll};
    Operands.insert(Operands.end(), Inits.begin(), Inits.end());
    Instruction *I = create(Opcode::ForEach, {}, Operands, /*NumRegions=*/1);
    Region *R = I->region(0);
    std::vector<Value *> Args;
    Type *CollTy = Coll->type();
    if (auto *Seq = dyn_cast<SeqType>(CollTy)) {
      Args.push_back(R->addArg(types().intTy(64, false), "i"));
      Args.push_back(R->addArg(Seq->element(), "v"));
    } else if (auto *Map = dyn_cast<MapType>(CollTy)) {
      Args.push_back(R->addArg(Map->key(), "k"));
      Args.push_back(R->addArg(Map->value(), "v"));
    } else if (auto *Set = dyn_cast<SetType>(CollTy)) {
      Args.push_back(R->addArg(Set->key(), "k"));
    } else {
      ade_unreachable("foreach over a non-collection");
    }
    for (Value *Init : Inits)
      Args.push_back(R->addArg(Init->type()));
    buildLoopBody(R, Args, Body);
    return finalizeResults(I, R);
  }

  /// forrange [Lo, Hi) with carried values.
  std::vector<Value *> forRange(Value *Lo, Value *Hi,
                                const std::vector<Value *> &Inits,
                                const LoopBodyFn &Body) {
    std::vector<Value *> Operands = {Lo, Hi};
    Operands.insert(Operands.end(), Inits.begin(), Inits.end());
    Instruction *I = create(Opcode::ForRange, {}, Operands, /*NumRegions=*/1);
    Region *R = I->region(0);
    std::vector<Value *> Args;
    Args.push_back(R->addArg(Lo->type(), "i"));
    for (Value *Init : Inits)
      Args.push_back(R->addArg(Init->type()));
    buildLoopBody(R, Args, Body);
    return finalizeResults(I, R);
  }

  /// do { Body } while cond. The callback returns {cond, nexts...}; the
  /// results are the final carried values.
  std::vector<Value *> doWhile(const std::vector<Value *> &Inits,
                               const LoopBodyFn &Body) {
    Instruction *I = create(Opcode::DoWhile, {}, Inits, /*NumRegions=*/1);
    Region *R = I->region(0);
    std::vector<Value *> Args;
    for (Value *Init : Inits)
      Args.push_back(R->addArg(Init->type()));
    buildLoopBody(R, Args, Body);
    // Yield is (cond, nexts...): results are the nexts.
    Instruction *Y = R->back();
    assert(Y->op() == Opcode::Yield && Y->numOperands() >= 1 &&
           "dowhile body must yield (cond, carried...)");
    std::vector<Value *> Out;
    for (unsigned Idx = 1; Idx != Y->numOperands(); ++Idx)
      Out.push_back(I->addResult(Y->operand(Idx)->type()));
    return Out;
  }

  void yield(const std::vector<Value *> &Values) {
    create(Opcode::Yield, {}, Values);
  }

  // Calls -------------------------------------------------------------------

  Value *call(Function *Callee, const std::vector<Value *> &Args) {
    std::vector<Type *> ResultTys;
    if (!Callee->returnType()->isVoid())
      ResultTys.push_back(Callee->returnType());
    Instruction *I = create(Opcode::Call, ResultTys, Args);
    I->setSymbol(Callee->name());
    return ResultTys.empty() ? nullptr : I->result();
  }

  void ret() { create(Opcode::Ret, {}, {}); }
  void ret(Value *V) { create(Opcode::Ret, {}, {V}); }

private:
  void buildRegionBody(Region *R, const BodyFn &Body) {
    IRBuilder Nested(M, R);
    Nested.CurLoc = CurLoc;
    std::vector<Value *> Yields = Body(Nested);
    Nested.yield(Yields);
  }

  void buildLoopBody(Region *R, const std::vector<Value *> &Args,
                     const LoopBodyFn &Body) {
    IRBuilder Nested(M, R);
    Nested.CurLoc = CurLoc;
    std::vector<Value *> Yields = Body(Nested, Args);
    Nested.yield(Yields);
  }

  /// Adds one result per yielded value (using the then-region's yield for
  /// ifs) and returns them.
  std::vector<Value *> finalizeResults(Instruction *I, Region *R) {
    Instruction *Y = R->back();
    assert(Y->op() == Opcode::Yield && "region must end in yield");
    std::vector<Value *> Out;
    for (Value *V : Y->operands())
      Out.push_back(I->addResult(V->type()));
    return Out;
  }

  Module &M;
  Region *InsertRegion = nullptr;
  Instruction *InsertBefore = nullptr;
  SrcLoc CurLoc;
};

} // namespace ir
} // namespace ade

#endif // ADE_IR_IRBUILDER_H
