//===- Verifier.cpp - IR structural and type checking ---------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IR.h"
#include "support/ErrorHandling.h"

#include <cstdio>
#include <unordered_map>

using namespace ade;
using namespace ade::ir;

namespace {

class Verifier {
public:
  Verifier(Module &M, std::vector<std::string> &Errors)
      : M(M), Errors(Errors) {}

  bool run() {
    for (const auto &F : M.functions())
      verifyFunction(*F);
    return Errors.empty();
  }

private:
  void error(const Function *F, const Instruction *I, std::string Msg) {
    std::string Full = "in @" + (F ? F->name() : std::string("?"));
    if (I) {
      Full += ", at '";
      Full += opcodeName(I->op());
      Full += "'";
    }
    Full += ": " + Msg;
    Errors.push_back(std::move(Full));
  }

  //===--------------------------------------------------------------------===//
  // Dominance: a value is visible at a use if its defining point is earlier
  // in the same region or in a (transitively) enclosing region.
  //===--------------------------------------------------------------------===//

  const Region *regionOf(const Value *V) {
    switch (V->kind()) {
    case Value::Kind::Argument:
      return &cast<Argument>(V)->parent()->body();
    case Value::Kind::BlockArg:
      return cast<BlockArg>(V)->parent();
    case Value::Kind::InstResult:
      return cast<InstResult>(V)->parent()->parent();
    }
    ade_unreachable("unknown value kind");
  }

  bool dominates(const Value *Def, const Instruction *UseSite) {
    const Region *DefRegion = regionOf(Def);
    // Find the ancestor of UseSite residing in DefRegion.
    const Instruction *Anchor = UseSite;
    while (Anchor && Anchor->parent() != DefRegion)
      Anchor = Anchor->parent() ? Anchor->parent()->parentInst() : nullptr;
    if (!Anchor)
      return false;
    // Arguments and block args dominate their whole region.
    if (Def->kind() != Value::Kind::InstResult)
      return true;
    const Instruction *DefInst = cast<InstResult>(Def)->parent();
    return DefRegion->indexOf(DefInst) < DefRegion->indexOf(Anchor);
  }

  //===--------------------------------------------------------------------===//
  // Typing helpers
  //===--------------------------------------------------------------------===//

  bool isIntLike(const Type *T) {
    return isa<IntType>(T) || isa<PtrType>(T);
  }

  /// The key type used to index \p CollTy (u64 positions for sequences).
  Type *keyTypeOf(Type *CollTy) {
    if (isa<SeqType>(CollTy))
      return M.types().intTy(64, false);
    if (auto *S = dyn_cast<SetType>(CollTy))
      return S->key();
    if (auto *Mp = dyn_cast<MapType>(CollTy))
      return Mp->key();
    return nullptr;
  }

  Type *valueTypeOf(Type *CollTy) {
    if (auto *S = dyn_cast<SeqType>(CollTy))
      return S->element();
    if (auto *Mp = dyn_cast<MapType>(CollTy))
      return Mp->value();
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Function / region traversal
  //===--------------------------------------------------------------------===//

  void verifyFunction(const Function &F) {
    CurFn = &F;
    if (F.isExternal()) {
      if (!F.body().empty())
        error(&F, nullptr, "external function has a body");
      return;
    }
    if (F.body().empty() || F.body().back()->op() != Opcode::Ret) {
      error(&F, nullptr, "function body must end with ret");
      return;
    }
    verifyRegion(F.body(), /*IsFunctionBody=*/true);
  }

  void verifyRegion(const Region &R, bool IsFunctionBody) {
    if (!IsFunctionBody) {
      // Regions end with yield, or with ret for early function exits.
      if (R.empty() || (R.back()->op() != Opcode::Yield &&
                        R.back()->op() != Opcode::Ret)) {
        error(CurFn, R.parentInst(), "region must end with yield or ret");
        return;
      }
    }
    for (const Instruction *I : R) {
      // Terminators may not appear mid-region.
      bool IsLast = I == R.back();
      if (!IsLast && (I->op() == Opcode::Yield || I->op() == Opcode::Ret))
        error(CurFn, I, "terminator in the middle of a region");
      verifyOperandsVisible(I);
      verifyInst(*I);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        verifyRegion(*I->region(Idx), /*IsFunctionBody=*/false);
    }
  }

  void verifyOperandsVisible(const Instruction *I) {
    for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx) {
      Value *Op = I->operand(Idx);
      if (!dominates(Op, I))
        error(CurFn, I,
              "operand " + std::to_string(Idx) +
                  " does not dominate its use");
    }
  }

  //===--------------------------------------------------------------------===//
  // Per-opcode checks
  //===--------------------------------------------------------------------===//

  bool expectOperands(const Instruction &I, unsigned N) {
    if (I.numOperands() != N) {
      error(CurFn, &I,
            "expected " + std::to_string(N) + " operands, found " +
                std::to_string(I.numOperands()));
      return false;
    }
    return true;
  }

  bool expectResults(const Instruction &I, unsigned N) {
    if (I.numResults() != N) {
      error(CurFn, &I,
            "expected " + std::to_string(N) + " results, found " +
                std::to_string(I.numResults()));
      return false;
    }
    return true;
  }

  void expectType(const Instruction &I, const Type *Actual,
                  const Type *Expected, const char *What) {
    if (Actual != Expected)
      error(CurFn, &I,
            std::string(What) + " has type " + Actual->str() +
                ", expected " + Expected->str());
  }

  void verifyInst(const Instruction &I) {
    switch (I.op()) {
    case Opcode::ConstInt:
      expectOperands(I, 0);
      if (expectResults(I, 1) && !isIntLike(I.result()->type()))
        error(CurFn, &I, "const.int result must be an integer type");
      break;
    case Opcode::ConstFloat:
      expectOperands(I, 0);
      if (expectResults(I, 1) && !isa<FloatType>(I.result()->type()))
        error(CurFn, &I, "const.float result must be a float type");
      break;
    case Opcode::ConstBool:
      expectOperands(I, 0);
      if (expectResults(I, 1) && !I.result()->type()->isBool())
        error(CurFn, &I, "const.bool result must be bool");
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
      if (expectOperands(I, 2) && expectResults(I, 1)) {
        expectType(I, I.operand(1)->type(), I.operand(0)->type(),
                   "rhs operand");
        expectType(I, I.result()->type(), I.operand(0)->type(), "result");
        if (!I.operand(0)->type()->isScalar())
          error(CurFn, &I, "arithmetic requires scalar operands");
      }
      break;
    case Opcode::Neg:
    case Opcode::Not:
      if (expectOperands(I, 1) && expectResults(I, 1))
        expectType(I, I.result()->type(), I.operand(0)->type(), "result");
      break;
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      if (expectOperands(I, 2) && expectResults(I, 1)) {
        expectType(I, I.operand(1)->type(), I.operand(0)->type(),
                   "rhs operand");
        if (!I.result()->type()->isBool())
          error(CurFn, &I, "comparison result must be bool");
      }
      break;
    case Opcode::Select:
      if (expectOperands(I, 3) && expectResults(I, 1)) {
        if (!I.operand(0)->type()->isBool())
          error(CurFn, &I, "select condition must be bool");
        expectType(I, I.operand(2)->type(), I.operand(1)->type(),
                   "false arm");
        expectType(I, I.result()->type(), I.operand(1)->type(), "result");
      }
      break;
    case Opcode::Cast:
      if (expectOperands(I, 1) && expectResults(I, 1)) {
        if (!I.operand(0)->type()->isScalar() ||
            !I.result()->type()->isScalar())
          error(CurFn, &I, "cast requires scalar types");
      }
      break;
    case Opcode::New:
      expectOperands(I, 0);
      if (expectResults(I, 1) && !I.result()->type()->isCollection())
        error(CurFn, &I, "new result must be a collection type");
      break;
    case Opcode::Read:
      if (expectOperands(I, 2) && expectResults(I, 1)) {
        Type *CollTy = I.operand(0)->type();
        Type *ValueTy = valueTypeOf(CollTy);
        if (!ValueTy) {
          error(CurFn, &I, "read requires a Seq or Map");
          break;
        }
        expectType(I, I.operand(1)->type(), keyTypeOf(CollTy), "key");
        expectType(I, I.result()->type(), ValueTy, "result");
      }
      break;
    case Opcode::Write:
      if (expectOperands(I, 3) && expectResults(I, 0)) {
        Type *CollTy = I.operand(0)->type();
        Type *ValueTy = valueTypeOf(CollTy);
        if (!ValueTy) {
          error(CurFn, &I, "write requires a Seq or Map");
          break;
        }
        expectType(I, I.operand(1)->type(), keyTypeOf(CollTy), "key");
        expectType(I, I.operand(2)->type(), ValueTy, "value");
      }
      break;
    case Opcode::Insert:
    case Opcode::Remove:
    case Opcode::Has:
      if (expectOperands(I, 2)) {
        Type *CollTy = I.operand(0)->type();
        if (!CollTy->isAssociative()) {
          error(CurFn, &I, "operation requires a Set or Map");
          break;
        }
        expectType(I, I.operand(1)->type(), keyTypeOf(CollTy), "key");
        if (I.op() == Opcode::Has) {
          if (expectResults(I, 1) && !I.result()->type()->isBool())
            error(CurFn, &I, "has result must be bool");
        } else {
          expectResults(I, 0);
        }
      }
      break;
    case Opcode::Size:
      if (expectOperands(I, 1) && expectResults(I, 1)) {
        if (!I.operand(0)->type()->isCollection())
          error(CurFn, &I, "size requires a collection");
        expectType(I, I.result()->type(), M.types().intTy(64, false),
                   "result");
      }
      break;
    case Opcode::Clear:
      if (expectOperands(I, 1) && expectResults(I, 0))
        if (!I.operand(0)->type()->isCollection())
          error(CurFn, &I, "clear requires a collection");
      break;
    case Opcode::Reserve:
      if (expectOperands(I, 2) && expectResults(I, 0)) {
        if (!I.operand(0)->type()->isCollection())
          error(CurFn, &I, "reserve requires a collection");
        expectType(I, I.operand(1)->type(), M.types().intTy(64, false),
                   "count");
      }
      break;
    case Opcode::Append:
      if (expectOperands(I, 2) && expectResults(I, 0)) {
        auto *Seq = dyn_cast<SeqType>(I.operand(0)->type());
        if (!Seq) {
          error(CurFn, &I, "append requires a Seq");
          break;
        }
        expectType(I, I.operand(1)->type(), Seq->element(), "value");
      }
      break;
    case Opcode::Pop:
      if (expectOperands(I, 1) && expectResults(I, 1)) {
        auto *Seq = dyn_cast<SeqType>(I.operand(0)->type());
        if (!Seq) {
          error(CurFn, &I, "pop requires a Seq");
          break;
        }
        expectType(I, I.result()->type(), Seq->element(), "result");
      }
      break;
    case Opcode::Union:
      if (expectOperands(I, 2) && expectResults(I, 0)) {
        auto *Dst = dyn_cast<SetType>(I.operand(0)->type());
        auto *Src = dyn_cast<SetType>(I.operand(1)->type());
        if (!Dst || !Src) {
          error(CurFn, &I, "union requires Set operands");
          break;
        }
        if (Dst->key() != Src->key())
          error(CurFn, &I, "union of sets with different key types");
      }
      break;
    case Opcode::Enc:
    case Opcode::EnumAdd:
      if (expectOperands(I, 2) && expectResults(I, 1)) {
        auto *ET = dyn_cast<EnumType>(I.operand(0)->type());
        if (!ET) {
          error(CurFn, &I, "enumeration operand must be Enum");
          break;
        }
        expectType(I, I.operand(1)->type(), ET->key(), "key");
        expectType(I, I.result()->type(), M.types().indexTy(), "result");
      }
      break;
    case Opcode::Dec:
      if (expectOperands(I, 2) && expectResults(I, 1)) {
        auto *ET = dyn_cast<EnumType>(I.operand(0)->type());
        if (!ET) {
          error(CurFn, &I, "enumeration operand must be Enum");
          break;
        }
        expectType(I, I.operand(1)->type(), M.types().indexTy(),
                   "identifier");
        expectType(I, I.result()->type(), ET->key(), "result");
      }
      break;
    case Opcode::GlobalGet: {
      expectOperands(I, 0);
      const GlobalVariable *G = M.getGlobal(I.symbol());
      if (!G) {
        error(CurFn, &I, "unknown global @" + I.symbol());
        break;
      }
      if (expectResults(I, 1))
        expectType(I, I.result()->type(), G->Ty, "result");
      break;
    }
    case Opcode::GlobalSet: {
      const GlobalVariable *G = M.getGlobal(I.symbol());
      if (!G) {
        error(CurFn, &I, "unknown global @" + I.symbol());
        break;
      }
      if (expectOperands(I, 1) && expectResults(I, 0))
        expectType(I, I.operand(0)->type(), G->Ty, "value");
      break;
    }
    case Opcode::If:
      verifyIf(I);
      break;
    case Opcode::ForEach:
      verifyForEach(I);
      break;
    case Opcode::ForRange:
      verifyForRange(I);
      break;
    case Opcode::DoWhile:
      verifyDoWhile(I);
      break;
    case Opcode::Yield:
      expectResults(I, 0);
      break;
    case Opcode::Call:
      verifyCall(I);
      break;
    case Opcode::Ret:
      if (CurFn->returnType()->isVoid()) {
        expectOperands(I, 0);
      } else if (expectOperands(I, 1)) {
        expectType(I, I.operand(0)->type(), CurFn->returnType(),
                   "return value");
      }
      break;
    }
  }

  /// Checks that a loop/if region's trailing yield carries values matching
  /// the instruction's results, skipping \p YieldSkip leading yield
  /// operands (the do-while condition).
  void checkYieldAgainstResults(const Instruction &I, const Region &R,
                                unsigned YieldSkip) {
    if (R.empty() || R.back()->op() != Opcode::Yield)
      return; // Ret-terminated (early exit) or reported by verifyRegion.
    const Instruction *Y = R.back();
    if (Y->numOperands() != I.numResults() + YieldSkip) {
      error(CurFn, &I,
            "yield carries " + std::to_string(Y->numOperands()) +
                " values, expected " +
                std::to_string(I.numResults() + YieldSkip));
      return;
    }
    for (unsigned Idx = 0; Idx != I.numResults(); ++Idx)
      expectType(I, Y->operand(Idx + YieldSkip)->type(),
                 I.result(Idx)->type(), "yielded value");
  }

  void verifyIf(const Instruction &I) {
    if (!expectOperands(I, 1))
      return;
    if (!I.operand(0)->type()->isBool())
      error(CurFn, &I, "if condition must be bool");
    if (I.numRegions() != 2) {
      error(CurFn, &I, "if requires then and else regions");
      return;
    }
    checkYieldAgainstResults(I, *I.region(0), 0);
    checkYieldAgainstResults(I, *I.region(1), 0);
  }

  void verifyForEach(const Instruction &I) {
    if (I.numOperands() < 1 || I.numRegions() != 1) {
      error(CurFn, &I, "malformed foreach");
      return;
    }
    Type *CollTy = I.operand(0)->type();
    const Region &R = *I.region(0);
    unsigned KeyArgs;
    if (auto *Seq = dyn_cast<SeqType>(CollTy)) {
      KeyArgs = 2;
      if (R.numArgs() >= 2) {
        expectType(I, R.arg(0)->type(), M.types().intTy(64, false),
                   "foreach index");
        expectType(I, R.arg(1)->type(), Seq->element(), "foreach element");
      }
    } else if (auto *Mp = dyn_cast<MapType>(CollTy)) {
      KeyArgs = 2;
      if (R.numArgs() >= 2) {
        expectType(I, R.arg(0)->type(), Mp->key(), "foreach key");
        expectType(I, R.arg(1)->type(), Mp->value(), "foreach value");
      }
    } else if (auto *St = dyn_cast<SetType>(CollTy)) {
      KeyArgs = 1;
      if (R.numArgs() >= 1)
        expectType(I, R.arg(0)->type(), St->key(), "foreach key");
    } else {
      error(CurFn, &I, "foreach requires a collection");
      return;
    }
    unsigned Carried = I.numOperands() - 1;
    if (R.numArgs() != KeyArgs + Carried) {
      error(CurFn, &I, "foreach region argument count mismatch");
      return;
    }
    if (I.numResults() != Carried) {
      error(CurFn, &I, "foreach result count must match carried values");
      return;
    }
    for (unsigned Idx = 0; Idx != Carried; ++Idx) {
      expectType(I, R.arg(KeyArgs + Idx)->type(),
                 I.operand(1 + Idx)->type(), "carried value");
      expectType(I, I.result(Idx)->type(), I.operand(1 + Idx)->type(),
                 "loop result");
    }
    checkYieldAgainstResults(I, R, 0);
  }

  void verifyForRange(const Instruction &I) {
    if (I.numOperands() < 2 || I.numRegions() != 1) {
      error(CurFn, &I, "malformed forrange");
      return;
    }
    expectType(I, I.operand(1)->type(), I.operand(0)->type(), "range end");
    const Region &R = *I.region(0);
    unsigned Carried = I.numOperands() - 2;
    if (R.numArgs() != 1 + Carried || I.numResults() != Carried) {
      error(CurFn, &I, "forrange arity mismatch");
      return;
    }
    expectType(I, R.arg(0)->type(), I.operand(0)->type(), "induction");
    for (unsigned Idx = 0; Idx != Carried; ++Idx) {
      expectType(I, R.arg(1 + Idx)->type(), I.operand(2 + Idx)->type(),
                 "carried value");
      expectType(I, I.result(Idx)->type(), I.operand(2 + Idx)->type(),
                 "loop result");
    }
    checkYieldAgainstResults(I, R, 0);
  }

  void verifyDoWhile(const Instruction &I) {
    if (I.numRegions() != 1) {
      error(CurFn, &I, "malformed dowhile");
      return;
    }
    const Region &R = *I.region(0);
    unsigned Carried = I.numOperands();
    if (R.numArgs() != Carried || I.numResults() != Carried) {
      error(CurFn, &I, "dowhile arity mismatch");
      return;
    }
    for (unsigned Idx = 0; Idx != Carried; ++Idx) {
      expectType(I, R.arg(Idx)->type(), I.operand(Idx)->type(),
                 "carried value");
      expectType(I, I.result(Idx)->type(), I.operand(Idx)->type(),
                 "loop result");
    }
    if (!R.empty() && R.back()->op() == Opcode::Yield) {
      const Instruction *Y = R.back();
      if (Y->numOperands() < 1 || !Y->operand(0)->type()->isBool())
        error(CurFn, &I, "dowhile yield must begin with a bool condition");
    }
    checkYieldAgainstResults(I, R, /*YieldSkip=*/1);
  }

  void verifyCall(const Instruction &I) {
    const Function *Callee = M.getFunction(I.symbol());
    if (!Callee) {
      error(CurFn, &I, "unknown callee @" + I.symbol());
      return;
    }
    if (I.numOperands() != Callee->numArgs()) {
      error(CurFn, &I, "call argument count mismatch for @" + I.symbol());
      return;
    }
    for (unsigned Idx = 0; Idx != I.numOperands(); ++Idx)
      expectType(I, I.operand(Idx)->type(), Callee->arg(Idx)->type(),
                 "call argument");
    if (Callee->returnType()->isVoid()) {
      expectResults(I, 0);
    } else if (expectResults(I, 1)) {
      expectType(I, I.result()->type(), Callee->returnType(), "call result");
    }
  }

  Module &M;
  std::vector<std::string> &Errors;
  const Function *CurFn = nullptr;
};

} // namespace

bool ade::ir::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  // TypeContext accessors are logically const here.
  return Verifier(const_cast<Module &>(M), Errors).run();
}

void ade::ir::verifyOrDie(const Module &M) {
  std::vector<std::string> Errors;
  if (verifyModule(M, Errors))
    return;
  std::fprintf(stderr, "module verification failed:\n");
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  reportFatalError("invalid IR module");
}
