//===- Type.h - MEMOIR-like IR types ----------------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of Figure 2: scalar types (iN, uN, fN, idx, ptr, bool,
/// void) and collection types (Seq<T>, Set<K>, Map<K,V>, Enum<K>).
/// Collection types carry an optional *selection* — the implementation
/// chosen for them (SIII-A: "Set{HashSet}<f32>"), with an empty selection
/// written Set<f32>. Types are uniqued by a TypeContext, so pointer
/// equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_TYPE_H
#define ADE_IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace ade {
namespace ir {

class TypeContext;

/// The collection implementation chosen for a collection type (Table I).
/// Empty means "not yet selected"; lowering/interpretation applies the
/// per-kind default (HashSet/HashMap/Array).
enum class Selection : uint8_t {
  Empty,
  // Seq
  Array,
  // Set
  HashSet,
  FlatSet,
  SwissSet,
  BitSet,       // Enumerated-only.
  SparseBitSet, // Enumerated-only.
  // Map
  HashMap,
  SwissMap,
  BitMap, // Enumerated-only.
};

/// Returns the printable name of \p Sel (e.g. "HashSet").
const char *selectionName(Selection Sel);

/// Parses a selectionName() back into \p Out ("" parses to Empty).
/// Returns false on an unknown name.
bool selectionFromName(std::string_view Name, Selection &Out);

/// True for the specialized implementations that require enumerated
/// (contiguous-integer) keys: Bit{Set,Map} and SparseBitSet.
inline bool selectionRequiresEnumeration(Selection Sel) {
  return Sel == Selection::BitSet || Sel == Selection::SparseBitSet ||
         Sel == Selection::BitMap;
}

/// Base class of all IR types.
class Type {
public:
  enum class Kind : uint8_t {
    Void,
    Bool,
    Int,   // iN / uN / idx
    Float, // fN
    Ptr,   // Opaque pointer (e.g. PTA's pointer keys).
    Seq,
    Set,
    Map,
    Enum,
  };

  Kind kind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isCollection() const {
    return TheKind == Kind::Seq || TheKind == Kind::Set ||
           TheKind == Kind::Map;
  }
  /// Associative collections (Set/Map) — the enumeration targets of Alg. 1.
  bool isAssociative() const {
    return TheKind == Kind::Set || TheKind == Kind::Map;
  }
  /// Scalar value types storable in collections.
  bool isScalar() const {
    return TheKind == Kind::Bool || TheKind == Kind::Int ||
           TheKind == Kind::Float || TheKind == Kind::Ptr;
  }

  /// Renders the type in source syntax, e.g. "Map{BitMap}<idx,u32>".
  std::string str() const;

protected:
  explicit Type(Kind K) : TheKind(K) {}
  ~Type() = default;

private:
  const Kind TheKind;
};

/// void.
class VoidType : public Type {
  friend class TypeContext;
  VoidType() : Type(Kind::Void) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Void; }
};

/// bool (i1).
class BoolType : public Type {
  friend class TypeContext;
  BoolType() : Type(Kind::Bool) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Bool; }
};

/// Integer types: iN (signed), uN (unsigned), and idx — the distinguished
/// unsigned identifier type produced by enumeration (SIII-B).
class IntType : public Type {
  friend class TypeContext;
  IntType(unsigned Bits, bool Signed, bool Index)
      : Type(Kind::Int), Bits(Bits), Signed(Signed), Index(Index) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Int; }

  unsigned bits() const { return Bits; }
  bool isSigned() const { return Signed; }
  /// True for the idx type.
  bool isIndex() const { return Index; }

private:
  unsigned Bits;
  bool Signed;
  bool Index;
};

/// Floating-point types f32/f64.
class FloatType : public Type {
  friend class TypeContext;
  explicit FloatType(unsigned Bits) : Type(Kind::Float), Bits(Bits) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Float; }

  unsigned bits() const { return Bits; }

private:
  unsigned Bits;
};

/// Opaque pointer type. Pointer identity is modeled as a 64-bit label.
class PtrType : public Type {
  friend class TypeContext;
  PtrType() : Type(Kind::Ptr) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Ptr; }
};

/// Seq<T>.
class SeqType : public Type {
  friend class TypeContext;
  SeqType(Type *Elem, Selection Sel)
      : Type(Kind::Seq), Elem(Elem), Sel(Sel) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Seq; }

  Type *element() const { return Elem; }
  Selection selection() const { return Sel; }

private:
  Type *Elem;
  Selection Sel;
};

/// Set<K>.
class SetType : public Type {
  friend class TypeContext;
  SetType(Type *Key, Selection Sel) : Type(Kind::Set), Key(Key), Sel(Sel) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Set; }

  Type *key() const { return Key; }
  Selection selection() const { return Sel; }

private:
  Type *Key;
  Selection Sel;
};

/// Map<K,V>.
class MapType : public Type {
  friend class TypeContext;
  MapType(Type *Key, Type *Value, Selection Sel)
      : Type(Kind::Map), Key(Key), Value(Value), Sel(Sel) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Map; }

  Type *key() const { return Key; }
  Type *value() const { return Value; }
  Selection selection() const { return Sel; }

private:
  Type *Key;
  Type *Value;
  Selection Sel;
};

/// Enum<K> = (Enc: Map<K,idx>, Dec: Seq<K>) — the enumeration runtime type
/// of SIII-B, keyed by the enumerated key type.
class EnumType : public Type {
  friend class TypeContext;
  explicit EnumType(Type *Key) : Type(Kind::Enum), Key(Key) {}

public:
  static bool classof(const Type *T) { return T->kind() == Kind::Enum; }

  Type *key() const { return Key; }

private:
  Type *Key;
};

/// Uniques and owns all types of one module.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;
  ~TypeContext();

  VoidType *voidTy() { return Void.get(); }
  BoolType *boolTy() { return Bool.get(); }
  PtrType *ptrTy() { return Ptr.get(); }
  IntType *intTy(unsigned Bits, bool Signed);
  /// The idx identifier type (an unsigned 64-bit integer kind of its own).
  IntType *indexTy();
  FloatType *floatTy(unsigned Bits);
  SeqType *seqTy(Type *Elem, Selection Sel = Selection::Empty);
  SetType *setTy(Type *Key, Selection Sel = Selection::Empty);
  MapType *mapTy(Type *Key, Type *Value, Selection Sel = Selection::Empty);
  EnumType *enumTy(Type *Key);

  /// Returns \p T with its selection replaced by \p Sel (collections only).
  Type *withSelection(Type *T, Selection Sel);

private:
  std::unique_ptr<VoidType> Void;
  std::unique_ptr<BoolType> Bool;
  std::unique_ptr<PtrType> Ptr;
  std::unique_ptr<IntType> Index;
  std::map<std::pair<unsigned, bool>, std::unique_ptr<IntType>> Ints;
  std::map<unsigned, std::unique_ptr<FloatType>> Floats;
  std::map<std::pair<Type *, Selection>, std::unique_ptr<SeqType>> Seqs;
  std::map<std::pair<Type *, Selection>, std::unique_ptr<SetType>> Sets;
  std::map<std::tuple<Type *, Type *, Selection>, std::unique_ptr<MapType>>
      Maps;
  std::map<Type *, std::unique_ptr<EnumType>> Enums;
};

} // namespace ir
} // namespace ade

#endif // ADE_IR_TYPE_H
