//===- CallGraph.cpp - Module call graph and SCCs -------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"

#include <algorithm>
#include <functional>

using namespace ade;
using namespace ade::ir;

static void collectCalls(const Region &R, const Module &M,
                         std::vector<const Function *> &Out,
                         bool &External) {
  for (const Instruction *I : R) {
    if (I->op() == Opcode::Call) {
      const Function *Callee = M.getFunction(I->symbol());
      if (!Callee || Callee->isExternal())
        External = true;
      else
        Out.push_back(Callee);
    }
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      collectCalls(*I->region(Idx), M, Out, External);
  }
}

CallGraph::CallGraph(const Module &M) {
  // Edges, in program order; dedup keeps the first occurrence.
  for (const auto &F : M.functions()) {
    Node &N = Nodes[F.get()];
    if (F->isExternal())
      continue;
    std::vector<const Function *> Calls;
    collectCalls(F->body(), M, Calls, N.CallsExternal);
    for (const Function *Callee : Calls)
      if (std::find(N.Callees.begin(), N.Callees.end(), Callee) ==
          N.Callees.end())
        N.Callees.push_back(Callee);
  }
  for (const auto &F : M.functions())
    for (const Function *Callee : Nodes[F.get()].Callees)
      Nodes[Callee].Callers.push_back(F.get());

  // Tarjan's SCC algorithm. The DFS visits functions in module order and
  // callees in call order, so component order is deterministic; Tarjan
  // emits each component only after all the components it calls into, so
  // Sccs is naturally bottom-up.
  std::map<const Function *, unsigned> Index, Low;
  std::vector<const Function *> Stack;
  std::map<const Function *, bool> OnStack;
  unsigned Next = 0;
  std::function<void(const Function *)> Strongconnect =
      [&](const Function *F) {
        Index[F] = Low[F] = Next++;
        Stack.push_back(F);
        OnStack[F] = true;
        for (const Function *Callee : Nodes[F].Callees) {
          if (!Index.count(Callee)) {
            Strongconnect(Callee);
            Low[F] = std::min(Low[F], Low[Callee]);
          } else if (OnStack[Callee]) {
            Low[F] = std::min(Low[F], Index[Callee]);
          }
        }
        if (Low[F] == Index[F]) {
          std::vector<const Function *> Scc;
          const Function *Member;
          do {
            Member = Stack.back();
            Stack.pop_back();
            OnStack[Member] = false;
            Scc.push_back(Member);
          } while (Member != F);
          std::reverse(Scc.begin(), Scc.end());
          Sccs.push_back(std::move(Scc));
        }
      };
  for (const auto &F : M.functions())
    if (!F->isExternal() && !Index.count(F.get()))
      Strongconnect(F.get());

  for (const std::vector<const Function *> &Scc : Sccs) {
    bool Cycle = Scc.size() > 1;
    if (!Cycle)
      for (const Function *Callee : Nodes[Scc.front()].Callees)
        Cycle |= Callee == Scc.front();
    if (Cycle)
      for (const Function *F : Scc)
        Nodes[F].Recursive = true;
  }

  for (const auto &F : M.functions())
    if (!F->isExternal() && Nodes[F.get()].Callers.empty())
      Entries.push_back(F.get());
}

const CallGraph::Node &CallGraph::nodeOf(const Function *F) const {
  static const Node Empty;
  auto It = Nodes.find(F);
  return It == Nodes.end() ? Empty : It->second;
}

const std::vector<const Function *> &
CallGraph::callees(const Function *F) const {
  return nodeOf(F).Callees;
}

const std::vector<const Function *> &
CallGraph::callers(const Function *F) const {
  return nodeOf(F).Callers;
}

bool CallGraph::callsExternal(const Function *F) const {
  return nodeOf(F).CallsExternal;
}

bool CallGraph::isRecursive(const Function *F) const {
  return nodeOf(F).Recursive;
}

bool CallGraph::reaches(const Function *From, const Function *To) const {
  if (From == To)
    return true;
  std::vector<const Function *> Work{From};
  std::map<const Function *, bool> Seen;
  Seen[From] = true;
  while (!Work.empty()) {
    const Function *F = Work.back();
    Work.pop_back();
    for (const Function *Callee : nodeOf(F).Callees) {
      if (Callee == To)
        return true;
      if (!Seen[Callee]) {
        Seen[Callee] = true;
        Work.push_back(Callee);
      }
    }
  }
  return false;
}
