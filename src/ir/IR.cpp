//===- IR.cpp - MEMOIR-like collection IR ---------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace ade;
using namespace ade::ir;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::removeUse(Use U) {
  auto It = std::find(Uses.begin(), Uses.end(), U);
  assert(It != Uses.end() && "removing a use that was never recorded");
  Uses.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  // setOperand mutates our use list; iterate over a snapshot.
  std::vector<Use> Snapshot = Uses;
  for (const Use &U : Snapshot)
    U.User->setOperand(U.OpIdx, New);
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

const char *ade::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return "const.int";
  case Opcode::ConstFloat:
    return "const.float";
  case Opcode::ConstBool:
    return "const.bool";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Min:
    return "min";
  case Opcode::Max:
    return "max";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEq:
    return "eq";
  case Opcode::CmpNe:
    return "ne";
  case Opcode::CmpLt:
    return "lt";
  case Opcode::CmpLe:
    return "le";
  case Opcode::CmpGt:
    return "gt";
  case Opcode::CmpGe:
    return "ge";
  case Opcode::Select:
    return "select";
  case Opcode::Cast:
    return "cast";
  case Opcode::New:
    return "new";
  case Opcode::Read:
    return "read";
  case Opcode::Write:
    return "write";
  case Opcode::Insert:
    return "insert";
  case Opcode::Remove:
    return "remove";
  case Opcode::Has:
    return "has";
  case Opcode::Size:
    return "size";
  case Opcode::Clear:
    return "clear";
  case Opcode::Reserve:
    return "reserve";
  case Opcode::Append:
    return "append";
  case Opcode::Pop:
    return "pop";
  case Opcode::Union:
    return "union";
  case Opcode::Enc:
    return "enc";
  case Opcode::Dec:
    return "dec";
  case Opcode::EnumAdd:
    return "enum.add";
  case Opcode::GlobalGet:
    return "gget";
  case Opcode::GlobalSet:
    return "gset";
  case Opcode::If:
    return "if";
  case Opcode::ForEach:
    return "foreach";
  case Opcode::ForRange:
    return "forrange";
  case Opcode::DoWhile:
    return "dowhile";
  case Opcode::Yield:
    return "yield";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  }
  ade_unreachable("unknown opcode");
}

bool ade::ir::isCollectionAccess(Opcode Op) {
  switch (Op) {
  case Opcode::Read:
  case Opcode::Write:
  case Opcode::Insert:
  case Opcode::Remove:
  case Opcode::Has:
  case Opcode::Size:
  case Opcode::Clear:
  case Opcode::Reserve:
  case Opcode::Append:
  case Opcode::Pop:
  case Opcode::Union:
    return true;
  default:
    return false;
  }
}

Instruction::Instruction(Opcode Op, const std::vector<Type *> &ResultTypes,
                         const std::vector<Value *> &Operands,
                         unsigned NumRegions)
    : TheOpcode(Op) {
  for (unsigned I = 0, E = static_cast<unsigned>(ResultTypes.size()); I != E;
       ++I)
    Results.push_back(std::make_unique<InstResult>(this, I, ResultTypes[I],
                                                   /*Name=*/""));
  this->Operands.reserve(Operands.size());
  for (Value *V : Operands)
    appendOperand(V);
  for (unsigned I = 0; I != NumRegions; ++I)
    Regions.push_back(std::make_unique<Region>(this));
}

Instruction::~Instruction() {
  // Destroy nested regions in reverse: the parser resolves names
  // textually, so (on malformed input that never reaches the verifier) a
  // later sibling region can reference values defined in an earlier one.
  // Those definitions must still be alive when the user's use-list entry
  // is unregistered.
  while (!Regions.empty())
    Regions.pop_back();
  for (unsigned I = 0, E = numOperands(); I != E; ++I)
    if (Operands[I])
      Operands[I]->removeUse(Use{this, I});
}

void Instruction::setOperand(unsigned Idx, Value *V) {
  assert(Idx < Operands.size() && "operand index out of range");
  assert(V && "operands must be non-null");
  if (Operands[Idx] == V)
    return;
  if (Operands[Idx])
    Operands[Idx]->removeUse(Use{this, Idx});
  Operands[Idx] = V;
  V->addUse(Use{this, Idx});
}

void Instruction::appendOperand(Value *V) {
  assert(V && "operands must be non-null");
  unsigned Idx = numOperands();
  Operands.push_back(V);
  V->addUse(Use{this, Idx});
}

InstResult *Instruction::addResult(Type *Ty, std::string Name) {
  unsigned Idx = numResults();
  Results.push_back(
      std::make_unique<InstResult>(this, Idx, Ty, std::move(Name)));
  return Results.back().get();
}

Region *Instruction::region(unsigned Idx) const {
  assert(Idx < Regions.size() && "region index out of range");
  return Regions[Idx].get();
}

Function *Instruction::parentFunction() const {
  return Parent ? Parent->function() : nullptr;
}

Module *Instruction::parentModule() const {
  Function *F = parentFunction();
  return F ? F->parent() : nullptr;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction has no parent region");
  Parent->erase(this);
}

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

Function *Region::function() const {
  const Region *R = this;
  while (R->ParentInst) {
    assert(R->ParentInst->parent() && "detached region tree");
    R = R->ParentInst->parent();
  }
  return R->ParentFn;
}

BlockArg *Region::addArg(Type *Ty, std::string Name) {
  Args.push_back(std::make_unique<BlockArg>(
      this, static_cast<unsigned>(Args.size()), Ty, std::move(Name)));
  return Args.back().get();
}

Instruction *Region::push(std::unique_ptr<Instruction> Inst) {
  Inst->Parent = this;
  Insts.push_back(std::move(Inst));
  return Insts.back().get();
}

Instruction *Region::insertBefore(Instruction *Before,
                                  std::unique_ptr<Instruction> Inst) {
  size_t Idx = indexOf(Before);
  Inst->Parent = this;
  Instruction *Raw = Inst.get();
  Insts.insert(Insts.begin() + Idx, std::move(Inst));
  return Raw;
}

Instruction *Region::insertAfter(Instruction *After,
                                 std::unique_ptr<Instruction> Inst) {
  size_t Idx = indexOf(After);
  Inst->Parent = this;
  Instruction *Raw = Inst.get();
  Insts.insert(Insts.begin() + Idx + 1, std::move(Inst));
  return Raw;
}

size_t Region::indexOf(const Instruction *Inst) const {
  for (size_t I = 0, E = Insts.size(); I != E; ++I)
    if (Insts[I].get() == Inst)
      return I;
  ade_unreachable("instruction not in region");
}

void Region::erase(Instruction *Inst) {
#ifndef NDEBUG
  for (unsigned I = 0, E = Inst->numResults(); I != E; ++I)
    assert(!Inst->result(I)->hasUses() &&
           "erasing an instruction whose results are still used");
#endif
  Insts.erase(Insts.begin() + indexOf(Inst));
}

//===----------------------------------------------------------------------===//
// Function / Module
//===----------------------------------------------------------------------===//

Argument *Function::addArg(Type *Ty, std::string Name) {
  Args.push_back(std::make_unique<Argument>(
      this, static_cast<unsigned>(Args.size()), Ty, std::move(Name)));
  return Args.back().get();
}

Function *Module::createFunction(std::string Name, Type *RetTy,
                                 bool External) {
  assert(!FuncMap.count(Name) && "duplicate function name");
  Funcs.push_back(
      std::make_unique<Function>(this, Name, RetTy, External));
  Function *F = Funcs.back().get();
  FuncMap[F->name()] = F;
  return F;
}

Function *Module::getFunction(const std::string &Name) const {
  auto It = FuncMap.find(Name);
  return It == FuncMap.end() ? nullptr : It->second;
}

void Module::removeFunction(Function *F) {
  FuncMap.erase(F->name());
  for (auto It = Funcs.begin(); It != Funcs.end(); ++It) {
    if (It->get() == F) {
      Funcs.erase(It);
      return;
    }
  }
  assert(false && "function not in module");
}

GlobalVariable *Module::createGlobal(std::string Name, Type *Ty) {
  assert(!GlobalMap.count(Name) && "duplicate global name");
  Globals.push_back(std::make_unique<GlobalVariable>());
  GlobalVariable *G = Globals.back().get();
  G->Name = std::move(Name);
  G->Ty = Ty;
  GlobalMap[G->Name] = G;
  return G;
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  auto It = GlobalMap.find(Name);
  return It == GlobalMap.end() ? nullptr : It->second;
}

void Module::removeGlobal(GlobalVariable *G) {
  GlobalMap.erase(G->Name);
  for (auto It = Globals.begin(); It != Globals.end(); ++It) {
    if (It->get() == G) {
      Globals.erase(It);
      return;
    }
  }
  assert(false && "global not in module");
}

std::string Module::uniqueName(const std::string &Prefix) {
  while (true) {
    std::string Candidate = Prefix + std::to_string(NextUnique++);
    if (!FuncMap.count(Candidate) && !GlobalMap.count(Candidate))
      return Candidate;
  }
}
