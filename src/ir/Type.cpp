//===- Type.cpp - MEMOIR-like IR types ------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/ErrorHandling.h"

using namespace ade;
using namespace ade::ir;

const char *ade::ir::selectionName(Selection Sel) {
  switch (Sel) {
  case Selection::Empty:
    return "";
  case Selection::Array:
    return "Array";
  case Selection::HashSet:
    return "HashSet";
  case Selection::FlatSet:
    return "FlatSet";
  case Selection::SwissSet:
    return "SwissSet";
  case Selection::BitSet:
    return "BitSet";
  case Selection::SparseBitSet:
    return "SparseBitSet";
  case Selection::HashMap:
    return "HashMap";
  case Selection::SwissMap:
    return "SwissMap";
  case Selection::BitMap:
    return "BitMap";
  }
  ade_unreachable("unknown selection");
}

bool ade::ir::selectionFromName(std::string_view Name, Selection &Out) {
  for (Selection S :
       {Selection::Empty, Selection::Array, Selection::HashSet,
        Selection::FlatSet, Selection::SwissSet, Selection::BitSet,
        Selection::SparseBitSet, Selection::HashMap, Selection::SwissMap,
        Selection::BitMap})
    if (Name == selectionName(S)) {
      Out = S;
      return true;
    }
  return false;
}

static std::string selectionInfix(Selection Sel) {
  if (Sel == Selection::Empty)
    return "";
  return std::string("{") + selectionName(Sel) + "}";
}

std::string Type::str() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Bool:
    return "bool";
  case Kind::Int: {
    const auto *IT = cast<IntType>(this);
    if (IT->isIndex())
      return "idx";
    return (IT->isSigned() ? "i" : "u") + std::to_string(IT->bits());
  }
  case Kind::Float:
    return "f" + std::to_string(cast<FloatType>(this)->bits());
  case Kind::Ptr:
    return "ptr";
  case Kind::Seq: {
    const auto *ST = cast<SeqType>(this);
    return "Seq" + selectionInfix(ST->selection()) + "<" +
           ST->element()->str() + ">";
  }
  case Kind::Set: {
    const auto *ST = cast<SetType>(this);
    return "Set" + selectionInfix(ST->selection()) + "<" + ST->key()->str() +
           ">";
  }
  case Kind::Map: {
    const auto *MT = cast<MapType>(this);
    return "Map" + selectionInfix(MT->selection()) + "<" + MT->key()->str() +
           "," + MT->value()->str() + ">";
  }
  case Kind::Enum:
    return "Enum<" + cast<EnumType>(this)->key()->str() + ">";
  }
  ade_unreachable("unknown type kind");
}

TypeContext::TypeContext()
    : Void(new VoidType()), Bool(new BoolType()), Ptr(new PtrType()),
      Index(new IntType(64, /*Signed=*/false, /*Index=*/true)) {}

TypeContext::~TypeContext() = default;

IntType *TypeContext::intTy(unsigned Bits, bool Signed) {
  assert((Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64) &&
         "unsupported integer width");
  auto &Slot = Ints[{Bits, Signed}];
  if (!Slot)
    Slot.reset(new IntType(Bits, Signed, /*Index=*/false));
  return Slot.get();
}

IntType *TypeContext::indexTy() { return Index.get(); }

FloatType *TypeContext::floatTy(unsigned Bits) {
  assert((Bits == 32 || Bits == 64) && "unsupported float width");
  auto &Slot = Floats[Bits];
  if (!Slot)
    Slot.reset(new FloatType(Bits));
  return Slot.get();
}

SeqType *TypeContext::seqTy(Type *Elem, Selection Sel) {
  assert(Elem && "sequence element type required");
  auto &Slot = Seqs[{Elem, Sel}];
  if (!Slot)
    Slot.reset(new SeqType(Elem, Sel));
  return Slot.get();
}

SetType *TypeContext::setTy(Type *Key, Selection Sel) {
  assert(Key && "set key type required");
  auto &Slot = Sets[{Key, Sel}];
  if (!Slot)
    Slot.reset(new SetType(Key, Sel));
  return Slot.get();
}

MapType *TypeContext::mapTy(Type *Key, Type *Value, Selection Sel) {
  assert(Key && Value && "map key and value types required");
  auto &Slot = Maps[{Key, Value, Sel}];
  if (!Slot)
    Slot.reset(new MapType(Key, Value, Sel));
  return Slot.get();
}

EnumType *TypeContext::enumTy(Type *Key) {
  assert(Key && "enum key type required");
  auto &Slot = Enums[Key];
  if (!Slot)
    Slot.reset(new EnumType(Key));
  return Slot.get();
}

Type *TypeContext::withSelection(Type *T, Selection Sel) {
  if (auto *ST = dyn_cast<SeqType>(T))
    return seqTy(ST->element(), Sel);
  if (auto *ST = dyn_cast<SetType>(T))
    return setTy(ST->key(), Sel);
  if (auto *MT = dyn_cast<MapType>(T))
    return mapTy(MT->key(), MT->value(), Sel);
  ade_unreachable("withSelection on a non-collection type");
}
