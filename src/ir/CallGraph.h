//===- CallGraph.h - Module call graph and SCCs -----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module's call graph: one node per function, one edge per direct
/// call site, plus Tarjan strongly-connected components in bottom-up
/// (callees before callers) order. Interprocedural analyses walk the SCC
/// order to compute function summaries before any caller consumes them;
/// functions inside a non-trivial SCC are recursive and get conservative
/// summaries.
///
/// All orders are derived from module/program order, never from pointer
/// values, so analyses built on top stay byte-stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_IR_CALLGRAPH_H
#define ADE_IR_CALLGRAPH_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace ade {
namespace ir {

class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Internal functions \p F directly calls (deduplicated, in first-call
  /// program order). External callees are not listed; see callsExternal.
  const std::vector<const Function *> &callees(const Function *F) const;

  /// Internal functions that directly call \p F (module order).
  const std::vector<const Function *> &callers(const Function *F) const;

  /// True when \p F contains a call to an external (body-less) function.
  bool callsExternal(const Function *F) const;

  /// True when \p F can reach itself through calls (self-recursion or a
  /// larger cycle).
  bool isRecursive(const Function *F) const;

  /// Strongly-connected components in bottom-up order: every callee of a
  /// component member is in the same or an earlier component.
  const std::vector<std::vector<const Function *>> &sccs() const {
    return Sccs;
  }

  /// Internal functions no internal call site references — the module's
  /// entry points (e.g. @main, or @build/@kernel in benchmark programs).
  const std::vector<const Function *> &entryFunctions() const {
    return Entries;
  }

  /// True when \p To is reachable from \p From through call edges
  /// (reflexive: a function reaches itself).
  bool reaches(const Function *From, const Function *To) const;

private:
  struct Node {
    std::vector<const Function *> Callees;
    std::vector<const Function *> Callers;
    bool CallsExternal = false;
    bool Recursive = false;
  };

  const Node &nodeOf(const Function *F) const;

  std::map<const Function *, Node> Nodes;
  std::vector<std::vector<const Function *>> Sccs;
  std::vector<const Function *> Entries;
};

} // namespace ir
} // namespace ade

#endif // ADE_IR_CALLGRAPH_H
