//===- Diagnostics.h - Lint diagnostics engine ------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic sink shared by the static checkers: severities, source
/// locations threaded from the parser into the IR, caret-style text
/// rendering and a machine-readable JSON form (`--diag-format=json`).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_ANALYSIS_DIAGNOSTICS_H
#define ADE_ANALYSIS_DIAGNOSTICS_H

#include "ir/IR.h"
#include "support/RawOstream.h"

#include <string>
#include <vector>

namespace ade {
namespace analysis {

enum class Severity : uint8_t { Note, Warning, Error };

/// Printable name of \p Sev ("note" / "warning" / "error").
const char *severityName(Severity Sev);

/// One finding of a checker.
struct Diagnostic {
  Severity Sev = Severity::Warning;
  /// The checker slug, e.g. "dead-write".
  std::string Check;
  std::string Message;
  /// Name of the enclosing function, empty for module-level findings.
  std::string FunctionName;
  /// Source position; invalid when the IR was built programmatically.
  ir::SrcLoc Loc;
};

enum class DiagFormat : uint8_t { Text, Json };

/// Collects diagnostics and renders them in text or JSON form. When the
/// original source text is attached, text rendering shows the offending
/// line with a caret under the reported column.
class DiagnosticEngine {
public:
  /// Attaches the file name and source text used for caret rendering.
  void setSource(std::string Filename, std::string_view Source);

  const std::string &filename() const { return Filename; }

  /// Records a diagnostic. When \p I is given, the location and enclosing
  /// function are taken from it.
  void report(Severity Sev, std::string Check, std::string Message,
              const ir::Instruction *I = nullptr,
              const ir::Function *F = nullptr);

  /// Records a diagnostic with an explicit location, for findings that do
  /// not come from live IR (e.g. remarks replayed from a stream).
  void report(Severity Sev, std::string Check, std::string Message,
              std::string FunctionName, ir::SrcLoc Loc);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  unsigned errorCount() const;
  unsigned warningCount() const;

  void render(RawOstream &OS, DiagFormat Fmt) const;
  void clear() { Diags.clear(); }

private:
  void renderText(RawOstream &OS) const;
  void renderJson(RawOstream &OS) const;

  std::string Filename = "<module>";
  /// The source split into lines, for caret rendering; may be empty.
  std::vector<std::string> SourceLines;
  std::vector<Diagnostic> Diags;
};

} // namespace analysis
} // namespace ade

#endif // ADE_ANALYSIS_DIAGNOSTICS_H
