//===- AbsInt.cpp - Interprocedural abstract interpretation ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"

#include "analysis/Dataflow.h"
#include "core/Plan.h"

#include <algorithm>
#include <set>

using namespace ade;
using namespace ade::analysis;
using namespace ade::ir;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Applies \p Fn to every instruction of \p R, pre-order, nested regions
/// included.
template <typename FnT> static void forEveryInst(const Region &R, FnT Fn) {
  for (Instruction *I : R) {
    Fn(I);
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      forEveryInst(*I->region(Idx), Fn);
  }
}

/// The enumeration global a value loads, or "" when unresolvable.
static std::string enumSymbolOf(const Value *V) {
  if (!isa<EnumType>(V->type()))
    return {};
  if (const auto *Res = dyn_cast<InstResult>(V))
    if (Res->parent()->op() == Opcode::GlobalGet)
      return Res->parent()->symbol();
  return {};
}

/// The alias class of \p V, or SIZE_MAX when not a tracked collection.
static size_t classOf(core::ModuleAnalysis &MA, Value *V) {
  core::RootInfo *Root = MA.rootOf(V);
  return Root ? MA.aliasClassOf(Root) : SIZE_MAX;
}

/// The function containing \p V (its definition site).
static const Function *functionOf(const Value *V) {
  if (const auto *Arg = dyn_cast<Argument>(V))
    return Arg->parent();
  if (const auto *BA = dyn_cast<BlockArg>(V))
    return BA->parent()->function();
  return cast<InstResult>(V)->parent()->parentFunction();
}

void Interval::print(RawOstream &OS) const {
  OS << '[';
  if (Lo == Inf)
    OS << "inf";
  else
    OS << Lo;
  OS << ", ";
  if (Hi == Inf)
    OS << "inf";
  else
    OS << Hi;
  OS << ']';
}

//===----------------------------------------------------------------------===//
// Engine state
//===----------------------------------------------------------------------===//

struct AbsIntEngine::Impl {
  /// Flow-insensitive interval per SSA value (SSA makes this exact up to
  /// loop bindings, which are recorded as the join over all passes).
  std::map<const Value *, Interval> ValueRange;
  /// Body passes the range fixpoint took per loop instruction.
  std::map<const Instruction *, unsigned> Passes;
  std::vector<Occupancy> ClassOcc;
  std::vector<AliasFacts> ClassAlias;
  /// Enumeration global -> bound on keys it ever holds.
  std::map<std::string, Interval> Universes;
  std::map<const Instruction *, std::vector<LoopGrowth>> DoWhileGrowth;
};

//===----------------------------------------------------------------------===//
// Value-range analysis
//===----------------------------------------------------------------------===//

namespace {

/// Bindings for loop block arguments; everything else lives in the
/// flow-insensitive Impl::ValueRange (sound for SSA values, whose single
/// definition is visited under every binding the fixpoint explores).
/// Absence from the map means "never bound" (bottom for the join).
using BindState = std::map<const Value *, Interval>;

class RangeAnalysis : public ForwardDataflow<RangeAnalysis, BindState> {
public:
  RangeAnalysis(core::ModuleAnalysis &MA,
                const std::map<const Function *, size_t> &SccIdx,
                AbsIntEngine::Impl &Res)
      : MA(MA), SccIdx(SccIdx), Res(Res) {}

  BindState boundaryState(const Function &F) {
    Current = &F;
    return {};
  }

  Interval eval(const Value *V, const BindState &S) const {
    auto It = S.find(V);
    if (It != S.end())
      return It->second;
    auto RI = Res.ValueRange.find(V);
    return RI == Res.ValueRange.end() ? Interval::top() : RI->second;
  }

  void transfer(const Instruction &I, BindState &S) {
    switch (I.op()) {
    case Opcode::Yield: {
      std::vector<Interval> Vals;
      Vals.reserve(I.numOperands());
      for (Value *Op : I.operands())
        Vals.push_back(eval(Op, S));
      YieldVals[&I] = std::move(Vals);
      return;
    }
    case Opcode::Ret:
      if (I.numOperands()) {
        Interval V = eval(I.operand(0), S);
        auto [It, Ins] = RetRange.try_emplace(I.parentFunction(), V);
        if (!Ins)
          It->second = Interval::join(It->second, V);
      }
      return;
    default:
      break;
    }
    if (!I.numResults())
      return;
    record(I.result(0), resultRange(I, S));
  }

  static BindState join(const BindState &A, const BindState &B) {
    BindState R = A;
    for (const auto &[V, I] : B) {
      auto [It, Ins] = R.try_emplace(V, I);
      if (!Ins)
        It->second = Interval::join(It->second, I);
    }
    return R;
  }

  static bool equal(const BindState &A, const BindState &B) {
    return A == B;
  }

  void enterLoopBody(const Instruction &Loop, BindState &S) {
    unsigned &P = Res.Passes[&Loop];
    ++P;
    const Region &Body = *Loop.region(0);

    // The previous pass's yield, feeding loop-carried bindings.
    const std::vector<Interval> *YV = nullptr;
    if (!Body.empty() && Body.back()->op() == Opcode::Yield) {
      auto It = YieldVals.find(Body.back());
      if (It != YieldVals.end())
        YV = &It->second;
    }

    unsigned CarriedStart = 0, InitStart = 0, YieldStart = 0;
    switch (Loop.op()) {
    case Opcode::ForRange: {
      // The induction variable spans [lo, hi).
      Interval LoI = eval(Loop.operand(0), S);
      Interval HiI = eval(Loop.operand(1), S);
      Interval Idx{LoI.Lo,
                   HiI.Hi == Interval::Inf ? Interval::Inf
                   : HiI.Hi == 0           ? 0
                                           : HiI.Hi - 1};
      if (Body.numArgs() >= 1) {
        S[Body.arg(0)] = Idx;
        record(Body.arg(0), Idx);
      }
      CarriedStart = 1;
      InitStart = 2;
      break;
    }
    case Opcode::ForEach:
      // Key/value bindings are unconstrained; carried values follow.
      CarriedStart = isa<SetType>(Loop.operand(0)->type()) ? 1 : 2;
      InitStart = 1;
      break;
    case Opcode::DoWhile:
      YieldStart = 1; // yield = (cond, nexts...)
      break;
    default:
      return;
    }

    for (unsigned A = CarriedStart; A < Body.numArgs(); ++A) {
      unsigned J = A - CarriedStart;
      Interval Next = InitStart + J < Loop.numOperands()
                          ? eval(Loop.operand(InitStart + J), S)
                          : Interval::top();
      if (YV && YieldStart + J < YV->size())
        Next = Interval::join(Next, (*YV)[YieldStart + J]);
      auto Key = std::make_pair(&Loop, A);
      auto PB = PrevBind.find(Key);
      if (PB != PrevBind.end())
        // Widen once the binding keeps moving: a couple of precise
        // passes catch small closed chains, then the moving bound jumps
        // to its extreme and the fixpoint closes next pass.
        Next = P > WideningDelay ? Interval::widen(PB->second, Next)
                                 : Interval::join(PB->second, Next);
      PrevBind[Key] = Next;
      S[Body.arg(A)] = Next;
      record(Body.arg(A), Next);
    }
  }

private:
  static constexpr unsigned WideningDelay = 2;

  void record(const Value *V, Interval R) {
    auto [It, Ins] = Res.ValueRange.try_emplace(V, R);
    if (!Ins)
      It->second = Interval::join(It->second, R);
  }

  Interval resultRange(const Instruction &I, const BindState &S) const {
    auto Op = [&](unsigned Idx) { return eval(I.operand(Idx), S); };
    switch (I.op()) {
    case Opcode::ConstInt: {
      int64_t V = I.intAttr();
      return V >= 0 ? Interval::exact(static_cast<uint64_t>(V))
                    : Interval::top();
    }
    case Opcode::ConstBool:
      return Interval::exact(I.intAttr() ? 1 : 0);
    case Opcode::Add:
      return Interval::addValue(Op(0), Op(1));
    case Opcode::Sub:
      return Interval::subValue(Op(0), Op(1));
    case Opcode::Mul:
      return Interval::mulValue(Op(0), Op(1));
    case Opcode::Div: {
      Interval A = Op(0), B = Op(1);
      if (B.Lo >= 1)
        return {B.isFinite() ? A.Lo / B.Hi : 0,
                A.Hi == Interval::Inf ? Interval::Inf : A.Hi / B.Lo};
      return {0, A.Hi};
    }
    case Opcode::Rem: {
      Interval A = Op(0), B = Op(1);
      if (B.isFinite() && B.Hi >= 1)
        return {0, B.Hi - 1};
      return {0, A.Hi};
    }
    case Opcode::Min: {
      Interval A = Op(0), B = Op(1);
      return {std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
    }
    case Opcode::Max: {
      Interval A = Op(0), B = Op(1);
      return {std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
    }
    case Opcode::And:
      return {0, std::min(Op(0).Hi, Op(1).Hi)};
    case Opcode::Shr:
      return {0, Op(0).Hi};
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::Has:
      return {0, 1};
    case Opcode::Select:
      return I.numOperands() >= 3 ? Interval::join(Op(1), Op(2))
                                  : Interval::top();
    case Opcode::Cast: {
      Interval A = Op(0);
      const auto *T = dyn_cast<IntType>(I.result(0)->type());
      if (!T)
        return Interval::top();
      if (T->bits() >= 64)
        return T->isSigned() ? (A.Hi <= uint64_t(INT64_MAX)
                                    ? A
                                    : Interval::top())
                             : A;
      uint64_t Lim = (uint64_t(1) << (T->bits() - (T->isSigned() ? 1 : 0))) - 1;
      return A.Hi <= Lim ? A : Interval::top(); // Truncation may wrap.
    }
    case Opcode::Call: {
      const Function *Callee = MA.module().getFunction(I.symbol());
      if (!Callee || Callee->isExternal())
        return Interval::top();
      // Only summaries of strictly earlier (fully analyzed) components
      // are trusted; same-SCC calls stay TOP so recursion is sound.
      auto CI = SccIdx.find(Callee), FI = SccIdx.find(Current);
      if (CI == SccIdx.end() || FI == SccIdx.end() ||
          CI->second >= FI->second)
        return Interval::top();
      auto It = RetRange.find(Callee);
      return It == RetRange.end() ? Interval::top() : It->second;
    }
    case Opcode::If: {
      // Result j is the join of the two branch yields.
      auto ValsOf = [&](unsigned R) -> const std::vector<Interval> * {
        const Region &Reg = *I.region(R);
        if (Reg.empty() || Reg.back()->op() != Opcode::Yield)
          return nullptr;
        auto It = YieldVals.find(Reg.back());
        return It == YieldVals.end() ? nullptr : &It->second;
      };
      const auto *T = ValsOf(0), *E = ValsOf(1);
      if (T && E && !T->empty() && !E->empty())
        return Interval::join((*T)[0], (*E)[0]);
      return Interval::top();
    }
    case Opcode::ForEach:
    case Opcode::ForRange:
    case Opcode::DoWhile: {
      const Region &Body = *I.region(0);
      if (Body.empty() || Body.back()->op() != Opcode::Yield)
        return Interval::top();
      auto It = YieldVals.find(Body.back());
      if (It == YieldVals.end())
        return Interval::top();
      unsigned YieldStart = I.op() == Opcode::DoWhile ? 1 : 0;
      unsigned InitStart = I.op() == Opcode::ForRange ? 2
                           : I.op() == Opcode::ForEach ? 1
                                                       : 0;
      if (YieldStart >= It->second.size())
        return Interval::top();
      Interval R = It->second[YieldStart];
      // Zero-trip loops fall through to the init value.
      if (I.op() != Opcode::DoWhile && InitStart < I.numOperands())
        R = Interval::join(R, Op(InitStart));
      return R;
    }
    default:
      return Interval::top();
    }
  }

  core::ModuleAnalysis &MA;
  const std::map<const Function *, size_t> &SccIdx;
  AbsIntEngine::Impl &Res;
  const Function *Current = nullptr;
  std::map<const Instruction *, std::vector<Interval>> YieldVals;
  std::map<std::pair<const Instruction *, unsigned>, Interval> PrevBind;
  std::map<const Function *, Interval> RetRange;
};

//===----------------------------------------------------------------------===//
// Occupancy effects
//===----------------------------------------------------------------------===//

/// Effect of one region (or function) on one alias class.
struct Delta {
  /// Insert operations executed: Lo = guaranteed, Hi = bound.
  Interval Grow = Interval::range(0, 0);
  bool MayRemove = false;
  bool MayClear = false;
  /// (Re)allocated here: growth is per lifetime and is not scaled by
  /// enclosing loops (each iteration starts a fresh collection).
  bool Fresh = false;
};

struct Effect {
  std::map<size_t, Delta> Classes;
  /// EnumAdd operations per enumeration global.
  std::map<std::string, Interval> Enums;
};

/// Sequential composition A;B.
static void compose(Effect &A, const Effect &B) {
  for (const auto &[C, D] : B.Classes) {
    Delta &R = A.Classes[C];
    if (D.Fresh) {
      // New lifetime: keep the hull over lifetimes, not the sum.
      R.Grow = R.Fresh ? Interval::join(R.Grow, D.Grow) : D.Grow;
      R.Fresh = true;
      R.MayRemove |= D.MayRemove;
      R.MayClear |= D.MayClear;
    } else {
      R.Grow = Interval::addCount(R.Grow, D.Grow);
      R.MayRemove |= D.MayRemove;
      R.MayClear |= D.MayClear;
    }
  }
  for (const auto &[S, I] : B.Enums) {
    auto [It, Ins] = A.Enums.try_emplace(S, I);
    if (!Ins)
      It->second = Interval::addCount(It->second, I);
  }
}

/// Branch join (either effect may happen).
static Effect joinEffect(const Effect &A, const Effect &B) {
  Effect R = A;
  for (auto &[C, D] : R.Classes) {
    auto It = B.Classes.find(C);
    const Delta Other = It == B.Classes.end() ? Delta() : It->second;
    D.Grow = Interval::join(D.Grow, Other.Grow);
    D.MayRemove |= Other.MayRemove;
    D.MayClear |= Other.MayClear;
    D.Fresh &= Other.Fresh;
  }
  for (const auto &[C, D] : B.Classes)
    if (!R.Classes.count(C)) {
      Delta &N = R.Classes[C];
      N = D;
      N.Grow = Interval::join(Interval::range(0, 0), D.Grow);
      N.Fresh = false;
    }
  for (auto &[S, I] : R.Enums) {
    auto It = B.Enums.find(S);
    I = Interval::join(I, It == B.Enums.end() ? Interval::range(0, 0)
                                              : It->second);
  }
  for (const auto &[S, I] : B.Enums)
    if (!R.Enums.count(S))
      R.Enums[S] = Interval::join(Interval::range(0, 0), I);
  return R;
}

/// The effect of running \p E Trips times.
static Effect scaleEffect(const Effect &E, Interval Trips) {
  Effect R = E;
  for (auto &[C, D] : R.Classes) {
    (void)C;
    if (!D.Fresh) // Fresh collections restart every iteration.
      D.Grow = D.Grow.scale(Trips);
  }
  for (auto &[S, I] : R.Enums) {
    (void)S;
    I = I.scale(Trips);
  }
  return R;
}

class EffectBuilder {
public:
  EffectBuilder(core::ModuleAnalysis &MA, const CallGraph &CG,
                const std::map<const Function *, size_t> &SccIdx,
                AbsIntEngine::Impl &Res)
      : MA(MA), CG(CG), SccIdx(SccIdx), Res(Res) {}

  /// Builds summaries bottom-up; recursive components get every class
  /// they touch set to TOP.
  void build() {
    for (const auto &Scc : CG.sccs()) {
      bool Recursive = Scc.size() > 1 || CG.isRecursive(Scc.front());
      for (const Function *F : Scc) {
        CurrentScc = SccIdx.at(F);
        FnEffect[F] = regionEffect(F->body());
      }
      if (!Recursive)
        continue;
      // Conservative closure: everything any member touches goes TOP.
      std::set<size_t> Classes;
      std::set<std::string> Enums;
      for (const Function *F : Scc) {
        for (const auto &[C, D] : FnEffect[F].Classes) {
          (void)D;
          Classes.insert(C);
        }
        for (const auto &[S, I] : FnEffect[F].Enums) {
          (void)I;
          Enums.insert(S);
        }
      }
      Effect Top;
      for (size_t C : Classes)
        Top.Classes[C] = {Interval::range(0, Interval::Inf), true, true,
                          false};
      for (const std::string &S : Enums)
        Top.Enums[S] = Interval::range(0, Interval::Inf);
      for (const Function *F : Scc)
        FnEffect[F] = Top;
    }
  }

  const Effect *effectOf(const Function *F) const {
    auto It = FnEffect.find(F);
    return It == FnEffect.end() ? nullptr : &It->second;
  }

private:
  Interval rangeOf(const Value *V) const {
    auto It = Res.ValueRange.find(V);
    return It == Res.ValueRange.end() ? Interval::top() : It->second;
  }

  Effect regionEffect(const Region &R) {
    Effect Out;
    for (Instruction *I : R) {
      switch (I->op()) {
      case Opcode::New:
        if (size_t C = classOf(MA, I->result(0)); C != SIZE_MAX)
          compose(Out, singleton(C, {Interval::range(0, 0), false, false,
                                     true}));
        break;
      case Opcode::Insert:
      case Opcode::Append:
        grow(Out, I->operand(0), Interval::range(1, 1));
        break;
      case Opcode::Write:
        // A map write may add a key; a sequence write never grows.
        if (!isa<SeqType>(I->operand(0)->type()))
          grow(Out, I->operand(0), Interval::range(0, 1));
        break;
      case Opcode::Union:
        grow(Out, I->operand(0), Interval::range(0, Interval::Inf));
        break;
      case Opcode::Remove:
      case Opcode::Pop:
        if (size_t C = classOf(MA, I->operand(0)); C != SIZE_MAX)
          compose(Out, singleton(C, {Interval::range(0, 0), true, false,
                                     false}));
        break;
      case Opcode::Clear:
        if (size_t C = classOf(MA, I->operand(0)); C != SIZE_MAX)
          compose(Out, singleton(C, {Interval::range(0, 0), false, true,
                                     false}));
        break;
      case Opcode::EnumAdd: {
        std::string Sym = enumSymbolOf(I->operand(0));
        if (!Sym.empty()) {
          Effect E;
          E.Enums[Sym] = Interval::range(1, 1);
          compose(Out, E);
        }
        break;
      }
      case Opcode::Call: {
        const Function *Callee = MA.module().getFunction(I->symbol());
        if (Callee && !Callee->isExternal()) {
          auto CI = SccIdx.find(Callee);
          if (CI != SccIdx.end() && CI->second < CurrentScc) {
            compose(Out, FnEffect[Callee]);
          } else if (CI != SccIdx.end() && CI->second == CurrentScc) {
            // Same-SCC call: the recursive closure above TOPs the whole
            // component afterwards; contribute nothing here.
          }
          break;
        }
        // External callee: its view is limited to the argument classes
        // (this IR has no way for externals to reach module globals).
        for (Value *Op : I->operands())
          if (size_t C = classOf(MA, Op); C != SIZE_MAX)
            compose(Out,
                    singleton(C, {Interval::range(0, Interval::Inf), true,
                                  true, false}));
        break;
      }
      case Opcode::If: {
        Effect T = regionEffect(*I->region(0));
        Effect E = regionEffect(*I->region(1));
        compose(Out, joinEffect(T, E));
        break;
      }
      case Opcode::ForEach: {
        Effect B = regionEffect(*I->region(0));
        compose(Out, scaleEffect(B, Interval::top()));
        break;
      }
      case Opcode::ForRange: {
        Effect B = regionEffect(*I->region(0));
        Interval Lo = rangeOf(I->operand(0)), Hi = rangeOf(I->operand(1));
        Interval Trips{
            Lo.Hi != Interval::Inf && Hi.Lo > Lo.Hi ? Hi.Lo - Lo.Hi : 0,
            Hi.Hi == Interval::Inf
                ? Interval::Inf
                : (Hi.Hi > Lo.Lo ? Hi.Hi - Lo.Lo : 0)};
        compose(Out, scaleEffect(B, Trips));
        break;
      }
      case Opcode::DoWhile: {
        Effect B = regionEffect(*I->region(0));
        std::vector<LoopGrowth> &G = Res.DoWhileGrowth[I];
        G.clear();
        for (const auto &[C, D] : B.Classes)
          G.push_back({C, D.Grow, D.MayRemove, D.MayClear, D.Fresh});
        compose(Out, scaleEffect(B, Interval::range(1, Interval::Inf)));
        break;
      }
      default:
        break;
      }
    }
    return Out;
  }

  void grow(Effect &Out, Value *Coll, Interval Amount) {
    if (size_t C = classOf(MA, Coll); C != SIZE_MAX)
      compose(Out, singleton(C, {Amount, false, false, false}));
  }

  static Effect singleton(size_t C, Delta D) {
    Effect E;
    E.Classes[C] = D;
    return E;
  }

  core::ModuleAnalysis &MA;
  const CallGraph &CG;
  const std::map<const Function *, size_t> &SccIdx;
  AbsIntEngine::Impl &Res;
  size_t CurrentScc = 0;
  std::map<const Function *, Effect> FnEffect;
};

} // namespace

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

AbsIntEngine::AbsIntEngine(core::ModuleAnalysis &MA)
    : MA(MA), CG(MA.module()), I(new Impl) {
  std::map<const Function *, size_t> SccIdx;
  for (size_t S = 0; S != CG.sccs().size(); ++S)
    for (const Function *F : CG.sccs()[S])
      SccIdx[F] = S;

  // 1. Value ranges, callees before callers so return summaries exist.
  RangeAnalysis RA(MA, SccIdx, *I);
  for (const auto &Scc : CG.sccs())
    for (const Function *F : Scc)
      RA.run(*F);

  // 2. Occupancy effect summaries, bottom-up.
  EffectBuilder EB(MA, CG, SccIdx, *I);
  EB.build();

  const auto &Classes = MA.aliasClasses();
  I->ClassOcc.resize(Classes.size());
  I->ClassAlias.resize(Classes.size());

  // 3. Alias/escape facts and exact module-wide remove/clear bits.
  for (size_t C = 0; C != Classes.size(); ++C) {
    AliasFacts &AF = I->ClassAlias[C];
    AF.Roots = static_cast<unsigned>(Classes[C].size());
    std::set<const Function *> Fns;
    for (core::RootInfo *Root : Classes[C]) {
      AF.Escapes |= Root->Escapes;
      AF.GlobalReachable |= Root->TheKind == core::RootInfo::Kind::Global ||
                            Root->TheKind == core::RootInfo::Kind::Nested;
      for (Value *Ref : Root->Refs)
        if (const Function *F = functionOf(Ref))
          Fns.insert(F);
    }
    AF.SpansCalls = Fns.size() > 1;
  }
  for (const auto &F : MA.module().functions()) {
    if (F->isExternal())
      continue;
    forEveryInst(F->body(), [&](Instruction *Inst) {
      switch (Inst->op()) {
      case Opcode::Remove:
      case Opcode::Pop:
        if (size_t C = classOf(MA, Inst->operand(0)); C != SIZE_MAX)
          I->ClassOcc[C].MayRemove = true;
        break;
      case Opcode::Clear:
        if (size_t C = classOf(MA, Inst->operand(0)); C != SIZE_MAX)
          I->ClassOcc[C].MayClear = true;
        break;
      case Opcode::Call: {
        const Function *Callee = MA.module().getFunction(Inst->symbol());
        if (Callee && !Callee->isExternal())
          break;
        for (Value *Op : Inst->operands())
          if (size_t C = classOf(MA, Op); C != SIZE_MAX) {
            I->ClassOcc[C].MayRemove = true;
            I->ClassOcc[C].MayClear = true;
          }
        break;
      }
      default:
        break;
      }
    });
  }

  // 4. Whole-execution totals: fold the entry summaries under the
  // documented "each entry runs once" approximation.
  std::set<size_t> Touched;
  std::set<std::string> TouchedEnums;
  for (const auto &F : MA.module().functions())
    if (const Effect *E = EB.effectOf(F.get())) {
      for (const auto &[C, D] : E->Classes) {
        (void)D;
        Touched.insert(C);
      }
      for (const auto &[S, V] : E->Enums) {
        (void)V;
        TouchedEnums.insert(S);
      }
    }

  std::set<const Function *> Entries(CG.entryFunctions().begin(),
                                     CG.entryFunctions().end());
  for (size_t C = 0; C != Classes.size(); ++C) {
    Occupancy &Occ = I->ClassOcc[C];
    const AliasFacts &AF = I->ClassAlias[C];
    if (AF.Escapes) {
      Occ.Ever = Interval::top();
      continue;
    }
    bool PerLifetime = true, EntryParam = false;
    for (core::RootInfo *Root : Classes[C]) {
      PerLifetime &= Root->TheKind == core::RootInfo::Kind::Alloc;
      if (Root->TheKind == core::RootInfo::Kind::Param)
        if (const auto *Arg = dyn_cast_if_present<Argument>(Root->Anchor))
          EntryParam |= Entries.count(Arg->parent()) != 0;
    }
    if (EntryParam) {
      // An entry's collection parameter arrives with unknown contents.
      Occ.Ever = Interval::top();
      continue;
    }
    bool Seen = false;
    Interval Ever = Interval::range(0, 0);
    for (const Function *E : CG.entryFunctions()) {
      const Effect *FE = EB.effectOf(E);
      if (!FE)
        continue;
      auto It = FE->Classes.find(C);
      if (It == FE->Classes.end())
        continue;
      Ever = Seen ? (PerLifetime
                         ? Interval::join(Ever, It->second.Grow)
                         : Interval::addCount(Ever, It->second.Grow))
                  : It->second.Grow;
      Seen = true;
    }
    if (Seen)
      Occ.Ever = Ever;
    else if (Touched.count(C))
      Occ.Ever = Interval::top(); // Touched only from unreachable code.
    else
      Occ.Ever = Interval::range(0, 0);
  }

  for (const std::string &Sym : TouchedEnums) {
    Interval Adds = Interval::range(0, 0);
    bool Seen = false;
    for (const Function *E : CG.entryFunctions()) {
      const Effect *FE = EB.effectOf(E);
      if (!FE)
        continue;
      auto It = FE->Enums.find(Sym);
      if (It == FE->Enums.end())
        continue;
      Adds = Seen ? Interval::addCount(Adds, It->second) : It->second;
      Seen = true;
    }
    // Duplicate keys may collapse, so only the upper bound transfers to
    // the universe size.
    I->Universes[Sym] =
        Seen ? Interval::range(0, Adds.Hi) : Interval::top();
  }

  // 5. Cover facts and the do-while roster, in program order.
  for (const auto &F : MA.module().functions()) {
    if (F->isExternal())
      continue;
    forEveryInst(F->body(), [&](Instruction *Inst) {
      if (Inst->op() == Opcode::DoWhile)
        DoWhiles.push_back(Inst);
      if (Inst->op() != Opcode::ForEach)
        return;
      size_t Src = classOf(MA, Inst->operand(0));
      if (Src == SIZE_MAX)
        return;
      const Region &Body = *Inst->region(0);
      // The binding that enumerates Src's key/element universe.
      Type *CT = Inst->operand(0)->type();
      Value *Bind = nullptr;
      if (isa<SetType>(CT) || isa<MapType>(CT))
        Bind = Body.numArgs() >= 1 ? Body.arg(0) : nullptr;
      else if (isa<SeqType>(CT))
        Bind = Body.numArgs() >= 2 ? Body.arg(1) : nullptr;
      if (!Bind)
        return;
      // Only *top-level* body instructions run unconditionally on every
      // element — the property the cover proof rests on.
      for (Instruction *J : Body) {
        if (J->op() != Opcode::Insert && J->op() != Opcode::Write)
          continue;
        if (J->numOperands() < 2 || J->operand(1) != Bind)
          continue;
        size_t Dst = classOf(MA, J->operand(0));
        if (Dst != SIZE_MAX && Dst != Src)
          Covers.push_back({Dst, Src, Inst});
      }
    });
  }

  // Paired introductions: when every site that introduces a key into
  // class A also feeds the same SSA value into class B as a top-level
  // instruction of the same region, B covers A — the "register a node"
  // idiom (write the node into the adjacency map, append the same node
  // to the node list, in one guarded block). The key set of a set/map is
  // its keys; of a seq, its element values (what a for-each enumerates).
  {
    // The key/element value an instruction introduces into its class, or
    // null when it introduces nothing.
    auto IntroducedKey = [&](const Instruction *J) -> Value * {
      switch (J->op()) {
      case Opcode::Insert:
        return J->numOperands() >= 2 ? J->operand(1) : nullptr;
      case Opcode::Append:
        return J->numOperands() >= 2 ? J->operand(1) : nullptr;
      case Opcode::Write:
        if (J->numOperands() < 3)
          return nullptr;
        return isa<SeqType>(J->operand(0)->type()) ? J->operand(2)
                                                   : J->operand(1);
      default:
        return nullptr;
      }
    };

    size_t NumClasses = MA.aliasClasses().size();
    // Classes whose key set has a source the pairing scan cannot see:
    // a union (keys of another collection), or an escape (externals may
    // insert). Those never qualify as a covered Src.
    std::vector<bool> Unprovable(NumClasses, false);
    for (size_t C = 0; C != NumClasses; ++C)
      if (I->ClassAlias[C].Escapes)
        Unprovable[C] = true;

    // Per class, the set of classes that matched every introduction site
    // so far (the running intersection), and whether any site was seen.
    std::vector<std::vector<size_t>> PairedWithAll(NumClasses);
    std::vector<bool> SawIntro(NumClasses, false);

    for (const auto &F : MA.module().functions()) {
      if (F->isExternal())
        continue;
      forEveryInst(F->body(), [&](Instruction *Inst) {
        if (Inst->op() == Opcode::Union) {
          size_t A = classOf(MA, Inst->operand(0));
          if (A != SIZE_MAX)
            Unprovable[A] = true;
          return;
        }
        Value *K = IntroducedKey(Inst);
        if (!K)
          return;
        size_t A = classOf(MA, Inst->operand(0));
        if (A == SIZE_MAX)
          return;
        // Every class introducing the same value at the top level of the
        // enclosing region receives this site's key too.
        std::vector<size_t> Here;
        for (const Instruction *J : *Inst->parent()) {
          if (J == Inst || IntroducedKey(J) != K)
            continue;
          size_t B = classOf(MA, J->operand(0));
          if (B != SIZE_MAX && B != A &&
              std::find(Here.begin(), Here.end(), B) == Here.end())
            Here.push_back(B);
        }
        if (!SawIntro[A]) {
          SawIntro[A] = true;
          PairedWithAll[A] = std::move(Here);
        } else {
          std::vector<size_t> Kept;
          for (size_t B : PairedWithAll[A])
            if (std::find(Here.begin(), Here.end(), B) != Here.end())
              Kept.push_back(B);
          PairedWithAll[A] = std::move(Kept);
        }
      });
    }

    for (size_t A = 0; A != NumClasses; ++A) {
      if (Unprovable[A] || !SawIntro[A])
        continue;
      for (size_t B : PairedWithAll[A])
        Covers.push_back({B, A, nullptr});
    }
  }
}

AbsIntEngine::~AbsIntEngine() = default;

Interval AbsIntEngine::rangeOf(const Value *V) const {
  auto It = I->ValueRange.find(V);
  return It == I->ValueRange.end() ? Interval::top() : It->second;
}

const Occupancy &AbsIntEngine::occupancyOf(size_t Class) const {
  static const Occupancy Unknown{Interval::top(), true, true};
  return Class < I->ClassOcc.size() ? I->ClassOcc[Class] : Unknown;
}

const AliasFacts &AbsIntEngine::aliasFactsOf(size_t Class) const {
  static const AliasFacts Unknown{true, true, true, 0};
  return Class < I->ClassAlias.size() ? I->ClassAlias[Class] : Unknown;
}

Interval AbsIntEngine::enumUniverse(const std::string &Symbol) const {
  auto It = I->Universes.find(Symbol);
  return It == I->Universes.end() ? Interval::top() : It->second;
}

std::vector<size_t> AbsIntEngine::coveredBy(size_t Dst) const {
  std::vector<size_t> R;
  const Occupancy &Occ = occupancyOf(Dst);
  if (Occ.MayRemove || Occ.MayClear)
    return R; // A later remove could break the superset property.
  // Transitive closure: Dst ⊇ M and M ⊇ Src compose to Dst ⊇ Src, but
  // only through stable intermediates — if M shrinks, keys of Src that
  // passed through M may never reach Dst.
  std::vector<size_t> Work{Dst};
  while (!Work.empty()) {
    size_t Cur = Work.back();
    Work.pop_back();
    const Occupancy &CurOcc = occupancyOf(Cur);
    if (Cur != Dst && (CurOcc.MayRemove || CurOcc.MayClear))
      continue;
    for (const CoverFact &CF : Covers)
      if (CF.Dst == Cur && CF.Src != Dst &&
          std::find(R.begin(), R.end(), CF.Src) == R.end()) {
        R.push_back(CF.Src);
        Work.push_back(CF.Src);
      }
  }
  std::sort(R.begin(), R.end());
  return R;
}

const std::vector<LoopGrowth> &
AbsIntEngine::growthOf(const Instruction *Loop) const {
  static const std::vector<LoopGrowth> None;
  auto It = I->DoWhileGrowth.find(Loop);
  return It == I->DoWhileGrowth.end() ? None : It->second;
}

unsigned AbsIntEngine::loopPasses(const Instruction *Loop) const {
  auto It = I->Passes.find(Loop);
  return It == I->Passes.end() ? 0 : It->second;
}

void AbsIntEngine::print(RawOstream &OS) const {
  OS << "absint report\n";
  const auto &Classes = MA.aliasClasses();
  for (size_t C = 0; C != Classes.size(); ++C) {
    if (Classes[C].empty())
      continue;
    const Occupancy &Occ = I->ClassOcc[C];
    const AliasFacts &AF = I->ClassAlias[C];
    OS << "  class " << uint64_t(C) << ": "
       << Classes[C].front()->describe() << "\n    ever=";
    Occ.Ever.print(OS);
    OS << " remove=" << Occ.MayRemove << " clear=" << Occ.MayClear
       << " escapes=" << AF.Escapes << " global=" << AF.GlobalReachable
       << " spans-calls=" << AF.SpansCalls << "\n";
    std::vector<size_t> Cov = coveredBy(C);
    if (!Cov.empty()) {
      OS << "    covers:";
      for (size_t S : Cov)
        OS << " class " << uint64_t(S) << " ("
           << Classes[S].front()->describe() << ")";
      OS << "\n";
    }
  }
  for (const auto &[Sym, U] : I->Universes) {
    OS << "  enum @" << Sym << ": universe ";
    U.print(OS);
    OS << "\n";
  }
  for (const Instruction *L : DoWhiles) {
    const std::vector<LoopGrowth> &G = growthOf(L);
    if (G.empty())
      continue;
    OS << "  dowhile in @" << L->parentFunction()->name();
    if (L->loc().isValid())
      OS << " (line " << uint64_t(L->loc().Line) << ")";
    OS << ":\n";
    for (const LoopGrowth &LG : G) {
      OS << "    class " << uint64_t(LG.Class) << " grows ";
      LG.PerTrip.print(OS);
      OS << "/iter remove=" << LG.MayRemove << " clear=" << LG.MayClear
         << " fresh=" << LG.Fresh << "\n";
    }
  }
}

//===----------------------------------------------------------------------===//
// Fusion legality
//===----------------------------------------------------------------------===//

FusionLegality::FusionLegality(core::ModuleAnalysis &MA,
                               const core::EnumerationPlan *Plan)
    : MA(MA) {
  Rep.resize(MA.aliasClasses().size());
  for (size_t C = 0; C != Rep.size(); ++C)
    Rep[C] = C;

  // union(dst, src) forces both onto one enumeration.
  for (const auto &F : MA.module().functions())
    if (!F->isExternal())
      forEveryInst(F->body(), [&](Instruction *Inst) {
        if (Inst->op() != Opcode::Union || Inst->numOperands() < 2)
          return;
        size_t A = classOf(MA, Inst->operand(0));
        size_t B = classOf(MA, Inst->operand(1));
        if (A != SIZE_MAX && B != SIZE_MAX)
          unite(A, B);
      });

  // Share groups are a user-forced single enumeration.
  std::map<std::string, size_t> GroupFirst;
  const auto &Classes = MA.aliasClasses();
  for (size_t C = 0; C != Classes.size(); ++C)
    for (core::RootInfo *Root : Classes[C]) {
      if (!Root->HasDirective || Root->Dir.ShareGroup.empty())
        continue;
      auto [It, Ins] = GroupFirst.try_emplace(Root->Dir.ShareGroup, C);
      if (!Ins)
        unite(It->second, C);
    }

  // Plan candidates share an index space by construction.
  if (Plan)
    for (const core::Candidate &Cand : Plan->Candidates) {
      size_t First = SIZE_MAX;
      auto Add = [&](core::RootInfo *R) {
        size_t C = MA.aliasClassOf(R);
        if (First == SIZE_MAX)
          First = C;
        else
          unite(First, C);
      };
      for (core::RootInfo *R : Cand.KeyMembers)
        Add(R);
      for (core::RootInfo *R : Cand.ElemMembers)
        Add(R);
    }
}

size_t FusionLegality::findRep(size_t Class) const {
  while (Rep[Class] != Class) {
    Rep[Class] = Rep[Rep[Class]]; // Path halving.
    Class = Rep[Class];
  }
  return Class;
}

void FusionLegality::unite(size_t A, size_t B) {
  A = findRep(A);
  B = findRep(B);
  if (A != B)
    Rep[B < A ? A : B] = B < A ? B : A; // Smaller id wins: stable reps.
}

bool FusionLegality::mustShareEnumeration(core::RootInfo *A,
                                          core::RootInfo *B) const {
  if (!A || !B)
    return false;
  return findRep(MA.aliasClassOf(A)) == findRep(MA.aliasClassOf(B));
}

bool FusionLegality::mustShareEnumeration(Value *A, Value *B) const {
  return mustShareEnumeration(MA.rootOf(A), MA.rootOf(B));
}

namespace {

/// Classes a loop body reads and writes, plus disqualifying shapes.
struct BodySets {
  std::set<size_t> Reads, Writes;
  bool HasCall = false;
  std::set<size_t> RemovedOrCleared;
};

} // namespace

static void collectBody(core::ModuleAnalysis &MA, const Region &R,
                        BodySets &S) {
  forEveryInst(R, [&](Instruction *Inst) {
    auto Cls = [&](unsigned Op) {
      return Inst->numOperands() > Op ? classOf(MA, Inst->operand(Op))
                                      : SIZE_MAX;
    };
    switch (Inst->op()) {
    case Opcode::Read:
    case Opcode::Has:
    case Opcode::Size:
    case Opcode::ForEach:
      if (size_t C = Cls(0); C != SIZE_MAX)
        S.Reads.insert(C);
      break;
    case Opcode::Insert:
    case Opcode::Write:
    case Opcode::Append:
    case Opcode::Reserve:
      if (size_t C = Cls(0); C != SIZE_MAX)
        S.Writes.insert(C);
      break;
    case Opcode::Pop:
      if (size_t C = Cls(0); C != SIZE_MAX) {
        S.Reads.insert(C);
        S.Writes.insert(C);
        S.RemovedOrCleared.insert(C);
      }
      break;
    case Opcode::Remove:
    case Opcode::Clear:
      if (size_t C = Cls(0); C != SIZE_MAX) {
        S.Writes.insert(C);
        S.RemovedOrCleared.insert(C);
      }
      break;
    case Opcode::Union:
      if (size_t C = Cls(0); C != SIZE_MAX)
        S.Writes.insert(C);
      if (size_t C = Cls(1); C != SIZE_MAX)
        S.Reads.insert(C);
      break;
    case Opcode::Call:
      // Calls may touch anything reachable; fusion gives up.
      S.HasCall = true;
      break;
    default:
      // Any other collection-typed operand use counts as a read.
      for (Value *Op : Inst->operands())
        if (Op->type()->isCollection())
          if (size_t C = classOf(MA, Op); C != SIZE_MAX)
            S.Reads.insert(C);
      break;
    }
  });
}

static bool intersects(const std::set<size_t> &A,
                       const std::set<size_t> &B) {
  for (size_t C : A)
    if (B.count(C))
      return true;
  return false;
}

bool FusionLegality::fusable(const Instruction *Producer,
                             const Instruction *Consumer,
                             std::string *WhyNot) const {
  auto Fail = [&](const char *Why) {
    if (WhyNot)
      *WhyNot = Why;
    return false;
  };
  if (!Producer || !Consumer)
    return Fail("null loop");
  if (Producer->op() != Opcode::ForEach &&
      Producer->op() != Opcode::ForRange)
    return Fail("producer is not a for-each or for-range");
  if (Consumer->op() != Opcode::ForEach)
    return Fail("consumer is not a for-each");
  const Region *R = Producer->parent();
  if (!R || R != Consumer->parent())
    return Fail("loops are not in the same region");
  size_t PI = R->indexOf(Producer), CI = R->indexOf(Consumer);
  if (PI >= CI)
    return Fail("producer does not precede the consumer");

  Instruction *ConsumerSrc =
      const_cast<Instruction *>(Consumer); // operand() is const-safe
  size_t Ct = classOf(MA, ConsumerSrc->operand(0));
  if (Ct == SIZE_MAX)
    return Fail("consumer source is not a tracked collection");

  BodySets P, C;
  collectBody(MA, *Producer->region(0), P);
  collectBody(MA, *Consumer->region(0), C);
  if (P.HasCall || C.HasCall)
    return Fail("a loop body contains a call");
  if (!P.Writes.count(Ct))
    return Fail("producer does not write the consumed collection");
  if (P.RemovedOrCleared.count(Ct) || C.RemovedOrCleared.count(Ct))
    return Fail("the consumed collection is removed from or cleared");

  // Nothing between the loops may touch the fused state.
  for (size_t Idx = PI + 1; Idx != CI; ++Idx) {
    Instruction *X = R->inst(Idx);
    std::set<size_t> Touched;
    auto Touch = [&](Instruction *Inst) {
      for (Value *Op : Inst->operands())
        if (size_t TC = classOf(MA, Op); TC != SIZE_MAX)
          Touched.insert(TC);
      if (Inst->numResults() && Inst->result(0)->type()->isCollection())
        if (size_t TC = classOf(MA, Inst->result(0)); TC != SIZE_MAX)
          Touched.insert(TC);
    };
    Touch(X);
    for (unsigned RI = 0; RI != X->numRegions(); ++RI)
      forEveryInst(*X->region(RI), Touch);
    if (Touched.count(Ct))
      return Fail("an instruction between the loops touches the "
                  "consumed collection");
    if (intersects(Touched, P.Writes))
      return Fail("an instruction between the loops touches state the "
                  "producer writes");
  }

  // Loop-carried interference: fusing interleaves the bodies, so the
  // consumer may not write anything the producer touches, and may not
  // read producer side effects other than the fused stream itself.
  std::set<size_t> PTouched = P.Reads;
  PTouched.insert(P.Writes.begin(), P.Writes.end());
  if (intersects(C.Writes, PTouched))
    return Fail("consumer writes state the producer touches");
  std::set<size_t> PSide = P.Writes;
  PSide.erase(Ct);
  if (intersects(PSide, C.Reads))
    return Fail("consumer reads producer side effects outside the "
                "fused stream");

  // An indexed stream only fuses when both loops walk one index space.
  if (Producer->op() == Opcode::ForEach) {
    Instruction *PSrc = const_cast<Instruction *>(Producer);
    if (!mustShareEnumeration(PSrc->operand(0), ConsumerSrc->operand(0)))
      return Fail("producer and consumer do not share an enumeration");
  }
  return true;
}
