//===- Checkers.h - Static enumeration-correctness checkers -----*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint suite behind `ade-lint` / `adec --lint`, built on
/// ModuleAnalysis and the forward-dataflow framework:
///
///   enum-consistency  every enc/dec/add operand and idx-typed key/element
///                     provably belongs to the enumeration of the
///                     collection it feeds (union-find over identifier
///                     dataflow; also the post-transform self-audit)
///   escape-soundness  no enumerated collection has an escaping use; user
///                     directives that require enumeration are flagged on
///                     escaping collections
///   definite-empty    reads from collections that are empty on every
///                     path (use-after-clear, reads before any insert)
///   dead-write        collection updates never observed by any read,
///                     fold or for-each
///   directive-lint    conflicting or unsatisfiable `#pragma ade`
///                     directives across alias classes
///
/// plus three checkers backed by the abstract-interpretation engine
/// (analysis/AbsInt.h):
///
///   index-out-of-range identifiers provably at or beyond the bound of
///                     the enumeration universe they decode through
///   unbounded-growth  do-while loops that insert on every iteration and
///                     never remove or clear, so the occupancy lattice
///                     never stabilizes
///   lost-collection   writes into a purely local collection after its
///                     last observation — stored data that is never read
///
//===----------------------------------------------------------------------===//

#ifndef ADE_ANALYSIS_CHECKERS_H
#define ADE_ANALYSIS_CHECKERS_H

#include "analysis/Diagnostics.h"
#include "core/Analysis.h"

#include <string>
#include <vector>

namespace ade {
namespace analysis {

class AbsIntEngine;

struct CheckerInfo {
  const char *Name;
  const char *Description;
};

/// All registered checkers, in execution order.
const std::vector<CheckerInfo> &allCheckers();

/// Runs the lint suite over \p M, reporting into \p DE. \p Enabled
/// restricts the run to the named checkers; empty means all. Returns
/// false if \p Enabled names an unknown checker (nothing is run then);
/// \p UnknownChecker, when given, receives the first rejected name.
bool runLint(ir::Module &M, DiagnosticEngine &DE,
             const std::vector<std::string> &Enabled = {},
             std::string *UnknownChecker = nullptr);

/// The post-transform self-audit the pipeline runs after applying an
/// enumeration plan (enum-consistency + escape-soundness). Returns true
/// when no errors were found.
bool auditEnumeration(ir::Module &M, DiagnosticEngine &DE);

// Individual checkers, exposed for unit tests.
void checkEnumConsistency(core::ModuleAnalysis &MA, DiagnosticEngine &DE);
void checkEscapeSoundness(core::ModuleAnalysis &MA, DiagnosticEngine &DE);
void checkDefiniteEmpty(core::ModuleAnalysis &MA, DiagnosticEngine &DE);
void checkDeadWrites(core::ModuleAnalysis &MA, DiagnosticEngine &DE);
void checkDirectives(core::ModuleAnalysis &MA, DiagnosticEngine &DE);

// Abstract-interpretation-backed checkers; the caller owns the engine so
// one analysis run serves all three.
void checkIndexOutOfRange(AbsIntEngine &AI, DiagnosticEngine &DE);
void checkUnboundedGrowth(AbsIntEngine &AI, DiagnosticEngine &DE);
void checkLostCollections(AbsIntEngine &AI, DiagnosticEngine &DE);

} // namespace analysis
} // namespace ade

#endif // ADE_ANALYSIS_CHECKERS_H
