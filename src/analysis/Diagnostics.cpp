//===- Diagnostics.cpp - Lint diagnostics engine --------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostics.h"

#include "support/Json.h"

using namespace ade;
using namespace ade::analysis;

const char *ade::analysis::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::setSource(std::string Filename,
                                 std::string_view Source) {
  this->Filename = std::move(Filename);
  SourceLines.clear();
  size_t Start = 0;
  while (Start <= Source.size()) {
    size_t End = Source.find('\n', Start);
    if (End == std::string_view::npos) {
      SourceLines.emplace_back(Source.substr(Start));
      break;
    }
    SourceLines.emplace_back(Source.substr(Start, End - Start));
    Start = End + 1;
  }
}

void DiagnosticEngine::report(Severity Sev, std::string Check,
                              std::string Message, const ir::Instruction *I,
                              const ir::Function *F) {
  Diagnostic D;
  D.Sev = Sev;
  D.Check = std::move(Check);
  D.Message = std::move(Message);
  if (I) {
    D.Loc = I->loc();
    if (!F)
      F = I->parentFunction();
  }
  if (F)
    D.FunctionName = F->name();
  Diags.push_back(std::move(D));
}

void DiagnosticEngine::report(Severity Sev, std::string Check,
                              std::string Message, std::string FunctionName,
                              ir::SrcLoc Loc) {
  Diagnostic D;
  D.Sev = Sev;
  D.Check = std::move(Check);
  D.Message = std::move(Message);
  D.FunctionName = std::move(FunctionName);
  D.Loc = Loc;
  Diags.push_back(std::move(D));
}

unsigned DiagnosticEngine::errorCount() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Error;
  return N;
}

unsigned DiagnosticEngine::warningCount() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Warning;
  return N;
}

void DiagnosticEngine::render(RawOstream &OS, DiagFormat Fmt) const {
  if (Fmt == DiagFormat::Json)
    renderJson(OS);
  else
    renderText(OS);
}

void DiagnosticEngine::renderText(RawOstream &OS) const {
  for (const Diagnostic &D : Diags) {
    OS << Filename;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Col;
    OS << ": " << severityName(D.Sev) << ": [" << D.Check << "] "
       << D.Message;
    if (!D.Loc.isValid() && !D.FunctionName.empty())
      OS << " (in @" << D.FunctionName << ')';
    OS << '\n';
    if (D.Loc.isValid() && D.Loc.Line <= SourceLines.size()) {
      OS << "  " << SourceLines[D.Loc.Line - 1] << '\n';
      OS.indent(2 + (D.Loc.Col - 1)) << "^\n";
    }
  }
}

void DiagnosticEngine::renderJson(RawOstream &OS) const {
  json::Writer W(OS);
  W.beginObject();
  W.member("file", Filename)
      .member("errors", uint64_t(errorCount()))
      .member("warnings", uint64_t(warningCount()));
  W.key("diagnostics").beginArray();
  for (const Diagnostic &D : Diags) {
    W.beginObject(/*Inline=*/true);
    W.member("severity", severityName(D.Sev))
        .member("check", D.Check)
        .member("function", D.FunctionName)
        .member("line", uint64_t(D.Loc.Line))
        .member("col", uint64_t(D.Loc.Col))
        .member("message", D.Message);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}
