//===- Diagnostics.cpp - Lint diagnostics engine --------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostics.h"

using namespace ade;
using namespace ade::analysis;

const char *ade::analysis::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::setSource(std::string Filename,
                                 std::string_view Source) {
  this->Filename = std::move(Filename);
  SourceLines.clear();
  size_t Start = 0;
  while (Start <= Source.size()) {
    size_t End = Source.find('\n', Start);
    if (End == std::string_view::npos) {
      SourceLines.emplace_back(Source.substr(Start));
      break;
    }
    SourceLines.emplace_back(Source.substr(Start, End - Start));
    Start = End + 1;
  }
}

void DiagnosticEngine::report(Severity Sev, std::string Check,
                              std::string Message, const ir::Instruction *I,
                              const ir::Function *F) {
  Diagnostic D;
  D.Sev = Sev;
  D.Check = std::move(Check);
  D.Message = std::move(Message);
  if (I) {
    D.Loc = I->loc();
    if (!F)
      F = I->parentFunction();
  }
  if (F)
    D.FunctionName = F->name();
  Diags.push_back(std::move(D));
}

unsigned DiagnosticEngine::errorCount() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Error;
  return N;
}

unsigned DiagnosticEngine::warningCount() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Warning;
  return N;
}

void DiagnosticEngine::render(RawOstream &OS, DiagFormat Fmt) const {
  if (Fmt == DiagFormat::Json)
    renderJson(OS);
  else
    renderText(OS);
}

void DiagnosticEngine::renderText(RawOstream &OS) const {
  for (const Diagnostic &D : Diags) {
    OS << Filename;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Col;
    OS << ": " << severityName(D.Sev) << ": [" << D.Check << "] "
       << D.Message;
    if (!D.Loc.isValid() && !D.FunctionName.empty())
      OS << " (in @" << D.FunctionName << ')';
    OS << '\n';
    if (D.Loc.isValid() && D.Loc.Line <= SourceLines.size()) {
      OS << "  " << SourceLines[D.Loc.Line - 1] << '\n';
      OS.indent(2 + (D.Loc.Col - 1)) << "^\n";
    }
  }
}

/// Appends \p S with JSON string escaping (no surrounding quotes).
static void jsonEscape(RawOstream &OS, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
      } else {
        OS << C;
      }
    }
  }
}

void DiagnosticEngine::renderJson(RawOstream &OS) const {
  OS << "{\n  \"file\": \"";
  jsonEscape(OS, Filename);
  OS << "\",\n  \"errors\": " << errorCount()
     << ",\n  \"warnings\": " << warningCount()
     << ",\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Diags) {
    OS << (First ? "\n" : ",\n") << "    {\"severity\": \""
       << severityName(D.Sev) << "\", \"check\": \"";
    jsonEscape(OS, D.Check);
    OS << "\", \"function\": \"";
    jsonEscape(OS, D.FunctionName);
    OS << "\", \"line\": " << D.Loc.Line << ", \"col\": " << D.Loc.Col
       << ", \"message\": \"";
    jsonEscape(OS, D.Message);
    OS << "\"}";
    First = false;
  }
  OS << (First ? "]\n}\n" : "\n  ]\n}\n");
}
