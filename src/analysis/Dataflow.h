//===- Dataflow.h - Forward dataflow over structured regions ----*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable forward-dataflow framework over the structured-region IR.
/// Because control flow is structured (if / for-each / for-range /
/// do-while, no gotos), the analysis is a recursive walk instead of a
/// worklist over a CFG:
///
///  - straight-line code applies the client transfer function in order;
///  - `if` forks the state into both regions and joins the two exits;
///  - `foreach` / `forrange` iterate the body to a fixpoint of
///    join(entry, body-exit); the state after the loop includes the
///    zero-trip path;
///  - `dowhile` also iterates to a fixpoint but the state after the loop
///    is the body exit (the body runs at least once).
///
/// The client is a CRTP derived class providing:
///
///   State boundaryState(const ir::Function &F);      // entry state
///   void transfer(const ir::Instruction &I, State &S);
///   static State join(const State &A, const State &B);
///   static bool equal(const State &A, const State &B);
///
/// `transfer` must be monotone and the lattice of finite height, or the
/// loop fixpoint is cut off at a safety bound (and the result is only
/// approximate). After `run`, `stateBefore` returns the state holding
/// immediately before each reachable instruction: loop bodies record the
/// fixpoint of the final iteration, so queries see the over-all-paths
/// approximation, not the optimistic first pass.
///
/// Clients may additionally override
///
///   void enterLoopBody(const ir::Instruction &Loop, State &S);
///
/// which runs on the body-entry state before every evaluation of a loop
/// body (foreach / forrange / dowhile). This is where an analysis binds
/// the loop's block arguments and applies widening: an infinite-height
/// domain (e.g. intervals) widens the bindings it records here after a
/// few passes, which makes the surrounding fixpoint converge far below
/// the safety bound. The default does nothing.
///
/// All state containers are keyed by instruction identity but only ever
/// iterated in program order by clients; the framework itself visits
/// instructions strictly in region order, so results are byte-stable
/// across runs.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_ANALYSIS_DATAFLOW_H
#define ADE_ANALYSIS_DATAFLOW_H

#include "ir/IR.h"

#include <map>
#include <utility>

namespace ade {
namespace analysis {

template <typename Derived, typename State> class ForwardDataflow {
public:
  /// Analyzes \p F to a fixpoint. May be called for several functions;
  /// recorded states accumulate.
  void run(const ir::Function &F) {
    runRegion(F.body(), derived().boundaryState(F));
  }

  /// The state immediately before \p I, or null if \p I was never
  /// reached (e.g. its function was not analyzed).
  const State *stateBefore(const ir::Instruction *I) const {
    auto It = Before.find(I);
    return It == Before.end() ? nullptr : &It->second;
  }

  /// Hook run on the body-entry state before each loop-body evaluation.
  /// Derived classes override this to bind loop block arguments and
  /// apply widening; the default does nothing.
  void enterLoopBody(const ir::Instruction & /*Loop*/, State & /*S*/) {}

protected:
  /// Loop fixpoints converge in a couple of iterations for finite-height
  /// lattices; this bound only guards against non-monotone clients.
  static constexpr unsigned MaxLoopIterations = 64;

  State runRegion(const ir::Region &R, State S) {
    for (const ir::Instruction *I : R) {
      // Overwrite on revisit: fixpoint iteration ascends the lattice, so
      // the last recorded state is the most conservative one.
      Before[I] = S;
      switch (I->op()) {
      case ir::Opcode::If: {
        State Then = runRegion(*I->region(0), S);
        State Else = runRegion(*I->region(1), std::move(S));
        S = Derived::join(Then, Else);
        break;
      }
      case ir::Opcode::ForEach:
      case ir::Opcode::ForRange: {
        // Zero or more trips: fixpoint of In = join(entry, body(In)).
        State In = S;
        for (unsigned Iter = 0; Iter != MaxLoopIterations; ++Iter) {
          State Entry = In;
          derived().enterLoopBody(*I, Entry);
          State Out = runRegion(*I->region(0), std::move(Entry));
          State Next = Derived::join(S, Out);
          if (Derived::equal(Next, In))
            break;
          In = std::move(Next);
        }
        S = std::move(In);
        break;
      }
      case ir::Opcode::DoWhile: {
        // At least one trip: same fixpoint, but the post-loop state is
        // the body exit rather than the join with the entry.
        State In = S;
        State Out{};
        for (unsigned Iter = 0; Iter != MaxLoopIterations; ++Iter) {
          State Entry = In;
          derived().enterLoopBody(*I, Entry);
          Out = runRegion(*I->region(0), std::move(Entry));
          State Next = Derived::join(S, Out);
          if (Derived::equal(Next, In))
            break;
          In = std::move(Next);
        }
        S = std::move(Out);
        break;
      }
      default:
        break;
      }
      derived().transfer(*I, S);
    }
    return S;
  }

private:
  Derived &derived() { return *static_cast<Derived *>(this); }

  std::map<const ir::Instruction *, State> Before;
};

} // namespace analysis
} // namespace ade

#endif // ADE_ANALYSIS_DATAFLOW_H
