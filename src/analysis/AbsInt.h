//===- AbsInt.h - Interprocedural abstract interpretation -------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interprocedural abstract-interpretation engine over the structured
/// IR, computing three lattices the rest of the pipeline consumes:
///
///  - **value ranges**: an unsigned interval per SSA value, with loop
///    block arguments bound on each body pass and widened after a short
///    delay so fixpoints converge far below the framework's safety bound;
///  - **collection occupancy**: per alias class, an interval bound on the
///    number of insert operations over the whole execution ("Ever" — a
///    high-water bound, since removals never raise the peak), plus
///    may-remove / may-clear bits, composed bottom-up over call-graph
///    SCCs from per-region effect summaries;
///  - **alias/escape facts** per class: escape, global reachability,
///    whether references span several functions.
///
/// On top of those it derives *cover facts* — "every key of collection A
/// also enters collection B", proven from unconditional writes under a
/// for-each — which let selection prove a candidate dense statically, an
/// *enumeration universe* bound per enumeration global, and the growth
/// record per do-while that the unbounded-growth checker consumes.
///
/// The engine is context-insensitive but summary-based: callees are
/// summarized once (return-value interval, region effect on module-wide
/// alias classes) in bottom-up SCC order; recursive components get
/// conservative TOP summaries. Whole-program totals assume each entry
/// function (no internal caller) runs once — see DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_ANALYSIS_ABSINT_H
#define ADE_ANALYSIS_ABSINT_H

#include "core/Analysis.h"
#include "ir/CallGraph.h"
#include "support/RawOstream.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ade {

namespace core {
struct EnumerationPlan;
}

namespace analysis {

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

/// An unsigned-integer interval [Lo, Hi] with Hi == Inf meaning
/// unbounded. The default is TOP ([0, Inf]); BOTTOM is not represented
/// (absence from a map stands for "never computed").
struct Interval {
  static constexpr uint64_t Inf = ~0ull;

  uint64_t Lo = 0;
  uint64_t Hi = Inf;

  static Interval top() { return {}; }
  static Interval exact(uint64_t V) { return {V, V}; }
  static Interval range(uint64_t L, uint64_t H) { return {L, H}; }

  bool isTop() const { return Lo == 0 && Hi == Inf; }
  bool isExact() const { return Lo == Hi && Hi != Inf; }
  bool isFinite() const { return Hi != Inf; }

  bool operator==(const Interval &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// Least upper bound (interval hull).
  static Interval join(Interval A, Interval B) {
    return {A.Lo < B.Lo ? A.Lo : B.Lo, A.Hi > B.Hi ? A.Hi : B.Hi};
  }

  /// Widening: any bound that moved since \p Prev jumps straight to its
  /// extreme, so ascending chains stabilize in one more step.
  static Interval widen(Interval Prev, Interval Next) {
    return {Next.Lo < Prev.Lo ? 0 : Prev.Lo,
            Next.Hi > Prev.Hi ? Inf : Prev.Hi};
  }

  // -- Machine-value arithmetic (wrap-aware: any operation that could
  // -- wrap a u64 at runtime degrades to TOP, never to a wrong range).

  static Interval addValue(Interval A, Interval B) {
    if (!A.isFinite() || !B.isFinite() || A.Hi + B.Hi < A.Hi)
      return top();
    return {A.Lo + B.Lo, A.Hi + B.Hi};
  }

  static Interval subValue(Interval A, Interval B) {
    if (A.Lo < B.Hi || !B.isFinite())
      return top(); // Could underflow and wrap.
    return {A.Lo - B.Hi, A.Hi == Inf ? Inf : A.Hi - B.Lo};
  }

  static Interval mulValue(Interval A, Interval B) {
    if (!A.isFinite() || !B.isFinite())
      return top();
    if (A.Hi != 0 && B.Hi > Inf / A.Hi)
      return top(); // Could overflow and wrap.
    return {A.Lo * B.Lo, A.Hi * B.Hi};
  }

  // -- Count arithmetic (saturating at Inf: abstract counters, no wrap).

  static uint64_t satAdd(uint64_t A, uint64_t B) {
    if (A == Inf || B == Inf || A + B < A)
      return Inf;
    return A + B;
  }

  static uint64_t satMul(uint64_t A, uint64_t B) {
    if (A == 0 || B == 0)
      return 0;
    if (A == Inf || B == Inf || A > Inf / B)
      return Inf;
    return A * B;
  }

  static Interval addCount(Interval A, Interval B) {
    return {satAdd(A.Lo, B.Lo), satAdd(A.Hi, B.Hi)};
  }

  /// This count executed Trips times (e.g. a loop body's growth).
  Interval scale(Interval Trips) const {
    return {satMul(Lo, Trips.Lo == Inf ? 0 : Trips.Lo), satMul(Hi, Trips.Hi)};
  }

  void print(RawOstream &OS) const;
};

//===----------------------------------------------------------------------===//
// Per-class facts
//===----------------------------------------------------------------------===//

/// Occupancy summary of one alias class over the whole execution.
struct Occupancy {
  /// Bound on insert operations ever executed on the class (per lifetime
  /// for purely local allocations). Hi bounds the peak element count.
  Interval Ever = Interval::range(0, 0);
  bool MayRemove = false;
  bool MayClear = false;
};

/// Aliasing / escape shape of one class.
struct AliasFacts {
  bool Escapes = false;
  /// Reachable through a module global or an enclosing collection.
  bool GlobalReachable = false;
  /// References appear in more than one function.
  bool SpansCalls = false;
  unsigned Roots = 0;
};

/// "Every key of class Src also enters class Dst", proven either from an
/// unconditional insert/write of a for-each binding (\c Loop points at
/// the loop) or from paired introductions — every site introducing a key
/// into Src also feeds the same value into Dst in the same region
/// (\c Loop is null). Valid as a density proof only while Dst's class
/// never removes or clears; coveredBy() additionally closes the relation
/// transitively through stable intermediates.
struct CoverFact {
  size_t Dst = 0;
  size_t Src = 0;
  const ir::Instruction *Loop = nullptr;
};

/// Growth effect of one do-while body on one class (unscaled).
struct LoopGrowth {
  size_t Class = 0;
  /// Insert operations per iteration.
  Interval PerTrip = Interval::range(0, 0);
  bool MayRemove = false;
  bool MayClear = false;
  /// The class is (re)allocated inside the body, so growth does not
  /// accumulate across iterations.
  bool Fresh = false;
};

/// The slice of the engine's results the selection pass consumes,
/// decoupled so core/Transform.cpp needs only this header (the struct is
/// header-only; no link dependency on the analysis library).
struct AbsIntSelectionFacts {
  struct ClassFacts {
    Interval Ever = Interval::top();
    /// Classes this one provably covers (supersets of their key sets).
    std::vector<size_t> Covers;
    /// Id of the "absint:occupancy" remark carrying the evidence, for
    /// provenance parents; 0 when remarks are off.
    uint64_t RemarkId = 0;
  };
  std::map<size_t, ClassFacts> ByClass;

  const ClassFacts *factsFor(size_t Class) const {
    auto It = ByClass.find(Class);
    return It == ByClass.end() ? nullptr : &It->second;
  }
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

class AbsIntEngine {
public:
  /// Runs the full analysis over \p MA's module. \p MA must outlive the
  /// engine; alias class indices in all results are \p MA's.
  explicit AbsIntEngine(core::ModuleAnalysis &MA);
  ~AbsIntEngine();
  AbsIntEngine(const AbsIntEngine &) = delete;
  AbsIntEngine &operator=(const AbsIntEngine &) = delete;

  core::ModuleAnalysis &analysis() const { return MA; }
  const ir::CallGraph &callGraph() const { return CG; }

  /// The interval of \p V, TOP when nothing better is known.
  Interval rangeOf(const ir::Value *V) const;

  /// Whole-execution occupancy of alias class \p Class.
  const Occupancy &occupancyOf(size_t Class) const;

  /// Alias/escape shape of \p Class.
  const AliasFacts &aliasFactsOf(size_t Class) const;

  /// Bound on the number of keys enumeration global \p Symbol ever
  /// holds; TOP for unknown symbols.
  Interval enumUniverse(const std::string &Symbol) const;

  /// All proven cover facts, in discovery (program) order.
  const std::vector<CoverFact> &covers() const { return Covers; }

  /// Classes \p Dst provably covers (empty when none, or when the proof
  /// is invalidated by a remove/clear anywhere on Dst's class).
  std::vector<size_t> coveredBy(size_t Dst) const;

  /// Per-iteration growth effects of \p Loop (a do-while), one entry per
  /// touched class, in class order.
  const std::vector<LoopGrowth> &growthOf(const ir::Instruction *Loop) const;

  /// Every do-while of the module, in program order.
  const std::vector<const ir::Instruction *> &doWhiles() const {
    return DoWhiles;
  }

  /// Number of body passes the range fixpoint took on \p Loop; widening
  /// keeps this far below the dataflow safety bound.
  unsigned loopPasses(const ir::Instruction *Loop) const;

  /// Human-readable report of everything above (`--absint-report`).
  void print(RawOstream &OS) const;

  struct Impl; // Internal result storage, defined in AbsInt.cpp.

private:
  core::ModuleAnalysis &MA;
  ir::CallGraph CG;
  std::unique_ptr<Impl> I;
  std::vector<CoverFact> Covers;
  std::vector<const ir::Instruction *> DoWhiles;
};

//===----------------------------------------------------------------------===//
// Fusion legality
//===----------------------------------------------------------------------===//

/// The legality oracle the indexed-stream-fusion pass (ROADMAP item 3)
/// consumes: whether two collections are forced onto one enumeration,
/// and whether a producer loop may be fused into a consumer loop.
class FusionLegality {
public:
  /// \p Plan, when given, additionally unifies the members of each
  /// enumeration candidate (they share an index space by construction).
  explicit FusionLegality(core::ModuleAnalysis &MA,
                          const core::EnumerationPlan *Plan = nullptr);

  /// True when \p A and \p B provably index through the same enumeration
  /// (aliases, union-ed, one share group, or one plan candidate).
  bool mustShareEnumeration(ir::Value *A, ir::Value *B) const;
  bool mustShareEnumeration(core::RootInfo *A, core::RootInfo *B) const;

  /// True when the loop \p Producer may be fused into the later loop
  /// \p Consumer (a for-each over a collection the producer fills):
  /// same region, no intervening instruction touching the fused state,
  /// no cross-loop interference, shared enumeration for for-each
  /// producers, and no external calls inside either body. On failure,
  /// \p WhyNot (when given) receives the violated condition.
  bool fusable(const ir::Instruction *Producer,
               const ir::Instruction *Consumer,
               std::string *WhyNot = nullptr) const;

private:
  size_t findRep(size_t Class) const;
  void unite(size_t A, size_t B);

  core::ModuleAnalysis &MA;
  mutable std::vector<size_t> Rep; // Union-find over alias class ids.
};

} // namespace analysis
} // namespace ade

#endif // ADE_ANALYSIS_ABSINT_H
