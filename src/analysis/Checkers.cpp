//===- Checkers.cpp - Static enumeration-correctness checkers -------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkers.h"

#include "analysis/AbsInt.h"
#include "analysis/Dataflow.h"
#include "core/MergeNetwork.h"
#include "support/UnionFind.h"

#include <map>
#include <optional>
#include <set>

using namespace ade;
using namespace ade::analysis;
using namespace ade::ir;

static bool isIdx(const Type *T) {
  const auto *Int = dyn_cast<IntType>(T);
  return Int && Int->isIndex();
}

/// Applies \p Fn to every instruction of \p R, pre-order, nested regions
/// included.
template <typename FnT> static void forEachInst(const Region &R, FnT Fn) {
  for (Instruction *I : R) {
    Fn(I);
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      forEachInst(*I->region(Idx), Fn);
  }
}

/// The enumeration global \p V loads, or "" when unresolvable.
static std::string enumSymbolOfValue(const Value *V) {
  if (!isa<EnumType>(V->type()))
    return {};
  if (const auto *Res = dyn_cast<InstResult>(V))
    if (Res->parent()->op() == Opcode::GlobalGet)
      return Res->parent()->symbol();
  return {};
}

/// The New instruction anchoring \p Root, or null (params, globals).
static const Instruction *anchorInst(const core::RootInfo *Root) {
  if (Root->Anchor)
    if (const auto *Res = dyn_cast<InstResult>(Root->Anchor))
      return Res->parent();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// enum-consistency
//===----------------------------------------------------------------------===//
//
// Identifiers (idx-typed values) are opaque handles into one specific
// enumeration. The checker unifies, with a union-find:
//
//  - a key slot per alias class (the enumeration keying that collection)
//    and an element slot per alias class (for idx-valued elements);
//  - one node per enumeration global;
//  - one node per idx-typed SSA value and per idx-returning function.
//
// enc/add bind their result to their enumeration; dec binds its operand;
// collection accesses bind idx keys/elements to the class slots; merges,
// calls, returns and comparisons bind values to each other. Two distinct
// enumeration globals meeting in one set is an inconsistency — exactly
// the property the ADE transform must preserve.

namespace {

class EnumBinder {
public:
  EnumBinder(core::ModuleAnalysis &MA, DiagnosticEngine &DE)
      : MA(MA), DE(DE) {}

  void run() {
    for (const auto &F : MA.module().functions())
      if (!F->isExternal())
        forEachInst(F->body(), [&](Instruction *I) { visit(I); });
    // Merge edges (region arguments, structured-op results, selects):
    // every source of an idx-typed merge target carries the same
    // identifiers as the target.
    for (Value *Target : MA.merges().targets()) {
      if (!isIdx(Target->type()))
        continue;
      for (const core::MergeSlot &Slot : MA.merges().sourcesOf(Target))
        unite(valueNode(Slot.User->operand(Slot.OpIdx)), valueNode(Target),
              Slot.User, [&](const std::string &A, const std::string &B) {
                return "merged value '" + Target->name() +
                       "' mixes identifiers of enumeration @" + A +
                       " with identifiers of @" + B;
              });
    }
  }

private:
  void visit(Instruction *I) {
    switch (I->op()) {
    case Opcode::Enc:
    case Opcode::EnumAdd: {
      std::string Sym = enumSymbolOf(I->operand(0));
      if (!Sym.empty() && I->numResults())
        unite(valueNode(I->result(0)), enumNode(Sym), I,
              [&](const std::string &A, const std::string &B) {
                return std::string("result of '") + opcodeName(I->op()) +
                       "' is an identifier of enumeration @" + B +
                       ", but flows together with identifiers of @" + A;
              });
      break;
    }
    case Opcode::Dec: {
      std::string Sym = enumSymbolOf(I->operand(0));
      if (!Sym.empty() && I->numOperands() > 1 &&
          isIdx(I->operand(1)->type()))
        unite(valueNode(I->operand(1)), enumNode(Sym), I,
              [&](const std::string &A, const std::string &B) {
                return "'dec' decodes through enumeration @" + B +
                       ", but its operand carries an identifier of @" + A;
              });
      break;
    }
    case Opcode::Read:
    case Opcode::Write:
    case Opcode::Insert:
    case Opcode::Remove:
    case Opcode::Has: {
      core::RootInfo *Root = MA.rootOf(I->operand(0));
      if (!Root)
        break;
      size_t C = MA.aliasClassOf(Root);
      if (I->numOperands() > 1 && isIdx(I->operand(1)->type()))
        uniteKey(I->operand(1), C, Root, I);
      if (I->op() == Opcode::Write && I->numOperands() > 2 &&
          isIdx(I->operand(2)->type()))
        uniteElem(I->operand(2), C, Root, I);
      if (I->op() == Opcode::Read && I->numResults() &&
          isIdx(I->result(0)->type()))
        uniteElem(I->result(0), C, Root, I);
      break;
    }
    case Opcode::Append: {
      core::RootInfo *Root = MA.rootOf(I->operand(0));
      if (Root && I->numOperands() > 1 && isIdx(I->operand(1)->type()))
        uniteElem(I->operand(1), MA.aliasClassOf(Root), Root, I);
      break;
    }
    case Opcode::Pop: {
      core::RootInfo *Root = MA.rootOf(I->operand(0));
      if (Root && I->numResults() && isIdx(I->result(0)->type()))
        uniteElem(I->result(0), MA.aliasClassOf(Root), Root, I);
      break;
    }
    case Opcode::Union: {
      core::RootInfo *Dst = MA.rootOf(I->operand(0));
      core::RootInfo *Src = MA.rootOf(I->operand(1));
      if (Dst && Src && Dst->keyType() && Src->keyType() &&
          isIdx(Dst->keyType()) && isIdx(Src->keyType()))
        unite(keySlot(MA.aliasClassOf(Src)), keySlot(MA.aliasClassOf(Dst)),
              I, [&](const std::string &A, const std::string &B) {
                return "'union' merges " + Src->describe() +
                       " (enumerated by @" + A + ") into " +
                       Dst->describe() + " (enumerated by @" + B + ")";
              });
      break;
    }
    case Opcode::ForEach: {
      core::RootInfo *Root = MA.rootOf(I->operand(0));
      if (!Root)
        break;
      size_t C = MA.aliasClassOf(Root);
      const Region &Body = *I->region(0);
      Type *CollTy = I->operand(0)->type();
      if (isa<SetType>(CollTy)) {
        if (Body.numArgs() >= 1 && isIdx(Body.arg(0)->type()))
          uniteKey(Body.arg(0), C, Root, I);
      } else if (isa<MapType>(CollTy)) {
        if (Body.numArgs() >= 1 && isIdx(Body.arg(0)->type()))
          uniteKey(Body.arg(0), C, Root, I);
        if (Body.numArgs() >= 2 && isIdx(Body.arg(1)->type()))
          uniteElem(Body.arg(1), C, Root, I);
      } else if (isa<SeqType>(CollTy)) {
        if (Body.numArgs() >= 2 && isIdx(Body.arg(1)->type()))
          uniteElem(Body.arg(1), C, Root, I);
      }
      break;
    }
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      if (I->numOperands() == 2 && isIdx(I->operand(0)->type()) &&
          isIdx(I->operand(1)->type()))
        unite(valueNode(I->operand(0)), valueNode(I->operand(1)), I,
              [&](const std::string &A, const std::string &B) {
                return std::string("'") + opcodeName(I->op()) +
                       "' compares an identifier of enumeration @" + A +
                       " with an identifier of @" + B;
              });
      break;
    case Opcode::Call: {
      const Function *Callee = MA.module().getFunction(I->symbol());
      if (!Callee || Callee->isExternal())
        break;
      unsigned N = std::min(I->numOperands(), Callee->numArgs());
      for (unsigned A = 0; A != N; ++A)
        if (isIdx(I->operand(A)->type()))
          unite(valueNode(I->operand(A)), valueNode(Callee->arg(A)), I,
                [&](const std::string &LA, const std::string &LB) {
                  return "argument " + std::to_string(A) + " of call to @" +
                         Callee->name() + " carries an identifier of @" +
                         LA + ", but the callee expects identifiers of @" +
                         LB;
                });
      if (I->numResults() && isIdx(I->result(0)->type()))
        unite(valueNode(I->result(0)), retNode(Callee), I,
              [&](const std::string &A, const std::string &B) {
                return "result of call to @" + Callee->name() +
                       " mixes identifiers of @" + A + " and @" + B;
              });
      break;
    }
    case Opcode::Ret:
      if (I->numOperands() && isIdx(I->operand(0)->type()))
        unite(valueNode(I->operand(0)), retNode(I->parentFunction()), I,
              [&](const std::string &A, const std::string &B) {
                return "returned identifier belongs to enumeration @" + A +
                       ", but other returns of @" +
                       I->parentFunction()->name() +
                       " produce identifiers of @" + B;
              });
      break;
    default:
      break;
    }
  }

  void uniteKey(Value *V, size_t Class, core::RootInfo *Root,
                Instruction *I) {
    unite(valueNode(V), keySlot(Class), I,
          [&](const std::string &A, const std::string &B) {
            return std::string("key of '") + opcodeName(I->op()) + "' on " +
                   Root->describe() + " carries an identifier of @" + A +
                   ", but the collection is keyed by enumeration @" + B;
          });
  }

  void uniteElem(Value *V, size_t Class, core::RootInfo *Root,
                 Instruction *I) {
    unite(valueNode(V), elemSlot(Class), I,
          [&](const std::string &A, const std::string &B) {
            return std::string("element of '") + opcodeName(I->op()) +
                   "' on " + Root->describe() +
                   " carries an identifier of @" + A +
                   ", but the collection's elements belong to @" + B;
          });
  }

  /// The enumeration global a value loads, or "" when unresolvable.
  static std::string enumSymbolOf(const Value *V) {
    return enumSymbolOfValue(V);
  }

  uint32_t valueNode(const Value *V) { return node(0, V); }
  uint32_t retNode(const Function *F) { return node(1, F); }
  uint32_t keySlot(size_t Class) { return slot(KeySlots, Class); }
  uint32_t elemSlot(size_t Class) { return slot(ElemSlots, Class); }

  uint32_t enumNode(const std::string &Sym) {
    auto [It, Inserted] = EnumNodes.try_emplace(Sym, 0);
    if (Inserted) {
      It->second = UF.makeSet();
      Label[It->second] = Sym;
    }
    return It->second;
  }

  uint32_t node(int Tag, const void *Ptr) {
    auto [It, Inserted] = Nodes.try_emplace({Tag, Ptr}, 0);
    if (Inserted)
      It->second = UF.makeSet();
    return It->second;
  }

  uint32_t slot(std::map<size_t, uint32_t> &Slots, size_t Class) {
    auto [It, Inserted] = Slots.try_emplace(Class, 0);
    if (Inserted)
      It->second = UF.makeSet();
    return It->second;
  }

  /// Unites the sets of \p A and \p B. When that would bring two distinct
  /// enumerations into one set, reports an error at \p I instead (message
  /// built by \p Msg from the two enumeration names, A's first) and keeps
  /// the sets apart so one bug does not cascade.
  template <typename MsgFn>
  void unite(uint32_t A, uint32_t B, const Instruction *I, MsgFn Msg) {
    uint32_t RA = UF.find(A), RB = UF.find(B);
    if (RA == RB)
      return;
    auto IA = Label.find(RA), IB = Label.find(RB);
    if (IA != Label.end() && IB != Label.end() &&
        IA->second != IB->second) {
      DE.report(Severity::Error, "enum-consistency",
                Msg(IA->second, IB->second), I);
      return;
    }
    std::string L;
    if (IA != Label.end())
      L = IA->second;
    else if (IB != Label.end())
      L = IB->second;
    uint32_t R = UF.unite(RA, RB);
    if (!L.empty())
      Label[R] = L;
  }

  core::ModuleAnalysis &MA;
  DiagnosticEngine &DE;
  UnionFind UF;
  std::map<std::pair<int, const void *>, uint32_t> Nodes;
  std::map<size_t, uint32_t> KeySlots, ElemSlots;
  std::map<std::string, uint32_t> EnumNodes;
  /// Representative id -> enumeration symbol bound to that set.
  std::map<uint32_t, std::string> Label;
};

} // namespace

void ade::analysis::checkEnumConsistency(core::ModuleAnalysis &MA,
                                         DiagnosticEngine &DE) {
  EnumBinder(MA, DE).run();
}

//===----------------------------------------------------------------------===//
// escape-soundness
//===----------------------------------------------------------------------===//

void ade::analysis::checkEscapeSoundness(core::ModuleAnalysis &MA,
                                         DiagnosticEngine &DE) {
  for (const auto &Class : MA.aliasClasses()) {
    bool Escapes = false, HasIdx = false;
    for (core::RootInfo *Root : Class) {
      Escapes |= Root->Escapes;
      HasIdx |= (Root->keyType() && isIdx(Root->keyType())) ||
                (Root->elemType() && isIdx(Root->elemType()));
    }
    if (!Escapes)
      continue;
    // Report at the first allocation site of the class when there is one.
    const Instruction *Anchor = nullptr;
    core::RootInfo *First = Class.front();
    for (core::RootInfo *Root : Class)
      if ((Anchor = anchorInst(Root))) {
        First = Root;
        break;
      }
    if (HasIdx) {
      // Only a transform bug produces an enumerated (idx-keyed) collection
      // that escapes; this is the post-transform audit's soundness leg.
      DE.report(Severity::Error, "escape-soundness",
                "enumerated collection " + First->describe() +
                    " has an escaping use; its idx keys are meaningless "
                    "outside the module's enumeration",
                Anchor);
      continue;
    }
    // Lint leg: directives demanding enumeration cannot be honored on an
    // escaping collection.
    for (core::RootInfo *Root : Class) {
      if (!Root->HasDirective)
        continue;
      if (Root->Dir.EnumerateMode == Directive::Enumerate::Force)
        DE.report(Severity::Warning, "escape-soundness",
                  "'#pragma ade enumerate' cannot be honored: " +
                      First->describe() +
                      " escapes (passed to an external callee or used in "
                      "an unmodeled way)",
                  Anchor);
      else if (selectionRequiresEnumeration(Root->Dir.Select))
        DE.report(Severity::Warning, "escape-soundness",
                  std::string("'select(") +
                      selectionName(Root->Dir.Select) +
                      ")' requires an enumerated key domain, but " +
                      First->describe() + " escapes",
                  Anchor);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// definite-empty (use-after-clear)
//===----------------------------------------------------------------------===//

namespace {

enum class Emptiness : uint8_t { Empty, NonEmpty };

/// Alias class -> emptiness; absence means "unknown".
using EmptyState = std::map<size_t, Emptiness>;

class EmptinessAnalysis
    : public ForwardDataflow<EmptinessAnalysis, EmptyState> {
public:
  explicit EmptinessAnalysis(core::ModuleAnalysis &MA) : MA(MA) {
    // Classes a call can mutate behind our back: anything reachable
    // through a global or an enclosing collection.
    const auto &Classes = MA.aliasClasses();
    for (size_t C = 0; C != Classes.size(); ++C)
      for (core::RootInfo *Root : Classes[C])
        if (Root->TheKind == core::RootInfo::Kind::Global ||
            Root->TheKind == core::RootInfo::Kind::Nested) {
          Volatile.push_back(C);
          break;
        }
  }

  EmptyState boundaryState(const ir::Function &) { return {}; }

  void transfer(const Instruction &I, EmptyState &S) {
    switch (I.op()) {
    case Opcode::New:
      if (auto C = classOf(I.result(0)))
        S[*C] = Emptiness::Empty;
      break;
    case Opcode::Clear:
      if (auto C = classOf(I.operand(0)))
        S[*C] = Emptiness::Empty;
      break;
    case Opcode::Insert:
    case Opcode::Write:
    case Opcode::Append:
      if (auto C = classOf(I.operand(0)))
        S[*C] = Emptiness::NonEmpty;
      break;
    case Opcode::Remove:
    case Opcode::Pop:
      if (auto C = classOf(I.operand(0)))
        S.erase(*C);
      break;
    case Opcode::Union: {
      auto Dst = classOf(I.operand(0)), Src = classOf(I.operand(1));
      if (!Dst)
        break;
      auto StateOf = [&](std::optional<size_t> C)
          -> std::optional<Emptiness> {
        if (!C)
          return std::nullopt;
        auto It = S.find(*C);
        return It == S.end() ? std::nullopt
                             : std::optional<Emptiness>(It->second);
      };
      auto DS = StateOf(Dst), SS = StateOf(Src);
      if (DS == Emptiness::Empty && SS == Emptiness::Empty)
        ; // Union of empties stays empty.
      else if (DS == Emptiness::NonEmpty || SS == Emptiness::NonEmpty)
        S[*Dst] = Emptiness::NonEmpty;
      else
        S.erase(*Dst);
      break;
    }
    case Opcode::Call:
      // The callee sees its parameters (same alias classes as our
      // arguments) and everything global- or nesting-reachable.
      for (Value *Op : I.operands())
        if (auto C = classOf(Op))
          S.erase(*C);
      for (size_t C : Volatile)
        S.erase(C);
      break;
    default:
      break;
    }
  }

  static EmptyState join(const EmptyState &A, const EmptyState &B) {
    EmptyState R;
    for (const auto &[C, E] : A) {
      auto It = B.find(C);
      if (It != B.end() && It->second == E)
        R[C] = E;
    }
    return R;
  }

  static bool equal(const EmptyState &A, const EmptyState &B) {
    return A == B;
  }

  std::optional<size_t> classOf(Value *V) const {
    core::RootInfo *Root = MA.rootOf(V);
    if (!Root)
      return std::nullopt;
    return MA.aliasClassOf(Root);
  }

private:
  core::ModuleAnalysis &MA;
  std::vector<size_t> Volatile;
};

} // namespace

void ade::analysis::checkDefiniteEmpty(core::ModuleAnalysis &MA,
                                       DiagnosticEngine &DE) {
  EmptinessAnalysis EA(MA);
  for (const auto &F : MA.module().functions())
    if (!F->isExternal())
      EA.run(*F);
  for (const auto &F : MA.module().functions()) {
    if (F->isExternal())
      continue;
    forEachInst(F->body(), [&](Instruction *I) {
      switch (I->op()) {
      case Opcode::Read:
      case Opcode::Pop:
      case Opcode::Has:
      case Opcode::ForEach:
        break;
      default:
        return;
      }
      auto C = EA.classOf(I->operand(0));
      const EmptyState *S = EA.stateBefore(I);
      if (!C || !S)
        return;
      auto It = S->find(*C);
      if (It == S->end() || It->second != Emptiness::Empty)
        return;
      std::string Name = "%" + I->operand(0)->name();
      std::string Msg;
      if (I->op() == Opcode::ForEach)
        Msg = "'foreach' over '" + Name +
              "', which is empty on every path to this point; the loop "
              "body never executes";
      else if (I->op() == Opcode::Has)
        Msg = "'has' on '" + Name +
              "', which is empty on every path to this point; the result "
              "is always false";
      else
        Msg = std::string("'") + opcodeName(I->op()) + "' from '" + Name +
              "', which is empty on every path to this point";
      DE.report(Severity::Warning, "definite-empty", std::move(Msg), I);
    });
  }
}

//===----------------------------------------------------------------------===//
// dead-write
//===----------------------------------------------------------------------===//

void ade::analysis::checkDeadWrites(core::ModuleAnalysis &MA,
                                    DiagnosticEngine &DE) {
  for (const auto &Class : MA.aliasClasses()) {
    // Only purely local collections: a class touching a parameter,
    // global, nesting level or escaping use is observable elsewhere.
    bool Local = true;
    for (core::RootInfo *Root : Class)
      Local &= Root->TheKind == core::RootInfo::Kind::Alloc &&
               !Root->Escapes;
    if (!Local)
      continue;
    std::vector<Instruction *> Writes;
    bool Observed = false;
    for (core::RootInfo *Root : Class) {
      for (Value *Ref : Root->Refs) {
        for (const Use &U : Ref->uses()) {
          Instruction *User = U.User;
          switch (User->op()) {
          case Opcode::Read:
          case Opcode::Has:
          case Opcode::Size:
          case Opcode::Pop:
          case Opcode::ForEach:
            if (U.OpIdx == 0)
              Observed = true;
            break;
          case Opcode::Union:
            if (U.OpIdx == 0)
              Writes.push_back(User);
            else
              Observed = true;
            break;
          case Opcode::Write:
          case Opcode::Insert:
          case Opcode::Append:
            if (U.OpIdx == 0)
              Writes.push_back(User);
            else
              Observed = true; // Stored as a key/value of something else.
            break;
          case Opcode::Remove:
          case Opcode::Clear:
          case Opcode::Reserve:
          case Opcode::Yield:
          case Opcode::If:
          case Opcode::Select:
            break; // Neither a write nor an observation (aliases are
                   // separate refs with their own uses).
          default:
            Observed = true; // Conservative for unmodeled uses.
            break;
          }
        }
      }
    }
    if (Observed || Writes.empty())
      continue;
    for (Instruction *W : Writes)
      DE.report(Severity::Warning, "dead-write",
                std::string("'") + opcodeName(W->op()) + "' into " +
                    Class.front()->describe() +
                    " is never observed by any read, fold or for-each",
                W);
  }
}

//===----------------------------------------------------------------------===//
// directive-lint
//===----------------------------------------------------------------------===//

/// The collection kind a selection applies to.
static Type::Kind selectionKind(Selection Sel) {
  switch (Sel) {
  case Selection::Array:
    return Type::Kind::Seq;
  case Selection::HashSet:
  case Selection::FlatSet:
  case Selection::SwissSet:
  case Selection::BitSet:
  case Selection::SparseBitSet:
    return Type::Kind::Set;
  case Selection::HashMap:
  case Selection::SwissMap:
  case Selection::BitMap:
    return Type::Kind::Map;
  case Selection::Empty:
    break;
  }
  return Type::Kind::Void;
}

void ade::analysis::checkDirectives(core::ModuleAnalysis &MA,
                                    DiagnosticEngine &DE) {
  struct NewSite {
    Instruction *I;
    size_t Class;
    const Directive *Dir; // Null when the New carries no directive.
  };
  std::vector<NewSite> Sites;
  std::map<std::string, std::set<size_t>> AllocClassesByName;
  for (const auto &F : MA.module().functions())
    if (!F->isExternal())
      forEachInst(F->body(), [&](Instruction *I) {
        if (I->op() != Opcode::New)
          return;
        core::RootInfo *Root = MA.rootOf(I->result(0));
        if (!Root)
          return;
        size_t C = MA.aliasClassOf(Root);
        Sites.push_back({I, C, I->directive()});
        AllocClassesByName[I->result(0)->name()].insert(C);
      });

  // Per-class directive composition, in program order.
  struct ClassState {
    Instruction *Force = nullptr, *Forbid = nullptr;
    Instruction *NoShare = nullptr, *Group = nullptr;
  };
  std::map<size_t, ClassState> States;
  for (const NewSite &Site : Sites) {
    if (!Site.Dir)
      continue;
    const Directive &D = *Site.Dir;
    ClassState &CS = States[Site.Class];
    if (D.EnumerateMode == Directive::Enumerate::Force && !CS.Force)
      CS.Force = Site.I;
    if (D.EnumerateMode == Directive::Enumerate::Forbid && !CS.Forbid)
      CS.Forbid = Site.I;
    if (D.NoShare && !CS.NoShare)
      CS.NoShare = Site.I;
    if (!D.ShareGroup.empty() && !CS.Group)
      CS.Group = Site.I;
  }
  for (const auto &[C, CS] : States) {
    (void)C;
    if (CS.Force && CS.Forbid)
      DE.report(Severity::Error, "directive-lint",
                "conflicting directives on aliasing allocations: "
                "'enumerate' and 'noenumerate' apply to the same "
                "collection",
                CS.Force->parent()->indexOf(CS.Force) <
                        CS.Forbid->parent()->indexOf(CS.Forbid) &&
                        CS.Force->parentFunction() ==
                            CS.Forbid->parentFunction()
                    ? CS.Forbid
                    : CS.Force);
    if (CS.NoShare && CS.Group)
      DE.report(Severity::Error, "directive-lint",
                "'noshare' conflicts with 'share group(\"" +
                    CS.Group->directive()->ShareGroup +
                    "\")' on the same collection",
                CS.Group);
  }

  // Per-site checks.
  std::map<std::string, NewSite> GroupFirst;
  for (const NewSite &Site : Sites) {
    if (!Site.Dir)
      continue;
    const Directive &D = *Site.Dir;
    Type *CollTy = Site.I->result(0)->type();

    if (D.Select != Selection::Empty &&
        selectionKind(D.Select) != CollTy->kind())
      DE.report(Severity::Error, "directive-lint",
                std::string("'select(") + selectionName(D.Select) +
                    ")' is not applicable to " + CollTy->str(),
                Site.I);
    if (selectionRequiresEnumeration(D.Select) && States[Site.Class].Forbid)
      DE.report(Severity::Error, "directive-lint",
                std::string("'select(") + selectionName(D.Select) +
                    ")' requires enumerated keys, but enumeration is "
                    "forbidden by 'noenumerate'",
                Site.I);
    if (D.EnumerateMode == Directive::Enumerate::Force &&
        !CollTy->isAssociative())
      DE.report(Severity::Warning, "directive-lint",
                "'enumerate' has no effect on " + CollTy->str() +
                    ": only associative collections have keys to "
                    "enumerate",
                Site.I);

    for (const std::string &Name : D.NoShareWith) {
      auto It = AllocClassesByName.find(Name);
      if (It == AllocClassesByName.end())
        DE.report(Severity::Warning, "directive-lint",
                  "'noshare(%" + Name + ")' names no allocation in the "
                  "module",
                  Site.I);
      else if (It->second.count(Site.Class))
        DE.report(Severity::Error, "directive-lint",
                  "'noshare(%" + Name + ")' names an allocation aliasing "
                  "this one; aliases always share an enumeration",
                  Site.I);
    }

    if (!D.ShareGroup.empty()) {
      core::RootInfo *Root = MA.rootOf(Site.I->result(0));
      auto [It, Inserted] = GroupFirst.try_emplace(D.ShareGroup, Site);
      if (!Inserted && Root->keyType()) {
        core::RootInfo *FirstRoot = MA.rootOf(It->second.I->result(0));
        if (FirstRoot->keyType() &&
            FirstRoot->keyType() != Root->keyType())
          DE.report(Severity::Error, "directive-lint",
                    "share group \"" + D.ShareGroup +
                        "\" is unsatisfiable: key type " +
                        Root->keyType()->str() + " here, but " +
                        FirstRoot->keyType()->str() + " for '%" +
                        It->second.I->result(0)->name() +
                        "'; one enumeration cannot span both",
                    Site.I);
      }
      if (States[Site.Class].Forbid)
        DE.report(Severity::Error, "directive-lint",
                  "allocation in share group \"" + D.ShareGroup +
                      "\" is marked 'noenumerate', but shared "
                      "collections must be enumerated",
                  Site.I);
    }
  }
}

//===----------------------------------------------------------------------===//
// index-out-of-range
//===----------------------------------------------------------------------===//

void ade::analysis::checkIndexOutOfRange(AbsIntEngine &AI,
                                         DiagnosticEngine &DE) {
  core::ModuleAnalysis &MA = AI.analysis();
  for (const auto &F : MA.module().functions()) {
    if (F->isExternal())
      continue;
    forEachInst(F->body(), [&](Instruction *I) {
      if (I->op() != Opcode::Dec || I->numOperands() < 2)
        return;
      std::string Sym = enumSymbolOfValue(I->operand(0));
      if (Sym.empty())
        return;
      Interval Universe = AI.enumUniverse(Sym);
      if (!Universe.isFinite())
        return;
      Interval Idx = AI.rangeOf(I->operand(1));
      // Valid identifiers are [0, size) and size <= Universe.Hi, so an
      // identifier that is always >= Universe.Hi can never decode.
      if (Idx.Lo < Universe.Hi)
        return;
      DE.report(Severity::Warning, "index-out-of-range",
                "'dec' identifier is provably out of range: the index is "
                "at least " +
                    std::to_string(Idx.Lo) + ", but enumeration @" + Sym +
                    " holds at most " + std::to_string(Universe.Hi) +
                    " keys",
                I);
    });
  }
}

//===----------------------------------------------------------------------===//
// unbounded-growth
//===----------------------------------------------------------------------===//

void ade::analysis::checkUnboundedGrowth(AbsIntEngine &AI,
                                         DiagnosticEngine &DE) {
  core::ModuleAnalysis &MA = AI.analysis();
  for (const Instruction *Loop : AI.doWhiles()) {
    for (const LoopGrowth &G : AI.growthOf(Loop)) {
      // Guaranteed growth on every iteration of a loop with no static
      // trip bound, and nothing ever shrinks the collection: the
      // occupancy lattice ascends forever.
      if (G.PerTrip.Lo < 1 || G.MayRemove || G.MayClear || G.Fresh)
        continue;
      const Occupancy &Occ = AI.occupancyOf(G.Class);
      if (Occ.MayRemove || Occ.MayClear)
        continue; // Shrunk elsewhere; growth can stabilize.
      const auto &Class = MA.aliasClasses()[G.Class];
      DE.report(Severity::Warning, "unbounded-growth",
                "'dowhile' inserts into " + Class.front()->describe() +
                    " on every iteration and nothing ever removes or "
                    "clears it; its occupancy never stabilizes",
                Loop);
    }
  }
}

//===----------------------------------------------------------------------===//
// lost-collection
//===----------------------------------------------------------------------===//

void ade::analysis::checkLostCollections(AbsIntEngine &AI,
                                         DiagnosticEngine &DE) {
  core::ModuleAnalysis &MA = AI.analysis();
  const auto &Classes = MA.aliasClasses();
  for (size_t C = 0; C != Classes.size(); ++C) {
    // Same locality bar as dead-write: only collections nothing outside
    // the function can observe.
    bool Local = true;
    for (core::RootInfo *Root : Classes[C])
      Local &= Root->TheKind == core::RootInfo::Kind::Alloc &&
               !Root->Escapes;
    if (!Local || AI.aliasFactsOf(C).SpansCalls)
      continue;

    std::vector<Instruction *> Writes, Observations;
    bool Unmodeled = false;
    for (core::RootInfo *Root : Classes[C]) {
      for (Value *Ref : Root->Refs) {
        for (const Use &U : Ref->uses()) {
          Instruction *User = U.User;
          switch (User->op()) {
          case Opcode::Read:
          case Opcode::Has:
          case Opcode::Size:
          case Opcode::Pop:
          case Opcode::ForEach:
            if (U.OpIdx == 0)
              Observations.push_back(User);
            break;
          case Opcode::Union:
            if (U.OpIdx == 0)
              Writes.push_back(User);
            else
              Observations.push_back(User);
            break;
          case Opcode::Write:
          case Opcode::Insert:
          case Opcode::Append:
            if (U.OpIdx == 0)
              Writes.push_back(User);
            else
              Observations.push_back(User);
            break;
          case Opcode::Remove:
          case Opcode::Clear:
          case Opcode::Reserve:
          case Opcode::Yield:
          case Opcode::If:
          case Opcode::Select:
            break;
          default:
            Unmodeled = true;
            break;
          }
        }
      }
    }
    // With no observation at all this is dead-write's finding; with an
    // unmodeled use we cannot order observations reliably.
    if (Unmodeled || Writes.empty() || Observations.empty())
      continue;

    const Function *F = Writes.front()->parentFunction();

    // Pre-order positions plus subtree extents, so "is there an
    // observation after W" and "do W and an observation share a loop"
    // are position comparisons.
    std::map<const Instruction *, unsigned> Pos;
    std::map<const Instruction *, unsigned> End;
    unsigned Next = 0;
    struct Walker {
      std::map<const Instruction *, unsigned> &Pos, &End;
      unsigned &Next;
      void walk(const Region &R) {
        for (Instruction *I : R) {
          Pos[I] = Next++;
          for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
            walk(*I->region(Idx));
          End[I] = Next;
        }
      }
    } W{Pos, End, Next};
    W.walk(F->body());

    auto LoopRepeats = [&](const Instruction *Inst) {
      // Any observation inside an enclosing loop runs again on the next
      // iteration, after this write.
      for (const Region *R = Inst->parent(); R; ) {
        Instruction *P = R->parentInst();
        if (!P)
          break;
        if (P->op() == Opcode::ForEach || P->op() == Opcode::ForRange ||
            P->op() == Opcode::DoWhile)
          for (Instruction *O : Observations)
            if (Pos[O] >= Pos[P] && Pos[O] < End[P])
              return true;
        R = P->parent();
      }
      return false;
    };

    for (Instruction *Wr : Writes) {
      bool Observed = false;
      for (Instruction *O : Observations)
        Observed |= Pos[O] > Pos[Wr];
      if (Observed || LoopRepeats(Wr))
        continue;
      DE.report(Severity::Warning, "lost-collection",
                std::string("'") + opcodeName(Wr->op()) + "' into " +
                    Classes[C].front()->describe() +
                    " is lost: the collection is never observed again "
                    "after this point",
                Wr);
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

const std::vector<CheckerInfo> &ade::analysis::allCheckers() {
  static const std::vector<CheckerInfo> Checkers = {
      {"enum-consistency",
       "identifiers stay within the enumeration that produced them"},
      {"escape-soundness",
       "no enumerated collection escapes; enumeration directives on "
       "escaping collections"},
      {"definite-empty",
       "reads from collections that are empty on every path"},
      {"dead-write", "collection updates no read, fold or for-each "
                     "observes"},
      {"directive-lint",
       "conflicting or unsatisfiable '#pragma ade' directives"},
      {"index-out-of-range",
       "identifiers provably beyond the enumeration universe they decode "
       "through"},
      {"unbounded-growth",
       "do-while loops whose collection occupancy never stabilizes "
       "without a remove or clear"},
      {"lost-collection",
       "writes into a local collection that is never observed again"},
  };
  return Checkers;
}

bool ade::analysis::runLint(ir::Module &M, DiagnosticEngine &DE,
                            const std::vector<std::string> &Enabled,
                            std::string *UnknownChecker) {
  auto IsEnabled = [&](const char *Name) {
    if (Enabled.empty())
      return true;
    for (const std::string &E : Enabled)
      if (E == Name)
        return true;
    return false;
  };
  for (const std::string &E : Enabled) {
    bool Known = false;
    for (const CheckerInfo &CI : allCheckers())
      Known |= E == CI.Name;
    if (!Known) {
      if (UnknownChecker)
        *UnknownChecker = E;
      return false;
    }
  }
  core::ModuleAnalysis MA(M);
  if (IsEnabled("enum-consistency"))
    checkEnumConsistency(MA, DE);
  if (IsEnabled("escape-soundness"))
    checkEscapeSoundness(MA, DE);
  if (IsEnabled("definite-empty"))
    checkDefiniteEmpty(MA, DE);
  if (IsEnabled("dead-write"))
    checkDeadWrites(MA, DE);
  if (IsEnabled("directive-lint"))
    checkDirectives(MA, DE);
  if (IsEnabled("index-out-of-range") || IsEnabled("unbounded-growth") ||
      IsEnabled("lost-collection")) {
    AbsIntEngine AI(MA); // One engine run serves all three.
    if (IsEnabled("index-out-of-range"))
      checkIndexOutOfRange(AI, DE);
    if (IsEnabled("unbounded-growth"))
      checkUnboundedGrowth(AI, DE);
    if (IsEnabled("lost-collection"))
      checkLostCollections(AI, DE);
  }
  return true;
}

bool ade::analysis::auditEnumeration(ir::Module &M, DiagnosticEngine &DE) {
  core::ModuleAnalysis MA(M);
  checkEnumConsistency(MA, DE);
  checkEscapeSoundness(MA, DE);
  return DE.errorCount() == 0;
}
