//===- EvalOps.h - Shared scalar evaluation semantics -----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bit-level scalar semantics (binary arithmetic, negation, casts)
/// shared by the tree-walking interpreter and the bytecode VM. Both
/// engines must agree on every wrap, mask, sign-extension and
/// division-by-zero diagnostic — the differential fuzzing oracle compares
/// their results bit for bit — so the definitions live here once instead
/// of being duplicated per engine.
///
/// Trap reporting is engine-specific (each attributes the diagnostic to
/// its own notion of the current instruction), so the evaluators take a
/// `[[noreturn]]` callback invoked with the diagnostic message.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_INTERP_EVALOPS_H
#define ADE_INTERP_EVALOPS_H

#include "interp/Interpreter.h"
#include "ir/IR.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <cstdint>

namespace ade {
namespace interp {
namespace eval {

inline uint64_t maskToWidth(uint64_t V, unsigned Bits) {
  return Bits >= 64 ? V : (V & ((1ULL << Bits) - 1));
}

inline int64_t signExtend(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t SignBit = 1ULL << (Bits - 1);
  uint64_t Masked = V & ((1ULL << Bits) - 1);
  return static_cast<int64_t>((Masked ^ SignBit) - SignBit);
}

/// Evaluates a binary arithmetic/comparison opcode over the 64-bit encoded
/// operands \p A and \p B, typed by the operand type \p Ty. \p Trap is a
/// `[[noreturn]]` callable taking the diagnostic message for
/// division/remainder by zero.
template <typename TrapFn>
uint64_t evalBinary(ir::Opcode Op, const ir::Type *Ty, uint64_t A, uint64_t B,
                    TrapFn &&Trap) {
  using ir::Opcode;
  if (isa<ir::FloatType>(Ty)) {
    double X = bitsToDouble(A), Y = bitsToDouble(B);
    switch (Op) {
    case Opcode::Add:
      return doubleToBits(X + Y);
    case Opcode::Sub:
      return doubleToBits(X - Y);
    case Opcode::Mul:
      return doubleToBits(X * Y);
    case Opcode::Div:
      return doubleToBits(X / Y);
    case Opcode::Min:
      return doubleToBits(X < Y ? X : Y);
    case Opcode::Max:
      return doubleToBits(X > Y ? X : Y);
    case Opcode::CmpEq:
      return X == Y;
    case Opcode::CmpNe:
      return X != Y;
    case Opcode::CmpLt:
      return X < Y;
    case Opcode::CmpLe:
      return X <= Y;
    case Opcode::CmpGt:
      return X > Y;
    case Opcode::CmpGe:
      return X >= Y;
    default:
      reportFatalError("invalid float arithmetic operation");
    }
  }
  const auto *IT = dyn_cast<ir::IntType>(Ty);
  bool Signed = IT && IT->isSigned();
  unsigned Bits = IT ? IT->bits() : 64;
  if (Signed) {
    int64_t X = signExtend(A, Bits), Y = signExtend(B, Bits);
    auto Wrap = [&](int64_t V) {
      return maskToWidth(static_cast<uint64_t>(V), Bits);
    };
    switch (Op) {
    case Opcode::Add:
      return Wrap(X + Y);
    case Opcode::Sub:
      return Wrap(X - Y);
    case Opcode::Mul:
      return Wrap(X * Y);
    case Opcode::Div:
      if (Y == 0)
        Trap("integer division by zero");
      return Wrap(X / Y);
    case Opcode::Rem:
      if (Y == 0)
        Trap("integer remainder by zero");
      return Wrap(X % Y);
    case Opcode::And:
      return Wrap(X & Y);
    case Opcode::Or:
      return Wrap(X | Y);
    case Opcode::Xor:
      return Wrap(X ^ Y);
    case Opcode::Shl:
      return Wrap(X << (Y & 63));
    case Opcode::Shr:
      return Wrap(X >> (Y & 63));
    case Opcode::Min:
      return Wrap(X < Y ? X : Y);
    case Opcode::Max:
      return Wrap(X > Y ? X : Y);
    case Opcode::CmpEq:
      return X == Y;
    case Opcode::CmpNe:
      return X != Y;
    case Opcode::CmpLt:
      return X < Y;
    case Opcode::CmpLe:
      return X <= Y;
    case Opcode::CmpGt:
      return X > Y;
    case Opcode::CmpGe:
      return X >= Y;
    default:
      reportFatalError("invalid integer arithmetic operation");
    }
  }
  uint64_t X = A, Y = B;
  switch (Op) {
  case Opcode::Add:
    return maskToWidth(X + Y, Bits);
  case Opcode::Sub:
    return maskToWidth(X - Y, Bits);
  case Opcode::Mul:
    return maskToWidth(X * Y, Bits);
  case Opcode::Div:
    if (Y == 0)
      Trap("integer division by zero");
    return X / Y;
  case Opcode::Rem:
    if (Y == 0)
      Trap("integer remainder by zero");
    return X % Y;
  case Opcode::And:
    return X & Y;
  case Opcode::Or:
    return X | Y;
  case Opcode::Xor:
    return X ^ Y;
  case Opcode::Shl:
    return maskToWidth(X << (Y & 63), Bits);
  case Opcode::Shr:
    return X >> (Y & 63);
  case Opcode::Min:
    return X < Y ? X : Y;
  case Opcode::Max:
    return X > Y ? X : Y;
  case Opcode::CmpEq:
    return X == Y;
  case Opcode::CmpNe:
    return X != Y;
  case Opcode::CmpLt:
    return X < Y;
  case Opcode::CmpLe:
    return X <= Y;
  case Opcode::CmpGt:
    return X > Y;
  case Opcode::CmpGe:
    return X >= Y;
  default:
    reportFatalError("invalid integer arithmetic operation");
  }
}

inline uint64_t evalCast(const ir::Type *From, const ir::Type *To,
                         uint64_t V) {
  bool FromFloat = isa<ir::FloatType>(From);
  bool ToFloat = isa<ir::FloatType>(To);
  if (FromFloat && ToFloat)
    return V;
  if (FromFloat) {
    double D = bitsToDouble(V);
    const auto *IT = dyn_cast<ir::IntType>(To);
    if (IT && IT->isSigned())
      return maskToWidth(static_cast<uint64_t>(static_cast<int64_t>(D)),
                         IT->bits());
    return maskToWidth(static_cast<uint64_t>(D), IT ? IT->bits() : 64);
  }
  const auto *FromInt = dyn_cast<ir::IntType>(From);
  bool Signed = FromInt && FromInt->isSigned();
  if (ToFloat) {
    if (Signed)
      return doubleToBits(static_cast<double>(signExtend(V, FromInt->bits())));
    return doubleToBits(static_cast<double>(V));
  }
  // Int/bool/ptr to int/bool/ptr: re-extend into the target width.
  const auto *ToInt = dyn_cast<ir::IntType>(To);
  unsigned Bits = ToInt ? ToInt->bits() : 64;
  if (Signed)
    return maskToWidth(static_cast<uint64_t>(signExtend(V, FromInt->bits())),
                       Bits);
  return maskToWidth(V, Bits);
}

/// True when \p Ty evaluates on the unsigned 64-bit fast path (the index
/// and u64 types plus bool): binary ops on such operands need no
/// sign-extension and no result masking beyond what plain uint64_t
/// arithmetic provides. The bytecode VM specializes these.
inline bool isU64Fast(const ir::Type *Ty) {
  if (isa<ir::FloatType>(Ty))
    return false;
  const auto *IT = dyn_cast<ir::IntType>(Ty);
  if (!IT)
    return true; // Bool/pointer-like operands take the 64-bit unsigned path.
  return !IT->isSigned() && IT->bits() >= 64;
}

} // namespace eval
} // namespace interp
} // namespace ade

#endif // ADE_INTERP_EVALOPS_H
