//===- Profiler.cpp - Source-attributed interpreter profiler --------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "stats/Stats.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <string>

using namespace ade;
using namespace ade::interp;
using namespace ade::ir;
using namespace ade::runtime;

static const char *kindName(RtKind K) {
  switch (K) {
  case RtKind::Seq:
    return "seq";
  case RtKind::Set:
    return "set";
  case RtKind::Map:
    return "map";
  }
  return "?";
}

Profiler::SiteRecord &Profiler::siteFor(const Instruction &I) {
  auto [It, Inserted] = Sites.try_emplace(&I);
  if (Inserted) {
    It->second = std::make_unique<SiteRecord>();
    It->second->Site = &I;
    It->second->Op = I.op();
    It->second->Loc = I.loc();
    if (const Function *F = I.parentFunction())
      It->second->Function = F->name();
  }
  return *It->second;
}

Profiler::CollectionRecord &Profiler::collectionFor(const RtCollection *C) {
  auto [It, Inserted] = Colls.try_emplace(C);
  if (Inserted) {
    It->second = std::make_unique<CollectionRecord>();
    CollectionRecord &R = *It->second;
    R.Id = CollOrder.size();
    R.Kind = C->kind();
    R.Impl = C->impl();
    R.Label = "<external>";
    CollOrder.push_back(C);
  }
  return *It->second;
}

void Profiler::registerCollection(const RtCollection *C,
                                  const Instruction *Site,
                                  std::string Label) {
  CollectionRecord &R = collectionFor(C);
  R.AllocSite = Site;
  if (Site) {
    R.Label.clear();
    R.Loc = Site->loc();
    if (const Function *F = Site->parentFunction())
      R.Function = F->name();
  } else {
    R.Label = std::move(Label);
  }
}

void Profiler::recordOp(const Instruction &I, OpCategory Cat, bool IsDense,
                        uint64_t N, const RtCollection *C) {
  SiteRecord &S = siteFor(I);
  S.Total += N;
  (IsDense ? S.Dense : S.Sparse) += N;
  S.ByCategory[static_cast<unsigned>(Cat)] += N;
  if (!C)
    return;
  CollectionRecord &R = collectionFor(C);
  R.Ops += N;
  (IsDense ? R.Dense : R.Sparse) += N;
  R.ByCategory[static_cast<unsigned>(Cat)] += N;
  R.PeakElements = std::max(R.PeakElements, C->size());
  R.PeakBytes = std::max<uint64_t>(R.PeakBytes, C->memoryBytes());
  ProbeCounters PC = C->probeCounters();
  R.Probes = PC.Probes;
  R.Rehashes = PC.Rehashes;
}

std::vector<const Profiler::SiteRecord *> Profiler::hotSites() const {
  std::vector<const SiteRecord *> Result;
  Result.reserve(Sites.size());
  for (const auto &[I, R] : Sites)
    Result.push_back(R.get());
  std::sort(Result.begin(), Result.end(),
            [](const SiteRecord *A, const SiteRecord *B) {
              if (A->Total != B->Total)
                return A->Total > B->Total;
              if (A->Loc.Line != B->Loc.Line)
                return A->Loc.Line < B->Loc.Line;
              return A->Loc.Col < B->Loc.Col;
            });
  return Result;
}

std::vector<const Profiler::CollectionRecord *> Profiler::collections() const {
  std::vector<const CollectionRecord *> Result;
  Result.reserve(CollOrder.size());
  for (const RtCollection *C : CollOrder)
    Result.push_back(Colls.at(C).get());
  return Result;
}

const Profiler::CollectionRecord *
Profiler::recordFor(const RtCollection *C) const {
  auto It = Colls.find(C);
  return It == Colls.end() ? nullptr : It->second.get();
}

void Profiler::reset() {
  Sites.clear();
  Colls.clear();
  CollOrder.clear();
}

/// "file:line:col" for valid locations, "file:?" otherwise.
static std::string locString(std::string_view File, SrcLoc Loc) {
  std::string S(File);
  if (Loc.isValid())
    S += ":" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
  else
    S += ":?";
  return S;
}

/// Dominant category of a count vector, for the one-line table summary.
static OpCategory dominantCategory(const uint64_t (&ByCategory)[Profiler::NumCats]) {
  unsigned Best = 0;
  for (unsigned I = 1; I != Profiler::NumCats; ++I)
    if (ByCategory[I] > ByCategory[Best])
      Best = I;
  return static_cast<OpCategory>(Best);
}

void Profiler::printReport(RawOstream &OS, std::string_view File,
                           unsigned MaxSites) const {
  OS << "===-- hot sites --===\n";
  stats::Table SiteTable({"location", "function", "op", "count", "sparse",
                          "dense"});
  unsigned Emitted = 0;
  for (const SiteRecord *S : hotSites()) {
    if (Emitted++ == MaxSites)
      break;
    SiteTable.addRow({locString(File, S->Loc), S->Function,
                      opcodeName(S->Op), std::to_string(S->Total),
                      std::to_string(S->Sparse), std::to_string(S->Dense)});
  }
  SiteTable.print(OS);

  OS << "===-- collections --===\n";
  stats::Table CollTable({"id", "origin", "kind", "impl", "ops", "peak elems",
                          "peak bytes", "probes", "rehashes"});
  for (const CollectionRecord *R : collections()) {
    std::string Origin = R->AllocSite ? locString(File, R->Loc) : R->Label;
    CollTable.addRow({std::to_string(R->Id), Origin, kindName(R->Kind),
                      selectionName(R->Impl), std::to_string(R->Ops),
                      std::to_string(R->PeakElements),
                      std::to_string(R->PeakBytes), std::to_string(R->Probes),
                      std::to_string(R->Rehashes)});
  }
  CollTable.print(OS);
}

/// Appends {"category": count, ...} for the non-zero categories.
static void writeByCategory(json::Writer &W,
                            const uint64_t (&ByCategory)[Profiler::NumCats]) {
  W.beginObject(/*Inline=*/true);
  for (unsigned I = 0; I != Profiler::NumCats; ++I)
    if (ByCategory[I])
      W.key(opCategoryName(static_cast<OpCategory>(I))).value(ByCategory[I]);
  W.endObject();
}

void Profiler::writeHotSitesJson(json::Writer &W, std::string_view File) const {
  W.beginArray();
  for (const SiteRecord *S : hotSites()) {
    W.beginObject(/*Inline=*/true);
    W.member("file", File)
        .member("line", uint64_t(S->Loc.Line))
        .member("col", uint64_t(S->Loc.Col))
        .member("function", S->Function)
        .member("op", opcodeName(S->Op))
        .member("dominant",
                opCategoryName(dominantCategory(S->ByCategory)))
        .member("count", S->Total)
        .member("sparse", S->Sparse)
        .member("dense", S->Dense);
    W.key("byCategory");
    writeByCategory(W, S->ByCategory);
    W.endObject();
  }
  W.endArray();
}

void Profiler::writeCollectionsJson(json::Writer &W) const {
  W.beginArray();
  for (const CollectionRecord *R : collections()) {
    W.beginObject(/*Inline=*/true);
    W.member("id", R->Id);
    if (R->AllocSite) {
      W.member("function", R->Function)
          .member("line", uint64_t(R->Loc.Line))
          .member("col", uint64_t(R->Loc.Col));
    } else {
      W.member("origin", R->Label);
    }
    W.member("kind", kindName(R->Kind))
        .member("impl", selectionName(R->Impl))
        .member("ops", R->Ops)
        .member("sparse", R->Sparse)
        .member("dense", R->Dense)
        .member("peakElements", R->PeakElements)
        .member("peakBytes", R->PeakBytes)
        .member("probes", R->Probes)
        .member("rehashes", R->Rehashes);
    W.key("byCategory");
    writeByCategory(W, R->ByCategory);
    W.endObject();
  }
  W.endArray();
}
