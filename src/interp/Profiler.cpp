//===- Profiler.cpp - Source-attributed interpreter profiler --------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "stats/Stats.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace ade;
using namespace ade::interp;
using namespace ade::ir;
using namespace ade::runtime;

static const char *kindName(RtKind K) {
  switch (K) {
  case RtKind::Seq:
    return "seq";
  case RtKind::Set:
    return "set";
  case RtKind::Map:
    return "map";
  }
  return "?";
}

Profiler::SiteRecord &Profiler::siteFor(const Instruction &I) {
  auto [It, Inserted] = Sites.try_emplace(&I);
  if (Inserted) {
    It->second = std::make_unique<SiteRecord>();
    It->second->Site = &I;
    It->second->Op = I.op();
    It->second->Loc = I.loc();
    if (const Function *F = I.parentFunction())
      It->second->Function = F->name();
  }
  return *It->second;
}

Profiler::CollectionRecord &Profiler::collectionFor(const RtCollection *C) {
  auto [It, Inserted] = Colls.try_emplace(C);
  if (Inserted) {
    It->second = std::make_unique<CollectionRecord>();
    CollectionRecord &R = *It->second;
    R.Id = CollOrder.size();
    R.Kind = C->kind();
    R.Impl = C->impl();
    R.Label = "<external>";
    CollOrder.push_back(C);
  }
  return *It->second;
}

void Profiler::registerCollection(const RtCollection *C,
                                  const Instruction *Site,
                                  std::string Label) {
  CollectionRecord &R = collectionFor(C);
  R.AllocSite = Site;
  if (Site) {
    R.Label.clear();
    R.Loc = Site->loc();
    if (const Function *F = Site->parentFunction())
      R.Function = F->name();
  } else {
    R.Label = std::move(Label);
  }
}

void Profiler::recordOp(const Instruction &I, OpCategory Cat, bool IsDense,
                        uint64_t N, const RtCollection *C) {
  SiteRecord &S = siteFor(I);
  S.Total += N;
  (IsDense ? S.Dense : S.Sparse) += N;
  S.ByCategory[static_cast<unsigned>(Cat)] += N;
  if (!C)
    return;
  CollectionRecord &R = collectionFor(C);
  R.Ops += N;
  (IsDense ? R.Dense : R.Sparse) += N;
  R.ByCategory[static_cast<unsigned>(Cat)] += N;
  R.PeakElements = std::max(R.PeakElements, C->size());
  R.PeakBytes = std::max<uint64_t>(R.PeakBytes, C->memoryBytes());
  ProbeCounters PC = C->probeCounters();
  R.Probes = PC.Probes;
  R.Rehashes = PC.Rehashes;
}

std::vector<const Profiler::SiteRecord *> Profiler::hotSites() const {
  std::vector<const SiteRecord *> Result;
  Result.reserve(Sites.size());
  for (const auto &[I, R] : Sites)
    Result.push_back(R.get());
  std::sort(Result.begin(), Result.end(),
            [](const SiteRecord *A, const SiteRecord *B) {
              if (A->Total != B->Total)
                return A->Total > B->Total;
              if (A->Loc.Line != B->Loc.Line)
                return A->Loc.Line < B->Loc.Line;
              return A->Loc.Col < B->Loc.Col;
            });
  return Result;
}

std::vector<const Profiler::CollectionRecord *> Profiler::collections() const {
  std::vector<const CollectionRecord *> Result;
  Result.reserve(CollOrder.size());
  for (const RtCollection *C : CollOrder)
    Result.push_back(Colls.at(C).get());
  return Result;
}

const Profiler::CollectionRecord *
Profiler::recordFor(const RtCollection *C) const {
  auto It = Colls.find(C);
  return It == Colls.end() ? nullptr : It->second.get();
}

void Profiler::reset() {
  Sites.clear();
  Colls.clear();
  CollOrder.clear();
}

/// "file:line:col" for valid locations, "file:?" otherwise.
static std::string locString(std::string_view File, SrcLoc Loc) {
  std::string S(File);
  if (Loc.isValid())
    S += ":" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
  else
    S += ":?";
  return S;
}

/// Dominant category of a count vector, for the one-line table summary.
static OpCategory dominantCategory(const uint64_t (&ByCategory)[Profiler::NumCats]) {
  unsigned Best = 0;
  for (unsigned I = 1; I != Profiler::NumCats; ++I)
    if (ByCategory[I] > ByCategory[Best])
      Best = I;
  return static_cast<OpCategory>(Best);
}

void Profiler::printReport(RawOstream &OS, std::string_view File,
                           unsigned MaxSites) const {
  OS << "===-- hot sites --===\n";
  stats::Table SiteTable({"location", "function", "op", "count", "sparse",
                          "dense"});
  unsigned Emitted = 0;
  for (const SiteRecord *S : hotSites()) {
    if (Emitted++ == MaxSites)
      break;
    SiteTable.addRow({locString(File, S->Loc), S->Function,
                      opcodeName(S->Op), std::to_string(S->Total),
                      std::to_string(S->Sparse), std::to_string(S->Dense)});
  }
  SiteTable.print(OS);

  OS << "===-- collections --===\n";
  stats::Table CollTable({"id", "origin", "kind", "impl", "ops", "peak elems",
                          "peak bytes", "probes", "rehashes"});
  for (const CollectionRecord *R : collections()) {
    std::string Origin = R->AllocSite ? locString(File, R->Loc) : R->Label;
    CollTable.addRow({std::to_string(R->Id), Origin, kindName(R->Kind),
                      selectionName(R->Impl), std::to_string(R->Ops),
                      std::to_string(R->PeakElements),
                      std::to_string(R->PeakBytes), std::to_string(R->Probes),
                      std::to_string(R->Rehashes)});
  }
  CollTable.print(OS);
}

/// Appends {"category": count, ...} for the non-zero categories.
static void writeByCategory(json::Writer &W,
                            const uint64_t (&ByCategory)[Profiler::NumCats]) {
  W.beginObject(/*Inline=*/true);
  for (unsigned I = 0; I != Profiler::NumCats; ++I)
    if (ByCategory[I])
      W.key(opCategoryName(static_cast<OpCategory>(I))).value(ByCategory[I]);
  W.endObject();
}

void Profiler::writeHotSitesJson(json::Writer &W, std::string_view File) const {
  W.beginArray();
  for (const SiteRecord *S : hotSites()) {
    W.beginObject(/*Inline=*/true);
    W.member("file", File)
        .member("line", uint64_t(S->Loc.Line))
        .member("col", uint64_t(S->Loc.Col))
        .member("function", S->Function)
        .member("op", opcodeName(S->Op))
        .member("dominant",
                opCategoryName(dominantCategory(S->ByCategory)))
        .member("count", S->Total)
        .member("sparse", S->Sparse)
        .member("dense", S->Dense);
    W.key("byCategory");
    writeByCategory(W, S->ByCategory);
    W.endObject();
  }
  W.endArray();
}

void Profiler::writeCollectionsJson(json::Writer &W) const {
  W.beginArray();
  for (const CollectionRecord *R : collections()) {
    W.beginObject(/*Inline=*/true);
    W.member("id", R->Id);
    if (R->AllocSite) {
      W.member("function", R->Function)
          .member("line", uint64_t(R->Loc.Line))
          .member("col", uint64_t(R->Loc.Col));
    } else {
      W.member("origin", R->Label);
    }
    W.member("kind", kindName(R->Kind))
        .member("impl", selectionName(R->Impl))
        .member("ops", R->Ops)
        .member("sparse", R->Sparse)
        .member("dense", R->Dense)
        .member("peakElements", R->PeakElements)
        .member("peakBytes", R->PeakBytes)
        .member("probes", R->Probes)
        .member("rehashes", R->Rehashes);
    W.key("byCategory");
    writeByCategory(W, R->ByCategory);
    W.endObject();
  }
  W.endArray();
}

//===----------------------------------------------------------------------===//
// ProfileData
//===----------------------------------------------------------------------===//

static std::string locKey(SrcLoc Loc) {
  return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
}

static std::string siteKey(std::string_view Function, SrcLoc Loc) {
  return std::string(Function) + "@" + locKey(Loc);
}

/// Category index for a profile JSON byCategory key; NumCats if unknown.
static unsigned categoryIndex(std::string_view Name) {
  for (unsigned I = 0; I != Profiler::NumCats; ++I)
    if (Name == opCategoryName(static_cast<OpCategory>(I)))
      return I;
  return Profiler::NumCats;
}

ProfileData::SiteProfile &ProfileData::siteSlot(std::string_view Function,
                                                SrcLoc Loc) {
  auto [It, Inserted] = Sites.try_emplace(siteKey(Function, Loc));
  SiteProfile &S = It->second;
  if (Inserted) {
    S.Function = Function;
    S.Loc = Loc;
  }
  // std::map node addresses are stable, so the fallback index can alias
  // the primary entry.
  const SiteProfile *&ByLoc = SitesByLoc[locKey(Loc)];
  if (!ByLoc)
    ByLoc = &S;
  return S;
}

void ProfileData::addFromProfiler(const Profiler &P) {
  for (const Profiler::CollectionRecord *R : P.collections()) {
    SiteProfile *S;
    if (R->AllocSite && R->Loc.isValid()) {
      S = &siteSlot(R->Function, R->Loc);
    } else {
      auto [It, Inserted] = Labeled.try_emplace(R->Label);
      S = &It->second;
      if (Inserted)
        S->Label = R->Label;
    }
    S->Collections += 1;
    S->Ops += R->Ops;
    S->Sparse += R->Sparse;
    S->Dense += R->Dense;
    for (unsigned I = 0; I != Profiler::NumCats; ++I)
      S->ByCategory[I] += R->ByCategory[I];
    S->PeakElements = std::max(S->PeakElements, R->PeakElements);
    S->PeakBytes = std::max(S->PeakBytes, R->PeakBytes);
    S->Probes += R->Probes;
    S->Rehashes += R->Rehashes;
  }
  for (const Profiler::SiteRecord *R : P.hotSites()) {
    if (!R->Loc.isValid())
      continue;
    OpSites[siteKey(R->Function, R->Loc)] += R->Total;
    OpLocs[locKey(R->Loc)] += R->Total;
  }
}

bool ProfileData::parse(std::string_view Text, std::string *Error) {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  std::string ParseError;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &ParseError);
  if (!Doc)
    return Fail("invalid profile JSON: " + ParseError);
  if (!Doc->isObject())
    return Fail("profile JSON is not an object");
  const json::Value *Ver = Doc->find("schemaVersion");
  if (!Ver || !Ver->isNumber())
    return Fail("profile has no schemaVersion (was it written by "
                "`adec --run --profile`?)");
  if (Ver->asUint() != ProfileSchemaVersion)
    return Fail("unsupported profile schemaVersion " +
                std::to_string(Ver->asUint()) + " (expected " +
                std::to_string(ProfileSchemaVersion) + ")");

  auto U = [](const json::Value &Obj, std::string_view Key) -> uint64_t {
    const json::Value *V = Obj.find(Key);
    return V && V->isNumber() ? V->asUint() : 0;
  };
  auto Str = [](const json::Value &Obj,
                std::string_view Key) -> std::string {
    const json::Value *V = Obj.find(Key);
    return V && V->isString() ? V->asString() : std::string();
  };

  if (const json::Value *Colls = Doc->find("collections")) {
    if (!Colls->isArray())
      return Fail("profile member 'collections' is not an array");
    for (const json::Value &C : Colls->elements()) {
      if (!C.isObject())
        return Fail("profile collection record is not an object");
      SrcLoc Loc{unsigned(U(C, "line")), unsigned(U(C, "col"))};
      std::string Origin = Str(C, "origin");
      SiteProfile *S;
      if (Origin.empty() && Loc.isValid()) {
        S = &siteSlot(Str(C, "function"), Loc);
      } else {
        if (Origin.empty())
          Origin = "<external>";
        auto [It, Inserted] = Labeled.try_emplace(Origin);
        S = &It->second;
        if (Inserted)
          S->Label = Origin;
      }
      S->Collections += 1;
      S->Ops += U(C, "ops");
      S->Sparse += U(C, "sparse");
      S->Dense += U(C, "dense");
      S->PeakElements = std::max(S->PeakElements, U(C, "peakElements"));
      S->PeakBytes = std::max(S->PeakBytes, U(C, "peakBytes"));
      S->Probes += U(C, "probes");
      S->Rehashes += U(C, "rehashes");
      if (const json::Value *Cats = C.find("byCategory")) {
        if (!Cats->isObject())
          return Fail("profile member 'byCategory' is not an object");
        for (const auto &[Name, Count] : Cats->members()) {
          unsigned Idx = categoryIndex(Name);
          if (Idx != Profiler::NumCats && Count.isNumber())
            S->ByCategory[Idx] += Count.asUint();
        }
      }
    }
  }

  if (const json::Value *HotSites = Doc->find("hotSites")) {
    if (!HotSites->isArray())
      return Fail("profile member 'hotSites' is not an array");
    for (const json::Value &H : HotSites->elements()) {
      if (!H.isObject())
        return Fail("profile hot-site record is not an object");
      SrcLoc Loc{unsigned(U(H, "line")), unsigned(U(H, "col"))};
      if (!Loc.isValid())
        continue;
      uint64_t N = U(H, "count");
      OpSites[siteKey(Str(H, "function"), Loc)] += N;
      OpLocs[locKey(Loc)] += N;
    }
  }
  return true;
}

bool ProfileData::loadFromFile(const std::string &Path, std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parse(Text, Error);
}

const ProfileData::SiteProfile *
ProfileData::allocSite(std::string_view Function, SrcLoc Loc) const {
  auto It = Sites.find(siteKey(Function, Loc));
  if (It != Sites.end())
    return &It->second;
  auto LIt = SitesByLoc.find(locKey(Loc));
  return LIt == SitesByLoc.end() ? nullptr : LIt->second;
}

const ProfileData::SiteProfile *
ProfileData::labeledSite(std::string_view Label) const {
  auto It = Labeled.find(std::string(Label));
  return It == Labeled.end() ? nullptr : &It->second;
}

uint64_t ProfileData::opsAt(std::string_view Function, SrcLoc Loc) const {
  auto It = OpSites.find(siteKey(Function, Loc));
  if (It != OpSites.end())
    return It->second;
  auto LIt = OpLocs.find(locKey(Loc));
  return LIt == OpLocs.end() ? 0 : LIt->second;
}
