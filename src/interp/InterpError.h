//===- InterpError.h - Recoverable interpreter diagnostics ------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exception the interpreter throws for error conditions reachable
/// from (verified) user IR: undefined operations like a map read of a
/// missing key or division by zero, and the \c --max-* guard-rail budgets
/// that turn runaway programs into catchable diagnostics. Internal
/// invariant violations still go through \c reportFatalError — an
/// InterpError always means the *program* misbehaved, never the system.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_INTERP_INTERPERROR_H
#define ADE_INTERP_INTERPERROR_H

#include "ir/IR.h"

#include <exception>
#include <string>

namespace ade {
namespace interp {

/// Why the interpreter stopped.
enum class InterpErrorKind : uint8_t {
  /// An undefined operation in the executed program (missing key,
  /// division by zero, out-of-bounds access, ...).
  Undefined,
  /// The --max-steps instruction budget was exhausted.
  StepBudget,
  /// The --max-bytes collection-memory cap was exceeded.
  MemoryBudget,
  /// The --max-depth call-recursion bound was exceeded.
  DepthBudget,
  /// The wall-clock deadline (--max-wall-ms, or a serving-runtime
  /// per-request deadline/cancellation) expired at a cancellation point.
  Deadline,
};

/// A recoverable interpreter diagnostic with the offending site.
class InterpError : public std::exception {
public:
  InterpError(InterpErrorKind Kind, std::string Message, ir::SrcLoc Loc,
              std::string Function)
      : Kind(Kind), Message(std::move(Message)), Loc(Loc),
        Function(std::move(Function)) {
    Formatted = "runtime error: " + this->Message;
    if (!this->Function.empty())
      Formatted += " in @" + this->Function;
    if (Loc.isValid())
      Formatted += " at line " + std::to_string(Loc.Line) + ":" +
                   std::to_string(Loc.Col);
  }

  const char *what() const noexcept override { return Formatted.c_str(); }

  InterpErrorKind kind() const { return Kind; }
  const std::string &message() const { return Message; }
  /// Source position of the offending instruction (invalid for
  /// programmatically built IR).
  ir::SrcLoc loc() const { return Loc; }
  /// Name of the function being executed when the error fired.
  const std::string &function() const { return Function; }

private:
  InterpErrorKind Kind;
  std::string Message;
  ir::SrcLoc Loc;
  std::string Function;
  std::string Formatted;
};

} // namespace interp
} // namespace ade

#endif // ADE_INTERP_INTERPERROR_H
