//===- Profiler.h - Source-attributed interpreter profiler ------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in profiler for the interpreter. Where \c InterpStats aggregates
/// globally, the profiler attributes every dynamic collection operation to
/// (1) the IR instruction that issued it — carrying the source location the
/// lexer/parser threaded into the IR, so hot sites report real
/// file:line:col positions — and (2) the runtime collection it touched,
/// building per-collection lifetime records: operation mix, dense/sparse
/// ratio, peak element count, peak tracked bytes, and the probe/rehash
/// counters the hash tables expose through \c RtCollection::probeCounters.
///
/// The profiler is attached via \c InterpOptions::Prof; when it is null the
/// interpreter's hot paths execute exactly as before (a null-pointer test,
/// no per-site map lookups).
///
//===----------------------------------------------------------------------===//

#ifndef ADE_INTERP_PROFILER_H
#define ADE_INTERP_PROFILER_H

#include "ir/IR.h"
#include "runtime/RtCollection.h"
#include "runtime/Stats.h"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ade {

class RawOstream;
namespace json {
class Writer;
}

namespace interp {

/// Version stamp of the profile JSON document written by `adec --profile`
/// and read back by `adec --profile-use`. Bump on any incompatible change
/// to the hot-site / collection member layout; the reader rejects
/// documents whose stamp does not match.
constexpr uint64_t ProfileSchemaVersion = 1;

/// Attributes dynamic operation counts to IR sites and runtime collections.
class Profiler {
public:
  static constexpr unsigned NumCats = runtime::InterpStats::NumCats;

  /// Dynamic operation counts charged to one IR instruction. Opcode,
  /// location and function name are snapshotted at first charge, so the
  /// record stays valid after the module is destroyed (the bench harness
  /// reports after its module goes out of scope).
  struct SiteRecord {
    /// Identity only; never dereferenced by the reports.
    const ir::Instruction *Site = nullptr;
    ir::Opcode Op = ir::Opcode::Ret;
    ir::SrcLoc Loc;
    /// Name of the function containing the site.
    std::string Function;
    uint64_t Total = 0;
    uint64_t Sparse = 0;
    uint64_t Dense = 0;
    uint64_t ByCategory[NumCats] = {};
  };

  /// Lifetime record of one runtime collection.
  struct CollectionRecord {
    /// Registration order (stable across reports).
    uint64_t Id = 0;
    /// The `new` instruction that allocated it; null for host- or
    /// global-materialized collections (see Label). Identity only; the
    /// reports use the snapshotted Loc/Function.
    const ir::Instruction *AllocSite = nullptr;
    ir::SrcLoc Loc;
    /// "@name" for globals, "<host>" for harness-built inputs, empty when
    /// AllocSite identifies the origin.
    std::string Label;
    /// Function containing AllocSite (empty otherwise).
    std::string Function;
    runtime::RtKind Kind = runtime::RtKind::Seq;
    ir::Selection Impl = ir::Selection::Empty;
    uint64_t Ops = 0;
    uint64_t Sparse = 0;
    uint64_t Dense = 0;
    uint64_t ByCategory[NumCats] = {};
    uint64_t PeakElements = 0;
    uint64_t PeakBytes = 0;
    /// Latest cumulative hash-table counters (snapshot after each op, so
    /// they stay valid after the collection is freed).
    uint64_t Probes = 0;
    uint64_t Rehashes = 0;
  };

  /// Notes that collection \p C exists. \p Site is its allocating `new`
  /// instruction, or null with \p Label describing the origin.
  void registerCollection(const runtime::RtCollection *C,
                          const ir::Instruction *Site,
                          std::string Label = {});

  /// Charges \p N operations of category \p Cat issued by \p I against the
  /// site and (when \p C is non-null) against the collection's record.
  void recordOp(const ir::Instruction &I, runtime::OpCategory Cat,
                bool IsDense, uint64_t N, const runtime::RtCollection *C);

  /// All sites, hottest (largest Total) first; ties broken by location.
  std::vector<const SiteRecord *> hotSites() const;

  /// All collection records in registration order.
  std::vector<const CollectionRecord *> collections() const;

  /// The record for \p C, or null if the profiler never saw it.
  const CollectionRecord *
  recordFor(const runtime::RtCollection *C) const;

  size_t siteCount() const { return Sites.size(); }

  void reset();

  /// Renders the hot-site and per-collection tables as text.
  void printReport(RawOstream &OS, std::string_view File,
                   unsigned MaxSites = 10) const;

  /// Appends the hot-site array: one inline object per site with file,
  /// line, col, function, op, count, sparse/dense and category breakdown.
  void writeHotSitesJson(json::Writer &W, std::string_view File) const;

  /// Appends the per-collection array.
  void writeCollectionsJson(json::Writer &W) const;

private:
  SiteRecord &siteFor(const ir::Instruction &I);
  CollectionRecord &collectionFor(const runtime::RtCollection *C);

  /// unique_ptr elements keep record addresses stable across rehashes.
  std::unordered_map<const ir::Instruction *, std::unique_ptr<SiteRecord>>
      Sites;
  std::unordered_map<const runtime::RtCollection *,
                     std::unique_ptr<CollectionRecord>>
      Colls;
  std::vector<const runtime::RtCollection *> CollOrder;
};

/// Measured behavior of a prior run, keyed by source location, as consumed
/// by profile-guided collection selection (`adec --profile-use`). Loaded
/// from the versioned profile JSON `adec --run --profile=FILE` writes, or
/// aggregated directly from a live \c Profiler (bench harness).
///
/// Lifetime records are matched back to allocation sites by
/// (function, line, column); collections a site allocated repeatedly (in a
/// loop, or across collections aliased into one class) aggregate into one
/// \c SiteProfile. Hot-site operation counts are kept separately so the
/// planner can weight each translation site by its dynamic execution
/// count. Lookups fall back to (line, column) alone so records taken on
/// the original program still match ADE-cloned functions.
class ProfileData {
public:
  /// Aggregate lifetime profile of the collections allocated at one site.
  struct SiteProfile {
    /// Function containing the allocation (empty for labeled origins).
    std::string Function;
    ir::SrcLoc Loc;
    /// "@name" for globals, "<host>" for harness inputs; empty when the
    /// site is a `new` instruction.
    std::string Label;
    /// Number of lifetime records merged into this aggregate.
    uint64_t Collections = 0;
    uint64_t Ops = 0;
    uint64_t Sparse = 0;
    uint64_t Dense = 0;
    uint64_t ByCategory[Profiler::NumCats] = {};
    /// Maximum over the merged records.
    uint64_t PeakElements = 0;
    uint64_t PeakBytes = 0;
    /// Summed over the merged records.
    uint64_t Probes = 0;
    uint64_t Rehashes = 0;
  };

  /// Reads and parses the profile JSON at \p Path. On failure returns
  /// false and stores a message in \p Error.
  bool loadFromFile(const std::string &Path, std::string *Error);

  /// Parses a profile JSON document (the whole `adec --profile` output).
  /// Rejects missing or mismatched \c schemaVersion stamps.
  bool parse(std::string_view Text, std::string *Error);

  /// Aggregates \p P's records directly (no JSON round-trip); used by the
  /// bench harness's in-process profile-then-recompile loop.
  void addFromProfiler(const Profiler &P);

  /// The aggregate for the allocation site at (\p Function, \p Loc);
  /// falls back to matching \p Loc alone (cloned functions), then null.
  const SiteProfile *allocSite(std::string_view Function,
                               ir::SrcLoc Loc) const;

  /// The aggregate for a labeled origin ("@global", "<host>"), or null.
  const SiteProfile *labeledSite(std::string_view Label) const;

  /// Dynamic operations recorded at instruction site (\p Function, \p Loc)
  /// with the same clone fallback; 0 when the site was never executed.
  uint64_t opsAt(std::string_view Function, ir::SrcLoc Loc) const;

  size_t numAllocSites() const { return Sites.size() + Labeled.size(); }
  bool empty() const {
    return Sites.empty() && Labeled.empty() && OpSites.empty();
  }

private:
  SiteProfile &siteSlot(std::string_view Function, ir::SrcLoc Loc);

  /// Keyed by "function@line:col".
  std::map<std::string, SiteProfile> Sites;
  /// Keyed by label.
  std::map<std::string, SiteProfile> Labeled;
  /// Location-only fallback ("line:col" -> first matching site).
  std::map<std::string, const SiteProfile *> SitesByLoc;
  /// Dynamic op counts: "function@line:col" and "line:col" fallback.
  std::map<std::string, uint64_t> OpSites;
  std::map<std::string, uint64_t> OpLocs;
};

} // namespace interp
} // namespace ade

#endif // ADE_INTERP_PROFILER_H
