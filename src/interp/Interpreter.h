//===- Interpreter.h - IR execution engine ----------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR modules over the runtime collection library (our stand-in
/// for MEMOIR's native lowering; see DESIGN.md substitution 1). Values are
/// 64-bit encoded: integers/identifiers directly, floats by bit pattern of
/// a double, collections and enumerations as pointers into an arena owned
/// by the interpreter.
///
/// Besides producing results, the interpreter gathers the dynamic
/// statistics (InterpStats) behind Figure 4 and Table II and drives the
/// collection-memory accounting behind the memory figures.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_INTERP_INTERPRETER_H
#define ADE_INTERP_INTERPRETER_H

#include "ir/IR.h"
#include "runtime/RtCollection.h"
#include "runtime/Stats.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ade {
namespace runtime {
class Telemetry;
}
namespace interp {

class Profiler;

/// Cross-thread cooperative cancellation handle: a controller (the
/// serving runtime's admission layer, a watchdog, a test) sets \c Cancel
/// or an absolute steady-clock deadline, and the engines poll the cell at
/// cancellation points — every ~1k executed instructions — surfacing
/// expiry as a diagnosed \c InterpError (kind \c Deadline), never a
/// crash. One cell may be reused across calls: the engines only read it.
struct CancelCell {
  /// Set to request cooperative cancellation of the running call.
  std::atomic<bool> Cancel{false};
  /// Absolute deadline in steady-clock nanoseconds (see
  /// runtime::Telemetry::nowNanos); 0 = none. Combined with
  /// InterpOptions::MaxWallMs, the earlier of the two wins.
  std::atomic<uint64_t> DeadlineNs{0};
  /// Cancellation points executed against this cell (both engines bump
  /// it once per poll). Mutable because engines hold the cell const —
  /// they only *read* the control fields; this is pure observability,
  /// consumed by the serving runtime's engine-exec trace spans.
  mutable std::atomic<uint64_t> Polls{0};

  void reset() {
    Cancel.store(false, std::memory_order_relaxed);
    DeadlineNs.store(0, std::memory_order_relaxed);
    Polls.store(0, std::memory_order_relaxed);
  }
};

/// Configuration of one interpreter instance.
struct InterpOptions {
  runtime::RuntimeDefaults Defaults;
  /// Gather InterpStats (slightly slows execution; on for analyses, off
  /// for pure timing runs when desired).
  bool CollectStats = true;
  /// Optional source-attributed profiler (see Profiler.h). Null keeps the
  /// interpreter's hot paths free of per-site bookkeeping.
  Profiler *Prof = nullptr;
  /// Optional runtime telemetry sink (see runtime/Telemetry.h): samples
  /// 1-in-N collection ops into latency/probe histograms and journals
  /// lifecycle events. Null costs nothing; non-null costs one pointer
  /// test plus a tick-and-mask on the unsampled path.
  runtime::Telemetry *Tel = nullptr;
  /// Guard rails (see InterpError.h): exceeding a nonzero budget throws a
  /// recoverable InterpError instead of hanging or exhausting the host.
  /// Maximum executed instructions across the whole run (0 = unlimited).
  uint64_t MaxSteps = 0;
  /// Maximum bytes held by collections, checked at growth sites
  /// (0 = unlimited).
  uint64_t MaxBytes = 0;
  /// Maximum interpreted call depth. Bounded by default: each interpreted
  /// frame consumes native stack, so unbounded recursion would otherwise
  /// crash the host process instead of reporting a diagnostic
  /// (0 = unlimited, at your own risk).
  uint64_t MaxDepth = 4096;
  /// Wall-clock budget per top-level call in milliseconds (0 = none).
  /// Checked at cancellation points (every ~1k instructions), so a trip
  /// overshoots by at most that window; expiry throws an InterpError of
  /// kind Deadline with the current source location.
  uint64_t MaxWallMs = 0;
  /// Optional shared cancellation/deadline cell (see CancelCell). Null
  /// costs nothing; non-null adds the cancellation-point polling.
  const CancelCell *Cancel = nullptr;
};

/// Converts between the 64-bit encoded form and doubles.
inline double bitsToDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t doubleToBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

/// Executes functions of one module.
class Interpreter {
public:
  explicit Interpreter(const ir::Module &M, InterpOptions Opts = {});
  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;
  ~Interpreter();

  /// Calls \p F with 64-bit encoded arguments; returns the encoded result
  /// (0 for void functions). Throws interp::InterpError when the program
  /// performs an undefined operation or exceeds a guard-rail budget; the
  /// interpreter remains usable afterwards.
  uint64_t call(const ir::Function *F, const std::vector<uint64_t> &Args);

  /// Convenience: call by name. The function must exist.
  uint64_t callByName(const std::string &Name,
                      const std::vector<uint64_t> &Args);

  /// Zeroes the cumulative executed-step counter the MaxSteps guard
  /// rail charges against. The counter normally spans the instance's
  /// lifetime (one `adec --run` is one call); hosts that reuse an
  /// engine across independent requests — the serving runtime — reset
  /// it per call so MaxSteps is a deterministic per-request budget.
  void resetCallBudget();

  /// Allocates an arena-owned collection for \p Ty (host-side input
  /// construction). The returned pointer's bits are a valid argument
  /// value.
  runtime::RtCollection *newCollection(const ir::Type *Ty);

  /// Encodes a collection pointer as a value.
  static uint64_t collToBits(runtime::RtCollection *C) {
    return reinterpret_cast<uint64_t>(C);
  }
  static runtime::RtCollection *bitsToColl(uint64_t Bits) {
    return reinterpret_cast<runtime::RtCollection *>(Bits);
  }

  runtime::InterpStats &stats() { return Stats; }
  const runtime::InterpStats &stats() const { return Stats; }

  /// Sums the internal probe/rehash counters over every live collection
  /// the interpreter allocated (see RtCollection::probeCounters), so a
  /// single `adec --run` is inspectable without the full profiler.
  runtime::ProbeCounters probeTotals() const;

  /// Reads a global's current value (0 if never set). Enumeration globals
  /// are created lazily on first access.
  uint64_t globalValue(const std::string &Name);
  void setGlobalValue(const std::string &Name, uint64_t Value);

private:
  struct Impl;
  std::unique_ptr<Impl> TheImpl;
  runtime::InterpStats Stats;
};

} // namespace interp
} // namespace ade

#endif // ADE_INTERP_INTERPRETER_H
