//===- Interpreter.cpp - IR execution engine ------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "collections/MemoryTracker.h"
#include "interp/EvalOps.h"
#include "interp/InterpError.h"
#include "interp/Profiler.h"
#include "runtime/Telemetry.h"
#include "support/Casting.h"
#include "support/CrashHandler.h"
#include "support/ErrorHandling.h"
#include "support/Trace.h"

#include <cassert>
#include <type_traits>

using namespace ade;
using namespace ade::interp;
using namespace ade::ir;
using namespace ade::runtime;

namespace {

/// Precomputed frame-slot indices for one instruction: operand slots,
/// result slots, and the slots of its first region's block arguments
/// (loops). Indexed by Instruction::scratchId().
struct InstSlots {
  std::vector<uint32_t> Ops;
  std::vector<uint32_t> Res;
  std::vector<uint32_t> R0Args;
  std::vector<uint32_t> R1Args; // if-else second region (always empty args).
};

struct CompiledFunction {
  uint32_t NumSlots = 0;
  std::vector<uint32_t> ArgSlots;
  std::vector<InstSlots> Insts; // Indexed by scratch id.
};

enum class Flow : uint8_t { Next, Yield, Return };

struct Frame {
  std::vector<uint64_t> Slots;
  std::vector<uint64_t> YieldBuf;
  uint64_t RetVal = 0;
};

} // namespace

struct Interpreter::Impl {
  const Module &M;
  InterpOptions Opts;
  InterpStats *Stats = nullptr;
  /// Opt-in observers; null in the common case (see InterpOptions::Prof).
  Profiler *Prof = nullptr;
  TraceRecorder *Trace = nullptr;
  Telemetry *Tel = nullptr;
  /// 1-in-N op sampling state: sample when (++TelTick & TelMask) == 0.
  uint64_t TelTick = 0;
  uint64_t TelMask = 0;

  std::vector<std::unique_ptr<RtCollection>> CollArena;
  std::vector<std::unique_ptr<RtEnum>> EnumArena;
  std::unordered_map<std::string, uint64_t> Globals;
  std::unordered_map<const Function *, CompiledFunction> Compiled;

  /// Guard-rail accounting (see InterpOptions): executed instructions
  /// across the whole run and the current interpreted call depth.
  uint64_t Steps = 0;
  uint64_t Depth = 0;

  /// Wall-clock/cancellation state: enabled for the whole instance when
  /// the options carry a wall budget or a cancel cell; the absolute
  /// deadline of the current top-level call is armed at entry. Checks
  /// run at cancellation points — every 1024 instructions — so the
  /// unsampled path costs one predictable branch.
  bool WallChecks = false;
  uint64_t WallTick = 0;
  uint64_t OwnDeadlineNs = 0;

  Impl(const Module &M, InterpOptions Opts)
      : M(M), Opts(Opts), Prof(Opts.Prof), Trace(TraceRecorder::active()),
        Tel(Opts.Tel), TelMask(Opts.Tel ? Opts.Tel->sampleMask() : 0),
        WallChecks(Opts.MaxWallMs != 0 || Opts.Cancel != nullptr) {}

  /// Runs one collection operation through the telemetry sampler: on the
  /// unsampled path (1 - 1/N of ops) the cost over a plain call is one
  /// pointer test and a tick-and-mask; a sampled op additionally reads
  /// the probe counter and steady clock around the call.
  template <typename FnT>
  auto collOp(const RtCollection *C, OpCategory Cat, FnT Fn)
      -> decltype(Fn()) {
    if (!Tel || ((++TelTick) & TelMask)) [[likely]]
      return Fn();
    return collOpSampled(C, Cat, Fn);
  }

  /// The sampled (1/N) slow path. Kept out of line so the dispatch loop's
  /// register allocation and code layout pay only for the tick-and-mask.
  template <typename FnT>
  __attribute__((noinline)) auto
  collOpSampled(const RtCollection *C, OpCategory Cat, FnT &Fn)
      -> decltype(Fn()) {
    uint64_t ProbesBefore = C->probeCounters().Probes;
    uint64_t T0 = Telemetry::nowNanos();
    if constexpr (std::is_void_v<decltype(Fn())>) {
      Fn();
      uint64_t LatNs = Telemetry::nowNanos() - T0;
      Tel->recordSampledOp(C, Cat, LatNs,
                           C->probeCounters().Probes - ProbesBefore);
    } else {
      auto Result = Fn();
      uint64_t LatNs = Telemetry::nowNanos() - T0;
      Tel->recordSampledOp(C, Cat, LatNs,
                           C->probeCounters().Probes - ProbesBefore);
      return Result;
    }
  }

  /// Throws the recoverable diagnostic for an undefined operation at \p I.
  [[noreturn]] static void trap(InterpErrorKind Kind, const char *Msg,
                                const Instruction &I) {
    const Function *F = I.parentFunction();
    throw InterpError(Kind, Msg, I.loc(), F ? F->name() : std::string());
  }

  /// Arms the wall-clock deadline of one top-level call.
  void armWallClock() {
    OwnDeadlineNs =
        Opts.MaxWallMs
            ? Telemetry::nowNanos() + Opts.MaxWallMs * 1000000ull
            : 0;
  }

  /// The cancellation point: polls the cancel cell and the earlier of the
  /// per-call and cell deadlines. Out of line — it runs once per 1024
  /// instructions and reads the steady clock.
  __attribute__((noinline)) void checkWallClock(const Instruction &I) {
    if (Opts.Cancel)
      Opts.Cancel->Polls.fetch_add(1, std::memory_order_relaxed);
    if (Opts.Cancel && Opts.Cancel->Cancel.load(std::memory_order_relaxed)) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Wall, 0);
      trap(InterpErrorKind::Deadline, "request cancelled", I);
    }
    uint64_t Deadline = OwnDeadlineNs;
    bool FromBudget = Deadline != 0;
    if (Opts.Cancel) {
      uint64_t CellNs = Opts.Cancel->DeadlineNs.load(std::memory_order_relaxed);
      if (CellNs && (!Deadline || CellNs < Deadline)) {
        Deadline = CellNs;
        FromBudget = false;
      }
    }
    if (Deadline && Telemetry::nowNanos() > Deadline) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Wall, Opts.MaxWallMs);
      trap(InterpErrorKind::Deadline,
           FromBudget ? "wall-clock budget (--max-wall-ms) exceeded"
                      : "request deadline exceeded",
           I);
    }
  }

  /// Memory guard, checked at collection growth sites.
  void checkMemBudget(const Instruction &I) {
    if (Opts.MaxBytes &&
        MemoryTracker::instance().currentBytes() > Opts.MaxBytes) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Bytes, Opts.MaxBytes);
      trap(InterpErrorKind::MemoryBudget,
           "collection memory budget (--max-bytes) exceeded", I);
    }
  }

  //===--------------------------------------------------------------------===//
  // Compilation: frame-slot assignment
  //===--------------------------------------------------------------------===//

  const CompiledFunction &compile(const Function *F) {
    auto It = Compiled.find(F);
    if (It != Compiled.end())
      return It->second;
    CompiledFunction &CF = Compiled[F];
    std::unordered_map<const Value *, uint32_t> SlotOf;
    auto slotFor = [&](const Value *V) -> uint32_t {
      auto [SIt, Inserted] = SlotOf.try_emplace(V, CF.NumSlots);
      if (Inserted)
        ++CF.NumSlots;
      return SIt->second;
    };
    for (unsigned I = 0; I != F->numArgs(); ++I)
      CF.ArgSlots.push_back(slotFor(F->arg(I)));
    uint32_t NextId = 0;
    compileRegion(F->body(), CF, SlotOf, slotFor, NextId);
    return CF;
  }

  template <typename SlotFn>
  void compileRegion(const Region &R, CompiledFunction &CF,
                     std::unordered_map<const Value *, uint32_t> &SlotOf,
                     SlotFn &slotFor, uint32_t &NextId) {
    for (const Instruction *I : R) {
      I->setScratchId(NextId++);
      CF.Insts.emplace_back();
      // The vector may reallocate during nested compilation; fill after.
      InstSlots Slots;
      for (const Value *Op : I->operands())
        Slots.Ops.push_back(slotFor(Op));
      for (unsigned Idx = 0; Idx != I->numResults(); ++Idx)
        Slots.Res.push_back(slotFor(I->result(Idx)));
      if (I->numRegions() >= 1) {
        const Region *R0 = I->region(0);
        for (unsigned Idx = 0; Idx != R0->numArgs(); ++Idx)
          Slots.R0Args.push_back(slotFor(R0->arg(Idx)));
      }
      CF.Insts[I->scratchId()] = std::move(Slots);
      for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
        compileRegion(*I->region(Idx), CF, SlotOf, slotFor, NextId);
    }
  }

  //===--------------------------------------------------------------------===//
  // Value helpers
  //===--------------------------------------------------------------------===//

  static uint64_t maskToWidth(uint64_t V, unsigned Bits) {
    return eval::maskToWidth(V, Bits);
  }

  static int64_t signExtend(uint64_t V, unsigned Bits) {
    return eval::signExtend(V, Bits);
  }

  //===--------------------------------------------------------------------===//
  // Arithmetic (shared with the bytecode VM; see EvalOps.h)
  //===--------------------------------------------------------------------===//

  uint64_t evalBinary(Opcode Op, const Type *Ty, uint64_t A, uint64_t B,
                      const Instruction &I) {
    return eval::evalBinary(Op, Ty, A, B, [&](const char *Msg) {
      trap(InterpErrorKind::Undefined, Msg, I);
    });
  }

  uint64_t evalCast(const Type *From, const Type *To, uint64_t V) {
    return eval::evalCast(From, To, V);
  }

  //===--------------------------------------------------------------------===//
  // Runtime object helpers
  //===--------------------------------------------------------------------===//

  RtCollection *makeCollection(const Type *Ty,
                               const Instruction *Site = nullptr,
                               std::string Label = {}) {
    CollArena.push_back(createCollection(Ty, Opts.Defaults));
    RtCollection *C = CollArena.back().get();
    if (Prof)
      Prof->registerCollection(C, Site, Label);
    if (Tel)
      Tel->registerCollection(C, Site, std::move(Label));
    return C;
  }

  RtEnum *makeEnum() {
    EnumArena.push_back(std::make_unique<RtEnum>());
    return EnumArena.back().get();
  }

  static RtSet *asSet(uint64_t Bits) {
    auto *C = Interpreter::bitsToColl(Bits);
    if (!C || C->kind() != RtKind::Set)
      reportFatalError("expected a runtime set");
    return static_cast<RtSet *>(C);
  }

  static RtMap *asMap(uint64_t Bits) {
    auto *C = Interpreter::bitsToColl(Bits);
    if (!C || C->kind() != RtKind::Map)
      reportFatalError("expected a runtime map");
    return static_cast<RtMap *>(C);
  }

  static RtSeq *asSeq(uint64_t Bits) {
    auto *C = Interpreter::bitsToColl(Bits);
    if (!C || C->kind() != RtKind::Seq)
      reportFatalError("expected a runtime sequence");
    return static_cast<RtSeq *>(C);
  }

  static RtEnum *asEnum(uint64_t Bits) {
    if (!Bits)
      reportFatalError("null enumeration value");
    return reinterpret_cast<RtEnum *>(Bits);
  }

  uint64_t globalSlot(const std::string &Name) {
    auto It = Globals.find(Name);
    if (It != Globals.end() && It->second != 0)
      return It->second;
    // Lazily materialize enumeration and collection globals.
    const GlobalVariable *G = M.getGlobal(Name);
    if (!G)
      reportFatalError("access to unknown global");
    uint64_t V = 0;
    if (isa<EnumType>(G->Ty))
      V = reinterpret_cast<uint64_t>(makeEnum());
    else if (G->Ty->isCollection())
      V = Interpreter::collToBits(
          makeCollection(G->Ty, /*Site=*/nullptr, "@" + Name));
    Globals[Name] = V;
    return V;
  }

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  /// RAII bound on interpreted call depth. Each interpreted frame consumes
  /// native stack, so this rail also protects the host from stack overflow.
  struct DepthGuard {
    Impl &I;
    explicit DepthGuard(Impl &I, const Function *F) : I(I) {
      if (I.Opts.MaxDepth && I.Depth >= I.Opts.MaxDepth) {
        if (I.Tel)
          I.Tel->recordGuardRail(GuardRailKind::Depth, I.Opts.MaxDepth);
        throw InterpError(InterpErrorKind::DepthBudget,
                          "call depth budget (--max-depth) exceeded",
                          ir::SrcLoc{}, F->name());
      }
      ++I.Depth;
    }
    ~DepthGuard() { --I.Depth; }
  };

  uint64_t callFunction(const Function *F, const std::vector<uint64_t> &Args) {
    // External declarations model opaque code the compiler cannot analyze
    // (the SIII-F escape sources). At runtime they are inert: no effect,
    // zero result. This keeps escape-bearing programs executable in tests
    // and benchmarks.
    if (F->isExternal())
      return 0;
    assert(Args.size() == F->numArgs() && "argument count mismatch");
    if (WallChecks && Depth == 0)
      armWallClock();
    DepthGuard Guard(*this, F);
    CrashContext CC("interpreting", F->name());
    const CompiledFunction &CF = compile(F);
    Frame Fr;
    Fr.Slots.assign(CF.NumSlots, 0);
    for (size_t I = 0; I != Args.size(); ++I)
      Fr.Slots[CF.ArgSlots[I]] = Args[I];
    uint64_t TraceStart = Trace ? Trace->nowMicros() : 0;
    execRegion(F->body(), CF, Fr);
    if (Trace)
      Trace->addComplete(F->name(), "interp", TraceStart,
                         Trace->nowMicros() - TraceStart);
    return Fr.RetVal;
  }

  Flow execRegion(const Region &R, const CompiledFunction &CF, Frame &Fr) {
    for (const Instruction *I : R) {
      Flow Fl = execInst(*I, CF, Fr);
      if (Fl != Flow::Next)
        return Fl;
    }
    return Flow::Next;
  }

  Flow execInst(const Instruction &I, const CompiledFunction &CF, Frame &Fr) {
    // Translate runtime-collection errors (out-of-bounds, empty pop) into
    // source-located diagnostics. The try block is free until a throw.
    try {
      return execInstImpl(I, CF, Fr);
    } catch (const RtError &E) {
      trap(InterpErrorKind::Undefined, E.Message, I);
    }
  }

  Flow execInstImpl(const Instruction &I, const CompiledFunction &CF,
                    Frame &Fr) {
    const InstSlots &S = CF.Insts[I.scratchId()];
    auto In = [&](unsigned Idx) { return Fr.Slots[S.Ops[Idx]]; };
    auto Out = [&](unsigned Idx, uint64_t V) { Fr.Slots[S.Res[Idx]] = V; };
    if (Stats)
      ++Stats->InstructionsExecuted;
    if (Opts.MaxSteps && ++Steps > Opts.MaxSteps) {
      if (Tel)
        Tel->recordGuardRail(GuardRailKind::Steps, Opts.MaxSteps);
      trap(InterpErrorKind::StepBudget,
           "instruction budget (--max-steps) exceeded", I);
    }
    if (WallChecks && ((++WallTick & 1023) == 0))
      checkWallClock(I);
    switch (I.op()) {
    case Opcode::ConstInt: {
      const auto *IT = dyn_cast<IntType>(I.result()->type());
      uint64_t Raw = static_cast<uint64_t>(I.intAttr());
      Out(0, IT ? maskToWidth(Raw, IT->bits()) : Raw);
      return Flow::Next;
    }
    case Opcode::ConstFloat:
      Out(0, doubleToBits(I.fpAttr()));
      return Flow::Next;
    case Opcode::ConstBool:
      Out(0, I.intAttr() ? 1 : 0);
      return Flow::Next;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      Out(0, evalBinary(I.op(), I.operand(0)->type(), In(0), In(1), I));
      return Flow::Next;
    case Opcode::Neg: {
      const Type *Ty = I.operand(0)->type();
      if (isa<FloatType>(Ty))
        Out(0, doubleToBits(-bitsToDouble(In(0))));
      else {
        const auto *IT = cast<IntType>(Ty);
        Out(0, maskToWidth(0 - In(0), IT->bits()));
      }
      return Flow::Next;
    }
    case Opcode::Not: {
      const Type *Ty = I.operand(0)->type();
      if (Ty->isBool())
        Out(0, In(0) ? 0 : 1);
      else {
        const auto *IT = cast<IntType>(Ty);
        Out(0, maskToWidth(~In(0), IT->bits()));
      }
      return Flow::Next;
    }
    case Opcode::Select:
      Out(0, In(0) ? In(1) : In(2));
      return Flow::Next;
    case Opcode::Cast:
      Out(0, evalCast(I.operand(0)->type(), I.result()->type(), In(0)));
      return Flow::Next;
    case Opcode::New:
      Out(0, Interpreter::collToBits(makeCollection(I.result()->type(), &I)));
      checkMemBudget(I);
      return Flow::Next;
    case Opcode::Read: {
      if (isa<SeqType>(I.operand(0)->type())) {
        Out(0, asSeq(In(0))->get(In(1)));
        return Flow::Next;
      }
      RtMap *Map = asMap(In(0));
      bool Found = false;
      uint64_t V = collOp(Map, OpCategory::Read,
                          [&] { return Map->get(In(1), Found); });
      if (Stats)
        Stats->record(OpCategory::Read, Map->isDense());
      if (Prof)
        Prof->recordOp(I, OpCategory::Read, Map->isDense(), 1, Map);
      if (!Found)
        trap(InterpErrorKind::Undefined, "map read of a missing key", I);
      Out(0, V);
      return Flow::Next;
    }
    case Opcode::Write: {
      if (isa<SeqType>(I.operand(0)->type())) {
        asSeq(In(0))->set(In(1), In(2));
        return Flow::Next;
      }
      RtMap *Map = asMap(In(0));
      collOp(Map, OpCategory::Write, [&] { Map->set(In(1), In(2)); });
      checkMemBudget(I);
      if (Stats)
        Stats->record(OpCategory::Write, Map->isDense());
      if (Prof)
        Prof->recordOp(I, OpCategory::Write, Map->isDense(), 1, Map);
      return Flow::Next;
    }
    case Opcode::Insert: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      collOp(C, OpCategory::Insert, [&] {
        if (C->kind() == RtKind::Set)
          static_cast<RtSet *>(C)->insert(In(1));
        else if (C->kind() == RtKind::Map)
          static_cast<RtMap *>(C)->insertDefault(In(1), 0);
        else
          reportFatalError("insert on a sequence");
      });
      checkMemBudget(I);
      if (Stats)
        Stats->record(OpCategory::Insert, C->isDense());
      if (Prof)
        Prof->recordOp(I, OpCategory::Insert, C->isDense(), 1, C);
      return Flow::Next;
    }
    case Opcode::Remove: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      collOp(C, OpCategory::Remove, [&] {
        if (C->kind() == RtKind::Set)
          static_cast<RtSet *>(C)->remove(In(1));
        else if (C->kind() == RtKind::Map)
          static_cast<RtMap *>(C)->remove(In(1));
        else
          reportFatalError("remove on a sequence");
      });
      if (Stats)
        Stats->record(OpCategory::Remove, C->isDense());
      if (Prof)
        Prof->recordOp(I, OpCategory::Remove, C->isDense(), 1, C);
      return Flow::Next;
    }
    case Opcode::Has: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      bool Result = collOp(C, OpCategory::Has, [&]() -> bool {
        if (C->kind() == RtKind::Set)
          return static_cast<RtSet *>(C)->has(In(1));
        if (C->kind() == RtKind::Map)
          return static_cast<RtMap *>(C)->has(In(1));
        reportFatalError("has on a sequence");
      });
      if (Stats)
        Stats->record(OpCategory::Has, C->isDense());
      if (Prof)
        Prof->recordOp(I, OpCategory::Has, C->isDense(), 1, C);
      Out(0, Result);
      return Flow::Next;
    }
    case Opcode::Size: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      if (C->kind() != RtKind::Seq) {
        if (Stats)
          Stats->record(OpCategory::Size, C->isDense());
        if (Prof)
          Prof->recordOp(I, OpCategory::Size, C->isDense(), 1, C);
      }
      Out(0, C->size());
      return Flow::Next;
    }
    case Opcode::Clear: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      if (C->kind() != RtKind::Seq) {
        if (Stats)
          Stats->record(OpCategory::Clear, C->isDense());
        if (Prof)
          Prof->recordOp(I, OpCategory::Clear, C->isDense(), 1, C);
      }
      // Clears are rare and individually meaningful: always journaled,
      // independent of the 1-in-N sampler.
      if (Tel)
        Tel->recordClear(C, C->size());
      C->clear();
      return Flow::Next;
    }
    case Opcode::Reserve: {
      RtCollection *C = Interpreter::bitsToColl(In(0));
      if (C->kind() != RtKind::Seq) {
        if (Stats)
          Stats->record(OpCategory::Reserve, C->isDense());
        if (Prof)
          Prof->recordOp(I, OpCategory::Reserve, C->isDense(), 1, C);
      }
      // Reserves are rare pre-sizing hints: always journaled.
      if (Tel)
        Tel->recordReserve(C, In(1));
      C->reserve(In(1));
      checkMemBudget(I);
      return Flow::Next;
    }
    case Opcode::Append:
      asSeq(In(0))->append(In(1));
      checkMemBudget(I);
      return Flow::Next;
    case Opcode::Pop:
      Out(0, asSeq(In(0))->pop());
      return Flow::Next;
    case Opcode::Union: {
      RtSet *Dst = asSet(In(0));
      const RtSet *Src = asSet(In(1));
      uint64_t Merged = std::max<uint64_t>(1, Src->size());
      if (Stats)
        Stats->record(OpCategory::Union, Dst->isDense(), Merged);
      if (Prof)
        Prof->recordOp(I, OpCategory::Union, Dst->isDense(), Merged, Dst);
      collOp(Dst, OpCategory::Union, [&] { Dst->unionWith(*Src); });
      checkMemBudget(I);
      return Flow::Next;
    }
    case Opcode::Enc: {
      RtEnum *E = asEnum(In(0));
      if (Stats)
        Stats->record(OpCategory::Enc, /*IsDense=*/false);
      if (Prof)
        Prof->recordOp(I, OpCategory::Enc, /*IsDense=*/false, 1, nullptr);
      // A value outside the enumeration encodes to the next (never yet
      // issued) identifier: membership tests against enumerated
      // collections then correctly fail (Listing 2 probes `has` with the
      // encoding of a possibly-new value).
      Out(0, E->contains(In(1)) ? E->encode(In(1)) : E->size());
      return Flow::Next;
    }
    case Opcode::Dec: {
      RtEnum *E = asEnum(In(0));
      if (Stats)
        Stats->record(OpCategory::Dec, /*IsDense=*/true);
      if (Prof)
        Prof->recordOp(I, OpCategory::Dec, /*IsDense=*/true, 1, nullptr);
      if (In(1) >= E->size())
        trap(InterpErrorKind::Undefined, "dec of an out-of-range identifier",
             I);
      Out(0, E->decode(In(1)));
      return Flow::Next;
    }
    case Opcode::EnumAdd: {
      RtEnum *E = asEnum(In(0));
      if (Stats)
        Stats->record(OpCategory::EnumAdd, /*IsDense=*/false);
      if (Prof)
        Prof->recordOp(I, OpCategory::EnumAdd, /*IsDense=*/false, 1, nullptr);
      Out(0, E->add(In(1)).first);
      checkMemBudget(I);
      return Flow::Next;
    }
    case Opcode::GlobalGet:
      Out(0, globalSlot(I.symbol()));
      return Flow::Next;
    case Opcode::GlobalSet:
      Globals[I.symbol()] = In(0);
      return Flow::Next;
    case Opcode::If: {
      const Region &Sel = *I.region(In(0) ? 0 : 1);
      Flow Fl = execRegion(Sel, CF, Fr);
      if (Fl == Flow::Return)
        return Fl;
      assert(Fl == Flow::Yield && "if region must yield");
      for (unsigned Idx = 0; Idx != I.numResults(); ++Idx)
        Out(Idx, Fr.YieldBuf[Idx]);
      return Flow::Next;
    }
    case Opcode::ForEach:
      return execForEach(I, S, CF, Fr);
    case Opcode::ForRange: {
      uint64_t Lo = In(0), Hi = In(1);
      unsigned Carried = I.numOperands() - 2;
      std::vector<uint64_t> Vals(Carried);
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Vals[Idx] = In(2 + Idx);
      const Region &Body = *I.region(0);
      for (uint64_t Iv = Lo; Iv < Hi; ++Iv) {
        Fr.Slots[S.R0Args[0]] = Iv;
        for (unsigned Idx = 0; Idx != Carried; ++Idx)
          Fr.Slots[S.R0Args[1 + Idx]] = Vals[Idx];
        Flow Fl = execRegion(Body, CF, Fr);
        if (Fl == Flow::Return)
          return Fl;
        for (unsigned Idx = 0; Idx != Carried; ++Idx)
          Vals[Idx] = Fr.YieldBuf[Idx];
      }
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Out(Idx, Vals[Idx]);
      return Flow::Next;
    }
    case Opcode::DoWhile: {
      unsigned Carried = I.numOperands();
      std::vector<uint64_t> Vals(Carried);
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Vals[Idx] = In(Idx);
      const Region &Body = *I.region(0);
      while (true) {
        for (unsigned Idx = 0; Idx != Carried; ++Idx)
          Fr.Slots[S.R0Args[Idx]] = Vals[Idx];
        Flow Fl = execRegion(Body, CF, Fr);
        if (Fl == Flow::Return)
          return Fl;
        bool Continue = Fr.YieldBuf[0] != 0;
        for (unsigned Idx = 0; Idx != Carried; ++Idx)
          Vals[Idx] = Fr.YieldBuf[1 + Idx];
        if (!Continue)
          break;
      }
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Out(Idx, Vals[Idx]);
      return Flow::Next;
    }
    case Opcode::Yield: {
      Fr.YieldBuf.resize(S.Ops.size());
      for (unsigned Idx = 0; Idx != S.Ops.size(); ++Idx)
        Fr.YieldBuf[Idx] = In(Idx);
      return Flow::Yield;
    }
    case Opcode::Call: {
      const Function *Callee = M.getFunction(I.symbol());
      if (!Callee)
        reportFatalError("call to an unknown function");
      std::vector<uint64_t> Args(I.numOperands());
      for (unsigned Idx = 0; Idx != I.numOperands(); ++Idx)
        Args[Idx] = In(Idx);
      uint64_t Result = callFunction(Callee, Args);
      if (I.numResults())
        Out(0, Result);
      return Flow::Next;
    }
    case Opcode::Ret:
      Fr.RetVal = I.numOperands() ? In(0) : 0;
      return Flow::Return;
    }
    ade_unreachable("unknown opcode in interpreter");
  }

  Flow execForEach(const Instruction &I, const InstSlots &S,
                   const CompiledFunction &CF, Frame &Fr) {
    uint64_t CollBits = Fr.Slots[S.Ops[0]];
    RtCollection *C = Interpreter::bitsToColl(CollBits);
    unsigned Carried = I.numOperands() - 1;
    unsigned KeyArgs = C->kind() == RtKind::Set ? 1 : 2;
    std::vector<uint64_t> Vals(Carried);
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      Vals[Idx] = Fr.Slots[S.Ops[1 + Idx]];
    // Snapshot the elements so body mutations don't invalidate iteration
    // (matching MEMOIR's for-each copy semantics for redefinable state).
    std::vector<std::pair<uint64_t, uint64_t>> Items;
    Items.reserve(C->size());
    switch (C->kind()) {
    case RtKind::Seq:
      static_cast<RtSeq *>(C)->forEach(
          [&](uint64_t K, uint64_t V) { Items.push_back({K, V}); });
      break;
    case RtKind::Set:
      static_cast<RtSet *>(C)->forEach(
          [&](uint64_t K) { Items.push_back({K, 0}); });
      break;
    case RtKind::Map:
      static_cast<RtMap *>(C)->forEach(
          [&](uint64_t K, uint64_t V) { Items.push_back({K, V}); });
      break;
    }
    if (C->kind() != RtKind::Seq) {
      if (Stats)
        Stats->record(OpCategory::Iterate, C->isDense(), Items.size());
      if (Prof)
        Prof->recordOp(I, OpCategory::Iterate, C->isDense(), Items.size(), C);
    }
    const Region &Body = *I.region(0);
    for (const auto &[Key, Value] : Items) {
      Fr.Slots[S.R0Args[0]] = Key;
      if (KeyArgs == 2)
        Fr.Slots[S.R0Args[1]] = Value;
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Fr.Slots[S.R0Args[KeyArgs + Idx]] = Vals[Idx];
      Flow Fl = execRegion(Body, CF, Fr);
      if (Fl == Flow::Return)
        return Fl;
      for (unsigned Idx = 0; Idx != Carried; ++Idx)
        Vals[Idx] = Fr.YieldBuf[Idx];
    }
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      Fr.Slots[S.Res[Idx]] = Vals[Idx];
    return Flow::Next;
  }
};

Interpreter::Interpreter(const Module &M, InterpOptions Opts)
    : TheImpl(std::make_unique<Impl>(M, Opts)) {
  if (Opts.CollectStats)
    TheImpl->Stats = &Stats;
}

Interpreter::~Interpreter() = default;

uint64_t Interpreter::call(const Function *F,
                           const std::vector<uint64_t> &Args) {
  return TheImpl->callFunction(F, Args);
}

uint64_t Interpreter::callByName(const std::string &Name,
                                 const std::vector<uint64_t> &Args) {
  const Function *F = TheImpl->M.getFunction(Name);
  if (!F)
    reportFatalError("callByName: unknown function");
  return TheImpl->callFunction(F, Args);
}

void Interpreter::resetCallBudget() { TheImpl->Steps = 0; }

RtCollection *Interpreter::newCollection(const Type *Ty) {
  return TheImpl->makeCollection(Ty);
}

ProbeCounters Interpreter::probeTotals() const {
  ProbeCounters Totals;
  for (const auto &C : TheImpl->CollArena) {
    ProbeCounters PC = C->probeCounters();
    Totals.Probes += PC.Probes;
    Totals.Rehashes += PC.Rehashes;
  }
  return Totals;
}

uint64_t Interpreter::globalValue(const std::string &Name) {
  return TheImpl->globalSlot(Name);
}

void Interpreter::setGlobalValue(const std::string &Name, uint64_t Value) {
  TheImpl->Globals[Name] = Value;
}
