//===- Harness.cpp - Benchmark execution harness --------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"

#include "core/Pipeline.h"
#include "core/RemarkEmitter.h"
#include "interp/Interpreter.h"
#include "interp/Profiler.h"
#include "parser/Parser.h"
#include "support/ErrorHandling.h"

#include <chrono>

using namespace ade;
using namespace ade::bench;
using namespace ade::interp;

const char *ade::bench::configName(Config C) {
  switch (C) {
  case Config::Memoir:
    return "memoir";
  case Config::Ade:
    return "ade";
  case Config::AdeNoRTE:
    return "ade-noredundant";
  case Config::AdeNoProp:
    return "ade-nopropagation";
  case Config::AdeNoShare:
    return "ade-nosharing";
  case Config::MemoirSwiss:
    return "memoir-abseil";
  case Config::AdeSwiss:
    return "ade-abseil";
  case Config::AdeSparse:
    return "ade-sparse";
  }
  ade_unreachable("unknown config");
}

RunResult ade::bench::runBenchmark(const BenchmarkSpec &B, Config C,
                                   const RunOptions &Options) {
  std::string Src = B.Source;
  if (B.Abbrev == "PTA" && !Options.PtaInnerPragma.empty())
    Src = ptaSource(Options.PtaInnerPragma);
  auto M = parser::parseModuleOrDie(Src);

  bool RunAde = true;
  core::PipelineConfig PC;
  PC.Profile = Options.ProfileUse;
  InterpOptions IO;
  IO.CollectStats = Options.CollectStats;
  IO.Prof = Options.Prof;
  IO.Tel = Options.Telemetry;
  Profiler RehashProf;
  if (Options.MeasureRehashes && !IO.Prof)
    IO.Prof = &RehashProf;
  switch (C) {
  case Config::Memoir:
    RunAde = false;
    break;
  case Config::Ade:
    break;
  case Config::AdeNoRTE:
    PC.EnableRTE = false;
    break;
  case Config::AdeNoProp:
    PC.EnablePropagation = false;
    break;
  case Config::AdeNoShare:
    PC.EnableSharing = false;
    break;
  case Config::MemoirSwiss:
    RunAde = false;
    IO.Defaults.SetImpl = ir::Selection::SwissSet;
    IO.Defaults.MapImpl = ir::Selection::SwissMap;
    break;
  case Config::AdeSwiss:
    IO.Defaults.SetImpl = ir::Selection::SwissSet;
    IO.Defaults.MapImpl = ir::Selection::SwissMap;
    break;
  case Config::AdeSparse:
    PC.Selection.EnumeratedSet = ir::Selection::SparseBitSet;
    break;
  }
  uint64_t SelectionChanges = 0, ReserveHints = 0;
  if (RunAde) {
    core::RemarkEmitter RemarkEng;
    PC.Remarks = &RemarkEng;
    core::runADE(*M, PC);
    for (const core::SelectionDecision &D :
         core::selectionDecisions(RemarkEng.stream())) {
      if (D.Final != D.Static)
        ++SelectionChanges;
      if (D.ReserveHint)
        ++ReserveHints;
    }
  }

  Workload W = B.MakeInput(Options.ScalePercent);

  MemoryTracker::instance().reset();
  vm::Engine Runner(Options.Engine, *M, IO);
  ir::Type *SeqTy =
      M->types().seqTy(M->types().intTy(64, /*Signed=*/false));
  auto FillSeq = [&](const std::vector<uint64_t> &Data) {
    auto *Seq = static_cast<runtime::RtSeq *>(Runner.newCollection(SeqTy));
    for (uint64_t V : Data)
      Seq->append(V);
    return vm::Engine::collToBits(Seq);
  };
  uint64_t A = FillSeq(W.A), Bv = FillSeq(W.B), Cv = FillSeq(W.C);

  constexpr size_t NumEventKinds = size_t(runtime::EventKind::NumKinds);
  uint64_t EventsBefore[NumEventKinds] = {};
  if (Options.Telemetry)
    for (size_t K = 0; K != NumEventKinds; ++K)
      EventsBefore[K] = Options.Telemetry->eventCount(runtime::EventKind(K));

  RunResult Result;
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  Runner.callByName("build", {A, Bv, Cv, W.P0, W.P1});
  auto T1 = Clock::now();
  // Dynamic operation statistics cover the region of interest only, the
  // framing of Figure 4 and Table II (initialization translations would
  // otherwise drown the kernel's access mix).
  Runner.stats().reset();
  Result.Checksum = Runner.callByName("kernel", {});
  auto T2 = Clock::now();
  Result.InitSeconds = std::chrono::duration<double>(T1 - T0).count();
  Result.RoiSeconds = std::chrono::duration<double>(T2 - T1).count();
  Result.PeakBytes = MemoryTracker::instance().peakBytes();
  Result.Stats = Runner.stats();
  Result.SelectionChanges = SelectionChanges;
  Result.ReserveHints = ReserveHints;
  if (IO.Prof)
    for (const Profiler::CollectionRecord *R : IO.Prof->collections())
      Result.Rehashes += R->Rehashes;
  if (Options.Telemetry)
    for (size_t K = 0; K != NumEventKinds; ++K)
      Result.Events[K] =
          Options.Telemetry->eventCount(runtime::EventKind(K)) -
          EventsBefore[K];
  return Result;
}
