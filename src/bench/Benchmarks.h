//===- Benchmarks.h - The 16 evaluation programs ----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of SIV: 15 Lonestar-'Analytics'-style programs plus
/// freqmine (PARSEC), written in the textual MEMOIR language against
/// abstract collection types — "code written by developers before heavy
/// manual optimization". Every program exposes the uniform entry points
///
/// \code
///   fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>,
///             %p0: u64, %p1: u64)          // initialization (not ROI)
///   fn @kernel() -> u64                    // region of interest; returns
///                                          // a deterministic checksum
/// \endcode
///
/// The checksum is identical across collection implementations and
/// ADE configurations (order-sensitive reductions iterate stable
/// sequences), which the test suite verifies differentially.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_BENCHMARKS_H
#define ADE_BENCH_BENCHMARKS_H

#include "bench/Workloads.h"

#include <functional>
#include <string>
#include <vector>

namespace ade {
namespace bench {

/// One benchmark: sources plus its input generator.
struct BenchmarkSpec {
  std::string Abbrev; // Paper abbreviation, e.g. "BFS".
  std::string Name;   // Human-readable description.
  std::string Source; // .memoir module with @build and @kernel.
  /// Builds the input at a size scale (100 = full evaluation size; tests
  /// use single digits).
  std::function<Workload(uint64_t ScalePercent)> MakeInput;
};

/// The full suite, in the paper's alphabetical order (Figure 4).
const std::vector<BenchmarkSpec> &allBenchmarks();

/// Finds a benchmark by abbreviation (case-sensitive), or null.
const BenchmarkSpec *findBenchmark(const std::string &Abbrev);

/// The PTA source with \p InnerPragma injected before the inner
/// points-to-set allocation sites (RQ4 performance engineering: e.g.
/// "#pragma ade noshare" or "#pragma ade noshare select(FlatSet)").
std::string ptaSource(const std::string &InnerPragma);

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_BENCHMARKS_H
