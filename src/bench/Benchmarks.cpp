//===- Benchmarks.cpp - Benchmark registry --------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/Benchmarks.h"

#include "bench/BenchmarksInternal.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace ade;
using namespace ade::bench;

std::string ade::bench::ptaSource(const std::string &InnerPragma) {
  std::string Src = kPtaSourceTemplate;
  const std::string Marker = "__INNER__";
  size_t Pos = Src.find(Marker);
  assert(Pos != std::string::npos && "PTA template lost its marker");
  Src.replace(Pos, Marker.size(),
              InnerPragma.empty() ? std::string() : "    " + InnerPragma);
  return Src;
}

namespace {

uint64_t scaled(uint64_t Base, uint64_t Percent, uint64_t Min) {
  uint64_t V = Base * Percent / 100;
  return V < Min ? Min : V;
}

std::vector<BenchmarkSpec> buildRegistry() {
  std::vector<BenchmarkSpec> Suite;
  auto SeqGraph = [](const char *Kernel) {
    return std::string(kSeqGraphPrelude) + Kernel;
  };
  auto SetGraph = [](const char *Kernel) {
    return std::string(kSetGraphPrelude) + Kernel;
  };

  Suite.push_back(
      {"BC", "betweenness centrality (Brandes, sampled sources)", kBcSource,
       [](uint64_t S) {
         Workload W = connectedGraph(scaled(8000, S, 16),
                                     scaled(32000, S, 32), 11);
         W.P0 = 8; // Sources.
         return W;
       }});
  Suite.push_back(
      {"BFS", "breadth-first search", SeqGraph(kBfsKernel),
       [](uint64_t S) {
         Workload W = connectedGraph(scaled(50000, S, 16),
                                     scaled(200000, S, 32), 12);
         W.P0 = scrambleLabel(0);
         return W;
       }});
  Suite.push_back(
      {"BP", "loopy belief propagation (bipartite)", kBpSource,
       [](uint64_t S) {
         Workload W = bipartiteGraph(scaled(10000, S, 16),
                                     scaled(60000, S, 64), 13);
         W.P0 = 10; // Iterations.
         return W;
       }});
  Suite.push_back(
      {"CC", "connected components (label propagation)",
       SeqGraph(kCcKernel), [](uint64_t S) {
         return connectedGraph(scaled(20000, S, 16), scaled(80000, S, 32),
                               14);
       }});
  Suite.push_back(
      {"CD", "community detection (label propagation with votes)",
       SeqGraph(kCdKernel), [](uint64_t S) {
         Workload W = connectedGraph(scaled(15000, S, 16),
                                     scaled(60000, S, 32), 15);
         W.P0 = 6; // Iterations.
         return W;
       }});
  Suite.push_back(
      {"FIM", "frequent itemset mining (Apriori pairs)", kFimSource,
       [](uint64_t S) {
         return transactions(scaled(30000, S, 20), 12,
                             scaled(2000, S, 50), 16);
       }});
  Suite.push_back(
      {"IS", "maximal independent set (greedy)", SeqGraph(kIsKernel),
       [](uint64_t S) {
         return connectedGraph(scaled(50000, S, 16), scaled(200000, S, 32),
                               17);
       }});
  Suite.push_back(
      {"KC", "k-core decomposition (peeling)", SeqGraph(kKcKernel),
       [](uint64_t S) {
         Workload W = rmatGraph(scaled(30000, S, 32),
                                scaled(150000, S, 64), 18);
         W.P0 = 4; // k.
         return W;
       }});
  Suite.push_back(
      {"KT", "k-truss support filter", SetGraph(kKtKernel),
       [](uint64_t S) {
         Workload W = erdosRenyiGraph(scaled(5000, S, 16),
                                      scaled(30000, S, 32), 19);
         W.P0 = 4; // k.
         return W;
       }});
  Suite.push_back(
      {"MCBM", "maximum-cardinality bipartite matching (Kuhn)",
       kMcbmSource, [](uint64_t S) {
         return bipartiteGraph(scaled(10000, S, 16), scaled(50000, S, 32),
                               20);
       }});
  Suite.push_back(
      {"MST", "minimum spanning tree (Boruvka with union-find)",
       kMstSource, [](uint64_t S) {
         return weightedGraph(scaled(30000, S, 16), scaled(120000, S, 32),
                              21);
       }});
  Suite.push_back(
      {"PP", "preflow-push max-flow", kPpSource, [](uint64_t S) {
         return flowNetwork(scaled(12, S, 3), scaled(24, S, 4), 22);
       }});
  Suite.push_back(
      {"PR", "PageRank (push-based)", SeqGraph(kPrKernel),
       [](uint64_t S) {
         Workload W = connectedGraph(scaled(20000, S, 16),
                                     scaled(100000, S, 32), 23);
         W.P0 = 10; // Iterations.
         return W;
       }});
  Suite.push_back(
      {"PTA", "Andersen points-to analysis", ptaSource(""),
       [](uint64_t S) {
         // Pointers vastly outnumber allocation sites (the paper's
         // sqlite3 input has ~2e7 pointers and ~1.8e3 allocations);
         // the shared enumeration leaves inner bitsets nearly empty.
         return pointsToConstraints(scaled(12000, S, 40),
                                    scaled(48, S, 8),
                                    scaled(24000, S, 60), 24);
       }});
  Suite.push_back(
      {"SSSP", "single-source shortest paths (worklist Bellman-Ford)",
       kSsspSource, [](uint64_t S) {
         Workload W = weightedGraph(scaled(30000, S, 16),
                                    scaled(120000, S, 32), 25);
         W.P0 = scrambleLabel(0);
         return W;
       }});
  Suite.push_back(
      {"TC", "triangle counting", SetGraph(kTcKernel), [](uint64_t S) {
         // Dense enough that counting dominates construction.
         return erdosRenyiGraph(scaled(4000, S, 16), scaled(60000, S, 32),
                                26);
       }});
  return Suite;
}

} // namespace

const std::vector<BenchmarkSpec> &ade::bench::allBenchmarks() {
  static const std::vector<BenchmarkSpec> Suite = buildRegistry();
  return Suite;
}

const BenchmarkSpec *ade::bench::findBenchmark(const std::string &Abbrev) {
  for (const BenchmarkSpec &B : allBenchmarks())
    if (B.Abbrev == Abbrev)
      return &B;
  return nullptr;
}
