//===- Workloads.h - Synthetic benchmark inputs -----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's SNAP / Lonestar / PARSEC inputs
/// (DESIGN.md substitution 4): R-MAT power-law graphs, Erdos-Renyi graphs,
/// bipartite graphs, layered flow networks, market-basket transactions and
/// points-to constraint sets. Node identifiers are sparse 64-bit labels
/// (hash-scrambled), as with SNAP datasets, so baseline programs need hash
/// structures and enumeration has real work to do. All generators are
/// deterministic in their seed.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_WORKLOADS_H
#define ADE_BENCH_WORKLOADS_H

#include <cstdint>
#include <vector>

namespace ade {
namespace bench {

/// An edge list over sparse node labels. The three arrays line up with the
/// uniform benchmark @build signature (A, B, C); C's meaning varies
/// (weights, transaction offsets, constraint kinds).
struct Workload {
  std::vector<uint64_t> A;
  std::vector<uint64_t> B;
  std::vector<uint64_t> C;
  uint64_t P0 = 0;
  uint64_t P1 = 0;
};

/// Maps a dense node index to its sparse public label.
uint64_t scrambleLabel(uint64_t DenseId);

/// R-MAT power-law graph (a=0.57 b=0.19 c=0.19), undirected edge list,
/// \p Nodes rounded up to a power of two, ~\p Edges edges.
Workload rmatGraph(uint64_t Nodes, uint64_t Edges, uint64_t Seed);

/// Erdos-Renyi G(n, m) edge list.
Workload erdosRenyiGraph(uint64_t Nodes, uint64_t Edges, uint64_t Seed);

/// Connected small-diameter graph: a Hamiltonian backbone plus random
/// chords; good for traversal benchmarks.
Workload connectedGraph(uint64_t Nodes, uint64_t Edges, uint64_t Seed);

/// Weighted variant of \c connectedGraph: C[i] holds weight in [1, 16].
Workload weightedGraph(uint64_t Nodes, uint64_t Edges, uint64_t Seed);

/// Bipartite graph for matching: left/right partitions of \p Side nodes
/// each, A = left label, B = right label.
Workload bipartiteGraph(uint64_t Side, uint64_t Edges, uint64_t Seed);

/// Layered flow network for preflow-push: source = label of dense id 0,
/// sink = label of last node; C[i] holds capacities.
Workload flowNetwork(uint64_t Layers, uint64_t Width, uint64_t Seed);

/// Market-basket transactions for frequent itemset mining: A = flattened
/// item stream (sparse item labels, Zipf-ish popularity), C = transaction
/// start offsets (with a final end sentinel). B unused.
Workload transactions(uint64_t Count, uint64_t MaxLen, uint64_t Items,
                      uint64_t Seed);

/// Andersen points-to constraints: for each constraint i, C[i] is the kind
/// (0 addr-of: A := &B; 1 copy: A := B; 2 store: *A := B; 3 load: A := *B),
/// over \p Pointers pointer labels and \p Objects allocation labels.
Workload pointsToConstraints(uint64_t Pointers, uint64_t Objects,
                             uint64_t Constraints, uint64_t Seed);

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_WORKLOADS_H
