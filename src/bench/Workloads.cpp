//===- Workloads.cpp - Synthetic benchmark inputs -------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/Workloads.h"

#include "support/Hashing.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace ade;
using namespace ade::bench;

uint64_t ade::bench::scrambleLabel(uint64_t DenseId) {
  // Avoid 0 so programs can use 0 as an "absent" sentinel if they wish.
  return hashU64(DenseId * 2 + 1) | 1;
}

Workload ade::bench::rmatGraph(uint64_t Nodes, uint64_t Edges,
                               uint64_t Seed) {
  uint64_t Scale = 1;
  while ((1ULL << Scale) < Nodes)
    ++Scale;
  Workload W;
  W.A.reserve(Edges);
  W.B.reserve(Edges);
  Rng R(Seed);
  for (uint64_t E = 0; E != Edges; ++E) {
    uint64_t U = 0, V = 0;
    for (uint64_t Bit = 0; Bit != Scale; ++Bit) {
      // R-MAT quadrant probabilities a=0.57, b=0.19, c=0.19, d=0.05.
      double P = R.nextDouble();
      unsigned Quadrant = P < 0.57 ? 0 : P < 0.76 ? 1 : P < 0.95 ? 2 : 3;
      U = (U << 1) | (Quadrant >> 1);
      V = (V << 1) | (Quadrant & 1);
    }
    if (U == V)
      V = (V + 1) & ((1ULL << Scale) - 1);
    W.A.push_back(scrambleLabel(U));
    W.B.push_back(scrambleLabel(V));
  }
  return W;
}

Workload ade::bench::erdosRenyiGraph(uint64_t Nodes, uint64_t Edges,
                                     uint64_t Seed) {
  Workload W;
  W.A.reserve(Edges);
  W.B.reserve(Edges);
  Rng R(Seed);
  for (uint64_t E = 0; E != Edges; ++E) {
    uint64_t U = R.nextBelow(Nodes);
    uint64_t V = R.nextBelow(Nodes);
    if (U == V)
      V = (V + 1) % Nodes;
    W.A.push_back(scrambleLabel(U));
    W.B.push_back(scrambleLabel(V));
  }
  return W;
}

Workload ade::bench::connectedGraph(uint64_t Nodes, uint64_t Edges,
                                    uint64_t Seed) {
  assert(Edges + 1 >= Nodes && "need at least a backbone of edges");
  Workload W;
  W.A.reserve(Edges);
  W.B.reserve(Edges);
  Rng R(Seed);
  for (uint64_t I = 1; I != Nodes; ++I) {
    W.A.push_back(scrambleLabel(I - 1));
    W.B.push_back(scrambleLabel(I));
  }
  for (uint64_t E = Nodes - 1; E < Edges; ++E) {
    uint64_t U = R.nextBelow(Nodes);
    uint64_t V = R.nextBelow(Nodes);
    if (U == V)
      V = (V + 1) % Nodes;
    W.A.push_back(scrambleLabel(U));
    W.B.push_back(scrambleLabel(V));
  }
  return W;
}

Workload ade::bench::weightedGraph(uint64_t Nodes, uint64_t Edges,
                                   uint64_t Seed) {
  Workload W = connectedGraph(Nodes, Edges, Seed);
  Rng R(Seed ^ 0xabcdef);
  W.C.reserve(W.A.size());
  for (size_t I = 0; I != W.A.size(); ++I)
    W.C.push_back(1 + R.nextBelow(16));
  return W;
}

Workload ade::bench::bipartiteGraph(uint64_t Side, uint64_t Edges,
                                    uint64_t Seed) {
  Workload W;
  W.A.reserve(Edges);
  W.B.reserve(Edges);
  Rng R(Seed);
  for (uint64_t E = 0; E != Edges; ++E) {
    uint64_t L = R.nextBelow(Side);
    uint64_t Ri = R.nextBelow(Side);
    W.A.push_back(scrambleLabel(L));
    W.B.push_back(scrambleLabel(Side + Ri));
  }
  W.P0 = Side;
  return W;
}

Workload ade::bench::flowNetwork(uint64_t Layers, uint64_t Width,
                                 uint64_t Seed) {
  Workload W;
  Rng R(Seed);
  uint64_t NodeCount = 2 + Layers * Width; // source + layers + sink
  auto LabelOf = [&](uint64_t Dense) { return scrambleLabel(Dense); };
  uint64_t Source = 0, Sink = NodeCount - 1;
  // Source to first layer.
  for (uint64_t I = 0; I != Width; ++I) {
    W.A.push_back(LabelOf(Source));
    W.B.push_back(LabelOf(1 + I));
    W.C.push_back(8 + R.nextBelow(8));
  }
  // Layer to layer.
  for (uint64_t L = 0; L + 1 < Layers; ++L) {
    for (uint64_t I = 0; I != Width; ++I) {
      for (uint64_t Fan = 0; Fan != 2; ++Fan) {
        uint64_t From = 1 + L * Width + I;
        uint64_t To = 1 + (L + 1) * Width + R.nextBelow(Width);
        W.A.push_back(LabelOf(From));
        W.B.push_back(LabelOf(To));
        W.C.push_back(1 + R.nextBelow(8));
      }
    }
  }
  // Last layer to sink.
  for (uint64_t I = 0; I != Width; ++I) {
    W.A.push_back(LabelOf(1 + (Layers - 1) * Width + I));
    W.B.push_back(LabelOf(Sink));
    W.C.push_back(8 + R.nextBelow(8));
  }
  W.P0 = LabelOf(Source);
  W.P1 = LabelOf(Sink);
  return W;
}

Workload ade::bench::transactions(uint64_t Count, uint64_t MaxLen,
                                  uint64_t Items, uint64_t Seed) {
  Workload W;
  Rng R(Seed);
  W.C.reserve(Count + 1);
  for (uint64_t T = 0; T != Count; ++T) {
    W.C.push_back(W.A.size());
    uint64_t Len = 2 + R.nextBelow(MaxLen - 1);
    for (uint64_t I = 0; I != Len; ++I) {
      // Zipf-ish popularity: square the uniform draw.
      double U = R.nextDouble();
      uint64_t Item = static_cast<uint64_t>(U * U * Items);
      W.A.push_back(scrambleLabel(1000000 + Item));
    }
  }
  W.C.push_back(W.A.size());
  W.P0 = Count / 20 + 2; // Support threshold.
  return W;
}

Workload ade::bench::pointsToConstraints(uint64_t Pointers, uint64_t Objects,
                                         uint64_t Constraints,
                                         uint64_t Seed) {
  Workload W;
  Rng R(Seed);
  auto PtrLabel = [&](uint64_t P) { return scrambleLabel(5000000 + P); };
  auto ObjLabel = [&](uint64_t O) { return scrambleLabel(9000000 + O); };
  for (uint64_t I = 0; I != Constraints; ++I) {
    uint64_t Kind = R.nextBelow(10);
    if (Kind < 3) { // addr-of
      W.A.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.B.push_back(ObjLabel(R.nextBelow(Objects)));
      W.C.push_back(0);
    } else if (Kind < 8) { // copy
      W.A.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.B.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.C.push_back(1);
    } else if (Kind < 9) { // store
      W.A.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.B.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.C.push_back(2);
    } else { // load
      W.A.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.B.push_back(PtrLabel(R.nextBelow(Pointers)));
      W.C.push_back(3);
    }
  }
  W.P0 = Pointers;
  W.P1 = Objects;
  return W;
}
