//===- BenchmarksGraph.cpp - Graph-traversal benchmark programs -----------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The sequence-adjacency family of benchmark programs: BFS, CC, CD, PR,
/// SSSP, IS, KC and MST. Sources are assembled from a shared prelude that
/// builds a Map<u64, Seq<u64>> adjacency over sparse node labels.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchmarksInternal.h"

using namespace ade::bench;

/// Globals + adjacency builder shared by the Seq-adjacency programs.
/// Defines @nodes (stable node order), @adj, and scalar parameters.
const char *const ade::bench::kSeqGraphPrelude = R"(global @nodes : Seq<u64>
global @adj : Map<u64, Seq<u64>>
global @p0v : u64
global @p1v : u64
fn @ensure(%u: u64) {
  %adj = gget @adj
  %c = has %adj, %u
  if %c {
    yield
  } else {
    %s = new Seq<u64>
    write %adj, %u, %s
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Seq<u64>>
  gset @adj, %am
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  gset @p0v, %p0
  gset @p1v, %p1
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    call @ensure(%u)
    call @ensure(%v)
    %adj = gget @adj
    %lu = read %adj, %u
    append %lu, %v
    %lv = read %adj, %v
    append %lv, %u
    yield
  }
  ret
}
)";

const char *const ade::bench::kBfsKernel = R"(global @frontier : Seq<u64>
global @next : Seq<u64>
fn @kernel() -> u64 {
  %adj = gget @adj
  %visited = new Set<u64>
  %f0 = new Seq<u64>
  gset @frontier, %f0
  %src = gget @p0v
  insert %visited, %src
  append %f0, %src
  %zero = const 0 : u64
  %one = const 1 : u64
  %sum = dowhile iter(%acc = %zero) {
    %f = gget @frontier
    %n2 = new Seq<u64>
    gset @next, %n2
    foreach %f -> [%i, %u] {
      %neigh = read %adj, %u
      foreach %neigh -> [%j, %v] {
        %seen = has %visited, %v
        if %seen {
          yield
        } else {
          insert %visited, %v
          %nx = gget @next
          append %nx, %v
          yield
        }
        yield
      }
      yield
    }
    %nx2 = gget @next
    gset @frontier, %nx2
    %fs = size %nx2
    %cnt = size %visited
    %acc2 = add %acc, %cnt
    %more = gt %fs, %zero
    yield %more, %acc2
  }
  %vc = size %visited
  %r = add %sum, %vc
  ret %r
}
)";

const char *const ade::bench::kCcKernel = R"(fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %labels = new Map<u64, u64>
  foreach %nodes -> [%i, %u] {
    write %labels, %u, %u
    yield
  }
  %zero = const 0 : u64
  %one = const 1 : u64
  %rounds = dowhile iter(%rnd = %zero) {
    %changed = foreach %nodes -> [%i, %u] iter(%ch = %zero) {
      %lu = read %labels, %u
      %neigh = read %adj, %u
      %best = foreach %neigh -> [%j, %v] iter(%mn = %lu) {
        %lv = read %labels, %v
        %m = min %mn, %lv
        yield %m
      }
      %upd = lt %best, %lu
      %ch2 = if %upd {
        write %labels, %u, %best
        %c1 = add %ch, %one
        yield %c1
      } else {
        yield %ch
      }
      yield %ch2
    }
    %more = gt %changed, %zero
    %rnd2 = add %rnd, %one
    yield %more, %rnd2
  }
  // Checksum: number of nodes that are their own component representative.
  %roots = foreach %nodes -> [%i, %u] iter(%acc = %zero) {
    %l = read %labels, %u
    %self = eq %l, %u
    %inc = select %self, %one, %zero
    %next = add %acc, %inc
    yield %next
  }
  %scaled = mul %roots, %one
  %r = add %scaled, %rounds
  ret %r
}
)";

const char *const ade::bench::kCdKernel = R"(fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %labels = new Map<u64, u64>
  foreach %nodes -> [%i, %u] {
    write %labels, %u, %u
    yield
  }
  %zero = const 0 : u64
  %one = const 1 : u64
  %iters = gget @p0v
  %votes = new Map<u64, u64>
  forrange %zero, %iters -> [%it] {
    foreach %nodes -> [%i, %u] {
      clear %votes
      %neigh = read %adj, %u
      foreach %neigh -> [%j, %v] {
        %lv = read %labels, %v
        %hasv = has %votes, %lv
        %cur = if %hasv {
          %c0 = read %votes, %lv
          yield %c0
        } else {
          yield %zero
        }
        %c1 = add %cur, %one
        write %votes, %lv, %c1
        yield
      }
      %lu = read %labels, %u
      %best, %bestc = foreach %votes -> [%lab, %cnt] iter(%bl = %lu, %bc = %zero) {
        %gtc = gt %cnt, %bc
        %nbl, %nbc = if %gtc {
          yield %lab, %cnt
        } else {
          %eqc = eq %cnt, %bc
          %ltl = lt %lab, %bl
          %both = and %eqc, %ltl
          %xl, %xc = if %both {
            yield %lab, %cnt
          } else {
            yield %bl, %bc
          }
          yield %xl, %xc
        }
        yield %nbl, %nbc
      }
      %unused = add %bestc, %zero
      write %labels, %u, %best
      yield
    }
    yield
  }
  // Checksum: distinct final communities.
  %commSet = new Set<u64>
  foreach %nodes -> [%i, %u] {
    %l = read %labels, %u
    insert %commSet, %l
    yield
  }
  %sz = size %commSet
  ret %sz
}
)";

const char *const ade::bench::kPrKernel = R"(global @ranks : Map<u64, f64>
global @nextr : Map<u64, f64>
fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %ranks0 = new Map<u64, f64>
  gset @ranks, %ranks0
  %nextr0 = new Map<u64, f64>
  gset @nextr, %nextr0
  %onef = const 1.0 : f64
  %base = const 0.15 : f64
  %damp = const 0.85 : f64
  %zero = const 0 : u64
  foreach %nodes -> [%i, %u] {
    write %ranks0, %u, %onef
    yield
  }
  %iters = gget @p0v
  forrange %zero, %iters -> [%it] {
    %ranks = gget @ranks
    %next = gget @nextr
    foreach %nodes -> [%i, %u] {
      write %next, %u, %base
      yield
    }
    foreach %nodes -> [%i, %u] {
      %r = read %ranks, %u
      %neigh = read %adj, %u
      %d = size %neigh
      %dpos = gt %d, %zero
      if %dpos {
        %df = cast %d : f64
        %rshare = mul %r, %damp
        %share = div %rshare, %df
        foreach %neigh -> [%j, %v] {
          %cur = read %next, %v
          %nv = add %cur, %share
          write %next, %v, %nv
          yield
        }
        yield
      } else {
        yield
      }
      yield
    }
    gset @ranks, %next
    gset @nextr, %ranks
    yield
  }
  %ranksF = gget @ranks
  %one = const 1 : u64
  %cnt = foreach %nodes -> [%i, %u] iter(%acc = %zero) {
    %r = read %ranksF, %u
    %isBig = gt %r, %onef
    %inc = select %isBig, %one, %zero
    %next2 = add %acc, %inc
    yield %next2
  }
  ret %cnt
}
)";

const char *const ade::bench::kIsKernel = R"(fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %inSet = new Set<u64>
  %excluded = new Set<u64>
  %zero = const 0 : u64
  %one = const 1 : u64
  %cnt = foreach %nodes -> [%i, %u] iter(%acc = %zero) {
    %ex = has %excluded, %u
    %next = if %ex {
      yield %acc
    } else {
      insert %inSet, %u
      %neigh = read %adj, %u
      foreach %neigh -> [%j, %v] {
        insert %excluded, %v
        yield
      }
      %a2 = add %acc, %one
      yield %a2
    }
    yield %next
  }
  %sz = size %inSet
  %r = add %cnt, %sz
  ret %r
}
)";

const char *const ade::bench::kKcKernel = R"(global @wl : Seq<u64>
global @nwl : Seq<u64>
fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %k = gget @p0v
  %deg = new Map<u64, u64>
  %removed = new Set<u64>
  %zero = const 0 : u64
  %one = const 1 : u64
  %km1 = sub %k, %one
  foreach %nodes -> [%i, %u] {
    %neigh = read %adj, %u
    %d = size %neigh
    write %deg, %u, %d
    yield
  }
  %w0 = new Seq<u64>
  gset @wl, %w0
  foreach %nodes -> [%i, %u] {
    %d = read %deg, %u
    %low = lt %d, %k
    if %low {
      %w = gget @wl
      append %w, %u
      yield
    } else {
      yield
    }
    yield
  }
  %rounds = dowhile iter(%rnd = %zero) {
    %w = gget @wl
    %nw0 = new Seq<u64>
    gset @nwl, %nw0
    foreach %w -> [%i, %u] {
      %isrem = has %removed, %u
      if %isrem {
        yield
      } else {
        insert %removed, %u
        %neigh = read %adj, %u
        foreach %neigh -> [%j, %v] {
          %vrem = has %removed, %v
          if %vrem {
            yield
          } else {
            %dv = read %deg, %v
            %dv1 = sub %dv, %one
            write %deg, %v, %dv1
            %hits = eq %dv1, %km1
            if %hits {
              %nw = gget @nwl
              append %nw, %v
              yield
            } else {
              yield
            }
            yield
          }
          yield
        }
        yield
      }
      yield
    }
    %nw2 = gget @nwl
    gset @wl, %nw2
    %sz = size %nw2
    %more = gt %sz, %zero
    %rnd2 = add %rnd, %one
    yield %more, %rnd2
  }
  %total = size %nodes
  %rem = size %removed
  %core = sub %total, %rem
  %r = add %core, %rounds
  ret %r
}
)";

const char *const ade::bench::kSsspSource = R"(global @nodes : Seq<u64>
global @adj : Map<u64, Seq<u64>>
global @adjw : Map<u64, Seq<u64>>
global @p0v : u64
global @wl : Seq<u64>
global @nwl : Seq<u64>
fn @ensure(%u: u64) {
  %adj = gget @adj
  %c = has %adj, %u
  if %c {
    yield
  } else {
    %s = new Seq<u64>
    write %adj, %u, %s
    %adjw = gget @adjw
    %sw = new Seq<u64>
    write %adjw, %u, %sw
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Seq<u64>>
  gset @adj, %am
  %wm = new Map<u64, Seq<u64>>
  gset @adjw, %wm
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  gset @p0v, %p0
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    %w = read %c, %i
    call @ensure(%u)
    call @ensure(%v)
    %adj = gget @adj
    %adjw = gget @adjw
    %lu = read %adj, %u
    append %lu, %v
    %lwu = read %adjw, %u
    append %lwu, %w
    %lv = read %adj, %v
    append %lv, %u
    %lwv = read %adjw, %v
    append %lwv, %w
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %adj = gget @adj
  %adjw = gget @adjw
  %dist = new Map<u64, u64>
  %src = gget @p0v
  %zero = const 0 : u64
  %one = const 1 : u64
  write %dist, %src, %zero
  %w0 = new Seq<u64>
  gset @wl, %w0
  append %w0, %src
  %rounds = dowhile iter(%rnd = %zero) {
    %wlv = gget @wl
    %nw0 = new Seq<u64>
    gset @nwl, %nw0
    foreach %wlv -> [%i, %u] {
      %du = read %dist, %u
      %neigh = read %adj, %u
      %wts = read %adjw, %u
      %nn = size %neigh
      forrange %zero, %nn -> [%j] {
        %v = read %neigh, %j
        %w = read %wts, %j
        %alt = add %du, %w
        %hasv = has %dist, %v
        %better = if %hasv {
          %dv = read %dist, %v
          %lt = lt %alt, %dv
          yield %lt
        } else {
          %t = const true
          yield %t
        }
        if %better {
          write %dist, %v, %alt
          %nw = gget @nwl
          append %nw, %v
          yield
        } else {
          yield
        }
        yield
      }
      yield
    }
    %nw2 = gget @nwl
    gset @wl, %nw2
    %sz = size %nw2
    %more = gt %sz, %zero
    %rnd2 = add %rnd, %one
    yield %more, %rnd2
  }
  // Checksum: sum of final distances (unique shortest-path fixpoint).
  %sum = foreach %dist -> [%n2, %dv] iter(%acc = %zero) {
    %a2 = add %acc, %dv
    yield %a2
  }
  %r = add %sum, %rounds
  ret %r
}
)";

const char *const ade::bench::kMstSource = R"(global @nodes : Seq<u64>
global @ea : Seq<u64>
global @eb : Seq<u64>
global @ew : Seq<u64>
global @parent : Map<u64, u64>
global @cheapw : Map<u64, u64>
global @cheape : Map<u64, u64>
fn @notenode(%u: u64) {
  %p = gget @parent
  %c = has %p, %u
  if %c {
    yield
  } else {
    write %p, %u, %u
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %pm = new Map<u64, u64>
  gset @parent, %pm
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  %eas = new Seq<u64>
  gset @ea, %eas
  %ebs = new Seq<u64>
  gset @eb, %ebs
  %ews = new Seq<u64>
  gset @ew, %ews
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    %w = read %c, %i
    append %eas, %u
    append %ebs, %v
    append %ews, %w
    call @notenode(%u)
    call @notenode(%v)
    yield
  }
  ret
}
fn @find(%v: u64) -> u64 {
  %p = gget @parent
  %r = dowhile iter(%curr = %v) {
    %par = read %p, %curr
    %ne = ne %par, %curr
    yield %ne, %par
  }
  ret %r
}
fn @consider(%root: u64, %wk: u64, %e: u64) {
  %cw = gget @cheapw
  %ce = gget @cheape
  %hasr = has %cw, %root
  %better = if %hasr {
    %cur = read %cw, %root
    %lt = lt %wk, %cur
    yield %lt
  } else {
    %t = const true
    yield %t
  }
  if %better {
    write %cw, %root, %wk
    write %ce, %root, %e
    yield
  } else {
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %ea = gget @ea
  %eb = gget @eb
  %ew = gget @ew
  %nodes = gget @nodes
  %zero = const 0 : u64
  %one = const 1 : u64
  %big = const 1048576 : u64
  %n = size %ea
  %total, %rounds = dowhile iter(%tot = %zero, %rnd = %zero) {
    %cw0 = new Map<u64, u64>
    gset @cheapw, %cw0
    %ce0 = new Map<u64, u64>
    gset @cheape, %ce0
    forrange %zero, %n -> [%e] {
      %u = read %ea, %e
      %v = read %eb, %e
      %ru = call @find(%u)
      %rv = call @find(%v)
      %same = eq %ru, %rv
      if %same {
        yield
      } else {
        %w = read %ew, %e
        %wk0 = mul %w, %big
        %wk = add %wk0, %e
        call @consider(%ru, %wk, %e)
        call @consider(%rv, %wk, %e)
        yield
      }
      yield
    }
    %ce = gget @cheape
    %tot2, %merged = foreach %nodes -> [%i, %u] iter(%t = %tot, %m = %zero) {
      %isCand = has %ce, %u
      %t3, %m3 = if %isCand {
        %e = read %ce, %u
        %a2 = read %ea, %e
        %b2 = read %eb, %e
        %ra = call @find(%a2)
        %rb = call @find(%b2)
        %same2 = eq %ra, %rb
        %t2, %m2 = if %same2 {
          yield %t, %m
        } else {
          %pmap = gget @parent
          write %pmap, %ra, %rb
          %w2 = read %ew, %e
          %t1 = add %t, %w2
          %m1 = add %m, %one
          yield %t1, %m1
        }
        yield %t2, %m2
      } else {
        yield %t, %m
      }
      yield %t3, %m3
    }
    %more = gt %merged, %zero
    %rnd2 = add %rnd, %one
    yield %more, %tot2, %rnd2
  }
  %r = add %total, %rounds
  ret %r
}
)";
