//===- BenchmarksOther.cpp - Remaining benchmark programs -----------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// TC and KT (set adjacency), MCBM (bipartite matching), PP (preflow-push
/// max-flow), BP (belief propagation), FIM (frequent itemset mining), BC
/// (betweenness centrality) and PTA (Andersen points-to analysis, the RQ4
/// case study).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchmarksInternal.h"

using namespace ade::bench;

/// Set-based adjacency for triangle-flavored benchmarks, plus the edge
/// list retained for per-edge kernels.
const char *const ade::bench::kSetGraphPrelude = R"(global @nodes : Seq<u64>
global @adjs : Map<u64, Set<u64>>
global @adjl : Map<u64, Seq<u64>>
global @ea : Seq<u64>
global @eb : Seq<u64>
global @p0v : u64
fn @ensure(%u: u64) {
  %adjs = gget @adjs
  %c = has %adjs, %u
  if %c {
    yield
  } else {
    %s = new Set<u64>
    write %adjs, %u, %s
    %adjl = gget @adjl
    %l = new Seq<u64>
    write %adjl, %u, %l
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Set<u64>>
  gset @adjs, %am
  %lm = new Map<u64, Seq<u64>>
  gset @adjl, %lm
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  %eas = new Seq<u64>
  gset @ea, %eas
  %ebs = new Seq<u64>
  gset @eb, %ebs
  gset @p0v, %p0
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    %same = eq %u, %v
    if %same {
      yield
    } else {
      call @ensure(%u)
      call @ensure(%v)
      %adjs = gget @adjs
      %su = read %adjs, %u
      %fresh = has %su, %v
      %dup = if %fresh {
        %t = const true
        yield %t
      } else {
        %f = const false
        yield %f
      }
      if %dup {
        yield
      } else {
        insert %su, %v
        %sv = read %adjs, %v
        insert %sv, %u
        %adjl = gget @adjl
        %lu = read %adjl, %u
        append %lu, %v
        %lv = read %adjl, %v
        append %lv, %u
        append %eas, %u
        append %ebs, %v
        yield
      }
      yield
    }
    yield
  }
  ret
}
)";

const char *const ade::bench::kTcKernel = R"(fn @kernel() -> u64 {
  %adjs = gget @adjs
  %adjl = gget @adjl
  %ea = gget @ea
  %eb = gget @eb
  %zero = const 0 : u64
  %one = const 1 : u64
  %three = const 3 : u64
  %n = size %ea
  // Each triangle is counted once per incident edge; divide by three.
  %total = forrange %zero, %n -> [%e] iter(%acc = %zero) {
    %u = read %ea, %e
    %v = read %eb, %e
    %lu = read %adjl, %u
    %sv = read %adjs, %v
    %acc2 = foreach %lu -> [%j, %w] iter(%a1 = %acc) {
      %closes = has %sv, %w
      %inc = select %closes, %one, %zero
      %a2 = add %a1, %inc
      yield %a2
    }
    yield %acc2
  }
  %tri = div %total, %three
  ret %tri
}
)";

const char *const ade::bench::kKtKernel = R"(global @support : Map<u64, Map<u64, u64>>
fn @edgesupport(%u: u64, %v: u64) -> u64 {
  %adjs = gget @adjs
  %adjl = gget @adjl
  %su = read %adjs, %u
  %lv = read %adjl, %v
  %zero = const 0 : u64
  %one = const 1 : u64
  %cnt = foreach %lv -> [%j, %w] iter(%acc = %zero) {
    %common = has %su, %w
    %inc = select %common, %one, %zero
    %a2 = add %acc, %inc
    yield %a2
  }
  ret %cnt
}
fn @kernel() -> u64 {
  %ea = gget @ea
  %eb = gget @eb
  %k = gget @p0v
  %sup0 = new Map<u64, Map<u64, u64>>
  gset @support, %sup0
  %zero = const 0 : u64
  %one = const 1 : u64
  %two = const 2 : u64
  %thresh = sub %k, %two
  %n = size %ea
  // Pass 1: support of every edge (common-neighbor count).
  forrange %zero, %n -> [%e] {
    %u = read %ea, %e
    %v = read %eb, %e
    %s = call @edgesupport(%u, %v)
    %lo = min %u, %v
    %hi = max %u, %v
    %sup = gget @support
    %hasLo = has %sup, %lo
    if %hasLo {
      yield
    } else {
      %inner0 = new Map<u64, u64>
      write %sup, %lo, %inner0
      yield
    }
    %inner = read %sup, %lo
    write %inner, %hi, %s
    yield
  }
  // Pass 2: edges meeting the k-truss support threshold, and total
  // support, summed over the nested map.
  %sup2 = gget @support
  %strong, %total = foreach %sup2 -> [%lo2, %inner2] iter(%st = %zero, %tt = %zero) {
    %st2, %tt2 = foreach %inner2 -> [%hi2, %s2] iter(%sti = %st, %tti = %tt) {
      %meets = ge %s2, %thresh
      %inc = select %meets, %one, %zero
      %sti2 = add %sti, %inc
      %tti2 = add %tti, %s2
      yield %sti2, %tti2
    }
    yield %st2, %tt2
  }
  %r = add %strong, %total
  ret %r
}
)";

const char *const ade::bench::kMcbmSource = R"(global @left : Seq<u64>
global @adj : Map<u64, Seq<u64>>
global @matchR : Map<u64, u64>
global @visited : Set<u64>
fn @ensurel(%u: u64) {
  %adj = gget @adj
  %c = has %adj, %u
  if %c {
    yield
  } else {
    %s = new Seq<u64>
    write %adj, %u, %s
    %ls = gget @left
    append %ls, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Seq<u64>>
  gset @adj, %am
  %ls = new Seq<u64>
  gset @left, %ls
  %mr = new Map<u64, u64>
  gset @matchR, %mr
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    call @ensurel(%u)
    %adj = gget @adj
    %lu = read %adj, %u
    append %lu, %v
    yield
  }
  ret
}
fn @try(%u: u64) -> u64 {
  %adj = gget @adj
  %vis = gget @visited
  %mr = gget @matchR
  %zero = const 0 : u64
  %one = const 1 : u64
  %neigh = read %adj, %u
  %found = foreach %neigh -> [%j, %v] iter(%f = %zero) {
    %done = gt %f, %zero
    %f4 = if %done {
      yield %f
    } else {
      %seen = has %vis, %v
      %f3 = if %seen {
        yield %f
      } else {
        insert %vis, %v
        %hasm = has %mr, %v
        %f2 = if %hasm {
          %w = read %mr, %v
          %r = call @try(%w)
          %ok = gt %r, %zero
          %f1 = if %ok {
            write %mr, %v, %u
            yield %one
          } else {
            yield %f
          }
          yield %f1
        } else {
          write %mr, %v, %u
          yield %one
        }
        yield %f2
      }
      yield %f3
    }
    yield %f4
  }
  ret %found
}
fn @kernel() -> u64 {
  %left = gget @left
  %zero = const 0 : u64
  %v0 = new Set<u64>
  gset @visited, %v0
  %matched = foreach %left -> [%i, %u] iter(%acc = %zero) {
    %vis = gget @visited
    clear %vis
    %r = call @try(%u)
    %acc2 = add %acc, %r
    yield %acc2
  }
  ret %matched
}
)";

const char *const ade::bench::kPpSource = R"(global @nodes : Seq<u64>
global @cap : Map<u64, Map<u64, u64>>
global @height : Map<u64, u64>
global @excess : Map<u64, u64>
global @active : Seq<u64>
global @nactive : Seq<u64>
global @srcv : u64
global @sinkv : u64
fn @ensure(%u: u64) {
  %cap = gget @cap
  %c = has %cap, %u
  if %c {
    yield
  } else {
    %m = new Map<u64, u64>
    write %cap, %u, %m
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @addcap(%u: u64, %v: u64, %c: u64) {
  %cap = gget @cap
  %mu = read %cap, %u
  %hasv = has %mu, %v
  %cur = if %hasv {
    %c0 = read %mu, %v
    yield %c0
  } else {
    %zero = const 0 : u64
    yield %zero
  }
  %c1 = add %cur, %c
  write %mu, %v, %c1
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %cm = new Map<u64, Map<u64, u64>>
  gset @cap, %cm
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  gset @srcv, %p0
  gset @sinkv, %p1
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    %w = read %c, %i
    call @ensure(%u)
    call @ensure(%v)
    call @addcap(%u, %v, %w)
    call @addcap(%v, %u, %zero)
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %cap = gget @cap
  %nodes = gget @nodes
  %src = gget @srcv
  %sink = gget @sinkv
  %zero = const 0 : u64
  %one = const 1 : u64
  %height = new Map<u64, u64>
  gset @height, %height
  %excess = new Map<u64, u64>
  gset @excess, %excess
  foreach %nodes -> [%i, %u] {
    write %height, %u, %zero
    write %excess, %u, %zero
    yield
  }
  %n = size %nodes
  write %height, %src, %n
  %a0 = new Seq<u64>
  gset @active, %a0
  // Saturate source edges.
  %msrc = read %cap, %src
  foreach %msrc -> [%v, %c] {
    %cpos = gt %c, %zero
    if %cpos {
      %mv = read %cap, %v
      %back = read %mv, %src
      %nb = add %back, %c
      write %mv, %src, %nb
      write %msrc, %v, %zero
      %ev = read %excess, %v
      %ev2 = add %ev, %c
      write %excess, %v, %ev2
      %isSink = eq %v, %sink
      if %isSink {
        yield
      } else {
        %act = gget @active
        append %act, %v
        yield
      }
      yield
    } else {
      yield
    }
    yield
  }
  %limit = const 100000 : u64
  %rounds = dowhile iter(%rnd = %zero) {
    %act = gget @active
    %na0 = new Seq<u64>
    gset @nactive, %na0
    foreach %act -> [%i, %u] {
      %eu = read %excess, %u
      %epos = gt %eu, %zero
      if %epos {
        %mu = read %cap, %u
        %hu = read %height, %u
        // Push phase.
        %left = foreach %mu -> [%v, %cSnap] iter(%rem = %eu) {
          %c2 = read %mu, %v
          %cpos = gt %c2, %zero
          %rpos = gt %rem, %zero
          %both = and %cpos, %rpos
          %rem3 = if %both {
            %hv = read %height, %v
            %hv1 = add %hv, %one
            %admissible = eq %hu, %hv1
            %rem2 = if %admissible {
              %d = min %rem, %c2
              %nc = sub %c2, %d
              write %mu, %v, %nc
              %mv = read %cap, %v
              %bc = read %mv, %u
              %nbc = add %bc, %d
              write %mv, %u, %nbc
              %ev = read %excess, %v
              %ev2 = add %ev, %d
              write %excess, %v, %ev2
              %isS = eq %v, %src
              %isT = eq %v, %sink
              %isEnd = or %isS, %isT
              if %isEnd {
                yield
              } else {
                %na = gget @nactive
                append %na, %v
                yield
              }
              %r2 = sub %rem, %d
              yield %r2
            } else {
              yield %rem
            }
            yield %rem2
          } else {
            yield %rem
          }
          yield %rem3
        }
        write %excess, %u, %left
        %still = gt %left, %zero
        if %still {
          // Relabel: one above the lowest residual neighbor.
          %minh = foreach %mu -> [%v2, %c3] iter(%mh = %limit) {
            %c4 = read %mu, %v2
            %cp = gt %c4, %zero
            %mh2 = if %cp {
              %hv2 = read %height, %v2
              %m2 = min %mh, %hv2
              yield %m2
            } else {
              yield %mh
            }
            yield %mh2
          }
          %nh = add %minh, %one
          write %height, %u, %nh
          %na2 = gget @nactive
          append %na2, %u
          yield
        } else {
          yield
        }
        yield
      } else {
        yield
      }
      yield
    }
    %na3 = gget @nactive
    gset @active, %na3
    %sz = size %na3
    %more0 = gt %sz, %zero
    %rnd2 = add %rnd, %one
    %under = lt %rnd2, %limit
    %more = and %more0, %under
    yield %more, %rnd2
  }
  %flow = read %excess, %sink
  ret %flow
}
)";

const char *const ade::bench::kBpSource = R"(global @vars : Seq<u64>
global @facs : Seq<u64>
global @adj : Map<u64, Seq<u64>>
global @belief : Map<u64, f64>
global @fmsg : Map<u64, f64>
global @p0v : u64
fn @ensure(%u: u64, %isVar: bool) {
  %adj = gget @adj
  %c = has %adj, %u
  if %c {
    yield
  } else {
    %s = new Seq<u64>
    write %adj, %u, %s
    if %isVar {
      %vs = gget @vars
      append %vs, %u
      yield
    } else {
      %fs = gget @facs
      append %fs, %u
      yield
    }
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Seq<u64>>
  gset @adj, %am
  %vs = new Seq<u64>
  gset @vars, %vs
  %fs = new Seq<u64>
  gset @facs, %fs
  gset @p0v, %p0
  %t = const true
  %f = const false
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    call @ensure(%u, %t)
    call @ensure(%v, %f)
    %adj = gget @adj
    %lu = read %adj, %u
    append %lu, %v
    %lv = read %adj, %v
    append %lv, %u
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %adj = gget @adj
  %vars = gget @vars
  %facs = gget @facs
  %belief = new Map<u64, f64>
  gset @belief, %belief
  %fmsg = new Map<u64, f64>
  gset @fmsg, %fmsg
  %half = const 0.5 : f64
  %quarter = const 0.25 : f64
  %zero = const 0 : u64
  %one = const 1 : u64
  %zf = const 0.0 : f64
  %k1000 = const 1000 : u64
  %k2000 = const 2000.0 : f64
  // Data-dependent priors in [0, 0.5).
  foreach %vars -> [%i, %u] {
    %m = rem %u, %k1000
    %mf = cast %m : f64
    %prior = div %mf, %k2000
    write %belief, %u, %prior
    yield
  }
  %iters = gget @p0v
  forrange %zero, %iters -> [%it] {
    // Factor messages: average of neighboring variable beliefs.
    foreach %facs -> [%i, %f] {
      %neigh = read %adj, %f
      %d = size %neigh
      %dpos = gt %d, %zero
      if %dpos {
        %sum = foreach %neigh -> [%j, %v] iter(%acc = %zf) {
          %b = read %belief, %v
          %a2 = add %acc, %b
          yield %a2
        }
        %df = cast %d : f64
        %avg = div %sum, %df
        write %fmsg, %f, %avg
        yield
      } else {
        yield
      }
      yield
    }
    // Variable update: damped average of factor messages.
    foreach %vars -> [%i, %v] {
      %neigh = read %adj, %v
      %d = size %neigh
      %dpos = gt %d, %zero
      if %dpos {
        %sum = foreach %neigh -> [%j, %f] iter(%acc = %zf) {
          %m2 = read %fmsg, %f
          %a3 = add %acc, %m2
          yield %a3
        }
        %df = cast %d : f64
        %avg = div %sum, %df
        %scaled = mul %avg, %half
        %nb = add %quarter, %scaled
        write %belief, %v, %nb
        yield
      } else {
        yield
      }
      yield
    }
    yield
  }
  // Checksum: scaled posterior mass in stable variable order.
  %scale = const 10000.0 : f64
  %cnt = foreach %vars -> [%i, %u] iter(%acc = %zero) {
    %b = read %belief, %u
    %bs = mul %b, %scale
    %bi = cast %bs : u64
    %a4 = add %acc, %bi
    yield %a4
  }
  %onecheck = add %cnt, %one
  ret %onecheck
}
)";

const char *const ade::bench::kFimSource = R"(global @items : Seq<u64>
global @offs : Seq<u64>
global @p0v : u64
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %is = new Seq<u64>
  gset @items, %is
  %os = new Seq<u64>
  gset @offs, %os
  gset @p0v, %p0
  %zero = const 0 : u64
  %na = size %a
  forrange %zero, %na -> [%i] {
    %x = read %a, %i
    append %is, %x
    yield
  }
  %nc = size %c
  forrange %zero, %nc -> [%i] {
    %o = read %c, %i
    append %os, %o
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %items = gget @items
  %offs = gget @offs
  %support = gget @p0v
  %zero = const 0 : u64
  %one = const 1 : u64
  %ntrans0 = size %offs
  %ntrans = sub %ntrans0, %one
  // Pass 1: item frequencies.
  %counts = new Map<u64, u64>
  forrange %zero, %ntrans -> [%t] {
    %lo = read %offs, %t
    %t1 = add %t, %one
    %hi = read %offs, %t1
    forrange %lo, %hi -> [%j] {
      %it = read %items, %j
      %hasit = has %counts, %it
      %cur = if %hasit {
        %c0 = read %counts, %it
        yield %c0
      } else {
        yield %zero
      }
      %c1 = add %cur, %one
      write %counts, %it, %c1
      yield
    }
    yield
  }
  %freq = new Set<u64>
  foreach %counts -> [%it, %cnt] {
    %isFreq = ge %cnt, %support
    if %isFreq {
      insert %freq, %it
      yield
    } else {
      yield
    }
    yield
  }
  // Pass 2: frequent-pair counting over a nested map.
  %pairs = new Map<u64, Map<u64, u64>>
  forrange %zero, %ntrans -> [%t] {
    %lo = read %offs, %t
    %t1 = add %t, %one
    %hi = read %offs, %t1
    forrange %lo, %hi -> [%j1] {
      %i1 = read %items, %j1
      %f1 = has %freq, %i1
      if %f1 {
        %j1p = add %j1, %one
        forrange %j1p, %hi -> [%j2] {
          %i2 = read %items, %j2
          %same = eq %i1, %i2
          if %same {
            yield
          } else {
            %f2 = has %freq, %i2
            if %f2 {
              %a = min %i1, %i2
              %b = max %i1, %i2
              %hasA = has %pairs, %a
              if %hasA {
                yield
              } else {
                %inner0 = new Map<u64, u64>
                write %pairs, %a, %inner0
                yield
              }
              %inner = read %pairs, %a
              %hasB = has %inner, %b
              %cur = if %hasB {
                %c0 = read %inner, %b
                yield %c0
              } else {
                yield %zero
              }
              %c1 = add %cur, %one
              write %inner, %b, %c1
              yield
            } else {
              yield
            }
            yield
          }
          yield
        }
        yield
      } else {
        yield
      }
      yield
    }
    yield
  }
  // Frequent pairs.
  %fp, %tc = foreach %pairs -> [%a2, %inner2] iter(%acc = %zero, %tot = %zero) {
    %acc2, %tot2 = foreach %inner2 -> [%b2, %c2] iter(%ai = %acc, %ti = %tot) {
      %isF = ge %c2, %support
      %inc = select %isF, %one, %zero
      %ai2 = add %ai, %inc
      %ti2 = add %ti, %c2
      yield %ai2, %ti2
    }
    yield %acc2, %tot2
  }
  %nf = size %freq
  %r0 = add %fp, %nf
  %r = add %r0, %tc
  ret %r
}
)";

const char *const ade::bench::kBcSource = R"(global @nodes : Seq<u64>
global @adj : Map<u64, Seq<u64>>
global @p0v : u64
fn @ensure(%u: u64) {
  %adj = gget @adj
  %c = has %adj, %u
  if %c {
    yield
  } else {
    %s = new Seq<u64>
    write %adj, %u, %s
    %ns = gget @nodes
    append %ns, %u
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %am = new Map<u64, Seq<u64>>
  gset @adj, %am
  %nsq = new Seq<u64>
  gset @nodes, %nsq
  gset @p0v, %p0
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %u = read %a, %i
    %v = read %b, %i
    call @ensure(%u)
    call @ensure(%v)
    %adj = gget @adj
    %lu = read %adj, %u
    append %lu, %v
    %lv = read %adj, %v
    append %lv, %u
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %adj = gget @adj
  %nodes = gget @nodes
  %zero = const 0 : u64
  %one = const 1 : u64
  %onef = const 1.0 : f64
  %sources = gget @p0v
  %bc = new Map<u64, f64>
  %zf = const 0.0 : f64
  foreach %nodes -> [%i, %u] {
    write %bc, %u, %zf
    yield
  }
  forrange %zero, %sources -> [%s] {
    %src = read %nodes, %s
    %dist = new Map<u64, u64>
    %sigma = new Map<u64, f64>
    %order = new Seq<u64>
    write %dist, %src, %zero
    write %sigma, %src, %onef
    append %order, %src
    // Forward BFS recording visit order, distances and path counts.
    %end = dowhile iter(%head = %zero) {
      %len = size %order
      %haveWork = lt %head, %len
      %head2 = if %haveWork {
        %u = read %order, %head
        %du = read %dist, %u
        %du1 = add %du, %one
        %neigh = read %adj, %u
        %sigu = read %sigma, %u
        foreach %neigh -> [%j, %v] {
          %seen = has %dist, %v
          if %seen {
            %dv = read %dist, %v
            %onPath = eq %dv, %du1
            if %onPath {
              %sv = read %sigma, %v
              %sv2 = add %sv, %sigu
              write %sigma, %v, %sv2
              yield
            } else {
              yield
            }
            yield
          } else {
            write %dist, %v, %du1
            write %sigma, %v, %sigu
            append %order, %v
            yield
          }
          yield
        }
        %h2 = add %head, %one
        yield %h2
      } else {
        yield %head
      }
      %len2 = size %order
      %more = lt %head2, %len2
      yield %more, %head2
    }
    // Backward accumulation of dependencies.
    %delta = new Map<u64, f64>
    %olen = size %order
    forrange %zero, %olen -> [%r] {
      %last = sub %olen, %one
      %ridx = sub %last, %r
      %w = read %order, %ridx
      %hasd = has %delta, %w
      %dw = if %hasd {
        %d0 = read %delta, %w
        yield %d0
      } else {
        yield %zf
      }
      %sw = read %sigma, %w
      %dwp1 = add %onef, %dw
      %coef = div %dwp1, %sw
      %dwu = read %dist, %w
      %neigh = read %adj, %w
      foreach %neigh -> [%j, %v] {
        %dv = read %dist, %v
        %dv1 = add %dv, %one
        %isPred = eq %dwu, %dv1
        if %isPred {
          %sv = read %sigma, %v
          %contrib = mul %sv, %coef
          %hasdv = has %delta, %v
          %cur = if %hasdv {
            %c0 = read %delta, %v
            yield %c0
          } else {
            yield %zf
          }
          %nv = add %cur, %contrib
          write %delta, %v, %nv
          yield
        } else {
          yield
        }
        yield
      }
      %isSrc = eq %w, %src
      if %isSrc {
        yield
      } else {
        %b0 = read %bc, %w
        %b1 = add %b0, %dw
        write %bc, %w, %b1
        yield
      }
      yield
    }
    yield
  }
  // Checksum: sum of truncated centralities in stable node order.
  %cnt = foreach %nodes -> [%i, %u] iter(%acc = %zero) {
    %b = read %bc, %u
    %bi = cast %b : u64
    %a2 = add %acc, %bi
    yield %a2
  }
  ret %cnt
}
)";

const char *const ade::bench::kPtaSourceTemplate = R"(global @pts : Map<u64, Set<u64>>
global @ca : Seq<u64>
global @cb : Seq<u64>
global @ck : Seq<u64>
fn @ensurepts(%x: u64) {
  %pts = gget @pts
  %c = has %pts, %x
  if %c {
    yield
  } else {
__INNER__
    %s = new Set<u64>
    write %pts, %x, %s
    yield
  }
  ret
}
fn @build(%a: Seq<u64>, %b: Seq<u64>, %c: Seq<u64>, %p0: u64, %p1: u64) {
  %pm = new Map<u64, Set<u64>>
  gset @pts, %pm
  %cas = new Seq<u64>
  gset @ca, %cas
  %cbs = new Seq<u64>
  gset @cb, %cbs
  %cks = new Seq<u64>
  gset @ck, %cks
  %n = size %a
  %zero = const 0 : u64
  forrange %zero, %n -> [%i] {
    %x = read %a, %i
    %y = read %b, %i
    %k = read %c, %i
    %isAddr = eq %k, %zero
    call @ensurepts(%x)
    if %isAddr {
      %pts = gget @pts
      %sx = read %pts, %x
      insert %sx, %y
      yield
    } else {
      call @ensurepts(%y)
      append %cas, %x
      append %cbs, %y
      append %cks, %k
      yield
    }
    yield
  }
  ret
}
fn @kernel() -> u64 {
  %pts = gget @pts
  %ca = gget @ca
  %cb = gget @cb
  %ck = gget @ck
  %zero = const 0 : u64
  %one = const 1 : u64
  %two = const 2 : u64
  %three = const 3 : u64
  %n = size %ca
  %rounds = dowhile iter(%rnd = %zero) {
    %changed = forrange %zero, %n -> [%i] iter(%ch = %zero) {
      %k = read %ck, %i
      %a = read %ca, %i
      %b = read %cb, %i
      %isCopy = eq %k, %one
      %ch4 = if %isCopy {
        %sa = read %pts, %a
        %sb = read %pts, %b
        %before = size %sa
        union %sa, %sb
        %after = size %sa
        %grew = gt %after, %before
        %inc = select %grew, %one, %zero
        %c2 = add %ch, %inc
        yield %c2
      } else {
        %isStore = eq %k, %two
        %ch3 = if %isStore {
          %sa2 = read %pts, %a
          %sb2 = read %pts, %b
          %c3 = foreach %sa2 -> [%t] iter(%cc = %ch) {
            call @ensurepts(%t)
            %st = read %pts, %t
            %bf = size %st
            union %st, %sb2
            %af = size %st
            %grew2 = gt %af, %bf
            %inc2 = select %grew2, %one, %zero
            %cc2 = add %cc, %inc2
            yield %cc2
          }
          yield %c3
        } else {
          %isLoad = eq %k, %three
          %ch2 = if %isLoad {
            %sa3 = read %pts, %a
            %sb3 = read %pts, %b
            %c4 = foreach %sb3 -> [%t2] iter(%cc3 = %ch) {
              call @ensurepts(%t2)
              %st2 = read %pts, %t2
              %bf2 = size %sa3
              union %sa3, %st2
              %af2 = size %sa3
              %g3 = gt %af2, %bf2
              %inc3 = select %g3, %one, %zero
              %cc4 = add %cc3, %inc3
              yield %cc4
            }
            yield %c4
          } else {
            yield %ch
          }
          yield %ch2
        }
        yield %ch3
      }
      yield %ch4
    }
    %more = gt %changed, %zero
    %rnd2 = add %rnd, %one
    yield %more, %rnd2
  }
  %total = foreach %pts -> [%p, %s] iter(%acc = %zero) {
    %sz = size %s
    %a5 = add %acc, %sz
    yield %a5
  }
  %r = add %total, %rounds
  ret %r
}
)";
