//===- Harness.h - Benchmark execution harness ------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark under one compiler configuration, timing
/// initialization (@build) and the region of interest (@kernel)
/// separately, and gathering the dynamic statistics and peak collection
/// memory behind the paper's figures. Configurations mirror the
/// artifact's: memoir, ade, ade-noredundant, ade-nopropagation,
/// ade-nosharing, memoir-abseil, ade-abseil, ade-sparse.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_HARNESS_H
#define ADE_BENCH_HARNESS_H

#include "bench/Benchmarks.h"
#include "runtime/Stats.h"
#include "runtime/Telemetry.h"
#include "vm/Engine.h"

#include <string>

namespace ade {
namespace interp {
class ProfileData;
class Profiler;
}
namespace bench {

/// The artifact's compiler configurations.
enum class Config {
  Memoir,       // Baseline: Hash{Set,Map} defaults, no ADE.
  Ade,          // ADE with all optimizations.
  AdeNoRTE,     // ade-noredundant (RQ3).
  AdeNoProp,    // ade-nopropagation (RQ3).
  AdeNoShare,   // ade-nosharing (RQ3; implies no propagation).
  MemoirSwiss,  // memoir-abseil: Swiss{Set,Map} defaults, no ADE (RQ5).
  AdeSwiss,     // ade-abseil: ADE with Swiss defaults elsewhere (RQ5).
  AdeSparse,    // ade-sparse: SparseBitSet for enumerated sets.
};

const char *configName(Config C);

/// Measurements from one run.
struct RunResult {
  double InitSeconds = 0;  // @build
  double RoiSeconds = 0;   // @kernel
  double totalSeconds() const { return InitSeconds + RoiSeconds; }
  uint64_t Checksum = 0;
  uint64_t PeakBytes = 0;
  /// Hash-table rehashes over the whole run. Measured only when a
  /// profiler is attached (RunOptions::Prof or MeasureRehashes); 0
  /// otherwise.
  uint64_t Rehashes = 0;
  /// Selections the profile changed versus the static heuristic and
  /// capacity pre-sizing hints inserted (PGO compiles only).
  uint64_t SelectionChanges = 0;
  uint64_t ReserveHints = 0;
  /// Journal events this run emitted, per kind (delta over the run).
  /// Measured only when RunOptions::Telemetry is attached; 0 otherwise.
  uint64_t Events[size_t(runtime::EventKind::NumKinds)] = {};
  runtime::InterpStats Stats;
};

/// Options for a run.
struct RunOptions {
  uint64_t ScalePercent = 100;
  bool CollectStats = true;
  /// Optional source-attributed profiler attached to the run's
  /// interpreter (counts accumulate across runs sharing one profiler).
  interp::Profiler *Prof = nullptr;
  /// Measured data from a training run: enables profile-guided selection
  /// in the ADE compile (the in-process equivalent of
  /// `adec --profile-use`). Ignored by configurations that skip ADE.
  const interp::ProfileData *ProfileUse = nullptr;
  /// Attach a run-private profiler (when Prof is unset) so
  /// RunResult::Rehashes is measured. Adds per-op attribution overhead,
  /// so timing comparisons must use it on both sides or neither.
  bool MeasureRehashes = false;
  /// Optional runtime telemetry sink attached to the run's interpreter
  /// (see runtime/Telemetry.h). Shared across runs; RunResult::Events
  /// holds this run's delta of the sink's journal totals.
  runtime::Telemetry *Telemetry = nullptr;
  /// Extra pragma injected at PTA's inner allocation sites (RQ4); applies
  /// to the PTA benchmark only.
  std::string PtaInnerPragma;
  /// Execution engine: the reference tree-walker or the bytecode VM.
  /// Checksums and dynamic stats are identical either way; only wall
  /// clock changes.
  vm::EngineKind Engine = vm::EngineKind::Tree;
};

/// Runs \p B under \p C.
RunResult runBenchmark(const BenchmarkSpec &B, Config C,
                       const RunOptions &Options = {});

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_HARNESS_H
