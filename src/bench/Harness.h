//===- Harness.h - Benchmark execution harness ------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark under one compiler configuration, timing
/// initialization (@build) and the region of interest (@kernel)
/// separately, and gathering the dynamic statistics and peak collection
/// memory behind the paper's figures. Configurations mirror the
/// artifact's: memoir, ade, ade-noredundant, ade-nopropagation,
/// ade-nosharing, memoir-abseil, ade-abseil, ade-sparse.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_HARNESS_H
#define ADE_BENCH_HARNESS_H

#include "bench/Benchmarks.h"
#include "runtime/Stats.h"

#include <string>

namespace ade {
namespace interp {
class Profiler;
}
namespace bench {

/// The artifact's compiler configurations.
enum class Config {
  Memoir,       // Baseline: Hash{Set,Map} defaults, no ADE.
  Ade,          // ADE with all optimizations.
  AdeNoRTE,     // ade-noredundant (RQ3).
  AdeNoProp,    // ade-nopropagation (RQ3).
  AdeNoShare,   // ade-nosharing (RQ3; implies no propagation).
  MemoirSwiss,  // memoir-abseil: Swiss{Set,Map} defaults, no ADE (RQ5).
  AdeSwiss,     // ade-abseil: ADE with Swiss defaults elsewhere (RQ5).
  AdeSparse,    // ade-sparse: SparseBitSet for enumerated sets.
};

const char *configName(Config C);

/// Measurements from one run.
struct RunResult {
  double InitSeconds = 0;  // @build
  double RoiSeconds = 0;   // @kernel
  double totalSeconds() const { return InitSeconds + RoiSeconds; }
  uint64_t Checksum = 0;
  uint64_t PeakBytes = 0;
  runtime::InterpStats Stats;
};

/// Options for a run.
struct RunOptions {
  uint64_t ScalePercent = 100;
  bool CollectStats = true;
  /// Optional source-attributed profiler attached to the run's
  /// interpreter (counts accumulate across runs sharing one profiler).
  interp::Profiler *Prof = nullptr;
  /// Extra pragma injected at PTA's inner allocation sites (RQ4); applies
  /// to the PTA benchmark only.
  std::string PtaInnerPragma;
};

/// Runs \p B under \p C.
RunResult runBenchmark(const BenchmarkSpec &B, Config C,
                       const RunOptions &Options = {});

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_HARNESS_H
