//===- BenchmarksInternal.h - Benchmark source fragments ---------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private declarations of the embedded .memoir source fragments that
/// Benchmarks.cpp assembles into the registry. Split across translation
/// units purely to keep files reviewable.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_BENCH_BENCHMARKSINTERNAL_H
#define ADE_BENCH_BENCHMARKSINTERNAL_H

namespace ade {
namespace bench {

// BenchmarksGraph.cpp — Seq-adjacency family.
extern const char *const kSeqGraphPrelude;
extern const char *const kBfsKernel;
extern const char *const kCcKernel;
extern const char *const kCdKernel;
extern const char *const kPrKernel;
extern const char *const kIsKernel;
extern const char *const kKcKernel;
extern const char *const kSsspSource;
extern const char *const kMstSource;

// BenchmarksOther.cpp — Set-adjacency, bipartite and non-graph programs.
extern const char *const kSetGraphPrelude;
extern const char *const kTcKernel;
extern const char *const kKtKernel;
extern const char *const kMcbmSource;
extern const char *const kPpSource;
extern const char *const kBpSource;
extern const char *const kFimSource;
extern const char *const kBcSource;
extern const char *const kPtaSourceTemplate; // Contains __INNER__ markers.

} // namespace bench
} // namespace ade

#endif // ADE_BENCH_BENCHMARKSINTERNAL_H
