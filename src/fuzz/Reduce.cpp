//===- Reduce.cpp - Delta-debugging test-case reduction -------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every candidate is produced by a text round-trip: parse the current
// program, mutate the IR, print it back. Candidates that no longer parse,
// verify or fail the same way are simply rejected by the predicate, so
// the passes can be aggressive — an instruction drop that breaks a region
// terminator just wastes one attempt.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reduce.h"

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/CrashHandler.h"

#include <unordered_set>

using namespace ade;
using namespace ade::fuzz;
using namespace ade::ir;

namespace {

/// Collects every instruction of \p F in pre-order. The order is a
/// parse-stable addressing scheme: the Nth instruction of a function is
/// the same statement across a print/reparse round-trip.
void collectPreOrder(Region &R, std::vector<Instruction *> &Out) {
  for (Instruction *I : R) {
    Out.push_back(I);
    for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
      collectPreOrder(*I->region(Idx), Out);
  }
}

/// The driver shared by all passes: owns the current best program and
/// the predicate.
class Reducer {
public:
  Reducer(std::string Source, const ReduceOptions &Opts)
      : Best(std::move(Source)), Opts(Opts) {}

  ReduceResult run() {
    ReduceResult Result;
    Target = runOracle(Best, Opts.Oracle).Kind;
    Result.Kind = Target;
    if (Target == FindingKind::None) {
      Result.Reduced = Best;
      return Result;
    }
    for (unsigned Round = 0; Round != Opts.MaxRounds; ++Round) {
      CrashContext CC("reducing", "round " + std::to_string(Round));
      unsigned Before = Accepted;
      dropUnreferencedFunctions();
      dropInstructions();
      dropUnreferencedGlobals();
      shrinkConstants();
      if (Accepted == Before)
        break; // Fixed point.
    }
    Result.Reduced = Best;
    Result.Attempts = Attempts;
    Result.Accepted = Accepted;
    return Result;
  }

private:
  /// Tests a candidate; adopts it when the finding survives.
  bool consider(Module &M) {
    std::string Text = toString(M);
    if (Text.size() > Best.size())
      return false; // Never grow (constant shrinks may keep the length).
    ++Attempts;
    if (runOracle(Text, Opts.Oracle).Kind != Target)
      return false;
    Best = std::move(Text);
    ++Accepted;
    return true;
  }

  std::unique_ptr<Module> parseBest() {
    std::vector<std::string> Errors;
    auto M = parser::parseModule(Best, Errors);
    // Best always parses: it is either the (failing-but-parseable) input
    // or a previously adopted round-trip — unless the finding itself is
    // a parse error, in which case IR-level passes cannot run.
    return M;
  }

  //===--------------------------------------------------------------------===//
  // Pass 1: drop functions not reachable from @main
  //===--------------------------------------------------------------------===//

  void dropUnreferencedFunctions() {
    auto M = parseBest();
    if (!M)
      return;
    std::unordered_set<std::string> Called;
    for (const auto &F : M->functions()) {
      std::vector<Instruction *> Insts;
      collectPreOrder(F->body(), Insts);
      for (const Instruction *I : Insts)
        if (I->op() == Opcode::Call)
          Called.insert(I->symbol());
    }
    std::vector<Function *> Victims;
    for (const auto &F : M->functions())
      if (F->name() != "main" && !Called.count(F->name()))
        Victims.push_back(F.get());
    if (Victims.empty())
      return;
    for (Function *F : Victims)
      M->removeFunction(F);
    consider(*M);
  }

  /// Globals whose gset/gget instructions were all dropped serve no
  /// observable purpose anymore (an unset global reads as zero in every
  /// variant alike).
  void dropUnreferencedGlobals() {
    auto M = parseBest();
    if (!M)
      return;
    std::unordered_set<std::string> Referenced;
    for (const auto &F : M->functions()) {
      std::vector<Instruction *> Insts;
      collectPreOrder(F->body(), Insts);
      for (const Instruction *I : Insts)
        if (I->op() == Opcode::GlobalGet || I->op() == Opcode::GlobalSet)
          Referenced.insert(I->symbol());
    }
    std::vector<GlobalVariable *> Victims;
    for (const auto &G : M->globals())
      if (!Referenced.count(G->Name))
        Victims.push_back(G.get());
    if (Victims.empty())
      return;
    for (GlobalVariable *G : Victims)
      M->removeGlobal(G);
    consider(*M);
  }

  //===--------------------------------------------------------------------===//
  // Pass 2: drop single instructions
  //===--------------------------------------------------------------------===//

  /// How a result-replacement attempt went.
  enum class Neutralize {
    Impossible,   ///< A used result we cannot synthesize a stand-in for.
    Zeroed,       ///< All used results rerouted to zero constants (or
                  ///< there were none).
    Forwarded,    ///< At least one result rerouted to a same-typed
                  ///< operand (e.g. a loop result to its iter init),
                  ///< preserving the dataflow through the instruction.
  };

  /// Replaces each of \p I's *used* results so the instruction becomes
  /// erasable. Use-free results need no replacement — those drops shrink
  /// the program outright, which is what lets dead chains cascade away
  /// over rounds. With \p PreferOperands, a result is first rerouted to
  /// an operand of the same type: that turns a loop into a pass-through
  /// of its init value instead of severing the dataflow at zero.
  static Neutralize neutralizeResults(Module &M, Instruction *I,
                                      bool PreferOperands) {
    for (unsigned Idx = 0; Idx != I->numResults(); ++Idx) {
      Value *R = I->result(Idx);
      if (!R->hasUses())
        continue;
      Type *Ty = R->type();
      if (Ty->isCollection() || isa<EnumType>(Ty))
        return Neutralize::Impossible;
    }
    Neutralize Outcome = Neutralize::Zeroed;
    IRBuilder B(M);
    B.setInsertionPointBefore(I);
    for (unsigned Idx = 0; Idx != I->numResults(); ++Idx) {
      Value *R = I->result(Idx);
      if (!R->hasUses())
        continue;
      Type *Ty = R->type();
      Value *Stand = nullptr;
      if (PreferOperands) {
        for (unsigned Op = 0; Op != I->numOperands(); ++Op)
          if (I->operand(Op)->type() == Ty) {
            Stand = I->operand(Op);
            Outcome = Neutralize::Forwarded;
            break;
          }
      }
      if (!Stand)
        Stand = isa<BoolType>(Ty) ? B.constBool(false)
                : isa<FloatType>(Ty) ? B.constF64(0.0)
                                     : B.constInt(0, Ty);
      R->replaceAllUsesWith(Stand);
    }
    return Outcome;
  }

  void dropInstructions() {
    // Addressing is (function name, pre-order index): stable across the
    // reparse each candidate starts from. Reverse order drops users
    // before definitions.
    auto Template = parseBest();
    if (!Template)
      return;
    for (const auto &F : Template->functions()) {
      std::vector<Instruction *> Insts;
      collectPreOrder(F->body(), Insts);
      for (size_t Idx = Insts.size(); Idx-- > 0;) {
        // Terminators keep regions well-formed; never worth an attempt.
        Opcode Op = Insts[Idx]->op();
        if (Op == Opcode::Yield || Op == Opcode::Ret)
          continue;
        // Strategy 0 forwards results to same-typed operands; strategy 1
        // falls back to zero constants. When 0 forwarded nothing the two
        // candidates are identical, so 1 is skipped.
        for (int Strategy = 0; Strategy != 2; ++Strategy) {
          auto M = parseBest();
          if (!M)
            return;
          Function *MF = M->getFunction(F->name());
          if (!MF)
            break;
          std::vector<Instruction *> MInsts;
          collectPreOrder(MF->body(), MInsts);
          if (Idx >= MInsts.size())
            break;
          Instruction *I = MInsts[Idx];
          Neutralize N =
              neutralizeResults(*M, I, /*PreferOperands=*/Strategy == 0);
          if (N == Neutralize::Impossible)
            break;
          I->eraseFromParent();
          if (consider(*M))
            break;
          if (N != Neutralize::Forwarded)
            break;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Pass 3: shrink integer constants
  //===--------------------------------------------------------------------===//

  void shrinkConstants() {
    auto Template = parseBest();
    if (!Template)
      return;
    for (const auto &F : Template->functions()) {
      std::vector<Instruction *> Insts;
      collectPreOrder(F->body(), Insts);
      for (size_t Idx = 0; Idx != Insts.size(); ++Idx) {
        if (Insts[Idx]->op() != Opcode::ConstInt)
          continue;
        int64_t V = Insts[Idx]->intAttr();
        if (V == 0)
          continue;
        for (int64_t Candidate : {int64_t(0), V / 2}) {
          if (Candidate == V)
            continue;
          auto M = parseBest();
          if (!M)
            return;
          Function *MF = M->getFunction(F->name());
          if (!MF)
            continue;
          std::vector<Instruction *> MInsts;
          collectPreOrder(MF->body(), MInsts);
          if (Idx >= MInsts.size() || MInsts[Idx]->op() != Opcode::ConstInt)
            continue;
          MInsts[Idx]->setIntAttr(Candidate);
          if (consider(*M))
            break;
        }
      }
    }
  }

  std::string Best;
  ReduceOptions Opts;
  FindingKind Target = FindingKind::None;
  unsigned Attempts = 0;
  unsigned Accepted = 0;
};

} // namespace

ReduceResult ade::fuzz::reduceProgram(const std::string &Source,
                                      const ReduceOptions &Opts) {
  return Reducer(Source, Opts).run();
}
