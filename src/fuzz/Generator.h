//===- Generator.h - Random MEMOIR program generation -----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-deterministic random program generation for differential fuzzing
/// (see DESIGN.md "Robustness"). Valid mode emits well-typed, UB-free,
/// terminating programs over sets/maps/sequences with structured control
/// flow, calls, `#pragma ade` directives and `reserve` — every program
/// parses, verifies and computes a checksum whose value must survive the
/// ADE transformation unchanged. Hostile mode additionally applies random
/// text-level damage to stress parser/verifier diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_FUZZ_GENERATOR_H
#define ADE_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

namespace ade {
namespace fuzz {

/// Tunables for one generated program. The seed fully determines the
/// output: equal options produce byte-identical text.
struct GeneratorOptions {
  uint64_t Seed = 0;
  /// Damage the program after generation (near-miss-invalid inputs for
  /// the parser/verifier; such programs must never crash the pipeline).
  bool Hostile = false;
  /// Statement budget for @main's top-level block.
  unsigned MainStatements = 24;
  /// Upper bound on generated helper functions (possibly called).
  unsigned MaxHelpers = 2;
};

/// Returns the textual .memoir program for \p Opts.
std::string generateProgram(const GeneratorOptions &Opts);

} // namespace fuzz
} // namespace ade

#endif // ADE_FUZZ_GENERATOR_H
