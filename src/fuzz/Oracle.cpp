//===- Oracle.cpp - Differential oracle for the ADE pipeline --------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/Checkers.h"
#include "core/Pipeline.h"
#include "interp/InterpError.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/CrashHandler.h"
#include "vm/Engine.h"

using namespace ade;
using namespace ade::fuzz;
using namespace ade::ir;

const char *ade::fuzz::findingKindName(FindingKind K) {
  switch (K) {
  case FindingKind::None:
    return "none";
  case FindingKind::ParseError:
    return "parse-error";
  case FindingKind::VerifyError:
    return "verify-error";
  case FindingKind::RuntimeError:
    return "runtime-error";
  case FindingKind::Divergence:
    return "divergence";
  }
  return "unknown";
}

namespace {

/// One pipeline configuration the oracle pits against the baseline.
struct Variant {
  const char *Name;
  core::PipelineConfig Config;
};

std::vector<Variant> makeVariants() {
  std::vector<Variant> Out;
  auto Add = [&](const char *Name, auto Tweak) {
    core::PipelineConfig C;
    // The oracle verifies and audits non-fatally itself: verifyOrDie or a
    // failed self-audit would kill the fuzzing process on the very inputs
    // it exists to find.
    C.Verify = false;
    Tweak(C);
    Out.push_back({Name, C});
  };
  Add("ade", [](core::PipelineConfig &) {});
  Add("ade-no-rte", [](core::PipelineConfig &C) { C.EnableRTE = false; });
  Add("ade-no-sharing",
      [](core::PipelineConfig &C) { C.EnableSharing = false; });
  Add("ade-no-propagation",
      [](core::PipelineConfig &C) { C.EnablePropagation = false; });
  Add("ade-sparse", [](core::PipelineConfig &C) {
    C.Selection.EnumeratedSet = ir::Selection::SparseBitSet;
  });
  return Out;
}

/// The names of the scalar (comparable) globals of the baseline module.
/// Collections and enumerations are excluded: their representation — and
/// for enumerations their very existence — legitimately changes under
/// the transformation.
std::vector<std::string> scalarGlobals(const Module &M) {
  std::vector<std::string> Out;
  for (const auto &G : M.globals())
    if (!G->Ty->isCollection() && !isa<EnumType>(G->Ty))
      Out.push_back(G->Name);
  return Out;
}

/// Interprets @main under \p K and captures the observables.
Observation observe(const Module &M, const std::vector<std::string> &Globals,
                    const OracleOptions &Opts, vm::EngineKind K) {
  Observation Obs;
  const Function *Main = M.getFunction("main");
  if (!Main) {
    Obs.Error = "no @main function";
    return Obs;
  }
  interp::InterpOptions IO;
  IO.MaxSteps = Opts.MaxSteps;
  IO.MaxBytes = Opts.MaxBytes;
  IO.MaxDepth = Opts.MaxDepth;
  vm::Engine I(K, M, IO);
  try {
    Obs.Result = I.call(Main, {});
  } catch (const interp::InterpError &E) {
    Obs.Error = E.what();
    return Obs;
  }
  Obs.Ok = true;
  for (const std::string &Name : Globals)
    Obs.Globals.push_back(I.globalValue(Name));
  return Obs;
}

/// The two engines must be bit-equal in every observable, including the
/// diagnostic text of a failed run (same error at the same source
/// location in the same function). Empty string when they agree.
std::string engineMismatch(const Observation &Tree, const Observation &Vm,
                           const std::vector<std::string> &Globals) {
  if (Tree.Ok != Vm.Ok)
    return Vm.Ok ? "tree-walker failed (" + Tree.Error +
                       ") but the vm succeeded"
                 : "vm failed (" + Vm.Error + ") but the tree-walker "
                                              "succeeded";
  if (!Tree.Ok)
    return Tree.Error == Vm.Error
               ? ""
               : "diagnostics differ: tree-walker '" + Tree.Error +
                     "', vm '" + Vm.Error + "'";
  if (Tree.Result != Vm.Result)
    return "@main returned " + std::to_string(Vm.Result) +
           " under the vm, " + std::to_string(Tree.Result) +
           " under the tree-walker";
  for (size_t I = 0; I != Globals.size(); ++I)
    if (Tree.Globals[I] != Vm.Globals[I])
      return "@" + Globals[I] + " = " + std::to_string(Vm.Globals[I]) +
             " under the vm, " + std::to_string(Tree.Globals[I]) +
             " under the tree-walker";
  return "";
}

/// Self-test sabotage: erases the first `insert` of the module. The
/// module still verifies, but one element never lands in its collection
/// — exactly the shape of a miscompiled transformation, which the oracle
/// must flag as a divergence.
bool plantBug(Module &M) {
  for (const auto &F : M.functions()) {
    if (F->isExternal())
      continue;
    struct Walker {
      static Instruction *findInsert(Region &R) {
        for (Instruction *I : R) {
          if (I->op() == Opcode::Insert)
            return I;
          for (unsigned Idx = 0; Idx != I->numRegions(); ++Idx)
            if (Instruction *Found = findInsert(*I->region(Idx)))
              return Found;
        }
        return nullptr;
      }
    };
    if (Instruction *I = Walker::findInsert(F->body())) {
      I->eraseFromParent();
      return true;
    }
  }
  return false;
}

std::string describeMismatch(const Observation &Base,
                             const Observation &Var,
                             const std::vector<std::string> &Globals) {
  if (Base.Ok != Var.Ok)
    return Var.Ok ? "baseline failed (" + Base.Error +
                        ") but the variant succeeded"
                  : "variant failed: " + Var.Error;
  if (Base.Result != Var.Result)
    return "@main returned " + std::to_string(Var.Result) + ", baseline " +
           std::to_string(Base.Result);
  for (size_t I = 0; I != Globals.size(); ++I)
    if (Base.Globals[I] != Var.Globals[I])
      return "@" + Globals[I] + " = " + std::to_string(Var.Globals[I]) +
             ", baseline " + std::to_string(Base.Globals[I]);
  return "";
}

} // namespace

std::vector<std::string> ade::fuzz::oracleVariants() {
  std::vector<std::string> Out;
  for (const Variant &V : makeVariants())
    Out.push_back(V.Name);
  return Out;
}

OracleResult ade::fuzz::runOracle(const std::string &Source,
                                  const OracleOptions &Opts) {
  OracleResult Result;
  CrashContext CC("oracle");

  // Baseline: parse, verify, interpret untransformed.
  std::vector<std::string> Errors;
  auto Base = parser::parseModule(Source, Errors);
  if (!Base) {
    Result.Kind = FindingKind::ParseError;
    Result.Detail = Errors.empty() ? "parse failed" : Errors.front();
    return Result;
  }
  Errors.clear();
  if (!ir::verifyModule(*Base, Errors)) {
    Result.Kind = FindingKind::VerifyError;
    Result.Detail = Errors.empty() ? "verification failed" : Errors.front();
    return Result;
  }
  std::vector<std::string> Globals = scalarGlobals(*Base);
  Observation BaseObs;
  {
    CrashContext Run("oracle baseline");
    BaseObs = observe(*Base, Globals, Opts, vm::EngineKind::Tree);
    if (Opts.CheckVm) {
      Observation VmObs = observe(*Base, Globals, Opts, vm::EngineKind::Vm);
      std::string Mismatch = engineMismatch(BaseObs, VmObs, Globals);
      if (!Mismatch.empty()) {
        Result.Kind = FindingKind::Divergence;
        Result.Variant = "baseline/vm";
        Result.Detail = Mismatch;
        return Result;
      }
    }
  }
  if (!BaseObs.Ok) {
    Result.Kind = FindingKind::RuntimeError;
    Result.Variant = "baseline";
    Result.Detail = BaseObs.Error;
    return Result;
  }

  // Each variant gets its own freshly parsed module: runADE mutates in
  // place, and variants must not see each other's rewrites.
  for (const Variant &V : makeVariants()) {
    CrashContext Run("oracle variant", V.Name);
    std::vector<std::string> VErrors;
    auto M = parser::parseModule(Source, VErrors);
    if (!M) {
      Result.Kind = FindingKind::ParseError;
      Result.Variant = V.Name;
      Result.Detail = "reparse failed: " +
                      (VErrors.empty() ? std::string("?") : VErrors.front());
      return Result;
    }
    core::runADE(*M, V.Config);
    if (Opts.PlantBug)
      plantBug(*M);
    VErrors.clear();
    if (!ir::verifyModule(*M, VErrors)) {
      Result.Kind = FindingKind::VerifyError;
      Result.Variant = V.Name;
      Result.Detail = "transformed module rejected: " +
                      (VErrors.empty() ? std::string("?") : VErrors.front());
      return Result;
    }
    analysis::DiagnosticEngine DE;
    if (!analysis::auditEnumeration(*M, DE)) {
      Result.Kind = FindingKind::VerifyError;
      Result.Variant = V.Name;
      Result.Detail = "transformed module failed the enumeration audit";
      return Result;
    }
    Observation Obs = observe(*M, Globals, Opts, vm::EngineKind::Tree);
    if (Opts.CheckVm) {
      Observation VmObs = observe(*M, Globals, Opts, vm::EngineKind::Vm);
      std::string VmMismatch = engineMismatch(Obs, VmObs, Globals);
      if (!VmMismatch.empty()) {
        Result.Kind = FindingKind::Divergence;
        Result.Variant = std::string(V.Name) + "/vm";
        Result.Detail = VmMismatch;
        return Result;
      }
    }
    std::string Mismatch = describeMismatch(BaseObs, Obs, Globals);
    if (!Mismatch.empty()) {
      Result.Kind = Obs.Ok ? FindingKind::Divergence
                           : FindingKind::RuntimeError;
      Result.Variant = V.Name;
      Result.Detail = Mismatch;
      return Result;
    }
  }
  return Result;
}
