//===- Generator.cpp - Random MEMOIR program generation -------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The generator grows a program statement by statement, tracking the
// in-scope values of each type in pools. Three invariants keep valid-mode
// programs suitable as differential-fuzzing inputs:
//
//  1. UB-free by construction: map reads and sequence pops are guarded by
//     has/size checks, divisors are forced nonzero with `or %x, %one`,
//     and every loop is bounded, so a correct interpreter finishes every
//     program cleanly.
//  2. Deterministic observables: folds over unordered collections (sets,
//     maps) combine per-element terms with commutative operators only, so
//     the checksum is independent of iteration order — which the ADE
//     transformation is free to change (HashSet before, BitSet after).
//  3. Iteration safety: a collection is "frozen" while a foreach iterates
//     it; no statement inside the body mutates it.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "support/Random.h"

#include <vector>

using namespace ade;
using namespace ade::fuzz;

namespace {

class ProgramGenerator {
public:
  ProgramGenerator(const GeneratorOptions &Opts) : Opts(Opts), R(Opts.Seed) {}

  std::string run() {
    NumOuts = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I != NumOuts; ++I)
      Out += "global @out" + std::to_string(I) + " : u64\n";
    unsigned Helpers = static_cast<unsigned>(R.nextBelow(Opts.MaxHelpers + 1));
    for (unsigned I = 0; I != Helpers; ++I)
      genHelper(I);
    genMain(Helpers);
    if (Opts.Hostile)
      damage();
    return Out;
  }

private:
  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  void emit(const std::string &Line) {
    Out.append(2 * Indent, ' ');
    Out += Line;
    Out += '\n';
  }

  std::string fresh() { return "%v" + std::to_string(NextVal++); }

  /// In-scope values, by type. Collections also carry a frozen flag while
  /// a foreach iterates them.
  struct Coll {
    std::string Name;
    bool Frozen = false;
  };
  struct Pools {
    std::vector<std::string> U64;
    std::vector<std::string> Bool;
    std::vector<Coll> Sets;
    std::vector<Coll> Maps;
    std::vector<Coll> Seqs;
  };

  /// Saves pool sizes on entry to a nested region and drops the values
  /// the region defined on exit (they are out of scope afterwards).
  struct Scope {
    explicit Scope(Pools &P) : P(P), U(P.U64.size()), B(P.Bool.size()),
                               S(P.Sets.size()), M(P.Maps.size()),
                               Q(P.Seqs.size()) {}
    ~Scope() {
      P.U64.resize(U);
      P.Bool.resize(B);
      P.Sets.resize(S);
      P.Maps.resize(M);
      P.Seqs.resize(Q);
    }
    Pools &P;
    size_t U, B, S, M, Q;
  };

  std::string pickU64() { return P.U64[R.nextBelow(P.U64.size())]; }
  std::string pickBool() {
    if (P.Bool.empty())
      genCompare();
    return P.Bool[R.nextBelow(P.Bool.size())];
  }

  /// Picks a collection from \p V; Mutable requires a non-frozen one.
  /// Returns empty when none qualifies.
  std::string pickColl(std::vector<Coll> &V, bool Mutable) {
    std::vector<const Coll *> Ok;
    for (const Coll &C : V)
      if (!Mutable || !C.Frozen)
        Ok.push_back(&C);
    if (Ok.empty())
      return "";
    return Ok[R.nextBelow(Ok.size())]->Name;
  }

  void setFrozen(std::vector<Coll> &V, const std::string &Name, bool F) {
    for (Coll &C : V)
      if (C.Name == Name)
        C.Frozen = F;
  }

  /// Emits `const C : u64` and returns the fresh value name.
  std::string constOf(uint64_t C) {
    std::string V = fresh();
    emit(V + " = const " + std::to_string(C) + " : u64");
    P.U64.push_back(V);
    return V;
  }

  /// A key drawn from a small domain so enumerated universes stay small:
  /// masks an arbitrary u64 down to [0, 255].
  std::string smallKey() {
    std::string K = fresh();
    emit(K + " = and " + pickU64() + ", " + Mask);
    P.U64.push_back(K);
    return K;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void genConst() {
    std::string V = fresh();
    uint64_t C = R.nextBool(0.5) ? R.nextBelow(64)
                                 : R.next() >> (R.nextBelow(40) + 8);
    emit(V + " = const " + std::to_string(C) + " : u64");
    P.U64.push_back(V);
  }

  void genArith() {
    static const char *Ops[] = {"add", "sub", "mul", "min", "max",
                                "and", "or",  "xor", "shl", "shr"};
    std::string V = fresh();
    emit(V + " = " + Ops[R.nextBelow(std::size(Ops))] + " " + pickU64() +
         ", " + pickU64());
    P.U64.push_back(V);
  }

  void genDivRem() {
    // Force the divisor nonzero: `or %x, %one` has bit 0 set.
    std::string D = fresh();
    emit(D + " = or " + pickU64() + ", " + One);
    std::string V = fresh();
    emit(V + " = " + (R.nextBool() ? "div " : "rem ") + pickU64() + ", " + D);
    P.U64.push_back(D);
    P.U64.push_back(V);
  }

  void genCompare() {
    static const char *Ops[] = {"eq", "ne", "lt", "le", "gt", "ge"};
    std::string V = fresh();
    emit(V + " = " + Ops[R.nextBelow(std::size(Ops))] + " " + pickU64() +
         ", " + pickU64());
    P.Bool.push_back(V);
  }

  void genSelect() {
    std::string V = fresh();
    emit(V + " = select " + pickBool() + ", " + pickU64() + ", " + pickU64());
    P.U64.push_back(V);
  }

  /// Optionally emits a `#pragma ade` directive for the next `new`.
  /// Enumerated-only implementations (Bit*) are never forced by hand —
  /// picking them is the transformation's job.
  void genDirective(bool IsSet, bool IsMap) {
    if (!R.nextBool(0.3))
      return;
    switch (R.nextBelow(5)) {
    case 0:
      emit("#pragma ade enumerate");
      break;
    case 1:
      emit("#pragma ade noenumerate");
      break;
    case 2:
      emit("#pragma ade enumerate noshare");
      break;
    case 3:
      emit("#pragma ade share group(\"g" + std::to_string(R.nextBelow(3)) +
           "\")");
      break;
    default:
      if (IsSet) {
        static const char *Sels[] = {"HashSet", "FlatSet", "SwissSet"};
        emit("#pragma ade select(" +
             std::string(Sels[R.nextBelow(std::size(Sels))]) + ")");
      } else if (IsMap) {
        emit("#pragma ade select(" +
             std::string(R.nextBool() ? "HashMap" : "SwissMap") + ")");
      }
      break;
    }
  }

  void genNew() {
    std::string V = fresh();
    switch (R.nextBelow(3)) {
    case 0:
      genDirective(/*IsSet=*/true, /*IsMap=*/false);
      emit(V + " = new Set<u64>");
      P.Sets.push_back({V});
      break;
    case 1:
      genDirective(/*IsSet=*/false, /*IsMap=*/true);
      emit(V + " = new Map<u64, u64>");
      P.Maps.push_back({V});
      break;
    default:
      emit(V + " = new Seq<u64>");
      P.Seqs.push_back({V});
      break;
    }
  }

  void genInsert() {
    std::string S = pickColl(P.Sets, /*Mutable=*/true);
    if (S.empty())
      return genNew();
    emit("insert " + S + ", " + smallKey());
  }

  void genRemove() {
    std::string S = pickColl(P.Sets, /*Mutable=*/true);
    if (S.empty())
      return genNew();
    emit("remove " + S + ", " + smallKey());
  }

  void genHas() {
    bool OnMap = R.nextBool() && !P.Maps.empty();
    std::string C = OnMap ? pickColl(P.Maps, false) : pickColl(P.Sets, false);
    if (C.empty())
      return genNew();
    std::string V = fresh();
    emit(V + " = has " + C + ", " + smallKey());
    P.Bool.push_back(V);
  }

  void genWrite() {
    std::string M = pickColl(P.Maps, /*Mutable=*/true);
    if (M.empty())
      return genNew();
    emit("write " + M + ", " + smallKey() + ", " + pickU64());
  }

  /// Guarded map read: only reads keys proven present.
  void genMapRead() {
    std::string M = pickColl(P.Maps, /*Mutable=*/false);
    if (M.empty())
      return genNew();
    std::string K = smallKey();
    std::string H = fresh();
    emit(H + " = has " + M + ", " + K);
    std::string V = fresh();
    emit(V + " = if " + H + " {");
    {
      ++Indent;
      Scope Inner(P);
      std::string T = fresh();
      emit(T + " = read " + M + ", " + K);
      emit("yield " + T);
      --Indent;
    }
    emit("} else {");
    ++Indent;
    emit("yield " + Zero);
    --Indent;
    emit("}");
    P.U64.push_back(V);
  }

  void genAppend() {
    std::string Q = pickColl(P.Seqs, /*Mutable=*/true);
    if (Q.empty())
      return genNew();
    emit("append " + Q + ", " + pickU64());
  }

  /// Guarded pop: only pops nonempty sequences.
  void genPop() {
    std::string Q = pickColl(P.Seqs, /*Mutable=*/true);
    if (Q.empty())
      return genNew();
    std::string Sz = fresh();
    emit(Sz + " = size " + Q);
    std::string Nz = fresh();
    emit(Nz + " = gt " + Sz + ", " + Zero);
    std::string V = fresh();
    emit(V + " = if " + Nz + " {");
    {
      ++Indent;
      Scope Inner(P);
      std::string T = fresh();
      emit(T + " = pop " + Q);
      emit("yield " + T);
      --Indent;
    }
    emit("} else {");
    ++Indent;
    emit("yield " + Zero);
    --Indent;
    emit("}");
    P.U64.push_back(V);
    P.U64.push_back(Sz);
  }

  void genSize() {
    std::vector<Coll> *V = nullptr;
    switch (R.nextBelow(3)) {
    case 0:
      V = &P.Sets;
      break;
    case 1:
      V = &P.Maps;
      break;
    default:
      V = &P.Seqs;
      break;
    }
    std::string C = pickColl(*V, /*Mutable=*/false);
    if (C.empty())
      return genNew();
    std::string S = fresh();
    emit(S + " = size " + C);
    P.U64.push_back(S);
  }

  void genClear() {
    std::vector<Coll> *V = R.nextBool() ? &P.Sets : &P.Seqs;
    std::string C = pickColl(*V, /*Mutable=*/true);
    if (C.empty())
      return;
    emit("clear " + C);
  }

  void genReserve() {
    std::vector<Coll> *V = nullptr;
    switch (R.nextBelow(3)) {
    case 0:
      V = &P.Sets;
      break;
    case 1:
      V = &P.Maps;
      break;
    default:
      V = &P.Seqs;
      break;
    }
    std::string C = pickColl(*V, /*Mutable=*/false);
    if (C.empty())
      return genNew();
    emit("reserve " + C + ", " + constOf(R.nextBelow(512)));
  }

  void genUnion() {
    std::string Dst = pickColl(P.Sets, /*Mutable=*/true);
    std::string Src = pickColl(P.Sets, /*Mutable=*/false);
    if (Dst.empty() || Src.empty())
      return genInsert();
    emit("union " + Dst + ", " + Src);
  }

  void genIf(unsigned Depth) {
    std::string B = pickBool();
    std::string V = fresh();
    emit(V + " = if " + B + " {");
    {
      ++Indent;
      Scope Inner(P);
      genStatements(1 + R.nextBelow(4), Depth + 1);
      emit("yield " + pickU64());
      --Indent;
    }
    emit("} else {");
    {
      ++Indent;
      Scope Inner(P);
      genStatements(R.nextBelow(3), Depth + 1);
      emit("yield " + pickU64());
      --Indent;
    }
    emit("}");
    P.U64.push_back(V);
  }

  void genForRange(unsigned Depth) {
    std::string Hi = fresh();
    emit(Hi + " = const " + std::to_string(1 + R.nextBelow(10)) + " : u64");
    std::string V = fresh();
    std::string I = fresh();
    std::string A = fresh();
    emit(V + " = forrange " + Zero + ", " + Hi + " -> [" + I + "] iter(" + A +
         " = " + pickU64() + ") {");
    {
      ++Indent;
      Scope Inner(P);
      P.U64.push_back(I);
      P.U64.push_back(A);
      genStatements(1 + R.nextBelow(4), Depth + 1);
      std::string N = fresh();
      emit(N + " = add " + A + ", " + pickU64());
      emit("yield " + N);
      --Indent;
    }
    emit("}");
    P.U64.push_back(V);
  }

  void genDoWhile(unsigned Depth) {
    std::string Start = fresh();
    emit(Start + " = const " + std::to_string(1 + R.nextBelow(8)) + " : u64");
    std::string V = fresh();
    std::string I = fresh();
    emit(V + " = dowhile iter(" + I + " = " + Start + ") {");
    {
      ++Indent;
      Scope Inner(P);
      P.U64.push_back(I);
      genStatements(1 + R.nextBelow(3), Depth + 1);
      std::string D = fresh();
      emit(D + " = sub " + I + ", " + One);
      std::string C = fresh();
      emit(C + " = gt " + D + ", " + Zero);
      emit("yield " + C + ", " + D);
      --Indent;
    }
    emit("}");
    P.U64.push_back(V);
  }

  /// foreach over a sequence: iteration order is defined, so the body may
  /// contain arbitrary statements and an order-sensitive fold.
  void genForEachSeq(unsigned Depth) {
    std::string Q = pickColl(P.Seqs, /*Mutable=*/false);
    if (Q.empty())
      return genNew();
    setFrozen(P.Seqs, Q, true);
    std::string Res = fresh(), I = fresh(), V = fresh(), A = fresh();
    emit(Res + " = foreach " + Q + " -> [" + I + ", " + V + "] iter(" + A +
         " = " + pickU64() + ") {");
    {
      ++Indent;
      Scope Inner(P);
      P.U64.push_back(I);
      P.U64.push_back(V);
      P.U64.push_back(A);
      genStatements(R.nextBelow(3), Depth + 1);
      std::string N = fresh();
      static const char *Folds[] = {"add", "xor", "mul", "sub", "max"};
      emit(N + " = " + Folds[R.nextBelow(std::size(Folds))] + " " + A + ", " +
           pickU64());
      emit("yield " + N);
      --Indent;
    }
    emit("}");
    setFrozen(P.Seqs, Q, false);
    P.U64.push_back(Res);
  }

  /// foreach over a set or map: iteration order is implementation-defined
  /// (and the ADE transformation changes implementations), so the fold is
  /// a fixed shape — per-element term combined with a commutative
  /// operator — and the body contains nothing else.
  void genForEachUnordered() {
    bool OnMap = R.nextBool() && !P.Maps.empty();
    std::string C = OnMap ? pickColl(P.Maps, false) : pickColl(P.Sets, false);
    if (C.empty())
      return genInsert();
    std::vector<Coll> &Vec = OnMap ? P.Maps : P.Sets;
    setFrozen(Vec, C, true);
    std::string Res = fresh(), K = fresh(), A = fresh();
    std::string V = OnMap ? fresh() : "";
    std::string Header = Res + " = foreach " + C + " -> [" + K +
                         (OnMap ? ", " + V : "") + "] iter(" + A + " = " +
                         pickU64() + ") {";
    emit(Header);
    {
      ++Indent;
      Scope Inner(P);
      std::string M = constOf(2 * R.nextBelow(1000) + 1);
      std::string T = fresh();
      emit(T + " = mul " + K + ", " + M);
      std::string Term = T;
      if (OnMap) {
        Term = fresh();
        emit(Term + " = add " + T + ", " + V);
      }
      std::string N = fresh();
      emit(N + " = " + (R.nextBool() ? "add " : "xor ") + A + ", " + Term);
      emit("yield " + N);
      --Indent;
    }
    emit("}");
    setFrozen(Vec, C, false);
    P.U64.push_back(Res);
  }

  void genCall() {
    if (HelperNames.empty())
      return genArith();
    std::string V = fresh();
    emit(V + " = call @" + HelperNames[R.nextBelow(HelperNames.size())] +
         "(" + pickU64() + ", " + pickU64() + ")");
    P.U64.push_back(V);
  }

  void genStatement(unsigned Depth) {
    // Weighted kinds; control flow only below the nesting cap.
    struct Choice {
      unsigned Weight;
      void (ProgramGenerator::*Fn)();
    };
    if (Depth < 3 && R.nextBool(0.22)) {
      switch (R.nextBelow(5)) {
      case 0:
        return genIf(Depth);
      case 1:
        return genForRange(Depth);
      case 2:
        return genDoWhile(Depth);
      case 3:
        return genForEachSeq(Depth);
      default:
        return genForEachUnordered();
      }
    }
    static const Choice Table[] = {
        {8, &ProgramGenerator::genConst},
        {10, &ProgramGenerator::genArith},
        {3, &ProgramGenerator::genDivRem},
        {4, &ProgramGenerator::genCompare},
        {3, &ProgramGenerator::genSelect},
        {6, &ProgramGenerator::genNew},
        {10, &ProgramGenerator::genInsert},
        {3, &ProgramGenerator::genRemove},
        {5, &ProgramGenerator::genHas},
        {8, &ProgramGenerator::genWrite},
        {5, &ProgramGenerator::genMapRead},
        {7, &ProgramGenerator::genAppend},
        {3, &ProgramGenerator::genPop},
        {4, &ProgramGenerator::genSize},
        {1, &ProgramGenerator::genClear},
        {2, &ProgramGenerator::genReserve},
        {3, &ProgramGenerator::genUnion},
        {3, &ProgramGenerator::genCall},
    };
    unsigned Total = 0;
    for (const Choice &C : Table)
      Total += C.Weight;
    uint64_t Pick = R.nextBelow(Total);
    for (const Choice &C : Table) {
      if (Pick < C.Weight)
        return (this->*C.Fn)();
      Pick -= C.Weight;
    }
  }

  void genStatements(unsigned N, unsigned Depth) {
    for (unsigned I = 0; I != N; ++I)
      genStatement(Depth);
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  /// Emits the per-function constant preamble the statement generators
  /// rely on (guard values and the small-key mask).
  void prologue() {
    Zero = fresh();
    emit(Zero + " = const 0 : u64");
    One = fresh();
    emit(One + " = const 1 : u64");
    Mask = fresh();
    emit(Mask + " = const 255 : u64");
    P.U64 = {Zero, One, Mask};
    P.Bool.clear();
    P.Sets.clear();
    P.Maps.clear();
    P.Seqs.clear();
    genConst();
    genConst();
  }

  void genHelper(unsigned Idx) {
    NextVal = 0;
    std::string Name = "h" + std::to_string(Idx);
    Out += "fn @" + Name + "(%p0: u64, %p1: u64) -> u64 {\n";
    Indent = 1;
    prologue();
    P.U64.push_back("%p0");
    P.U64.push_back("%p1");
    genStatements(2 + R.nextBelow(6), /*Depth=*/1);
    emit("ret " + pickU64());
    Out += "}\n";
    HelperNames.push_back(Name);
  }

  /// The checksum folds every top-level collection's size and contents
  /// (order-insensitively for sets/maps) plus a few scalars, so almost
  /// any miscompilation of a collection operation changes @main's result.
  void genChecksum() {
    std::string Ck = constOf(17);
    std::string C31 = constOf(31);
    std::string C131 = constOf(131);
    std::string C33 = constOf(33);
    auto Mix = [&](const std::string &V) {
      std::string A = fresh();
      emit(A + " = mul " + Ck + ", " + C31);
      std::string B = fresh();
      emit(B + " = add " + A + ", " + V);
      Ck = B;
    };
    for (const Coll &C : P.Sets) {
      std::string S = fresh();
      emit(S + " = size " + C.Name);
      Mix(S);
      std::string Res = fresh(), K = fresh(), A = fresh();
      emit(Res + " = foreach " + C.Name + " -> [" + K + "] iter(" + A +
           " = " + Zero + ") {");
      ++Indent;
      std::string N = fresh();
      emit(N + " = add " + A + ", " + K);
      emit("yield " + N);
      --Indent;
      emit("}");
      Mix(Res);
    }
    for (const Coll &C : P.Maps) {
      std::string S = fresh();
      emit(S + " = size " + C.Name);
      Mix(S);
      std::string Res = fresh(), K = fresh(), V = fresh(), A = fresh();
      emit(Res + " = foreach " + C.Name + " -> [" + K + ", " + V +
           "] iter(" + A + " = " + Zero + ") {");
      ++Indent;
      std::string T = fresh();
      emit(T + " = mul " + K + ", " + C131);
      std::string T2 = fresh();
      emit(T2 + " = add " + T + ", " + V);
      std::string N = fresh();
      emit(N + " = add " + A + ", " + T2);
      emit("yield " + N);
      --Indent;
      emit("}");
      Mix(Res);
    }
    for (const Coll &C : P.Seqs) {
      std::string S = fresh();
      emit(S + " = size " + C.Name);
      Mix(S);
      std::string Res = fresh(), I = fresh(), V = fresh(), A = fresh();
      emit(Res + " = foreach " + C.Name + " -> [" + I + ", " + V +
           "] iter(" + A + " = " + Zero + ") {");
      ++Indent;
      std::string N = fresh();
      emit(N + " = mul " + A + ", " + C33);
      std::string N2 = fresh();
      emit(N2 + " = add " + N + ", " + V);
      emit("yield " + N2);
      --Indent;
      emit("}");
      Mix(Res);
    }
    // A handful of scalars round out the observation.
    for (unsigned I = 0, E = 2 + static_cast<unsigned>(R.nextBelow(3));
         I != E; ++I)
      Mix(pickU64());
    for (unsigned I = 0; I != NumOuts; ++I)
      emit("gset @out" + std::to_string(I) + ", " + pickU64());
    emit("ret " + Ck);
  }

  void genMain(unsigned Helpers) {
    (void)Helpers;
    NextVal = 0;
    Out += "fn @main() -> u64 {\n";
    Indent = 1;
    prologue();
    genStatements(Opts.MainStatements, /*Depth=*/1);
    genChecksum();
    Out += "}\n";
  }

  //===--------------------------------------------------------------------===//
  // Hostile mode
  //===--------------------------------------------------------------------===//

  /// Applies a few random text-level edits so the result is a near-miss
  /// of a valid program: the parser/verifier must diagnose (or accept)
  /// it without crashing.
  void damage() {
    unsigned Edits = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned I = 0; I != Edits && !Out.empty(); ++I) {
      switch (R.nextBelow(6)) {
      case 0: { // Substitute one character.
        static const char Alphabet[] = "abz%@{}()<>,=:0198 \n\"#-";
        Out[R.nextBelow(Out.size())] =
            Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
        break;
      }
      case 1: { // Delete one line.
        size_t Start = R.nextBelow(Out.size());
        size_t LineStart = Out.rfind('\n', Start);
        LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
        size_t LineEnd = Out.find('\n', Start);
        LineEnd = LineEnd == std::string::npos ? Out.size() : LineEnd + 1;
        Out.erase(LineStart, LineEnd - LineStart);
        break;
      }
      case 2: // Truncate.
        Out.resize(R.nextBelow(Out.size()) + 1);
        break;
      case 3: { // Rename one value use to something undefined.
        size_t At = Out.find('%', R.nextBelow(Out.size()));
        if (At != std::string::npos && At + 1 < Out.size())
          Out[At + 1] = 'q';
        break;
      }
      case 4: { // Drop one brace.
        char Needle = R.nextBool() ? '{' : '}';
        size_t At = Out.find(Needle, R.nextBelow(Out.size()));
        if (At != std::string::npos)
          Out.erase(At, 1);
        break;
      }
      default: { // Duplicate one line.
        size_t Start = R.nextBelow(Out.size());
        size_t LineStart = Out.rfind('\n', Start);
        LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
        size_t LineEnd = Out.find('\n', Start);
        LineEnd = LineEnd == std::string::npos ? Out.size() : LineEnd + 1;
        std::string Line = Out.substr(LineStart, LineEnd - LineStart);
        Out.insert(LineEnd, Line);
        break;
      }
      }
    }
  }

  GeneratorOptions Opts;
  Rng R;
  std::string Out;
  unsigned NextVal = 0;
  unsigned Indent = 1;
  unsigned NumOuts = 0;
  Pools P;
  std::string Zero, One, Mask;
  std::vector<std::string> HelperNames;
};

} // namespace

std::string ade::fuzz::generateProgram(const GeneratorOptions &Opts) {
  return ProgramGenerator(Opts).run();
}
