//===- Reduce.h - Delta-debugging test-case reduction -----------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bugpoint-style minimization of an oracle finding (see DESIGN.md
/// "Robustness"): starting from a program the differential oracle flags,
/// repeatedly apply reduction passes — drop unreferenced functions, drop
/// individual instructions (rerouting their uses to constants), shrink
/// integer constants — keeping each candidate only if the oracle still
/// reports the *same kind* of finding, until a fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_FUZZ_REDUCE_H
#define ADE_FUZZ_REDUCE_H

#include "fuzz/Oracle.h"

namespace ade {
namespace fuzz {

struct ReduceOptions {
  /// Oracle configuration used for the failure predicate (including
  /// PlantBug when reducing a self-test finding).
  OracleOptions Oracle;
  /// Upper bound on fixed-point rounds over all passes.
  unsigned MaxRounds = 6;
};

struct ReduceResult {
  /// The minimized program (the input when nothing could be removed).
  std::string Reduced;
  /// The finding kind the reduction preserved (None when the input did
  /// not fail to begin with — nothing to reduce).
  FindingKind Kind = FindingKind::None;
  /// Candidate programs tried / accepted.
  unsigned Attempts = 0;
  unsigned Accepted = 0;
};

/// Minimizes \p Source while preserving the oracle's finding kind.
ReduceResult reduceProgram(const std::string &Source,
                           const ReduceOptions &Opts = {});

} // namespace fuzz
} // namespace ade

#endif // ADE_FUZZ_REDUCE_H
