//===- Oracle.h - Differential oracle for the ADE pipeline ------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-fuzzing oracle (see DESIGN.md "Robustness"): a
/// program is parsed twice, interpreted untransformed (the baseline) and
/// after `runADE` under several configuration variants, and the
/// observables — @main's result, the final values of scalar globals and
/// clean-termination status — are compared. Any mismatch, verifier
/// rejection of a transformed module, or runtime error on a UB-free
/// generated program is a finding.
///
/// The oracle also differentially tests the execution engines
/// themselves: every module (baseline and each transformed variant) runs
/// under both the reference tree-walker and the bytecode VM, and any
/// disagreement — result, scalar globals, termination status or the
/// diagnostic text — is a divergence finding attributed to "<variant>/vm".
///
//===----------------------------------------------------------------------===//

#ifndef ADE_FUZZ_ORACLE_H
#define ADE_FUZZ_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ade {
namespace fuzz {

/// What the oracle concluded about one program.
enum class FindingKind : uint8_t {
  /// All variants agreed with the baseline.
  None,
  /// The program did not parse (valid-mode inputs must).
  ParseError,
  /// The verifier rejected the program before or after transformation.
  VerifyError,
  /// The interpreter raised a runtime error (generated programs are
  /// UB-free by construction, so this indicates a bug) or exceeded a
  /// guard-rail budget.
  RuntimeError,
  /// A transformed variant's observables differ from the baseline's.
  Divergence,
};

const char *findingKindName(FindingKind K);

/// Everything we observe about one execution.
struct Observation {
  bool Ok = false;
  /// Diagnostic when !Ok.
  std::string Error;
  /// @main's return value.
  uint64_t Result = 0;
  /// Final values of the baseline module's scalar globals, in
  /// declaration order.
  std::vector<uint64_t> Globals;
};

struct OracleOptions {
  /// Guard rails applied to every interpretation; generated programs are
  /// small, so exceeding these indicates runaway behavior.
  uint64_t MaxSteps = 50'000'000;
  uint64_t MaxBytes = 512ull << 20;
  uint64_t MaxDepth = 512;
  /// Self-test: sabotage each transformed module (drop its first insert)
  /// to prove the oracle detects real miscompilations.
  bool PlantBug = false;
  /// Cross-check the bytecode VM against the tree-walker on every
  /// execution (baseline and all variants).
  bool CheckVm = true;
};

struct OracleResult {
  FindingKind Kind = FindingKind::None;
  /// The pipeline variant that failed or diverged ("" for parse/verify
  /// failures of the input itself).
  std::string Variant;
  /// Human-readable explanation.
  std::string Detail;
};

/// Names of the pipeline configuration variants the oracle compares
/// against the untransformed baseline.
std::vector<std::string> oracleVariants();

/// Runs the differential oracle on \p Source.
OracleResult runOracle(const std::string &Source,
                       const OracleOptions &Opts = {});

} // namespace fuzz
} // namespace ade

#endif // ADE_FUZZ_ORACLE_H
