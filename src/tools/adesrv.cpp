//===- adesrv.cpp - Concurrent serving runtime driver ---------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-runtime driver: loads one .memoir module, compiles it
/// through ADE, and serves deterministic concurrent request streams
/// (point lookups, bulk inserts, graph queries, optional program calls
/// into @serve) from a worker pool with bounded admission, load
/// shedding, per-request deadlines, and seed-driven fault injection.
/// With --oracle every round is also replayed on the single-threaded
/// oracle and the per-stream response digests must match bit-for-bit —
/// the differential soak that CI runs under a fault plan.
///
/// Usage:
///   adesrv FILE.memoir [options]
///     --threads=N          worker threads (default 4)
///     --queue=N            admission queue capacity (default 256)
///     --engine=tree|vm     server execution engine (default vm)
///     --no-ade             serve the unoptimized module
///     --oracle[=tree|vm]   differential soak: replay every round on the
///                          sequential oracle (default engine tree) and
///                          fail on any digest mismatch
///     --fault-plan=SPEC    seed=N,delay=P:USEC,storm=P:SPINS,budget=P
///                          (see serve/FaultPlan.h)
///     --seconds=N          keep running rounds, advancing the workload
///                          seed each round, for at least N seconds
///                          (default: one round)
///     --seed=N             base workload seed (default 1)
///     --streams=N          request streams per round (default 8)
///     --inserts=N          phase-1 bulk inserts per stream (default 32)
///     --bulk=N             keys per bulk insert (default 16)
///     --reads=N            phase-2 read ops per stream (default 256)
///     --calls              mix ProgramCall requests into phase 2
///                          (requires the module to export @serve)
///     --serve-func=NAME    program-call target (default serve)
///     --submit-threads=N   client submission threads (default 2)
///     --deadline-ms=N      per-request wall-clock deadline (0 = none;
///                          incompatible with --oracle: deadline trips
///                          are timing-dependent)
///     --shed-p99-ns=N      tail-latency shed trigger (0 = off)
///     --max-steps=N        per-program-call step budget (0 = unlimited)
///     --max-bytes=N        per-program-call memory budget
///     --max-depth=N        per-program-call depth budget (default 4096)
///     --metrics-out=FILE   write the shared telemetry snapshot JSON
///                          (shed events, guard-rail trips, channels) —
///                          written on failure too, for CI artifacts
///     --trace=on|off       request-scoped tracing (default on); off
///                          removes every per-request tracing cost
///     --trace-sample=N     head sampling: trace 1 in N requests
///                          (default 64, bounding overhead; pass 1 to
///                          trace every request, e.g. for soaks that
///                          must capture every shed/deadline outcome)
///     --flight-out=FILE    write the flight-recorder dump (JSON): last
///                          N traces per worker plus every tail-sampled
///                          interesting trace. Also written on crash
///                          (via the crash-handler hook) and on
///                          shed/deadline storms (--storm-dump)
///     --flight-trace-out=F write a Chrome trace-event file with the
///                          sampled request spans merged onto the
///                          compile-phase timeline
///     --flight-recent=N    flight ring size per worker (default 64)
///     --storm-dump=N       dump the flight recorder mid-run when a
///                          round sheds or deadlines >= N requests
///                          (0 = off)
///
/// Exit codes: 0 success, 1 diagnosed failure (bad flags, parse/verify
/// error, digest mismatch), 2 internal error.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/InterpError.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "runtime/Telemetry.h"
#include "serve/Client.h"
#include "serve/Span.h"
#include "support/CrashHandler.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace ade;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "adesrv: unknown option '%s'\n", BadOption);
  std::fprintf(
      stderr,
      "usage: adesrv FILE.memoir [--threads=N] [--queue=N]\n"
      "              [--engine=tree|vm] [--no-ade] [--oracle[=tree|vm]]\n"
      "              [--fault-plan=SPEC] [--seconds=N] [--seed=N]\n"
      "              [--streams=N] [--inserts=N] [--bulk=N] [--reads=N]\n"
      "              [--calls] [--serve-func=NAME] [--submit-threads=N]\n"
      "              [--deadline-ms=N] [--shed-p99-ns=N] [--max-steps=N]\n"
      "              [--max-bytes=N] [--max-depth=N] [--metrics-out=FILE]\n"
      "              [--trace=on|off] [--trace-sample=N]\n"
      "              [--flight-out=FILE] [--flight-trace-out=FILE]\n"
      "              [--flight-recent=N] [--storm-dump=N]\n");
  return 1;
}

static bool readFile(const char *Path, std::string &Out) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

/// Parses the u64 payload of a --name=N option; false on malformed
/// input (diagnostic printed).
static bool parseU64(const std::string &Arg, size_t PrefixLen,
                     const char *Name, uint64_t &Out) {
  std::string Token = Arg.substr(PrefixLen);
  if (Token.empty() ||
      Token.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "adesrv: %s requires a u64 value\n", Name);
    return false;
  }
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Token.c_str(), &End, 10);
  if (errno == ERANGE || *End != '\0') {
    std::fprintf(stderr, "adesrv: %s value is out of range for u64\n", Name);
    return false;
  }
  return true;
}

static bool writeMetrics(const std::string &Path, runtime::Telemetry &Tel) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  RawFileOstream FS(File);
  json::Writer W(FS);
  Tel.writeSnapshotJson(W);
  FS << '\n';
  FS.flush();
  std::fclose(File);
  return true;
}

static bool writeFlight(const std::string &Path,
                        const serve::FlightRecorder &Flight,
                        const char *Reason) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  RawFileOstream FS(File);
  json::Writer W(FS);
  Flight.writeJson(W, Reason);
  FS << '\n';
  FS.flush();
  std::fclose(File);
  return true;
}

namespace {
/// State the crash-dump hook needs; plain statics because the hook runs
/// in signal context with a single void* argument.
struct CrashFlightCtx {
  const serve::FlightRecorder *Flight = nullptr;
  std::string Path;
};
CrashFlightCtx CrashCtx;

/// Last-gasp flight dump (registered via setCrashDumpHook when
/// --flight-out is given). Readers of mid-write ring slots are skipped
/// by the seqlock protocol, so the dump is best-effort but well-formed.
void crashFlightDump(void *Arg) {
  auto *Ctx = static_cast<CrashFlightCtx *>(Arg);
  if (Ctx->Flight)
    writeFlight(Ctx->Path, *Ctx->Flight, "crash");
}
} // namespace

int main(int Argc, char **Argv) {
  installCrashHandlers();
  if (Argc < 2)
    return usage();

  const char *Path = nullptr;
  bool RunAde = true, Oracle = false, Calls = false;
  vm::EngineKind OracleEngine = vm::EngineKind::Tree;
  uint64_t Seconds = 0, BaseSeed = 1;
  uint64_t Streams = 8, Inserts = 32, Bulk = 16, Reads = 256;
  uint64_t SubmitThreads = 2;
  bool TraceOn = true;
  uint64_t TraceSample = serve::FlightRecorder::Options().SampleEvery;
  uint64_t FlightRecent = 64, StormDump = 0;
  std::string MetricsFile, FaultSpec, FlightFile, FlightTraceFile;
  serve::ServeConfig Cfg;
  Cfg.Threads = 4;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t V = 0;
    if (Arg.rfind("--threads=", 0) == 0) {
      if (!parseU64(Arg, 10, "--threads", V))
        return 1;
      Cfg.Threads = unsigned(V);
    } else if (Arg.rfind("--queue=", 0) == 0) {
      if (!parseU64(Arg, 8, "--queue", V))
        return 1;
      Cfg.QueueCapacity = size_t(V);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      if (!vm::engineFromName(Arg.substr(9), Cfg.Engine)) {
        std::fprintf(stderr, "adesrv: --engine must be 'tree' or 'vm'\n");
        return 1;
      }
    } else if (Arg == "--no-ade") {
      RunAde = false;
    } else if (Arg == "--oracle" || Arg.rfind("--oracle=", 0) == 0) {
      Oracle = true;
      if (Arg.size() > 9 &&
          !vm::engineFromName(Arg.substr(9), OracleEngine)) {
        std::fprintf(stderr, "adesrv: --oracle must be 'tree' or 'vm'\n");
        return 1;
      }
    } else if (Arg.rfind("--fault-plan=", 0) == 0) {
      FaultSpec = Arg.substr(13);
    } else if (Arg.rfind("--seconds=", 0) == 0) {
      if (!parseU64(Arg, 10, "--seconds", Seconds))
        return 1;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!parseU64(Arg, 7, "--seed", BaseSeed))
        return 1;
    } else if (Arg.rfind("--streams=", 0) == 0) {
      if (!parseU64(Arg, 10, "--streams", Streams) || !Streams)
        return 1;
    } else if (Arg.rfind("--inserts=", 0) == 0) {
      if (!parseU64(Arg, 10, "--inserts", Inserts))
        return 1;
    } else if (Arg.rfind("--bulk=", 0) == 0) {
      if (!parseU64(Arg, 7, "--bulk", Bulk))
        return 1;
    } else if (Arg.rfind("--reads=", 0) == 0) {
      if (!parseU64(Arg, 8, "--reads", Reads))
        return 1;
    } else if (Arg == "--calls") {
      Calls = true;
    } else if (Arg.rfind("--serve-func=", 0) == 0) {
      Cfg.ProgramFunction = Arg.substr(13);
      if (Cfg.ProgramFunction.empty()) {
        std::fprintf(stderr, "adesrv: --serve-func requires a name\n");
        return 1;
      }
    } else if (Arg.rfind("--submit-threads=", 0) == 0) {
      if (!parseU64(Arg, 17, "--submit-threads", SubmitThreads) ||
          !SubmitThreads)
        return 1;
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parseU64(Arg, 14, "--deadline-ms", Cfg.DeadlineMs))
        return 1;
    } else if (Arg.rfind("--shed-p99-ns=", 0) == 0) {
      if (!parseU64(Arg, 14, "--shed-p99-ns", Cfg.ShedP99Ns))
        return 1;
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      if (!parseU64(Arg, 12, "--max-steps", Cfg.MaxSteps))
        return 1;
    } else if (Arg.rfind("--max-bytes=", 0) == 0) {
      if (!parseU64(Arg, 12, "--max-bytes", Cfg.MaxBytes))
        return 1;
    } else if (Arg.rfind("--max-depth=", 0) == 0) {
      if (!parseU64(Arg, 12, "--max-depth", Cfg.MaxDepth))
        return 1;
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      MetricsFile = Arg.substr(14);
      if (MetricsFile.empty()) {
        std::fprintf(stderr, "adesrv: --metrics-out requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--trace=", 0) == 0) {
      std::string Mode = Arg.substr(8);
      if (Mode == "on") {
        TraceOn = true;
      } else if (Mode == "off") {
        TraceOn = false;
      } else {
        std::fprintf(stderr, "adesrv: --trace must be 'on' or 'off'\n");
        return 1;
      }
    } else if (Arg.rfind("--trace-sample=", 0) == 0) {
      if (!parseU64(Arg, 15, "--trace-sample", TraceSample) || !TraceSample)
        return 1;
    } else if (Arg.rfind("--flight-out=", 0) == 0) {
      FlightFile = Arg.substr(13);
      if (FlightFile.empty()) {
        std::fprintf(stderr, "adesrv: --flight-out requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--flight-trace-out=", 0) == 0) {
      FlightTraceFile = Arg.substr(19);
      if (FlightTraceFile.empty()) {
        std::fprintf(stderr,
                     "adesrv: --flight-trace-out requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--flight-recent=", 0) == 0) {
      if (!parseU64(Arg, 16, "--flight-recent", FlightRecent) ||
          !FlightRecent)
        return 1;
    } else if (Arg.rfind("--storm-dump=", 0) == 0) {
      if (!parseU64(Arg, 13, "--storm-dump", StormDump))
        return 1;
    } else if (Arg[0] != '-' && !Path) {
      Path = Argv[I];
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (!Path)
    return usage();
  if (Oracle && Cfg.DeadlineMs) {
    std::fprintf(stderr,
                 "adesrv: --deadline-ms runs are timing-dependent and "
                 "cannot be oracle-compared; drop --oracle or the "
                 "deadline\n");
    return 1;
  }
  if (!FaultSpec.empty()) {
    std::string Error;
    if (!serve::FaultPlan::parse(FaultSpec, Cfg.Faults, &Error)) {
      std::fprintf(stderr, "adesrv: bad --fault-plan: %s\n", Error.c_str());
      return 1;
    }
  }

  // The Chrome-trace recorder must be live before the pipeline runs so
  // request spans later merge onto the compile-phase timeline.
  std::unique_ptr<TraceRecorder> TR;
  if (!FlightTraceFile.empty()) {
    TR = std::make_unique<TraceRecorder>();
    TraceRecorder::setActive(TR.get());
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }
  std::vector<std::string> Errors;
  auto M = parser::parseModule(Source, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.c_str());
    return 1;
  }
  Errors.clear();
  if (!ir::verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verification: %s\n", Path, E.c_str());
    return 1;
  }
  if (RunAde) {
    core::PipelineConfig PipeCfg;
    core::PipelineResult Result = core::runADE(*M, PipeCfg);
    std::fprintf(stderr, "adesrv: %u enumeration(s) after ADE\n",
                 Result.Transform.EnumerationsCreated);
  }
  if (Calls && !M->getFunction(Cfg.ProgramFunction)) {
    std::fprintf(stderr, "error: --calls requires function @%s\n",
                 Cfg.ProgramFunction.c_str());
    return 1;
  }

  // Compilation is over: retire the global recorder before worker
  // threads start. TraceRecorder is single-threaded (a bare vector), so
  // leaving it active would race every worker's engine TraceScope;
  // request-level spans reach the Chrome trace through the flight
  // recorder's mergeIntoTrace at shutdown instead.
  if (TR)
    TraceRecorder::setActive(nullptr);

  runtime::Telemetry Tel;
  Cfg.Tel = &Tel;

  // One recorder for every round: the flight rings accumulate across
  // rounds, so a crash in round 7 still shows round 6's tail.
  std::unique_ptr<serve::FlightRecorder> Flight;
  if (TraceOn) {
    serve::FlightRecorder::Options FO;
    FO.Workers = Cfg.Threads ? Cfg.Threads : 1;
    FO.RecentPerLane = unsigned(FlightRecent);
    FO.SampledPerLane = unsigned(FlightRecent);
    FO.SampleEvery = TraceSample;
    Flight = std::make_unique<serve::FlightRecorder>(FO);
    Cfg.Flight = Flight.get();
    if (!FlightFile.empty()) {
      CrashCtx.Flight = Flight.get();
      CrashCtx.Path = FlightFile;
      setCrashDumpHook(crashFlightDump, &CrashCtx);
    }
  }

  serve::WorkloadSpec Spec;
  Spec.Streams = uint32_t(Streams);
  Spec.InsertsPerStream = uint32_t(Inserts);
  Spec.BulkCount = uint32_t(Bulk);
  Spec.ReadsPerStream = uint32_t(Reads);
  Spec.ProgramCalls = Calls;
  Spec.Geo = Cfg.Geo;

  serve::ClientOptions ClientOpts;
  ClientOpts.SubmitThreads = unsigned(SubmitThreads);

  RawOstream &OS = outs();
  OS << "adesrv: " << Path << " threads=" << Cfg.Threads
     << " queue=" << uint64_t(Cfg.QueueCapacity)
     << " engine=" << vm::engineName(Cfg.Engine)
     << " faults=" << Cfg.Faults.describe()
     << (Oracle ? " oracle=" : "")
     << (Oracle ? vm::engineName(OracleEngine) : "") << "\n";

  auto Start = std::chrono::steady_clock::now();
  auto elapsedSec = [&Start] {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - Start)
        .count();
  };

  uint64_t Round = 0;
  uint64_t TotalAccepted = 0, TotalShed = 0, TotalCompleted = 0;
  int Exit = 0;
  do {
    Spec.Seed = BaseSeed + Round;
    serve::ServerStats Stats;
    serve::ClientResult Got;
    try {
      serve::Server S(*M, Cfg);
      Got = serve::runClient(S, Spec, ClientOpts);
      S.stop();
      Stats = S.stats();
      // Latest round wins: contention and epoch gauges describe the
      // server instance, so publish at quiescence before it dies.
      S.publishGauges();
    } catch (const interp::InterpError &E) {
      // Program errors surface as Error responses; an InterpError
      // escaping here means a bug in the runtime itself.
      std::fprintf(stderr, "adesrv: internal: %s\n", E.what());
      Exit = 2;
      break;
    }
    TotalAccepted += Stats.Accepted;
    TotalShed += Stats.Shed;
    TotalCompleted += Stats.Completed;

    OS << "round " << Round << " seed=" << Spec.Seed
       << " accepted=" << Stats.Accepted << " shed=" << Stats.Shed
       << " completed=" << Stats.Completed
       << " ok=" << Stats.ByStatus[size_t(serve::ResponseStatus::Ok)]
       << " notfound="
       << Stats.ByStatus[size_t(serve::ResponseStatus::NotFound)]
       << " budget="
       << Stats.ByStatus[size_t(serve::ResponseStatus::Budget)]
       << " deadline="
       << Stats.ByStatus[size_t(serve::ResponseStatus::Deadline)]
       << " error=" << Stats.ByStatus[size_t(serve::ResponseStatus::Error)]
       << " p50=" << Stats.LatencyNs.p50()
       << "ns p99=" << Stats.LatencyNs.p99()
       << "ns faults(d/s/b)=" << Stats.DelaysInjected << "/"
       << Stats.StormsInjected << "/" << Stats.BudgetsInjected
       << " map=" << Stats.MapSize << " rehashes=" << Stats.ShardRehashes
       << "\n";

    // Storm detector: a round drowning in shed/deadline outcomes dumps
    // the flight recorder mid-run (to a side file so the end-of-run
    // dump does not clobber the storm evidence).
    uint64_t StormScore =
        Stats.Shed +
        Stats.ByStatus[size_t(serve::ResponseStatus::Deadline)];
    if (StormDump && Flight && !FlightFile.empty() &&
        StormScore >= StormDump) {
      std::string StormFile = FlightFile + ".storm";
      if (writeFlight(StormFile, *Flight, "storm"))
        OS << "round " << Round << " storm: shed+deadline=" << StormScore
           << " >= " << StormDump << ", flight dump: " << StormFile.c_str()
           << "\n";
    }

    if (Oracle) {
      std::vector<uint64_t> Want =
          serve::runOracle(*M, Spec, Cfg, OracleEngine);
      bool Match = Want == Got.Digests;
      if (!Match) {
        for (uint32_t St = 0; St != Spec.Streams; ++St)
          if (St < Got.Digests.size() && Want[St] != Got.Digests[St])
            std::fprintf(stderr,
                         "adesrv: round %llu stream %u digest mismatch: "
                         "server=%016llx oracle=%016llx\n",
                         (unsigned long long)Round, St,
                         (unsigned long long)Got.Digests[St],
                         (unsigned long long)Want[St]);
        std::fprintf(stderr,
                     "adesrv: differential soak FAILED at round %llu "
                     "(seed=%llu)\n",
                     (unsigned long long)Round,
                     (unsigned long long)Spec.Seed);
        Exit = 1;
        break;
      }
      OS << "round " << Round << " oracle: " << uint64_t(Spec.Streams)
         << " stream digest(s) match\n";
    }
    ++Round;
  } while (uint64_t(elapsedSec()) < Seconds);

  if (Flight)
    OS << "adesrv: traces recorded=" << Flight->tracesRecorded()
       << " sampled=" << Flight->tracesSampled()
       << " spans-dropped=" << Flight->spansDropped()
       << " tail-threshold=" << Flight->tailThresholdNs() << "ns\n";
  OS << "adesrv: " << Round << " round(s), accepted=" << TotalAccepted
     << " shed=" << TotalShed << " completed=" << TotalCompleted
     << " journal-dropped=" << Tel.droppedEvents()
     << " journal-high-water=" << Tel.journalHighWater()
     << (Exit == 0 ? " [ok]" : " [FAILED]") << "\n";
  OS.flush();

  // The run is over: disarm the crash hook before orderly dumps so a
  // fault while formatting JSON cannot re-enter the recorder.
  setCrashDumpHook(nullptr, nullptr);

  int DumpExit = 0;
  if (Flight && !FlightFile.empty() &&
      !writeFlight(FlightFile, *Flight, "end-of-run"))
    DumpExit = 1;
  if (TR) {
    if (Flight)
      Flight->mergeIntoTrace(*TR);
    std::FILE *F = std::fopen(FlightTraceFile.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   FlightTraceFile.c_str());
      DumpExit = 1;
    } else {
      RawFileOstream FS(F);
      TR->write(FS);
      FS << '\n';
      FS.flush();
      std::fclose(F);
    }
  }

  if (!MetricsFile.empty() && !writeMetrics(MetricsFile, Tel))
    return Exit ? Exit : 1;
  return Exit ? Exit : DumpExit;
}
