//===- adec.cpp - ADE compiler driver -------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver: parses a .memoir module, optionally applies
/// automatic data enumeration, prints the (transformed) module and/or
/// interprets a function.
///
/// Usage:
///   adec FILE.memoir [options]
///     --ade                   run automatic data enumeration
///     --no-rte                disable redundant translation elimination
///     --no-sharing            disable enumeration sharing
///     --no-propagation        disable identifier propagation
///     --sparse                use SparseBitSet for enumerated sets
///     --print                 print the module after transformation
///     --run[=FUNC]            interpret FUNC (default @main) and print
///                             its result, dynamic stats and peak memory
///     --args=a,b,c            u64 arguments for --run
///     --lint                  run the static checkers after the (optional)
///                             transformation; nonzero exit on findings
///     --diag-format=text|json lint output format (default text)
///
//===----------------------------------------------------------------------===//

#include "analysis/Checkers.h"
#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/RawOstream.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace ade;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "adec: unknown option '%s'\n", BadOption);
  std::fprintf(
      stderr,
      "usage: adec FILE.memoir [--ade] [--no-rte] [--no-sharing]\n"
      "            [--no-propagation] [--sparse] [--print]\n"
      "            [--run[=FUNC]] [--args=a,b,c] [--lint]\n"
      "            [--diag-format=text|json]\n");
  return 1;
}

static bool readFile(const char *Path, std::string &Out) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const char *Path = nullptr;
  bool RunAde = false, Print = false, Run = false, Lint = false;
  analysis::DiagFormat Format = analysis::DiagFormat::Text;
  std::string RunFunc = "main";
  std::vector<uint64_t> RunArgs;
  core::PipelineConfig Config;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--ade") {
      RunAde = true;
    } else if (Arg == "--no-rte") {
      Config.EnableRTE = false;
    } else if (Arg == "--no-sharing") {
      Config.EnableSharing = false;
    } else if (Arg == "--no-propagation") {
      Config.EnablePropagation = false;
    } else if (Arg == "--sparse") {
      Config.Selection.EnumeratedSet = ir::Selection::SparseBitSet;
    } else if (Arg == "--print") {
      Print = true;
    } else if (Arg == "--run" || Arg.rfind("--run=", 0) == 0) {
      Run = true;
      if (Arg.size() > 6)
        RunFunc = Arg.substr(6);
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--diag-format=text") {
      Format = analysis::DiagFormat::Text;
    } else if (Arg == "--diag-format=json") {
      Format = analysis::DiagFormat::Json;
    } else if (Arg.rfind("--args=", 0) == 0) {
      std::string List = Arg.substr(7);
      size_t Pos = 0;
      while (Pos < List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        RunArgs.push_back(
            std::strtoull(List.substr(Pos, Comma - Pos).c_str(), nullptr,
                          10));
        Pos = Comma + 1;
      }
    } else if (Arg[0] != '-' && !Path) {
      Path = Argv[I];
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (!Path)
    return usage();

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }

  std::vector<std::string> Errors;
  auto M = parser::parseModule(Source, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.c_str());
    return 1;
  }
  Errors.clear();
  if (!ir::verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verification: %s\n", Path, E.c_str());
    return 1;
  }

  if (RunAde) {
    core::PipelineResult Result = core::runADE(*M, Config);
    std::fprintf(stderr,
                 "adec: %u enumeration(s), %u enc, %u dec, %u add, "
                 "%u site(s) eliminated\n",
                 Result.Transform.EnumerationsCreated,
                 Result.Transform.EncInserted, Result.Transform.DecInserted,
                 Result.Transform.AddInserted,
                 Result.Transform.TranslationsSkipped);
  }

  if (Lint) {
    analysis::DiagnosticEngine DE;
    DE.setSource(Path, Source);
    analysis::runLint(*M, DE);
    DE.render(outs(), Format);
    if (!DE.empty())
      return 1;
  }

  RawOstream &OS = outs();
  if (Print)
    printModule(*M, OS);

  if (Run) {
    const ir::Function *F = M->getFunction(RunFunc);
    if (!F) {
      std::fprintf(stderr, "error: no function @%s\n", RunFunc.c_str());
      return 1;
    }
    MemoryTracker::instance().reset();
    interp::Interpreter I(*M);
    uint64_t Result = I.call(F, RunArgs);
    OS << "@" << RunFunc << " = " << Result << "\n";
    OS << "accesses: sparse=" << I.stats().Sparse
       << " dense=" << I.stats().Dense
       << " instructions=" << I.stats().InstructionsExecuted << "\n";
    OS << "peak collection bytes: "
       << MemoryTracker::instance().peakBytes() << "\n";
  }
  return 0;
}
