//===- adec.cpp - ADE compiler driver -------------------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver: parses a .memoir module, optionally applies
/// automatic data enumeration, prints the (transformed) module and/or
/// interprets a function.
///
/// Usage:
///   adec FILE.memoir [options]
///     --ade                   run automatic data enumeration
///     --no-rte                disable redundant translation elimination
///     --no-sharing            disable enumeration sharing
///     --no-propagation        disable identifier propagation
///     --sparse                use SparseBitSet for enumerated sets
///     --print                 print the module after transformation
///     --run[=FUNC]            interpret FUNC (default @main) and print
///                             its result, dynamic stats and peak memory
///     --engine=tree|vm        execution engine for --run: the reference
///                             tree-walking interpreter (default) or the
///                             direct-threaded register bytecode VM; the
///                             two are semantically interchangeable
///     --args=a,b,c            u64 arguments for --run
///     --lint                  run the static checkers after the (optional)
///                             transformation; nonzero exit on findings
///     --diag-format=text|json lint output format (default text)
///     --time-report           print per-pass wall-clock timing and the
///                             transformation statistics (requires --ade)
///     --profile[=FILE]        attach the source-attributed profiler to
///                             --run; prints the hot-site and collection
///                             tables, then writes the profile JSON to
///                             FILE (stdout when omitted)
///     --profile-use=FILE      profile-guided selection: read the profile
///                             JSON a prior `--run --profile=FILE` wrote
///                             and let measured op mixes, peaks and
///                             probe/rehash rates drive the benefit
///                             heuristic, implementation selection and
///                             capacity pre-sizing (requires --ade)
///     --selection-report      print one line per collection explaining
///                             its implementation choice: static score,
///                             profiled score, directive override
///                             (requires --ade; a view over the remarks)
///     --absint-report         print the abstract-interpretation report
///                             for the input program: proven occupancy
///                             bounds per alias class, cover facts,
///                             enumeration universes and do-while growth
///     --remarks[=FILE]        record every pipeline decision (passed /
///                             missed / analysis) as optimization remarks
///                             with provenance chains; prints a caret-
///                             annotated report and, with =FILE, writes
///                             the remarks JSON (requires --ade)
///     --remarks-filter=REGEX  only report remarks whose pass matches the
///                             anchored ECMAScript REGEX, e.g.
///                             'share|selection' (requires --remarks)
///     --trace-out=FILE        write a Chrome trace-event JSON covering
///                             compile passes and interpreted activations
///     --metrics-out=FILE      attach the runtime telemetry sink to --run
///                             and write its metrics snapshot JSON
///                             (latency/probe histograms per collection
///                             class, per-collection records, the event
///                             journal) to FILE
///     --telemetry-rate=N      sample 1 in N collection ops into the
///                             telemetry sink (power of two; default 256,
///                             1 = every op; requires --metrics-out)
///     --max-steps=N           abort --run with a diagnostic after N
///                             executed instructions (0 = unlimited)
///     --max-bytes=N           abort --run with a diagnostic when
///                             collections hold more than N bytes
///                             (0 = unlimited)
///     --max-depth=N           abort --run with a diagnostic at
///                             interpreted call depth N (default 4096,
///                             0 = unlimited)
///     --max-wall-ms=N         abort --run with a diagnostic once the
///                             call has run for N wall-clock
///                             milliseconds (checked at cancellation
///                             points, so a trip may overshoot by ~1k
///                             instructions; 0 = unlimited)
///
/// Exit codes: 0 success, 1 diagnosed failure (parse/verify/lint/runtime
/// error), 2 internal error.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"
#include "analysis/Checkers.h"
#include "core/Pipeline.h"
#include "core/RemarkEmitter.h"
#include "interp/InterpError.h"
#include "interp/Interpreter.h"
#include "interp/Profiler.h"
#include "runtime/Telemetry.h"
#include "vm/Engine.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "stats/Statistic.h"
#include "stats/Stats.h"
#include "support/CrashHandler.h"
#include "support/Json.h"
#include "support/RawOstream.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ade;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "adec: unknown option '%s'\n", BadOption);
  std::fprintf(
      stderr,
      "usage: adec FILE.memoir [--ade] [--no-rte] [--no-sharing]\n"
      "            [--no-propagation] [--sparse] [--print]\n"
      "            [--run[=FUNC]] [--engine=tree|vm] [--args=a,b,c]\n"
      "            [--lint]\n"
      "            [--diag-format=text|json] [--time-report]\n"
      "            [--profile[=FILE]] [--profile-use=FILE]\n"
      "            [--selection-report] [--absint-report]\n"
      "            [--remarks[=FILE]]\n"
      "            [--remarks-filter=REGEX] [--trace-out=FILE]\n"
      "            [--metrics-out=FILE] [--telemetry-rate=N]\n"
      "            [--max-steps=N] [--max-bytes=N] [--max-depth=N]\n"
      "            [--max-wall-ms=N]\n");
  return 1;
}

static bool readFile(const char *Path, std::string &Out) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

/// Parses the comma-separated u64 list of --args. Rejects empty tokens,
/// non-numeric text and values that overflow uint64_t (strtoull would
/// silently return 0 or clamp).
static bool parseRunArgs(const std::string &List,
                         std::vector<uint64_t> &Out) {
  size_t Pos = 0;
  while (true) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Token = List.substr(Pos, Comma - Pos);
    if (Token.empty() || Token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      std::fprintf(stderr, "adec: invalid --args value '%s' (expected a u64)\n",
                   Token.c_str());
      return false;
    }
    errno = 0;
    char *End = nullptr;
    uint64_t Value = std::strtoull(Token.c_str(), &End, 10);
    if (errno == ERANGE || *End != '\0') {
      std::fprintf(stderr, "adec: --args value '%s' is out of range for u64\n",
                   Token.c_str());
      return false;
    }
    Out.push_back(Value);
    if (Comma == List.size())
      return true;
    Pos = Comma + 1;
  }
}

/// Writes the profile JSON: run metadata, interpreter stats, memory
/// watermarks and the profiler's hot-site / per-collection arrays.
static void writeProfileJson(RawOstream &OS, const char *Path,
                             const std::string &Func, uint64_t Result,
                             const runtime::InterpStats &Stats,
                             const interp::Profiler &Prof) {
  json::Writer W(OS);
  W.beginObject();
  W.member("schemaVersion", interp::ProfileSchemaVersion);
  W.member("file", Path).member("function", Func).member("result", Result);
  W.key("stats").beginObject(/*Inline=*/true);
  W.member("sparse", Stats.Sparse)
      .member("dense", Stats.Dense)
      .member("instructions", Stats.InstructionsExecuted);
  W.endObject();
  W.key("memory").beginObject(/*Inline=*/true);
  W.member("currentBytes", MemoryTracker::instance().currentBytes())
      .member("peakBytes", MemoryTracker::instance().peakBytes());
  W.endObject();
  W.key("hotSites");
  Prof.writeHotSitesJson(W, Path);
  W.key("collections");
  Prof.writeCollectionsJson(W);
  W.endObject();
  OS << '\n';
  OS.flush();
}

/// Parses the u64 payload of a --max-* option; false on malformed input.
static bool parseBudget(const std::string &Arg, size_t PrefixLen,
                        const char *Name, uint64_t &Out, bool &Saw) {
  std::string Token = Arg.substr(PrefixLen);
  if (Token.empty() ||
      Token.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "adec: %s requires a u64 value\n", Name);
    return false;
  }
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Token.c_str(), &End, 10);
  if (errno == ERANGE || *End != '\0') {
    std::fprintf(stderr, "adec: %s value is out of range for u64\n", Name);
    return false;
  }
  Saw = true;
  return true;
}

int main(int Argc, char **Argv) {
  installCrashHandlers();
  if (Argc < 2)
    return usage();
  const char *Path = nullptr;
  bool RunAde = false, Print = false, Run = false, Lint = false;
  bool TimeReport = false, Profile = false, SelectionReport = false;
  bool AbsIntReport = false;
  bool SawArgs = false, SawDiagFormat = false;
  bool Remarks = false, SawRemarksFilter = false;
  std::string RemarksFile, RemarksFilter;
  std::string ProfileFile, ProfileUseFile, TraceFile, MetricsFile;
  uint64_t TelemetryRate = 0;
  analysis::DiagFormat Format = analysis::DiagFormat::Text;
  std::string RunFunc = "main";
  std::vector<uint64_t> RunArgs;
  core::PipelineConfig Config;
  interp::InterpOptions InterpOpts;
  bool SawBudget = false;
  bool SawEngine = false;
  vm::EngineKind EngineK = vm::EngineKind::Tree;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--ade") {
      RunAde = true;
    } else if (Arg == "--no-rte") {
      Config.EnableRTE = false;
    } else if (Arg == "--no-sharing") {
      Config.EnableSharing = false;
    } else if (Arg == "--no-propagation") {
      Config.EnablePropagation = false;
    } else if (Arg == "--sparse") {
      Config.Selection.EnumeratedSet = ir::Selection::SparseBitSet;
    } else if (Arg == "--print") {
      Print = true;
    } else if (Arg == "--run" || Arg.rfind("--run=", 0) == 0) {
      Run = true;
      if (Arg.size() > 6)
        RunFunc = Arg.substr(6);
    } else if (Arg.rfind("--engine=", 0) == 0) {
      SawEngine = true;
      if (!vm::engineFromName(Arg.substr(9), EngineK)) {
        std::fprintf(stderr, "adec: --engine must be 'tree' or 'vm'\n");
        return 1;
      }
    } else if (Arg == "--lint") {
      Lint = true;
    } else if (Arg == "--diag-format=text") {
      SawDiagFormat = true;
      Format = analysis::DiagFormat::Text;
    } else if (Arg == "--diag-format=json") {
      SawDiagFormat = true;
      Format = analysis::DiagFormat::Json;
    } else if (Arg == "--time-report") {
      TimeReport = true;
    } else if (Arg == "--profile" || Arg.rfind("--profile=", 0) == 0) {
      Profile = true;
      if (Arg.size() > 10)
        ProfileFile = Arg.substr(10);
    } else if (Arg.rfind("--profile-use=", 0) == 0) {
      ProfileUseFile = Arg.substr(14);
      if (ProfileUseFile.empty()) {
        std::fprintf(stderr, "adec: --profile-use requires a file name\n");
        return 1;
      }
    } else if (Arg == "--selection-report") {
      SelectionReport = true;
    } else if (Arg == "--absint-report") {
      AbsIntReport = true;
    } else if (Arg == "--remarks" || Arg.rfind("--remarks=", 0) == 0) {
      Remarks = true;
      if (Arg.size() > 10)
        RemarksFile = Arg.substr(10);
    } else if (Arg.rfind("--remarks-filter=", 0) == 0) {
      SawRemarksFilter = true;
      RemarksFilter = Arg.substr(17);
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      TraceFile = Arg.substr(12);
      if (TraceFile.empty()) {
        std::fprintf(stderr, "adec: --trace-out requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      MetricsFile = Arg.substr(14);
      if (MetricsFile.empty()) {
        std::fprintf(stderr, "adec: --metrics-out requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--telemetry-rate=", 0) == 0) {
      bool Saw = false;
      if (!parseBudget(Arg, 17, "--telemetry-rate", TelemetryRate, Saw))
        return 1;
      if (TelemetryRate == 0 ||
          (TelemetryRate & (TelemetryRate - 1)) != 0) {
        std::fprintf(stderr,
                     "adec: --telemetry-rate must be a power of two\n");
        return 1;
      }
    } else if (Arg.rfind("--max-steps=", 0) == 0) {
      if (!parseBudget(Arg, 12, "--max-steps", InterpOpts.MaxSteps,
                       SawBudget))
        return 1;
    } else if (Arg.rfind("--max-bytes=", 0) == 0) {
      if (!parseBudget(Arg, 12, "--max-bytes", InterpOpts.MaxBytes,
                       SawBudget))
        return 1;
    } else if (Arg.rfind("--max-depth=", 0) == 0) {
      if (!parseBudget(Arg, 12, "--max-depth", InterpOpts.MaxDepth,
                       SawBudget))
        return 1;
    } else if (Arg.rfind("--max-wall-ms=", 0) == 0) {
      if (!parseBudget(Arg, 14, "--max-wall-ms", InterpOpts.MaxWallMs,
                       SawBudget))
        return 1;
    } else if (Arg.rfind("--args=", 0) == 0) {
      SawArgs = true;
      if (!parseRunArgs(Arg.substr(7), RunArgs))
        return 1;
    } else if (Arg[0] != '-' && !Path) {
      Path = Argv[I];
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (!Path)
    return usage();
  if (SawArgs && !Run) {
    std::fprintf(stderr, "adec: --args has no effect without --run\n");
    return 1;
  }
  if (SawEngine && !Run) {
    std::fprintf(stderr, "adec: --engine has no effect without --run\n");
    return 1;
  }
  if (SawBudget && !Run) {
    std::fprintf(stderr, "adec: --max-* budgets have no effect without "
                         "--run\n");
    return 1;
  }
  if (SawDiagFormat && !Lint) {
    std::fprintf(stderr, "adec: --diag-format has no effect without --lint\n");
    return 1;
  }
  if (TimeReport && !RunAde) {
    std::fprintf(stderr, "adec: --time-report requires --ade\n");
    return 1;
  }
  if (Profile && !Run) {
    std::fprintf(stderr, "adec: --profile requires --run\n");
    return 1;
  }
  if (!TraceFile.empty() && !Run) {
    std::fprintf(stderr, "adec: --trace-out requires --run\n");
    return 1;
  }
  if (!MetricsFile.empty() && !Run) {
    std::fprintf(stderr, "adec: --metrics-out requires --run\n");
    return 1;
  }
  if (TelemetryRate && MetricsFile.empty()) {
    std::fprintf(stderr,
                 "adec: --telemetry-rate requires --metrics-out\n");
    return 1;
  }
  if (!ProfileUseFile.empty() && !RunAde) {
    std::fprintf(stderr, "adec: --profile-use requires --ade\n");
    return 1;
  }
  if (SelectionReport && !RunAde) {
    std::fprintf(stderr, "adec: --selection-report requires --ade\n");
    return 1;
  }
  if (Remarks && !RunAde) {
    std::fprintf(stderr, "adec: --remarks requires --ade\n");
    return 1;
  }
  if (SawRemarksFilter && !Remarks) {
    std::fprintf(stderr, "adec: --remarks-filter requires --remarks\n");
    return 1;
  }
  if (SawRemarksFilter) {
    std::string RegexError;
    if (!remarks::RemarkStream::validateFilter(RemarksFilter, &RegexError)) {
      std::fprintf(stderr, "adec: invalid --remarks-filter regex '%s': %s\n",
                   RemarksFilter.c_str(), RegexError.c_str());
      return 1;
    }
  }

  interp::ProfileData ProfData;
  if (!ProfileUseFile.empty()) {
    std::string Error;
    if (!ProfData.loadFromFile(ProfileUseFile, &Error)) {
      std::fprintf(stderr, "adec: cannot use profile %s: %s\n",
                   ProfileUseFile.c_str(), Error.c_str());
      return 1;
    }
    Config.Profile = &ProfData;
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return 1;
  }

  // The recorder must be live before runADE and before the interpreter is
  // constructed: both capture TraceRecorder::active() to emit events.
  TraceRecorder Trace;
  if (!TraceFile.empty())
    TraceRecorder::setActive(&Trace);

  std::vector<std::string> Errors;
  auto M = parser::parseModule(Source, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.c_str());
    return 1;
  }
  Errors.clear();
  if (!ir::verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verification: %s\n", Path, E.c_str());
    return 1;
  }

  // The abstract-interpretation report describes the input program, so it
  // prints before any transformation runs.
  if (AbsIntReport) {
    core::ModuleAnalysis MA(*M);
    analysis::AbsIntEngine AI(MA);
    AI.print(outs());
  }

  // The remark engine records every pipeline decision. --selection-report
  // is a view over the same stream, so it needs the engine even when the
  // remarks themselves were not requested; with tracing active the
  // pipeline samples per-phase remark counts as counter events, so a
  // traced compile gets the engine too.
  core::RemarkEmitter RemarkEng;
  if (Remarks || SelectionReport || !TraceFile.empty())
    Config.Remarks = &RemarkEng;

  if (RunAde) {
    core::PipelineResult Result = core::runADE(*M, Config);
    std::fprintf(stderr,
                 "adec: %u enumeration(s), %u enc, %u dec, %u add, "
                 "%u site(s) eliminated\n",
                 Result.Transform.EnumerationsCreated,
                 Result.Transform.EncInserted, Result.Transform.DecInserted,
                 Result.Transform.AddInserted,
                 Result.Transform.TranslationsSkipped);
    if (TimeReport) {
      Result.Timing.printReport(outs(), "ADE pass timing");
      stats::printStatistics(outs());
    }
    if (SelectionReport) {
      RawOstream &ROS = outs();
      ROS << "===-- selection report --===\n";
      stats::Table T({"root", "origin", "static", "final", "reserve",
                      "reason"});
      for (const core::SelectionDecision &D :
           core::selectionDecisions(RemarkEng.stream()))
        T.addRow({D.Root, D.Origin.empty() ? "-" : D.Origin,
                  ir::selectionName(D.Static), ir::selectionName(D.Final),
                  D.ReserveHint ? std::to_string(D.ReserveHint) : "-",
                  D.Reason});
      T.print(ROS);
    }
    if (Remarks) {
      const remarks::RemarkStream &S = RemarkEng.stream();
      std::string VerifyError;
      if (!S.verify(&VerifyError)) {
        std::fprintf(stderr, "adec: remark stream corrupt: %s\n",
                     VerifyError.c_str());
        return 2;
      }
      // Caret-annotated terminal report via the diagnostics engine.
      analysis::DiagnosticEngine DE;
      DE.setSource(Path, Source);
      uint64_t Shown = 0;
      for (const remarks::Remark &R : S.remarks()) {
        if (SawRemarksFilter &&
            !remarks::RemarkStream::matchesFilter(R.Pass, RemarksFilter))
          continue;
        ++Shown;
        std::string Msg = remarks::kindName(R.K);
        for (const remarks::Arg &A : R.Args) {
          Msg += ' ';
          Msg += A.Key;
          Msg += '=';
          if (A.Ty == remarks::Arg::Type::String) {
            Msg += '\'';
            Msg += A.Str;
            Msg += '\'';
          } else {
            Msg += A.valueText();
          }
        }
        DE.report(analysis::Severity::Note, R.Pass + ":" + R.Name,
                  std::move(Msg), R.Function,
                  ir::SrcLoc{R.Line, R.Col});
      }
      RawOstream &ROS = outs();
      ROS << "===-- optimization remarks (" << Shown << " of " << S.size()
          << ": " << S.count(remarks::Kind::Passed) << " passed, "
          << S.count(remarks::Kind::Missed) << " missed, "
          << S.count(remarks::Kind::Analysis) << " analysis) --===\n";
      DE.render(ROS, analysis::DiagFormat::Text);
      if (!RemarksFile.empty()) {
        std::FILE *File = std::fopen(RemarksFile.c_str(), "wb");
        if (!File) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       RemarksFile.c_str());
          return 1;
        }
        RawFileOstream FS(File);
        S.writeJson(FS, Path,
                    SawRemarksFilter ? &RemarksFilter : nullptr);
        FS.flush();
        std::fclose(File);
      }
    }
  }

  if (Lint) {
    analysis::DiagnosticEngine DE;
    DE.setSource(Path, Source);
    analysis::runLint(*M, DE);
    DE.render(outs(), Format);
    if (!DE.empty())
      return 1;
  }

  RawOstream &OS = outs();
  if (Print)
    printModule(*M, OS);

  if (Run) {
    const ir::Function *F = M->getFunction(RunFunc);
    if (!F) {
      std::fprintf(stderr, "error: no function @%s\n", RunFunc.c_str());
      return 1;
    }
    // Reset the watermark so this run's peak is its own, not inherited
    // from parsing/transform-time allocations or a previous run.
    MemoryTracker::instance().reset();
    interp::Profiler Prof;
    interp::InterpOptions Opts = InterpOpts;
    if (Profile)
      Opts.Prof = &Prof;
    runtime::Telemetry::Options TelOpts;
    if (TelemetryRate) {
      TelOpts.SampleShift = 0;
      while ((uint64_t(1) << TelOpts.SampleShift) < TelemetryRate)
        ++TelOpts.SampleShift;
    }
    runtime::Telemetry Tel(TelOpts);
    if (!MetricsFile.empty())
      Opts.Tel = &Tel;
    vm::Engine I(EngineK, *M, Opts);
    uint64_t Result;
    try {
      Result = I.call(F, RunArgs);
    } catch (const interp::InterpError &E) {
      std::fprintf(stderr, "%s: %s\n", Path, E.what());
      return 1;
    }
    OS << "@" << RunFunc << " = " << Result << "\n";
    OS << "accesses: sparse=" << I.stats().Sparse
       << " dense=" << I.stats().Dense
       << " instructions=" << I.stats().InstructionsExecuted << "\n";
    OS << "collection bytes: current="
       << MemoryTracker::instance().currentBytes()
       << " peak=" << MemoryTracker::instance().peakBytes() << "\n";
    runtime::ProbeCounters Work = I.probeTotals();
    OS << "collection work: probes=" << Work.Probes
       << " rehashes=" << Work.Rehashes << "\n";
    if (!MetricsFile.empty()) {
      std::FILE *File = std::fopen(MetricsFile.c_str(), "wb");
      if (!File) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     MetricsFile.c_str());
        return 1;
      }
      RawFileOstream FS(File);
      json::Writer W(FS);
      Tel.writeSnapshotJson(W);
      FS << '\n';
      FS.flush();
      std::fclose(File);
    }
    if (Profile) {
      Prof.printReport(OS, Path);
      if (ProfileFile.empty()) {
        writeProfileJson(OS, Path, RunFunc, Result, I.stats(), Prof);
      } else {
        std::FILE *File = std::fopen(ProfileFile.c_str(), "wb");
        if (!File) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       ProfileFile.c_str());
          return 1;
        }
        RawFileOstream FS(File);
        writeProfileJson(FS, Path, RunFunc, Result, I.stats(), Prof);
        std::fclose(File);
      }
    }
  }

  if (!TraceFile.empty()) {
    TraceRecorder::setActive(nullptr);
    std::FILE *File = std::fopen(TraceFile.c_str(), "wb");
    if (!File) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceFile.c_str());
      return 1;
    }
    RawFileOstream FS(File);
    Trace.write(FS);
    FS.flush();
    std::fclose(File);
  }
  return 0;
}
