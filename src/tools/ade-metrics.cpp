//===- ade-metrics.cpp - Telemetry snapshot viewer ------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the metrics snapshot JSON that `adec --metrics-out` and
/// `fig5_main --metrics-out` write (see runtime/Telemetry.h): per-channel
/// latency/probe percentile tables, per-allocation-site rollups and the
/// collection event journal.
///
/// Usage:
///   ade-metrics SNAPSHOT.json [options]
///     --sites            print the per-allocation-site rollup table
///     --journal          print the event journal
///     --kind=KIND        only journal events of KIND (e.g. rehash,
///                        clear, occupancy-dense; requires --journal)
///     --site=ID          only journal events of allocation site ID
///                        (requires --journal)
///     --diff=OTHER.json  compare channel percentiles against a second
///                        snapshot (OTHER is the baseline); cells where
///                        the baseline histogram is empty print "n/a"
///     --flight=DUMP.json render a flight-recorder dump written by
///                        `adesrv --flight-out`: request-stage latency
///                        breakdown plus outcome counts. Standalone —
///                        the snapshot positional becomes optional
///     --spans[=N]        with --flight: also print the N slowest
///                        tail-sampled traces as span trees (default 10)
///
/// The channel summary table always prints. Percentiles are recomputed
/// from the round-tripped histograms, so any quantile is available even
/// though the snapshot stores only p50/p99 as convenience fields.
/// Accepts metrics schemaVersion 1 (no "serve" section) and 2.
///
/// Exit codes: 0 success, 1 diagnosed failure (unreadable or malformed
/// snapshot, bad option).
///
//===----------------------------------------------------------------------===//

#include "runtime/Telemetry.h"
#include "stats/Stats.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ade;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "ade-metrics: unknown option '%s'\n", BadOption);
  std::fprintf(stderr,
               "usage: ade-metrics SNAPSHOT.json [--sites] [--journal]\n"
               "                   [--kind=KIND] [--site=ID]\n"
               "                   [--diff=OTHER.json]\n"
               "       ade-metrics --flight=DUMP.json [--spans[=N]]\n");
  return 1;
}

static bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

/// One channel rehydrated from a snapshot document.
struct ChannelView {
  std::string Kind;
  std::string Impl;
  uint64_t SampledOps = 0;
  Histogram LatencyNs;
  Histogram ProbeLen;

  std::string name() const { return Kind + "/" + Impl; }
};

/// A parsed snapshot: the document plus the rehydrated channel list.
struct Snapshot {
  std::unique_ptr<json::Value> Doc;
  std::vector<ChannelView> Channels;
  uint64_t SampleRate = 0;
  uint64_t SampledOps = 0;
};

static bool loadSnapshot(const std::string &Path, Snapshot &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Error;
  Out.Doc = json::parse(Text, &Error);
  if (!Out.Doc || !Out.Doc->isObject()) {
    std::fprintf(stderr, "error: malformed snapshot %s: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  // v1 snapshots (no "serve" section, no journal high-water) remain
  // readable: the viewer only keys on fields both versions share.
  const json::Value *Version = Out.Doc->find("schemaVersion");
  if (!Version || !Version->isNumber() || Version->asUint() < 1 ||
      Version->asUint() > runtime::MetricsSchemaVersion) {
    std::fprintf(stderr,
                 "error: %s has an unsupported metrics schemaVersion\n",
                 Path.c_str());
    return false;
  }
  if (const json::Value *V = Out.Doc->find("sampleRate"))
    Out.SampleRate = V->asUint();
  if (const json::Value *V = Out.Doc->find("sampledOps"))
    Out.SampledOps = V->asUint();
  // A snapshot from a run that sampled nothing may have an empty or
  // absent channel list; that is a valid (if dull) document, not an
  // error — downstream tables and diffs must render it as such.
  const json::Value *List = Out.Doc->find("channels");
  if (!List || !List->isArray())
    return true;
  for (const json::Value &E : List->elements()) {
    ChannelView Ch;
    if (const json::Value *V = E.find("kind"))
      Ch.Kind = V->asString();
    if (const json::Value *V = E.find("impl"))
      Ch.Impl = V->asString();
    if (const json::Value *V = E.find("sampledOps"))
      Ch.SampledOps = V->asUint();
    const json::Value *Lat = E.find("latencyNs");
    const json::Value *Probe = E.find("probeLen");
    if (!Lat || !Histogram::fromJson(*Lat, Ch.LatencyNs, &Error) || !Probe ||
        !Histogram::fromJson(*Probe, Ch.ProbeLen, &Error)) {
      std::fprintf(stderr, "error: %s channel %s: bad histogram: %s\n",
                   Path.c_str(), Ch.name().c_str(), Error.c_str());
      return false;
    }
    Out.Channels.push_back(std::move(Ch));
  }
  return true;
}

static std::string u64(uint64_t V) { return std::to_string(V); }

static void printSummary(RawOstream &OS, const Snapshot &S) {
  uint64_t Dropped = 0, Capacity = 0;
  if (const json::Value *J = S.Doc->find("journal")) {
    if (const json::Value *V = J->find("dropped"))
      Dropped = V->asUint();
    if (const json::Value *V = J->find("capacity"))
      Capacity = V->asUint();
  }
  OS << "== telemetry snapshot: 1-in-" << S.SampleRate << " sampling, "
     << S.SampledOps << " sampled op(s), journal " << Dropped
     << " dropped of capacity " << Capacity << " ==\n";
  stats::Table T({"channel", "ops", "lat p50", "lat p90", "lat p99",
                  "lat p999", "lat max", "probes p50", "probes p99"});
  for (const ChannelView &Ch : S.Channels)
    T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
              u64(Ch.LatencyNs.p90()), u64(Ch.LatencyNs.p99()),
              u64(Ch.LatencyNs.p999()), u64(Ch.LatencyNs.max()),
              u64(Ch.ProbeLen.p50()), u64(Ch.ProbeLen.p99())});
  T.print(OS);
  OS << "(latencies in ns; quantile relative error <= "
     << stats::Table::pct(S.Channels.empty()
                              ? 0.0
                              : S.Channels.front().LatencyNs.relativeError())
     << ")\n";
}

/// Formats a site's source attribution: "function:line:col", the label,
/// or "?" when the snapshot has neither.
static std::string siteWhere(const json::Value &Site) {
  const json::Value *Label = Site.find("label");
  if (Label && Label->isString())
    return Label->asString();
  std::string Out;
  if (const json::Value *F = Site.find("function"))
    Out = F->asString();
  if (const json::Value *Line = Site.find("line")) {
    Out += ":";
    Out += std::to_string(Line->asUint());
    if (const json::Value *Col = Site.find("col")) {
      Out += ":";
      Out += std::to_string(Col->asUint());
    }
  }
  return Out.empty() ? "?" : Out;
}

static bool printSites(RawOstream &OS, const Snapshot &S) {
  const json::Value *List = S.Doc->find("sites");
  if (!List || !List->isArray()) {
    std::fprintf(stderr, "error: snapshot has no sites array\n");
    return false;
  }
  OS << "\n== allocation sites ==\n";
  stats::Table T({"site", "kind", "impl", "where", "created", "ops",
                  "events"});
  for (const json::Value &Site : List->elements()) {
    std::string Events;
    if (const json::Value *Ev = Site.find("events"))
      for (const auto &[Key, Count] : Ev->members()) {
        if (!Events.empty())
          Events += " ";
        Events += Key + "=" + std::to_string(Count.asUint());
      }
    const json::Value *Id = Site.find("id");
    const json::Value *Kind = Site.find("kind");
    const json::Value *Impl = Site.find("impl");
    const json::Value *Created = Site.find("created");
    const json::Value *Ops = Site.find("sampledOps");
    T.addRow({Id ? u64(Id->asUint()) : "?",
              Kind && Kind->isString() ? Kind->asString() : "?",
              Impl && Impl->isString() ? Impl->asString() : "?",
              siteWhere(Site), Created ? u64(Created->asUint()) : "0",
              Ops ? u64(Ops->asUint()) : "0",
              Events.empty() ? "-" : Events});
  }
  T.print(OS);
  return true;
}

static bool printJournal(RawOstream &OS, const Snapshot &S,
                         const std::string &KindFilter, bool HasSiteFilter,
                         uint64_t SiteFilter) {
  const json::Value *J = S.Doc->find("journal");
  const json::Value *List = J ? J->find("events") : nullptr;
  if (!List || !List->isArray()) {
    std::fprintf(stderr, "error: snapshot has no journal events\n");
    return false;
  }
  OS << "\n== event journal ==\n";
  stats::Table T({"seq", "t(ms)", "kind", "site", "a", "b"});
  uint64_t Shown = 0, Total = 0;
  for (const json::Value &E : List->elements()) {
    ++Total;
    const json::Value *Kind = E.find("kind");
    std::string KindName =
        Kind && Kind->isString() ? Kind->asString() : "?";
    if (!KindFilter.empty() && KindName != KindFilter)
      continue;
    const json::Value *Site = E.find("site");
    if (HasSiteFilter && (!Site || Site->asUint() != SiteFilter))
      continue;
    ++Shown;
    const json::Value *Seq = E.find("seq");
    const json::Value *TNs = E.find("tNs");
    const json::Value *A = E.find("a");
    const json::Value *Rail = E.find("rail");
    const json::Value *B = E.find("b");
    T.addRow({Seq ? u64(Seq->asUint()) : "?",
              TNs ? stats::Table::fmt(double(TNs->asUint()) / 1e6, 3) : "?",
              KindName, Site ? u64(Site->asUint()) : "-",
              Rail && Rail->isString() ? Rail->asString()
                                       : (A ? u64(A->asUint()) : "0"),
              B ? u64(B->asUint()) : "0"});
  }
  T.print(OS);
  OS << "(" << Shown << " of " << Total << " journal event(s) shown)\n";
  return true;
}

/// Percentage-delta cell for the diff table; "n/a" when the baseline is
/// 0 (empty histogram or zero percentile) — never divides by it.
static std::string deltaCell(uint64_t Base, uint64_t Cur) {
  if (!Base)
    return "n/a";
  double Ratio = double(Cur) / double(Base);
  return (Ratio >= 1 ? "+" : "") + stats::Table::fmt(100 * (Ratio - 1), 1) +
         "%";
}

static bool printDiff(RawOstream &OS, const Snapshot &Cur,
                      const Snapshot &Base, const std::string &BasePath) {
  OS << "\n== diff vs " << BasePath << " (baseline -> current) ==\n";
  stats::Table T({"channel", "ops", "lat p50", "d p50", "lat p99", "d p99",
                  "probes p99", "d probes"});
  for (const ChannelView &Ch : Cur.Channels) {
    const ChannelView *Old = nullptr;
    for (const ChannelView &B : Base.Channels)
      if (B.Kind == Ch.Kind && B.Impl == Ch.Impl)
        Old = &B;
    if (!Old) {
      T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
                "new", u64(Ch.LatencyNs.p99()), "new",
                u64(Ch.ProbeLen.p99()), "new"});
      continue;
    }
    T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
              deltaCell(Old->LatencyNs.p50(), Ch.LatencyNs.p50()),
              u64(Ch.LatencyNs.p99()),
              deltaCell(Old->LatencyNs.p99(), Ch.LatencyNs.p99()),
              u64(Ch.ProbeLen.p99()),
              deltaCell(Old->ProbeLen.p99(), Ch.ProbeLen.p99())});
  }
  for (const ChannelView &B : Base.Channels) {
    bool Present = false;
    for (const ChannelView &Ch : Cur.Channels)
      if (B.Kind == Ch.Kind && B.Impl == Ch.Impl)
        Present = true;
    if (!Present)
      T.addRow({B.name(), "0", "-", "gone", "-", "gone", "-", "gone"});
  }
  T.print(OS);
  return true;
}

/// One sampled trace pulled out of a flight dump for the --spans view.
struct FlightTraceView {
  const json::Value *Trace = nullptr;
  uint64_t TotalNs = 0;
  uint64_t LaneIdx = 0;
  std::string Role;
};

static std::string flightFlags(const json::Value &Trace) {
  const json::Value *Flags = Trace.find("flags");
  if (!Flags || !Flags->isArray())
    return "-";
  std::string Out;
  for (const json::Value &F : Flags->elements()) {
    if (!Out.empty())
      Out += ",";
    Out += F.isString() ? F.asString() : "?";
  }
  return Out.empty() ? "-" : Out;
}

static void printFlightTrace(RawOstream &OS, const FlightTraceView &TV) {
  const json::Value &Tr = *TV.Trace;
  const json::Value *Id = Tr.find("id");
  const json::Value *Op = Tr.find("op");
  const json::Value *Status = Tr.find("status");
  const json::Value *Dropped = Tr.find("droppedSpans");
  OS << "trace id=" << (Id ? Id->asUint() : 0) << " op="
     << (Op && Op->isString() ? Op->asString() : "?") << " status="
     << (Status && Status->isString() ? Status->asString() : "?")
     << " lane=" << TV.LaneIdx << " (" << TV.Role.c_str() << ")"
     << " total=" << TV.TotalNs << "ns flags=" << flightFlags(Tr).c_str();
  if (Dropped && Dropped->asUint())
    OS << " dropped-spans=" << Dropped->asUint();
  OS << "\n";
  const json::Value *Spans = Tr.find("spans");
  if (!Spans || !Spans->isArray())
    return;
  stats::Table T({"span", "start", "dur", "shard", "a", "b"});
  for (const json::Value &S : Spans->elements()) {
    const json::Value *Kind = S.find("kind");
    const json::Value *Start = S.find("startNs");
    const json::Value *Dur = S.find("durNs");
    const json::Value *Shard = S.find("shard");
    const json::Value *A = S.find("a");
    const json::Value *B = S.find("b");
    T.addRow({Kind && Kind->isString() ? Kind->asString() : "?",
              u64(Start ? Start->asUint() : 0) + "ns",
              u64(Dur ? Dur->asUint() : 0) + "ns",
              Shard ? u64(Shard->asUint()) : "-",
              u64(A ? A->asUint() : 0), u64(B ? B->asUint() : 0)});
  }
  T.print(OS);
}

/// Renders `adesrv --flight-out` dumps: run header, outcome counts, the
/// per-stage latency breakdown, and (with --spans) the N slowest
/// tail-sampled traces as span trees.
static bool printFlightDump(RawOstream &OS, const std::string &Path,
                            bool Spans, uint64_t SlowestN) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Error;
  std::unique_ptr<json::Value> Doc = json::parse(Text, &Error);
  if (!Doc || !Doc->isObject()) {
    std::fprintf(stderr, "error: malformed flight dump %s: %s\n",
                 Path.c_str(), Error.c_str());
    return false;
  }
  const json::Value *Version = Doc->find("flightSchemaVersion");
  if (!Version || !Version->isNumber() || Version->asUint() != 1) {
    std::fprintf(stderr,
                 "error: %s has an unsupported flightSchemaVersion\n",
                 Path.c_str());
    return false;
  }
  const json::Value *Reason = Doc->find("reason");
  const json::Value *SampleEvery = Doc->find("sampleEvery");
  const json::Value *Tail = Doc->find("tailThresholdNs");
  const json::Value *Recorded = Doc->find("tracesRecorded");
  const json::Value *Sampled = Doc->find("tracesSampled");
  const json::Value *SpansDropped = Doc->find("spansDropped");
  OS << "== flight recorder: reason="
     << (Reason && Reason->isString() ? Reason->asString() : "?")
     << ", 1-in-" << (SampleEvery ? SampleEvery->asUint() : 1)
     << " head sampling, tail threshold "
     << (Tail ? Tail->asUint() : 0) << "ns ==\n";
  OS << "traces recorded=" << (Recorded ? Recorded->asUint() : 0)
     << " tail-sampled=" << (Sampled ? Sampled->asUint() : 0)
     << " spans-dropped=" << (SpansDropped ? SpansDropped->asUint() : 0)
     << "\n";
  if (const json::Value *Counts = Doc->find("statusCounts")) {
    OS << "outcomes:";
    for (const auto &[Status, Count] : Counts->members())
      OS << " " << Status.c_str() << "=" << Count.asUint();
    OS << "\n";
  }

  const json::Value *Stages = Doc->find("stages");
  if (Stages && Stages->isArray()) {
    OS << "\n== stage latency breakdown ==\n";
    stats::Table T({"stage", "count", "p50", "p90", "p99", "max"});
    for (const json::Value &St : Stages->elements()) {
      const json::Value *Name = St.find("stage");
      const json::Value *Count = St.find("count");
      T.addRow({Name && Name->isString() ? Name->asString() : "?",
                u64(Count ? Count->asUint() : 0),
                u64(St.find("p50Ns") ? St.find("p50Ns")->asUint() : 0) + "ns",
                u64(St.find("p90Ns") ? St.find("p90Ns")->asUint() : 0) + "ns",
                u64(St.find("p99Ns") ? St.find("p99Ns")->asUint() : 0) + "ns",
                u64(St.find("maxNs") ? St.find("maxNs")->asUint() : 0) +
                    "ns"});
    }
    T.print(OS);
  }

  if (!Spans)
    return true;
  std::vector<FlightTraceView> Views;
  const json::Value *Lanes = Doc->find("lanes");
  if (Lanes && Lanes->isArray())
    for (const json::Value &Lane : Lanes->elements()) {
      const json::Value *LaneIdx = Lane.find("lane");
      const json::Value *Role = Lane.find("role");
      const json::Value *SampledList = Lane.find("sampled");
      if (!SampledList || !SampledList->isArray())
        continue;
      for (const json::Value &Tr : SampledList->elements()) {
        FlightTraceView TV;
        TV.Trace = &Tr;
        if (const json::Value *Total = Tr.find("totalNs"))
          TV.TotalNs = Total->asUint();
        TV.LaneIdx = LaneIdx ? LaneIdx->asUint() : 0;
        TV.Role = Role && Role->isString() ? Role->asString() : "?";
        Views.push_back(TV);
      }
    }
  std::stable_sort(Views.begin(), Views.end(),
                   [](const FlightTraceView &A, const FlightTraceView &B) {
                     return A.TotalNs > B.TotalNs;
                   });
  if (Views.size() > SlowestN)
    Views.resize(SlowestN);
  OS << "\n== " << uint64_t(Views.size())
     << " slowest tail-sampled trace(s) ==\n";
  for (const FlightTraceView &TV : Views)
    printFlightTrace(OS, TV);
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Path;
  std::string DiffPath, KindFilter, FlightPath;
  bool Sites = false, Journal = false, HasSiteFilter = false;
  bool Spans = false;
  uint64_t SiteFilter = 0, SpansN = 10;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--sites") {
      Sites = true;
    } else if (Arg == "--journal") {
      Journal = true;
    } else if (Arg.rfind("--kind=", 0) == 0) {
      KindFilter = Arg.substr(7);
      runtime::EventKind K;
      if (!runtime::eventKindFromName(KindFilter, K)) {
        std::fprintf(stderr, "ade-metrics: unknown event kind '%s'\n",
                     KindFilter.c_str());
        return 1;
      }
    } else if (Arg.rfind("--site=", 0) == 0) {
      std::string Token = Arg.substr(7);
      if (Token.empty() ||
          Token.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "ade-metrics: --site requires a numeric id\n");
        return 1;
      }
      HasSiteFilter = true;
      SiteFilter = std::strtoull(Token.c_str(), nullptr, 10);
    } else if (Arg.rfind("--diff=", 0) == 0) {
      DiffPath = Arg.substr(7);
      if (DiffPath.empty()) {
        std::fprintf(stderr, "ade-metrics: --diff requires a file name\n");
        return 1;
      }
    } else if (Arg.rfind("--flight=", 0) == 0) {
      FlightPath = Arg.substr(9);
      if (FlightPath.empty()) {
        std::fprintf(stderr, "ade-metrics: --flight requires a file name\n");
        return 1;
      }
    } else if (Arg == "--spans" || Arg.rfind("--spans=", 0) == 0) {
      Spans = true;
      if (Arg.size() > 7) {
        std::string Token = Arg.substr(8);
        if (Token.empty() ||
            Token.find_first_not_of("0123456789") != std::string::npos ||
            Token == "0") {
          std::fprintf(stderr,
                       "ade-metrics: --spans takes a positive count\n");
          return 1;
        }
        SpansN = std::strtoull(Token.c_str(), nullptr, 10);
      }
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (Path.empty() && FlightPath.empty())
    return usage();
  if ((!KindFilter.empty() || HasSiteFilter) && !Journal) {
    std::fprintf(stderr,
                 "ade-metrics: --kind/--site require --journal\n");
    return 1;
  }
  if (Spans && FlightPath.empty()) {
    std::fprintf(stderr, "ade-metrics: --spans requires --flight\n");
    return 1;
  }
  if (Path.empty() && (Sites || Journal || !DiffPath.empty())) {
    std::fprintf(stderr,
                 "ade-metrics: --sites/--journal/--diff require a "
                 "snapshot file\n");
    return 1;
  }

  RawOstream &OS = outs();
  if (!Path.empty()) {
    Snapshot S;
    if (!loadSnapshot(Path, S))
      return 1;
    printSummary(OS, S);
    if (Sites && !printSites(OS, S))
      return 1;
    if (Journal &&
        !printJournal(OS, S, KindFilter, HasSiteFilter, SiteFilter))
      return 1;
    if (!DiffPath.empty()) {
      Snapshot Base;
      if (!loadSnapshot(DiffPath, Base))
        return 1;
      if (!printDiff(OS, S, Base, DiffPath))
        return 1;
    }
  }
  if (!FlightPath.empty() && !printFlightDump(OS, FlightPath, Spans, SpansN))
    return 1;
  return 0;
}
