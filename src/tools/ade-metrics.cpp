//===- ade-metrics.cpp - Telemetry snapshot viewer ------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the metrics snapshot JSON that `adec --metrics-out` and
/// `fig5_main --metrics-out` write (see runtime/Telemetry.h): per-channel
/// latency/probe percentile tables, per-allocation-site rollups and the
/// collection event journal.
///
/// Usage:
///   ade-metrics SNAPSHOT.json [options]
///     --sites            print the per-allocation-site rollup table
///     --journal          print the event journal
///     --kind=KIND        only journal events of KIND (e.g. rehash,
///                        clear, occupancy-dense; requires --journal)
///     --site=ID          only journal events of allocation site ID
///                        (requires --journal)
///     --diff=OTHER.json  compare channel percentiles against a second
///                        snapshot (OTHER is the baseline)
///
/// The channel summary table always prints. Percentiles are recomputed
/// from the round-tripped histograms, so any quantile is available even
/// though the snapshot stores only p50/p99 as convenience fields.
///
/// Exit codes: 0 success, 1 diagnosed failure (unreadable or malformed
/// snapshot, bad option).
///
//===----------------------------------------------------------------------===//

#include "runtime/Telemetry.h"
#include "stats/Stats.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/RawOstream.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ade;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "ade-metrics: unknown option '%s'\n", BadOption);
  std::fprintf(stderr,
               "usage: ade-metrics SNAPSHOT.json [--sites] [--journal]\n"
               "                   [--kind=KIND] [--site=ID]\n"
               "                   [--diff=OTHER.json]\n");
  return 1;
}

static bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

/// One channel rehydrated from a snapshot document.
struct ChannelView {
  std::string Kind;
  std::string Impl;
  uint64_t SampledOps = 0;
  Histogram LatencyNs;
  Histogram ProbeLen;

  std::string name() const { return Kind + "/" + Impl; }
};

/// A parsed snapshot: the document plus the rehydrated channel list.
struct Snapshot {
  std::unique_ptr<json::Value> Doc;
  std::vector<ChannelView> Channels;
  uint64_t SampleRate = 0;
  uint64_t SampledOps = 0;
};

static bool loadSnapshot(const std::string &Path, Snapshot &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  std::string Error;
  Out.Doc = json::parse(Text, &Error);
  if (!Out.Doc || !Out.Doc->isObject()) {
    std::fprintf(stderr, "error: malformed snapshot %s: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  const json::Value *Version = Out.Doc->find("schemaVersion");
  if (!Version || !Version->isNumber() ||
      Version->asUint() != runtime::MetricsSchemaVersion) {
    std::fprintf(stderr,
                 "error: %s has an unsupported metrics schemaVersion\n",
                 Path.c_str());
    return false;
  }
  if (const json::Value *V = Out.Doc->find("sampleRate"))
    Out.SampleRate = V->asUint();
  if (const json::Value *V = Out.Doc->find("sampledOps"))
    Out.SampledOps = V->asUint();
  const json::Value *List = Out.Doc->find("channels");
  if (!List || !List->isArray()) {
    std::fprintf(stderr, "error: %s has no channels array\n", Path.c_str());
    return false;
  }
  for (const json::Value &E : List->elements()) {
    ChannelView Ch;
    if (const json::Value *V = E.find("kind"))
      Ch.Kind = V->asString();
    if (const json::Value *V = E.find("impl"))
      Ch.Impl = V->asString();
    if (const json::Value *V = E.find("sampledOps"))
      Ch.SampledOps = V->asUint();
    const json::Value *Lat = E.find("latencyNs");
    const json::Value *Probe = E.find("probeLen");
    if (!Lat || !Histogram::fromJson(*Lat, Ch.LatencyNs, &Error) || !Probe ||
        !Histogram::fromJson(*Probe, Ch.ProbeLen, &Error)) {
      std::fprintf(stderr, "error: %s channel %s: bad histogram: %s\n",
                   Path.c_str(), Ch.name().c_str(), Error.c_str());
      return false;
    }
    Out.Channels.push_back(std::move(Ch));
  }
  return true;
}

static std::string u64(uint64_t V) { return std::to_string(V); }

static void printSummary(RawOstream &OS, const Snapshot &S) {
  uint64_t Dropped = 0, Capacity = 0;
  if (const json::Value *J = S.Doc->find("journal")) {
    if (const json::Value *V = J->find("dropped"))
      Dropped = V->asUint();
    if (const json::Value *V = J->find("capacity"))
      Capacity = V->asUint();
  }
  OS << "== telemetry snapshot: 1-in-" << S.SampleRate << " sampling, "
     << S.SampledOps << " sampled op(s), journal " << Dropped
     << " dropped of capacity " << Capacity << " ==\n";
  stats::Table T({"channel", "ops", "lat p50", "lat p90", "lat p99",
                  "lat p999", "lat max", "probes p50", "probes p99"});
  for (const ChannelView &Ch : S.Channels)
    T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
              u64(Ch.LatencyNs.p90()), u64(Ch.LatencyNs.p99()),
              u64(Ch.LatencyNs.p999()), u64(Ch.LatencyNs.max()),
              u64(Ch.ProbeLen.p50()), u64(Ch.ProbeLen.p99())});
  T.print(OS);
  OS << "(latencies in ns; quantile relative error <= "
     << stats::Table::pct(S.Channels.empty()
                              ? 0.0
                              : S.Channels.front().LatencyNs.relativeError())
     << ")\n";
}

/// Formats a site's source attribution: "function:line:col", the label,
/// or "?" when the snapshot has neither.
static std::string siteWhere(const json::Value &Site) {
  const json::Value *Label = Site.find("label");
  if (Label && Label->isString())
    return Label->asString();
  std::string Out;
  if (const json::Value *F = Site.find("function"))
    Out = F->asString();
  if (const json::Value *Line = Site.find("line")) {
    Out += ":";
    Out += std::to_string(Line->asUint());
    if (const json::Value *Col = Site.find("col")) {
      Out += ":";
      Out += std::to_string(Col->asUint());
    }
  }
  return Out.empty() ? "?" : Out;
}

static bool printSites(RawOstream &OS, const Snapshot &S) {
  const json::Value *List = S.Doc->find("sites");
  if (!List || !List->isArray()) {
    std::fprintf(stderr, "error: snapshot has no sites array\n");
    return false;
  }
  OS << "\n== allocation sites ==\n";
  stats::Table T({"site", "kind", "impl", "where", "created", "ops",
                  "events"});
  for (const json::Value &Site : List->elements()) {
    std::string Events;
    if (const json::Value *Ev = Site.find("events"))
      for (const auto &[Key, Count] : Ev->members()) {
        if (!Events.empty())
          Events += " ";
        Events += Key + "=" + std::to_string(Count.asUint());
      }
    const json::Value *Id = Site.find("id");
    const json::Value *Kind = Site.find("kind");
    const json::Value *Impl = Site.find("impl");
    const json::Value *Created = Site.find("created");
    const json::Value *Ops = Site.find("sampledOps");
    T.addRow({Id ? u64(Id->asUint()) : "?",
              Kind && Kind->isString() ? Kind->asString() : "?",
              Impl && Impl->isString() ? Impl->asString() : "?",
              siteWhere(Site), Created ? u64(Created->asUint()) : "0",
              Ops ? u64(Ops->asUint()) : "0",
              Events.empty() ? "-" : Events});
  }
  T.print(OS);
  return true;
}

static bool printJournal(RawOstream &OS, const Snapshot &S,
                         const std::string &KindFilter, bool HasSiteFilter,
                         uint64_t SiteFilter) {
  const json::Value *J = S.Doc->find("journal");
  const json::Value *List = J ? J->find("events") : nullptr;
  if (!List || !List->isArray()) {
    std::fprintf(stderr, "error: snapshot has no journal events\n");
    return false;
  }
  OS << "\n== event journal ==\n";
  stats::Table T({"seq", "t(ms)", "kind", "site", "a", "b"});
  uint64_t Shown = 0, Total = 0;
  for (const json::Value &E : List->elements()) {
    ++Total;
    const json::Value *Kind = E.find("kind");
    std::string KindName =
        Kind && Kind->isString() ? Kind->asString() : "?";
    if (!KindFilter.empty() && KindName != KindFilter)
      continue;
    const json::Value *Site = E.find("site");
    if (HasSiteFilter && (!Site || Site->asUint() != SiteFilter))
      continue;
    ++Shown;
    const json::Value *Seq = E.find("seq");
    const json::Value *TNs = E.find("tNs");
    const json::Value *A = E.find("a");
    const json::Value *Rail = E.find("rail");
    const json::Value *B = E.find("b");
    T.addRow({Seq ? u64(Seq->asUint()) : "?",
              TNs ? stats::Table::fmt(double(TNs->asUint()) / 1e6, 3) : "?",
              KindName, Site ? u64(Site->asUint()) : "-",
              Rail && Rail->isString() ? Rail->asString()
                                       : (A ? u64(A->asUint()) : "0"),
              B ? u64(B->asUint()) : "0"});
  }
  T.print(OS);
  OS << "(" << Shown << " of " << Total << " journal event(s) shown)\n";
  return true;
}

/// Percentage-delta cell for the diff table; "-" when the baseline is 0.
static std::string deltaCell(uint64_t Base, uint64_t Cur) {
  if (!Base)
    return "-";
  double Ratio = double(Cur) / double(Base);
  return (Ratio >= 1 ? "+" : "") + stats::Table::fmt(100 * (Ratio - 1), 1) +
         "%";
}

static bool printDiff(RawOstream &OS, const Snapshot &Cur,
                      const Snapshot &Base, const std::string &BasePath) {
  OS << "\n== diff vs " << BasePath << " (baseline -> current) ==\n";
  stats::Table T({"channel", "ops", "lat p50", "d p50", "lat p99", "d p99",
                  "probes p99", "d probes"});
  for (const ChannelView &Ch : Cur.Channels) {
    const ChannelView *Old = nullptr;
    for (const ChannelView &B : Base.Channels)
      if (B.Kind == Ch.Kind && B.Impl == Ch.Impl)
        Old = &B;
    if (!Old) {
      T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
                "new", u64(Ch.LatencyNs.p99()), "new",
                u64(Ch.ProbeLen.p99()), "new"});
      continue;
    }
    T.addRow({Ch.name(), u64(Ch.SampledOps), u64(Ch.LatencyNs.p50()),
              deltaCell(Old->LatencyNs.p50(), Ch.LatencyNs.p50()),
              u64(Ch.LatencyNs.p99()),
              deltaCell(Old->LatencyNs.p99(), Ch.LatencyNs.p99()),
              u64(Ch.ProbeLen.p99()),
              deltaCell(Old->ProbeLen.p99(), Ch.ProbeLen.p99())});
  }
  for (const ChannelView &B : Base.Channels) {
    bool Present = false;
    for (const ChannelView &Ch : Cur.Channels)
      if (B.Kind == Ch.Kind && B.Impl == Ch.Impl)
        Present = true;
    if (!Present)
      T.addRow({B.name(), "0", "-", "gone", "-", "gone", "-", "gone"});
  }
  T.print(OS);
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Path;
  std::string DiffPath, KindFilter;
  bool Sites = false, Journal = false, HasSiteFilter = false;
  uint64_t SiteFilter = 0;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--sites") {
      Sites = true;
    } else if (Arg == "--journal") {
      Journal = true;
    } else if (Arg.rfind("--kind=", 0) == 0) {
      KindFilter = Arg.substr(7);
      runtime::EventKind K;
      if (!runtime::eventKindFromName(KindFilter, K)) {
        std::fprintf(stderr, "ade-metrics: unknown event kind '%s'\n",
                     KindFilter.c_str());
        return 1;
      }
    } else if (Arg.rfind("--site=", 0) == 0) {
      std::string Token = Arg.substr(7);
      if (Token.empty() ||
          Token.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "ade-metrics: --site requires a numeric id\n");
        return 1;
      }
      HasSiteFilter = true;
      SiteFilter = std::strtoull(Token.c_str(), nullptr, 10);
    } else if (Arg.rfind("--diff=", 0) == 0) {
      DiffPath = Arg.substr(7);
      if (DiffPath.empty()) {
        std::fprintf(stderr, "ade-metrics: --diff requires a file name\n");
        return 1;
      }
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (Path.empty())
    return usage();
  if ((!KindFilter.empty() || HasSiteFilter) && !Journal) {
    std::fprintf(stderr,
                 "ade-metrics: --kind/--site require --journal\n");
    return 1;
  }

  Snapshot S;
  if (!loadSnapshot(Path, S))
    return 1;
  RawOstream &OS = outs();
  printSummary(OS, S);
  if (Sites && !printSites(OS, S))
    return 1;
  if (Journal && !printJournal(OS, S, KindFilter, HasSiteFilter, SiteFilter))
    return 1;
  if (!DiffPath.empty()) {
    Snapshot Base;
    if (!loadSnapshot(DiffPath, Base))
      return 1;
    if (!printDiff(OS, S, Base, DiffPath))
      return 1;
  }
  return 0;
}
