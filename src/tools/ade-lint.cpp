//===- ade-lint.cpp - Static enumeration-correctness linter ---------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone driver for the static checkers of src/analysis: parses a
/// .memoir module, optionally runs automatic data enumeration first, and
/// reports every diagnostic the lint suite finds.
///
/// Usage:
///   ade-lint FILE.memoir [options]
///     --ade                    transform before linting (audits the
///                              pipeline's own output)
///     --checks=a,b             run only the named checkers
///     --diag-format=text|json  output format (default text)
///     --list-checks            print the available checkers and exit
///     --absint                 also print the abstract-interpretation
///                              report (ranges, occupancy, covers)
///
/// Exit status: 0 when the module is clean, 1 when any diagnostic was
/// reported, 2 on usage, read, parse or verification errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbsInt.h"
#include "analysis/Checkers.h"
#include "core/Pipeline.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/CrashHandler.h"
#include "support/RawOstream.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ade;

static int usage() {
  std::fprintf(stderr,
               "usage: ade-lint FILE.memoir [--ade] [--checks=a,b]\n"
               "                [--diag-format=text|json] [--list-checks]\n"
               "                [--absint]\n");
  return 2;
}

static bool readFile(const char *Path, std::string &Out) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

int main(int Argc, char **Argv) {
  installCrashHandlers();
  const char *Path = nullptr;
  bool RunAde = false;
  bool AbsIntReport = false;
  analysis::DiagFormat Format = analysis::DiagFormat::Text;
  std::vector<std::string> Checks;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--ade") {
      RunAde = true;
    } else if (Arg == "--absint") {
      AbsIntReport = true;
    } else if (Arg == "--list-checks") {
      for (const analysis::CheckerInfo &CI : analysis::allCheckers())
        outs() << CI.Name << "  " << CI.Description << "\n";
      return 0;
    } else if (Arg.rfind("--checks=", 0) == 0) {
      std::string List = Arg.substr(9);
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          Checks.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (Arg == "--diag-format=text") {
      Format = analysis::DiagFormat::Text;
    } else if (Arg == "--diag-format=json") {
      Format = analysis::DiagFormat::Json;
    } else if (Arg[0] != '-' && !Path) {
      Path = Argv[I];
    } else {
      std::fprintf(stderr, "ade-lint: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }
  if (!Path)
    return usage();

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "ade-lint: cannot read %s\n", Path);
    return 2;
  }

  std::vector<std::string> Errors;
  auto M = parser::parseModule(Source, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.c_str());
    return 2;
  }
  Errors.clear();
  if (!ir::verifyModule(*M, Errors)) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verification: %s\n", Path, E.c_str());
    return 2;
  }

  if (RunAde)
    core::runADE(*M);

  if (AbsIntReport) {
    core::ModuleAnalysis MA(*M);
    analysis::AbsIntEngine AI(MA);
    AI.print(outs());
  }

  analysis::DiagnosticEngine DE;
  DE.setSource(Path, Source);
  std::string Unknown;
  if (!analysis::runLint(*M, DE, Checks, &Unknown)) {
    std::fprintf(stderr,
                 "ade-lint: unknown checker '%s' in --checks "
                 "(see --list-checks)\n",
                 Unknown.c_str());
    return 2;
  }
  DE.render(outs(), Format);
  if (Format == analysis::DiagFormat::Text)
    errs() << "ade-lint: " << DE.errorCount() << " error(s), "
           << DE.warningCount() << " warning(s)\n";
  return DE.empty() ? 0 : 1;
}
