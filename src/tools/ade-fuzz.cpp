//===- ade-fuzz.cpp - Differential fuzzing driver -------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates seed-deterministic random programs and runs the differential
/// oracle on each: baseline interpretation vs the ADE pipeline under
/// several configurations. Divergences, verifier rejections and runtime
/// errors on valid programs are findings, written to the corpus directory
/// with their seed for replay and reduction.
///
/// Usage:
///   ade-fuzz [options]
///     --seeds=N          number of seeds to run (default 100)
///     --seed-base=S      first seed (default 0)
///     --hostile          damage each program after generation; exercises
///                        parser/verifier diagnostics (parse/verify/
///                        runtime findings are then expected and ignored
///                        — only divergences and crashes count)
///     --time-budget=S    stop after S seconds even if seeds remain
///     --corpus=DIR       where to write findings (default "fuzz-corpus")
///     --print-seed=S     print the program for one seed and exit
///
/// Exit codes: 0 no findings, 1 findings were written, 2 internal error.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "support/CrashHandler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>

using namespace ade;
using namespace ade::fuzz;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "ade-fuzz: unknown option '%s'\n", BadOption);
  std::fprintf(stderr,
               "usage: ade-fuzz [--seeds=N] [--seed-base=S] [--hostile]\n"
               "                [--time-budget=S] [--corpus=DIR]\n"
               "                [--print-seed=S]\n");
  return 1;
}

static bool parseU64(const std::string &Arg, size_t Prefix, uint64_t &Out) {
  std::string Token = Arg.substr(Prefix);
  if (Token.empty() ||
      Token.find_first_not_of("0123456789") != std::string::npos)
    return false;
  Out = std::strtoull(Token.c_str(), nullptr, 10);
  return true;
}

/// Writes one finding to the corpus directory; the header comment makes
/// every file self-describing and replayable.
static bool writeFinding(const std::string &Dir, uint64_t Seed, bool Hostile,
                         const OracleResult &R, const std::string &Program) {
  ::mkdir(Dir.c_str(), 0777); // Best effort; open failures are reported.
  std::string Path = Dir + "/finding-" + std::to_string(Seed) + "-" +
                     findingKindName(R.Kind) + ".memoir";
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    std::fprintf(stderr, "ade-fuzz: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fprintf(File,
               "// ade-fuzz finding\n// seed: %llu%s\n// kind: %s\n"
               "// variant: %s\n// detail: %s\n",
               static_cast<unsigned long long>(Seed),
               Hostile ? " (hostile)" : "", findingKindName(R.Kind),
               R.Variant.empty() ? "-" : R.Variant.c_str(),
               R.Detail.c_str());
  std::fwrite(Program.data(), 1, Program.size(), File);
  std::fclose(File);
  std::fprintf(stderr, "ade-fuzz: seed %llu: %s (%s): %s -> %s\n",
               static_cast<unsigned long long>(Seed),
               findingKindName(R.Kind),
               R.Variant.empty() ? "-" : R.Variant.c_str(),
               R.Detail.c_str(), Path.c_str());
  return true;
}

int main(int Argc, char **Argv) {
  installCrashHandlers();
  uint64_t Seeds = 100, SeedBase = 0, TimeBudget = 0;
  bool Hostile = false, SelfTest = false;
  bool PrintSeed = false;
  uint64_t PrintSeedValue = 0;
  std::string Corpus = "fuzz-corpus";

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--seeds=", 0) == 0) {
      if (!parseU64(Arg, 8, Seeds))
        return usage(Argv[I]);
    } else if (Arg.rfind("--seed-base=", 0) == 0) {
      if (!parseU64(Arg, 12, SeedBase))
        return usage(Argv[I]);
    } else if (Arg == "--hostile") {
      Hostile = true;
    } else if (Arg == "--fuzz-self-test") {
      // Hidden: sabotage every transformed module to prove the oracle
      // (and the corpus plumbing) detects real miscompilations.
      SelfTest = true;
    } else if (Arg.rfind("--time-budget=", 0) == 0) {
      if (!parseU64(Arg, 14, TimeBudget))
        return usage(Argv[I]);
    } else if (Arg.rfind("--corpus=", 0) == 0) {
      Corpus = Arg.substr(9);
      if (Corpus.empty())
        return usage(Argv[I]);
    } else if (Arg.rfind("--print-seed=", 0) == 0) {
      if (!parseU64(Arg, 13, PrintSeedValue))
        return usage(Argv[I]);
      PrintSeed = true;
    } else {
      return usage(Argv[I]);
    }
  }

  if (PrintSeed) {
    GeneratorOptions GO;
    GO.Seed = PrintSeedValue;
    GO.Hostile = Hostile;
    std::string Program = generateProgram(GO);
    std::fwrite(Program.data(), 1, Program.size(), stdout);
    return 0;
  }

  auto Start = std::chrono::steady_clock::now();
  uint64_t Ran = 0, Findings = 0, Detections = 0;
  for (uint64_t Seed = SeedBase; Seed != SeedBase + Seeds; ++Seed) {
    if (TimeBudget) {
      auto Elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
      if (static_cast<uint64_t>(Elapsed) >= TimeBudget) {
        std::fprintf(stderr,
                     "ade-fuzz: time budget reached after %llu seed(s)\n",
                     static_cast<unsigned long long>(Ran));
        break;
      }
    }
    CrashContext CC("fuzzing", "seed " + std::to_string(Seed));
    GeneratorOptions GO;
    GO.Seed = Seed;
    GO.Hostile = Hostile;
    std::string Program = generateProgram(GO);
    OracleOptions OO;
    OO.PlantBug = SelfTest;
    OracleResult R = runOracle(Program, OO);
    ++Ran;
    if (R.Kind == FindingKind::None)
      continue;
    // Hostile programs are deliberately damaged: diagnostics and runtime
    // errors are their expected outcome, not findings. A divergence on a
    // damaged-but-valid program is still a real one.
    if (Hostile && R.Kind != FindingKind::Divergence)
      continue;
    ++Detections;
    if (SelfTest)
      continue; // Expected; proves detection without polluting the corpus.
    ++Findings;
    writeFinding(Corpus, Seed, Hostile, R, Program);
  }

  if (SelfTest) {
    std::fprintf(stderr,
                 "ade-fuzz: self-test: planted bug detected in %llu of "
                 "%llu seed(s)\n",
                 static_cast<unsigned long long>(Detections),
                 static_cast<unsigned long long>(Ran));
    return Detections != 0 ? 0 : 1;
  }
  std::fprintf(stderr, "ade-fuzz: %llu seed(s), %llu finding(s)\n",
               static_cast<unsigned long long>(Ran),
               static_cast<unsigned long long>(Findings));
  return Findings != 0 ? 1 : 0;
}
