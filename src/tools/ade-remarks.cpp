//===- ade-remarks.cpp - Optimization remarks viewer ----------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads a remarks JSON file written by `adec --ade --remarks=FILE` and
/// answers the questions a remarks stream exists for: what did the
/// pipeline decide, where, and why.
///
/// Usage:
///   ade-remarks FILE.json [options]
///     (default)          per-pass and per-function rollups, plus the
///                        most frequent missed optimizations
///     --top-missed=N     show at most N missed groups (default 10)
///     --at=LINE[:COL]    print every remark anchored at that source
///                        position with its full provenance chain
///     --chain=ID         print the provenance tree of remark ID
///     --list             dump every remark as one line (id, kind,
///                        location, message)
///
/// Exit codes: 0 success, 1 unreadable/malformed input or bad option.
///
//===----------------------------------------------------------------------===//

#include "stats/Stats.h"
#include "support/RawOstream.h"
#include "support/Remark.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace ade;
using namespace ade::remarks;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "ade-remarks: unknown option '%s'\n", BadOption);
  std::fprintf(stderr,
               "usage: ade-remarks FILE.json [--top-missed=N]\n"
               "                   [--at=LINE[:COL]] [--chain=ID] [--list]\n");
  return 1;
}

static bool readFile(const char *Path, std::string &Out) {
  std::FILE *File = std::fopen(Path, "rb");
  if (!File)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Out.append(Buf, N);
  std::fclose(File);
  return true;
}

static std::string locText(const std::string &File, const Remark &R) {
  std::string Out = File.empty() ? std::string("<module>") : File;
  if (R.hasLoc())
    Out += ":" + std::to_string(R.Line) + ":" + std::to_string(R.Col);
  else if (!R.Function.empty())
    Out += ":@" + R.Function;
  return Out;
}

/// Prints \p R and, indented below it, the chain of decisions it
/// depends on (depth-first up the parent links).
static void printChain(const RemarkStream &S, const std::string &File,
                       const Remark &R, RawOstream &OS, unsigned Indent) {
  OS.indent(Indent) << (Indent ? "<- " : "") << "#" << R.Id << " ["
                    << kindName(R.K) << "] " << R.message() << "\n";
  OS.indent(Indent + 3) << "at " << locText(File, R) << "\n";
  for (uint64_t P : R.Parents)
    if (const Remark *Parent = S.byId(P))
      printChain(S, File, *Parent, OS, Indent + 2);
}

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  const char *Path = nullptr;
  bool List = false;
  uint64_t TopMissed = 10, ChainId = 0;
  unsigned AtLine = 0, AtCol = 0;
  bool SawAt = false;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list") {
      List = true;
    } else if (Arg.rfind("--top-missed=", 0) == 0) {
      TopMissed = std::strtoull(Arg.c_str() + 13, nullptr, 10);
    } else if (Arg.rfind("--chain=", 0) == 0) {
      ChainId = std::strtoull(Arg.c_str() + 8, nullptr, 10);
      if (!ChainId) {
        std::fprintf(stderr, "ade-remarks: --chain requires a remark id\n");
        return 1;
      }
    } else if (Arg.rfind("--at=", 0) == 0) {
      SawAt = true;
      const char *Pos = Arg.c_str() + 5;
      char *End = nullptr;
      AtLine = unsigned(std::strtoul(Pos, &End, 10));
      if (End && *End == ':')
        AtCol = unsigned(std::strtoul(End + 1, nullptr, 10));
      if (!AtLine) {
        std::fprintf(stderr, "ade-remarks: --at requires LINE[:COL]\n");
        return 1;
      }
    } else if (Arg[0] != '-' && !Path) {
      Path = Argv[I];
    } else {
      return usage(Arg[0] == '-' ? Argv[I] : nullptr);
    }
  }
  if (!Path)
    return usage();

  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "ade-remarks: cannot read %s\n", Path);
    return 1;
  }
  RemarkStream S;
  std::string Error, File;
  if (!S.readJson(Text, &Error, &File)) {
    std::fprintf(stderr, "ade-remarks: %s: %s\n", Path, Error.c_str());
    return 1;
  }

  RawOstream &OS = outs();

  if (ChainId) {
    const Remark *R = S.byId(ChainId);
    if (!R) {
      std::fprintf(stderr, "ade-remarks: no remark with id %llu\n",
                   (unsigned long long)ChainId);
      return 1;
    }
    printChain(S, File, *R, OS, 0);
    OS << "chain depth: " << S.chainDepth(*R) << "\n";
    return 0;
  }

  if (SawAt) {
    unsigned Matches = 0;
    for (const Remark &R : S.remarks()) {
      if (R.Line != AtLine || (AtCol && R.Col != AtCol))
        continue;
      if (Matches++)
        OS << "\n";
      printChain(S, File, R, OS, 0);
    }
    if (!Matches) {
      OS << "no remarks at line " << AtLine;
      if (AtCol)
        OS << ", column " << AtCol;
      OS << "\n";
    }
    return 0;
  }

  if (List) {
    for (const Remark &R : S.remarks())
      OS << "#" << R.Id << " [" << kindName(R.K) << "] "
         << locText(File, R) << " " << R.message() << "\n";
    return 0;
  }

  // Summary header.
  OS << "remarks: " << S.size() << " (" << S.count(Kind::Passed)
     << " passed, " << S.count(Kind::Missed) << " missed, "
     << S.count(Kind::Analysis) << " analysis) from "
     << (File.empty() ? std::string("<module>") : File) << "\n";

  // Per-pass rollup.
  struct Tally {
    uint64_t Passed = 0, Missed = 0, Analysis = 0;
    void count(Kind K) {
      if (K == Kind::Passed)
        ++Passed;
      else if (K == Kind::Missed)
        ++Missed;
      else
        ++Analysis;
    }
    uint64_t total() const { return Passed + Missed + Analysis; }
  };
  std::map<std::string, Tally> ByPass, ByFunction;
  std::map<std::string, uint64_t> MissedGroups;
  for (const Remark &R : S.remarks()) {
    ByPass[R.Pass].count(R.K);
    ByFunction[R.Function.empty() ? "<module>" : R.Function].count(R.K);
    if (R.K == Kind::Missed)
      ++MissedGroups[R.Pass + ":" + R.Name];
  }

  OS << "\n===-- by pass --===\n";
  stats::Table PassTable({"pass", "passed", "missed", "analysis", "total"});
  for (const auto &[Pass, T] : ByPass)
    PassTable.addRow({Pass, std::to_string(T.Passed),
                      std::to_string(T.Missed), std::to_string(T.Analysis),
                      std::to_string(T.total())});
  PassTable.print(OS);

  OS << "\n===-- by function --===\n";
  stats::Table FuncTable({"function", "passed", "missed", "analysis",
                          "total"});
  for (const auto &[Func, T] : ByFunction)
    FuncTable.addRow({Func, std::to_string(T.Passed),
                      std::to_string(T.Missed), std::to_string(T.Analysis),
                      std::to_string(T.total())});
  FuncTable.print(OS);

  // Top missed optimizations: what to look at first.
  std::vector<std::pair<uint64_t, std::string>> Missed;
  for (const auto &[Name, N] : MissedGroups)
    Missed.push_back({N, Name});
  std::sort(Missed.begin(), Missed.end(),
            [](const auto &A, const auto &B) {
              return A.first != B.first ? A.first > B.first
                                        : A.second < B.second;
            });
  OS << "\n===-- top missed --===\n";
  if (Missed.empty())
    OS << "(none)\n";
  uint64_t Shown = 0;
  for (const auto &[N, Name] : Missed) {
    if (Shown++ == TopMissed)
      break;
    OS << N << "x " << Name << "\n";
  }
  OS.flush();
  return 0;
}
