//===- ade-reduce.cpp - Test-case reduction driver ------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimizes a program the differential oracle flags (see ade-fuzz) while
/// preserving the kind of finding: drop unreferenced functions, drop
/// individual instructions, shrink constants, until a fixed point. The
/// reduced program is printed to stdout (or --out=FILE); a summary line
/// goes to stderr.
///
/// Usage:
///   ade-reduce FILE.memoir [--out=FILE] [--max-rounds=N]
///
/// Exit codes: 0 reduced (finding preserved), 1 the input does not fail
/// the oracle (nothing to reduce) or a file error, 2 internal error.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "support/CrashHandler.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace ade;
using namespace ade::fuzz;

static int usage(const char *BadOption = nullptr) {
  if (BadOption)
    std::fprintf(stderr, "ade-reduce: unknown option '%s'\n", BadOption);
  std::fprintf(stderr,
               "usage: ade-reduce FILE.memoir [--out=FILE] [--max-rounds=N]\n");
  return 1;
}

static size_t countLines(const std::string &Text) {
  size_t Lines = 0;
  for (char C : Text)
    if (C == '\n')
      ++Lines;
  if (!Text.empty() && Text.back() != '\n')
    ++Lines;
  return Lines;
}

int main(int Argc, char **Argv) {
  installCrashHandlers();
  std::string InputPath, OutPath;
  ReduceOptions Opts;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--out=", 0) == 0) {
      OutPath = Arg.substr(6);
      if (OutPath.empty())
        return usage(Argv[I]);
    } else if (Arg.rfind("--max-rounds=", 0) == 0) {
      Opts.MaxRounds = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 13, nullptr, 10));
    } else if (Arg == "--fuzz-self-test") {
      // Hidden: reduce against the oracle's planted-bug predicate; used
      // by the self-test harness to minimize a sabotage divergence.
      Opts.Oracle.PlantBug = true;
    } else if (Arg.rfind("--", 0) == 0) {
      return usage(Argv[I]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      return usage(Argv[I]);
    }
  }
  if (InputPath.empty())
    return usage();

  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "ade-reduce: cannot read %s\n", InputPath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  CrashContext CC("reducing", InputPath);
  ReduceResult R = reduceProgram(Source, Opts);
  if (R.Kind == FindingKind::None) {
    std::fprintf(stderr,
                 "ade-reduce: %s does not fail the oracle; nothing to "
                 "reduce\n",
                 InputPath.c_str());
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "ade-reduce: cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << R.Reduced;
  } else {
    std::fwrite(R.Reduced.data(), 1, R.Reduced.size(), stdout);
  }

  std::fprintf(stderr,
               "ade-reduce: %s preserved, %zu -> %zu line(s) "
               "(%u attempt(s), %u accepted)\n",
               findingKindName(R.Kind), countLines(Source),
               countLines(R.Reduced), R.Attempts, R.Accepted);
  return 0;
}
