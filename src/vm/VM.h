//===- VM.h - Register bytecode execution engine ----------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-threaded register bytecode VM: the fast execution engine
/// behind `--engine=vm`. Functions compile lazily to the bytecode of
/// Bytecode.h and run in a flat dispatch loop (computed-goto threading
/// where the compiler supports it, a switch otherwise), with monomorphic
/// inline caches devirtualizing hot collection operations.
///
/// The VM is semantically interchangeable with the tree-walking
/// interp::Interpreter — same 64-bit value encoding, same InterpError
/// diagnostics, same guard rails, stats, profiler and telemetry contracts
/// — and the differential fuzzing oracle holds the two engines bit-equal
/// on every seed. The public surface deliberately mirrors Interpreter so
/// hosts can switch engines behind vm::Engine.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_VM_VM_H
#define ADE_VM_VM_H

#include "interp/Interpreter.h"
#include "vm/Bytecode.h"

#include <memory>
#include <string>
#include <vector>

namespace ade {
namespace vm {

/// Executes functions of one module on compiled register bytecode. The
/// options (guard rails, stats, profiler, telemetry) carry the exact
/// interpreter semantics.
class VM {
public:
  explicit VM(const ir::Module &M, interp::InterpOptions Opts = {});
  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;
  ~VM();

  /// Calls \p F with 64-bit encoded arguments; returns the encoded result
  /// (0 for void functions). Throws interp::InterpError exactly where the
  /// tree-walker would; the VM remains usable afterwards.
  uint64_t call(const ir::Function *F, const std::vector<uint64_t> &Args);

  /// Convenience: call by name. The function must exist.
  uint64_t callByName(const std::string &Name,
                      const std::vector<uint64_t> &Args);

  /// Zeroes the cumulative charged-step counter (mirrors
  /// interp::Interpreter::resetCallBudget): hosts reusing one VM across
  /// independent requests reset it per call so MaxSteps is a
  /// deterministic per-request budget.
  void resetCallBudget();

  /// Allocates an arena-owned collection for \p Ty (host-side input
  /// construction); the pointer's bits are a valid argument value.
  runtime::RtCollection *newCollection(const ir::Type *Ty);

  static uint64_t collToBits(runtime::RtCollection *C) {
    return interp::Interpreter::collToBits(C);
  }
  static runtime::RtCollection *bitsToColl(uint64_t Bits) {
    return interp::Interpreter::bitsToColl(Bits);
  }

  runtime::InterpStats &stats() { return Stats; }
  const runtime::InterpStats &stats() const { return Stats; }

  /// Sums probe/rehash counters over every collection this VM allocated.
  runtime::ProbeCounters probeTotals() const;

  /// Reads a global's current value (0 if never set); enumeration and
  /// collection globals materialize lazily like the tree-walker's.
  uint64_t globalValue(const std::string &Name);
  void setGlobalValue(const std::string &Name, uint64_t Value);

  /// The compiled bytecode of \p F (compiling it on first request);
  /// exposed for tests and the disassembler.
  const CompiledFn &compiled(const ir::Function *F);

private:
  struct Impl;
  std::unique_ptr<Impl> TheImpl;
  runtime::InterpStats Stats;
};

/// True when this build dispatches via computed-goto direct threading
/// (false: portable switch fallback).
bool usesComputedGoto();

} // namespace vm
} // namespace ade

#endif // ADE_VM_VM_H
