//===- Bytecode.cpp - Register bytecode for the VM ------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "support/RawOstream.h"

using namespace ade;
using namespace ade::vm;

const char *ade::vm::vmOpName(VmOp Op) {
  switch (Op) {
#define ADE_VM_NAME(Name)                                                      \
  case VmOp::Name:                                                             \
    return #Name;
    ADE_VM_OPCODES(ADE_VM_NAME)
#undef ADE_VM_NAME
  }
  return "<invalid>";
}

std::string ade::vm::disassemble(const CompiledFn &CF) {
  std::string Out;
  RawStringOstream OS(Out);
  OS << "regs " << CF.NumRegs << ", args [";
  for (size_t I = 0; I != CF.ArgRegs.size(); ++I)
    OS << (I ? " " : "") << "r" << CF.ArgRegs[I];
  OS << "]\n";
  auto Reg = [&](uint32_t R) {
    if (R == NoReg)
      OS << "_";
    else
      OS << "r" << R;
  };
  for (size_t IP = 0; IP != CF.Code.size(); ++IP) {
    const Inst &In = CF.Code[IP];
    OS << IP << ": " << vmOpName(In.Op) << " ";
    OS << "A=" << In.A << " B=";
    Reg(In.B);
    OS << " C=";
    Reg(In.C);
    OS << " D=";
    Reg(In.D);
    if (In.Charge)
      OS << " #" << unsigned(In.Charge);
    OS << "\n";
  }
  return Out;
}
