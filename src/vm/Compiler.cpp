//===- Compiler.cpp - IR to register bytecode -----------------------------===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "interp/EvalOps.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace ade;
using namespace ade::ir;
using namespace ade::vm;

namespace {

class Compiler {
public:
  Compiler(const Function &F, CompileOptions Opts) : F(F), Opts(Opts) {}

  CompiledFn run() {
    for (unsigned I = 0; I != F.numArgs(); ++I)
      CF.ArgRegs.push_back(regOf(F.arg(I)));
    // Yields at function top level behave like the tree-walker's: the
    // region simply ends, returning 0.
    std::vector<size_t> EndJumps;
    YieldSink Sink;
    Sink.K = YieldSink::Kind::FuncEnd;
    Sink.PendingJumps = &EndJumps;
    compileRegion(F.body(), Sink);
    size_t EndIP = here();
    for (size_t Idx : EndJumps)
      CF.Code[Idx].A = uint32_t(EndIP);
    // Implicit `ret 0` for bodies that fall off the end (uncharged, like
    // the tree-walker's region end).
    Inst Ret;
    Ret.Op = VmOp::RetVal;
    Ret.A = NoReg;
    CF.Code.push_back(Ret);
    return std::move(CF);
  }

private:
  /// Describes how a region's Yield instructions lower.
  struct YieldSink {
    enum class Kind { FuncEnd, IfJoin, ForRangeBack, DoWhileBack, ForEachBack };
    Kind K = Kind::FuncEnd;
    /// Where yield operands land: If result registers, or the loop's
    /// carried region-argument registers.
    std::vector<uint32_t> Dsts;
    /// For-range induction register.
    uint32_t IvReg = NoReg;
    /// For-range bound register (IncJumpLt's comparison operand).
    uint32_t HiReg = NoReg;
    /// Loop head / for-each advance instruction index. For-range stores
    /// the rotated target: the first instruction after the head test.
    size_t BackIP = 0;
    /// Jumps to patch to the join / function end (FuncEnd, IfJoin) or to
    /// the loop exit (DoWhileBack patches field A, ForRangeBack patches
    /// IncJumpLt's not-taken target in field D).
    std::vector<size_t> *PendingJumps = nullptr;
  };

  const Function &F;
  CompileOptions Opts;
  CompiledFn CF;
  std::unordered_map<const Value *, uint32_t> RegOf;
  std::map<uint64_t, uint32_t> ConstIdx;
  std::map<std::string, uint32_t> SymIdx;

  uint32_t regOf(const Value *V) {
    auto [It, Inserted] = RegOf.try_emplace(V, CF.NumRegs);
    if (Inserted)
      ++CF.NumRegs;
    return It->second;
  }

  uint32_t newTemp() { return CF.NumRegs++; }

  size_t here() const { return CF.Code.size(); }

  size_t emit(VmOp Op, uint8_t Charge, const Instruction *Src, uint32_t A = 0,
              uint32_t B = 0, uint32_t C = 0, uint32_t D = 0, uint32_t E = 0,
              uint16_t Aux = 0) {
    Inst In;
    In.Op = Op;
    In.Charge = Charge;
    In.Aux = Aux;
    In.A = A;
    In.B = B;
    In.C = C;
    In.D = D;
    In.E = E;
    In.Src = Src;
    CF.Code.push_back(In);
    return CF.Code.size() - 1;
  }

  uint32_t constIdx(uint64_t V) {
    auto [It, Inserted] = ConstIdx.try_emplace(V, uint32_t(CF.ConstPool.size()));
    if (Inserted)
      CF.ConstPool.push_back(V);
    return It->second;
  }

  uint32_t symIdx(const std::string &S) {
    auto [It, Inserted] = SymIdx.try_emplace(S, uint32_t(CF.SymPool.size()));
    if (Inserted)
      CF.SymPool.push_back(S);
    return It->second;
  }

  uint32_t srcIdx(const Instruction *I) {
    CF.SrcPool.push_back(I);
    return uint32_t(CF.SrcPool.size() - 1);
  }

  uint32_t newCache() {
    CF.Caches.emplace_back();
    return uint32_t(CF.Caches.size() - 1);
  }

  /// True when \p Def's single use is operand \p OpIdx of \p User.
  static bool onlyUseIs(const Value *Def, const Instruction *User,
                        unsigned OpIdx) {
    return Def->uses().size() == 1 && User->operand(OpIdx) == Def;
  }

  //===--------------------------------------------------------------------===//
  // Yield lowering
  //===--------------------------------------------------------------------===//

  /// Emits the register moves realizing `Dsts[i] = old(Srcs[i])` for all i
  /// simultaneously: a destination may also be a pending source (loop
  /// arguments yielded back permuted), so writes are ordered to never
  /// clobber an unread source, with a temp register breaking cycles.
  /// \p NeedCharge carries the yield's 1-step charge onto the first
  /// emitted move.
  void emitParallelCopy(std::vector<std::pair<uint32_t, uint32_t>> Pairs,
                        const Instruction *Src, bool &NeedCharge) {
    Pairs.erase(std::remove_if(Pairs.begin(), Pairs.end(),
                               [](const auto &P) {
                                 return P.first == P.second;
                               }),
                Pairs.end());
    auto takeCharge = [&]() -> uint8_t {
      uint8_t C = NeedCharge ? 1 : 0;
      NeedCharge = false;
      return C;
    };
    while (!Pairs.empty()) {
      bool Progress = false;
      for (size_t I = 0; I != Pairs.size(); ++I) {
        uint32_t Dst = Pairs[I].first;
        bool IsSource = false;
        for (size_t J = 0; J != Pairs.size(); ++J)
          if (J != I && Pairs[J].second == Dst)
            IsSource = true;
        if (IsSource)
          continue;
        emit(VmOp::Move, takeCharge(), Src, Dst, Pairs[I].second);
        Pairs.erase(Pairs.begin() + I);
        Progress = true;
        break;
      }
      if (!Progress) {
        // Pure cycle: free one destination by saving it to a temp.
        uint32_t Dst = Pairs.front().first;
        uint32_t Temp = newTemp();
        emit(VmOp::Move, takeCharge(), Src, Temp, Dst);
        for (auto &P : Pairs)
          if (P.second == Dst)
            P.second = Temp;
      }
    }
  }

  /// \p IsLast: the yield is its region's final instruction, so the
  /// next emitted instruction is the loop/join exit (enables back-edge
  /// fusion with fallthrough as the exit path).
  void compileYield(const Instruction &I, const YieldSink &Sink, bool IsLast) {
    bool NeedCharge = true;
    auto takeCharge = [&]() -> uint8_t {
      uint8_t C = NeedCharge ? 1 : 0;
      NeedCharge = false;
      return C;
    };
    switch (Sink.K) {
    case YieldSink::Kind::FuncEnd:
      Sink.PendingJumps->push_back(emit(VmOp::Jump, takeCharge(), &I));
      return;
    case YieldSink::Kind::IfJoin: {
      // If results and yield operands are distinct SSA values, hence
      // distinct registers: plain sequential moves.
      for (size_t Idx = 0; Idx != Sink.Dsts.size(); ++Idx) {
        uint32_t S = regOf(I.operand(unsigned(Idx)));
        if (Sink.Dsts[Idx] != S)
          emit(VmOp::Move, takeCharge(), &I, Sink.Dsts[Idx], S);
      }
      Sink.PendingJumps->push_back(emit(VmOp::Jump, takeCharge(), &I));
      return;
    }
    case YieldSink::Kind::ForRangeBack: {
      std::vector<std::pair<uint32_t, uint32_t>> Pairs;
      for (size_t Idx = 0; Idx != Sink.Dsts.size(); ++Idx)
        Pairs.push_back({Sink.Dsts[Idx], regOf(I.operand(unsigned(Idx)))});
      emitParallelCopy(std::move(Pairs), &I, NeedCharge);
      // Superinstruction: when the region ends on a coalesced u64
      // accumulate (an AddU64 writing a carried register, all yield
      // copies elided) the add and the back edge run in one dispatch.
      // Fallthrough is the loop exit, so this needs the yield to be the
      // region's last instruction; the back target lives in Aux, which
      // bounds the fusible code size.
      if (Opts.Fuse && IsLast && NeedCharge && !CF.Code.empty() &&
          Sink.BackIP <= 0xFFFF) {
        Inst &L = CF.Code.back();
        if (L.Op == VmOp::AddU64 && L.Charge == 1 &&
            std::find(Sink.Dsts.begin(), Sink.Dsts.end(), L.A) !=
                Sink.Dsts.end()) {
          L.Op = VmOp::AddIncJumpLt;
          L.Charge = 2;
          L.D = Sink.IvReg;
          L.E = Sink.HiReg;
          L.Aux = uint16_t(Sink.BackIP);
          return;
        }
      }
      // Rotated back edge: increment, re-test the bound and branch back
      // to the body top (or out) in one dispatch. The exit target in
      // field D is patched by compileForRange once the region ends.
      Sink.PendingJumps->push_back(emit(VmOp::IncJumpLt, takeCharge(), &I,
                                        uint32_t(Sink.BackIP), Sink.IvReg,
                                        Sink.HiReg));
      return;
    }
    case YieldSink::Kind::DoWhileBack: {
      uint32_t Cond = regOf(I.operand(0));
      std::vector<std::pair<uint32_t, uint32_t>> Pairs;
      for (size_t Idx = 0; Idx != Sink.Dsts.size(); ++Idx)
        Pairs.push_back({Sink.Dsts[Idx], regOf(I.operand(unsigned(1 + Idx)))});
      // The copies may overwrite the condition's register (it can be a
      // carried argument): read it into a temp first.
      bool CondClobbered = false;
      for (const auto &P : Pairs)
        if (P.first == Cond)
          CondClobbered = true;
      if (CondClobbered) {
        uint32_t Temp = newTemp();
        emit(VmOp::Move, takeCharge(), &I, Temp, Cond);
        Cond = Temp;
      }
      emitParallelCopy(std::move(Pairs), &I, NeedCharge);
      emit(VmOp::JumpIfTrue, takeCharge(), &I, uint32_t(Sink.BackIP), Cond);
      // Dead instructions may follow the yield in its region; the exit
      // path must skip them.
      Sink.PendingJumps->push_back(emit(VmOp::Jump, 0, &I));
      return;
    }
    case YieldSink::Kind::ForEachBack: {
      std::vector<std::pair<uint32_t, uint32_t>> Pairs;
      for (size_t Idx = 0; Idx != Sink.Dsts.size(); ++Idx)
        Pairs.push_back({Sink.Dsts[Idx], regOf(I.operand(unsigned(Idx)))});
      emitParallelCopy(std::move(Pairs), &I, NeedCharge);
      emit(VmOp::Jump, takeCharge(), &I, uint32_t(Sink.BackIP));
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Structured control flow
  //===--------------------------------------------------------------------===//

  void compileIf(const Instruction &I, const Instruction *FusedHas) {
    size_t BrIdx;
    if (FusedHas) {
      // has+branch superinstruction: the membership test and the If's
      // conditional jump in one dispatch (2 charges).
      BrIdx = emit(VmOp::HasBrFalse, 2, FusedHas, 0,
                   regOf(FusedHas->operand(0)), regOf(FusedHas->operand(1)), 0,
                   newCache());
    } else {
      BrIdx = emit(VmOp::JumpIfFalse, 1, &I, 0, regOf(I.operand(0)));
    }
    std::vector<size_t> Joins;
    YieldSink Sink;
    Sink.K = YieldSink::Kind::IfJoin;
    for (unsigned Idx = 0; Idx != I.numResults(); ++Idx)
      Sink.Dsts.push_back(regOf(I.result(Idx)));
    Sink.PendingJumps = &Joins;
    compileRegion(*I.region(0), Sink);
    // Safety net for regions terminated by ret (no yield): unreachable,
    // but keeps a malformed fallthrough from running the else region.
    Joins.push_back(emit(VmOp::Jump, 0, &I));
    CF.Code[BrIdx].A = uint32_t(here());
    compileRegion(*I.region(1), Sink);
    size_t JoinIP = here();
    for (size_t Idx : Joins)
      CF.Code[Idx].A = uint32_t(JoinIP);
  }

  void compileForRange(const Instruction &I) {
    const Region &R0 = *I.region(0);
    unsigned Carried = I.numOperands() - 2;
    uint32_t IvReg = regOf(R0.arg(0));
    // Entry: induction and carried-argument initialization. The single
    // Move carrying the loop's 1-step entry charge mirrors the
    // tree-walker charging the ForRange instruction once.
    emit(VmOp::Move, 1, &I, IvReg, regOf(I.operand(0)));
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      emit(VmOp::Move, 0, &I, regOf(R0.arg(1 + Idx)),
           regOf(I.operand(2 + Idx)));
    // Head: `Iv < Hi` or exit, tested only on entry — the back edge is
    // rotated into IncJumpLt, which re-tests after the increment and
    // jumps straight to the body top. The bound's register is immutable
    // while the loop runs (SSA, defined outside the region), so
    // re-reading it each iteration matches the tree-walker's entry
    // snapshot.
    size_t HeadIP = here();
    uint32_t HiReg = regOf(I.operand(1));
    size_t HeadIdx = emit(VmOp::JumpIfGeU64, 0, &I, 0, IvReg, HiReg);
    std::vector<size_t> Exits;
    YieldSink Sink;
    Sink.K = YieldSink::Kind::ForRangeBack;
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      Sink.Dsts.push_back(regOf(R0.arg(1 + Idx)));
    Sink.IvReg = IvReg;
    Sink.HiReg = HiReg;
    Sink.BackIP = HeadIP + 1;
    Sink.PendingJumps = &Exits;
    compileRegion(R0, Sink);
    size_t ExitIP = here();
    CF.Code[HeadIdx].A = uint32_t(ExitIP);
    for (size_t Idx : Exits)
      CF.Code[Idx].D = uint32_t(ExitIP);
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      emit(VmOp::Move, 0, &I, regOf(I.result(Idx)), regOf(R0.arg(1 + Idx)));
  }

  void compileDoWhile(const Instruction &I) {
    const Region &R0 = *I.region(0);
    unsigned Carried = I.numOperands();
    bool First = true;
    for (unsigned Idx = 0; Idx != Carried; ++Idx) {
      emit(VmOp::Move, First ? 1 : 0, &I, regOf(R0.arg(Idx)),
           regOf(I.operand(Idx)));
      First = false;
    }
    if (First)
      emit(VmOp::Nop, 1, &I); // Carry the entry charge with no carried args.
    size_t HeadIP = here();
    std::vector<size_t> Exits;
    YieldSink Sink;
    Sink.K = YieldSink::Kind::DoWhileBack;
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      Sink.Dsts.push_back(regOf(R0.arg(Idx)));
    Sink.BackIP = HeadIP;
    Sink.PendingJumps = &Exits;
    compileRegion(R0, Sink);
    size_t ExitIP = here();
    for (size_t Idx : Exits)
      CF.Code[Idx].A = uint32_t(ExitIP);
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      emit(VmOp::Move, 0, &I, regOf(I.result(Idx)), regOf(R0.arg(Idx)));
  }

  void compileForEach(const Instruction &I) {
    const Region &R0 = *I.region(0);
    unsigned Carried = I.numOperands() - 1;
    // Sets bind one key argument, sequences and maps a key/value pair;
    // statically visible as the region arguments beyond the carried ones.
    unsigned KeyArgs = R0.numArgs() - Carried;
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      emit(VmOp::Move, 0, &I, regOf(R0.arg(KeyArgs + Idx)),
           regOf(I.operand(1 + Idx)));
    emit(VmOp::ForEachInit, 1, &I, 0, regOf(I.operand(0)));
    size_t NextIP = here();
    size_t NextIdx =
        emit(VmOp::ForEachNext, 0, &I, 0, regOf(R0.arg(0)),
             KeyArgs == 2 ? regOf(R0.arg(1)) : NoReg);
    YieldSink Sink;
    Sink.K = YieldSink::Kind::ForEachBack;
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      Sink.Dsts.push_back(regOf(R0.arg(KeyArgs + Idx)));
    Sink.BackIP = NextIP;
    compileRegion(R0, Sink);
    CF.Code[NextIdx].A = uint32_t(here());
    for (unsigned Idx = 0; Idx != Carried; ++Idx)
      emit(VmOp::Move, 0, &I, regOf(I.result(Idx)),
           regOf(R0.arg(KeyArgs + Idx)));
  }

  //===--------------------------------------------------------------------===//
  // Straight-line instructions
  //===--------------------------------------------------------------------===//

  static VmOp binaryU64Op(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
      return VmOp::AddU64;
    case Opcode::Sub:
      return VmOp::SubU64;
    case Opcode::Mul:
      return VmOp::MulU64;
    case Opcode::Div:
      return VmOp::DivU64;
    case Opcode::Rem:
      return VmOp::RemU64;
    case Opcode::And:
      return VmOp::AndU64;
    case Opcode::Or:
      return VmOp::OrU64;
    case Opcode::Xor:
      return VmOp::XorU64;
    case Opcode::Shl:
      return VmOp::ShlU64;
    case Opcode::Shr:
      return VmOp::ShrU64;
    case Opcode::Min:
      return VmOp::MinU64;
    case Opcode::Max:
      return VmOp::MaxU64;
    case Opcode::CmpEq:
      return VmOp::CmpEqU64;
    case Opcode::CmpNe:
      return VmOp::CmpNeU64;
    case Opcode::CmpLt:
      return VmOp::CmpLtU64;
    case Opcode::CmpLe:
      return VmOp::CmpLeU64;
    case Opcode::CmpGt:
      return VmOp::CmpGtU64;
    case Opcode::CmpGe:
      return VmOp::CmpGeU64;
    default:
      return VmOp::BinaryGen;
    }
  }

  static bool isBinary(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      return true;
    default:
      return false;
    }
  }

  static_assert(uint32_t(VmOp::BinPairAddXor) ==
                        uint32_t(VmOp::BinPairAddAdd) + 1 &&
                    uint32_t(VmOp::BinPairSubAdd) ==
                        uint32_t(VmOp::BinPairAddAdd) + 4 &&
                    uint32_t(VmOp::BinPairShrOr) ==
                        uint32_t(VmOp::BinPairAddAdd) + 31,
                "BinPair opcode grid must stay contiguous and op1-major");

  /// Position of \p Op in the superinstruction grid's first-op axis, or
  /// -1 when it has no fused form (Div/Rem trap and must attribute to
  /// their own instruction; compares and min/max chains are cold).
  static int pairOp1Index(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
      return 0;
    case Opcode::Sub:
      return 1;
    case Opcode::Mul:
      return 2;
    case Opcode::And:
      return 3;
    case Opcode::Or:
      return 4;
    case Opcode::Xor:
      return 5;
    case Opcode::Shl:
      return 6;
    case Opcode::Shr:
      return 7;
    default:
      return -1;
    }
  }

  /// Second-op axis: commutative ops only, so the fused handler's fixed
  /// `T <op2> R[D]` operand order is always correct.
  static int pairOp2Index(Opcode Op) {
    switch (Op) {
    case Opcode::Add:
      return 0;
    case Opcode::Xor:
      return 1;
    case Opcode::And:
      return 2;
    case Opcode::Or:
      return 3;
    default:
      return -1;
    }
  }

  /// The BinPair superinstruction fusing \p I with \p Next — adjacent
  /// u64 fast-path binops where the second's only consumption of the
  /// first's value is one of its operands — or BinaryGen when they
  /// don't fuse.
  VmOp fusesBinPair(const Instruction &I, const Instruction *Next) const {
    int Idx1 = pairOp1Index(I.op());
    if (!Opts.Fuse || Idx1 < 0 || !Next || !isBinary(Next->op()))
      return VmOp::BinaryGen;
    int Idx2 = pairOp2Index(Next->op());
    if (Idx2 < 0 || !interp::eval::isU64Fast(Next->operand(0)->type()) ||
        I.result()->uses().size() != 1 ||
        (Next->operand(0) != I.result() && Next->operand(1) != I.result()))
      return VmOp::BinaryGen;
    return VmOp(uint32_t(VmOp::BinPairAddAdd) + uint32_t(Idx1) * 4 +
                uint32_t(Idx2));
  }

  /// True when the read at \p I can fuse with \p Next into a ReadAdd
  /// superinstruction: an immediately following u64 fast-path Add whose
  /// only consumption of the read's value is one of its operands.
  bool fusesReadAdd(const Instruction &I, const Instruction *Next) const {
    return Opts.Fuse && Next && Next->op() == Opcode::Add &&
           I.result()->uses().size() == 1 &&
           (Next->operand(0) == I.result() || Next->operand(1) == I.result()) &&
           interp::eval::isU64Fast(Next->operand(0)->type());
  }

  /// Register-coalescing pre-pass: when the last instruction before a
  /// region's terminating Yield defines a value whose only use is one
  /// yield operand, pre-assign that value the destination register of
  /// its yield slot. The yield's copy then drops as an identity move and
  /// the defining instruction writes the loop-carried (or If-result)
  /// register directly.
  ///
  /// Safety: registers are unique per SSA value, so the destination
  /// register otherwise belongs only to the carried argument / If
  /// result it was allocated for. Moving its write from the yield up to
  /// the def is sound because nothing executes between the two (the def
  /// immediately precedes the yield, and any write a compound def emits
  /// to its own result register is the last thing it does), provided no
  /// *other* yield operand still needs the old value in that register —
  /// rejected below.
  void coalesceLastDef(const Region &R, const YieldSink &Sink) {
    if (Sink.Dsts.empty() || R.size() < 2)
      return;
    const Instruction *Y = R.inst(R.size() - 1);
    if (Y->op() != Opcode::Yield)
      return;
    const Instruction *D = R.inst(R.size() - 2);
    if (D->numResults() != 1)
      return;
    const Value *V = D->result();
    if (V->uses().size() != 1 || RegOf.count(V))
      return;
    // Locate the single use among the yield operands. Do-while yields
    // carry the continue condition at operand 0, offset from the carried
    // destination slots.
    unsigned Base = Sink.K == YieldSink::Kind::DoWhileBack ? 1 : 0;
    unsigned KIdx = ~0u;
    unsigned Hits = 0;
    for (unsigned Idx = 0; Idx != Y->numOperands(); ++Idx)
      if (Y->operand(Idx) == V) {
        KIdx = Idx;
        ++Hits;
      }
    if (Hits != 1 || KIdx < Base || KIdx - Base >= Sink.Dsts.size())
      return;
    uint32_t CR = Sink.Dsts[KIdx - Base];
    // Another yield operand (including the do-while condition) reading
    // the carried register would now see the clobbered value.
    for (unsigned Idx = 0; Idx != Y->numOperands(); ++Idx)
      if (Idx != KIdx && regOf(Y->operand(Idx)) == CR)
        return;
    RegOf[V] = CR;
  }

  void compileRegion(const Region &R, const YieldSink &Sink) {
    coalesceLastDef(R, Sink);
    for (size_t K = 0; K != R.size(); ++K) {
      const Instruction &I = *R.inst(K);
      const Instruction *Next = K + 1 < R.size() ? R.inst(K + 1) : nullptr;
      switch (I.op()) {
      case Opcode::ConstInt: {
        const auto *IT = dyn_cast<IntType>(I.result()->type());
        uint64_t Raw = static_cast<uint64_t>(I.intAttr());
        uint64_t V = IT ? interp::eval::maskToWidth(Raw, IT->bits()) : Raw;
        emit(VmOp::LoadImm, 1, &I, regOf(I.result()), constIdx(V));
        break;
      }
      case Opcode::ConstFloat:
        emit(VmOp::LoadImm, 1, &I, regOf(I.result()),
             constIdx(interp::doubleToBits(I.fpAttr())));
        break;
      case Opcode::ConstBool:
        emit(VmOp::LoadImm, 1, &I, regOf(I.result()),
             constIdx(I.intAttr() ? 1 : 0));
        break;
      case Opcode::Neg:
        emit(VmOp::NegGen, 1, &I, regOf(I.result()), regOf(I.operand(0)));
        break;
      case Opcode::Not:
        emit(VmOp::NotGen, 1, &I, regOf(I.result()), regOf(I.operand(0)));
        break;
      case Opcode::Select:
        emit(VmOp::SelectVal, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)), regOf(I.operand(2)));
        break;
      case Opcode::Cast:
        emit(VmOp::CastGen, 1, &I, regOf(I.result()), regOf(I.operand(0)));
        break;
      case Opcode::New:
        emit(VmOp::NewColl, 1, &I, regOf(I.result()));
        break;
      case Opcode::Read: {
        bool IsSeq = isa<SeqType>(I.operand(0)->type());
        if (fusesReadAdd(I, Next)) {
          uint32_t Other = regOf(Next->operand(
              Next->operand(0) == I.result() ? 1 : 0));
          emit(IsSeq ? VmOp::SeqReadAdd : VmOp::MapReadAdd, 2, &I,
               regOf(Next->result()), regOf(I.operand(0)),
               regOf(I.operand(1)), Other, IsSeq ? 0 : newCache());
          ++K;
          break;
        }
        if (IsSeq)
          emit(VmOp::SeqRead, 1, &I, regOf(I.result()), regOf(I.operand(0)),
               regOf(I.operand(1)));
        else
          emit(VmOp::MapRead, 1, &I, regOf(I.result()), regOf(I.operand(0)),
               regOf(I.operand(1)), 0, newCache());
        break;
      }
      case Opcode::Write:
        if (isa<SeqType>(I.operand(0)->type()))
          emit(VmOp::SeqWrite, 1, &I, 0, regOf(I.operand(0)),
               regOf(I.operand(1)), regOf(I.operand(2)));
        else
          emit(VmOp::MapWrite, 1, &I, 0, regOf(I.operand(0)),
               regOf(I.operand(1)), regOf(I.operand(2)), newCache());
        break;
      case Opcode::Insert:
        emit(VmOp::InsertVal, 1, &I, 0, regOf(I.operand(0)),
             regOf(I.operand(1)), 0, newCache());
        break;
      case Opcode::Remove:
        emit(VmOp::RemoveVal, 1, &I, 0, regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::Has:
        if (Opts.Fuse && Next && Next->op() == Opcode::If &&
            onlyUseIs(I.result(), Next, 0)) {
          compileIf(*Next, &I);
          ++K;
          break;
        }
        emit(VmOp::HasVal, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)), 0, newCache());
        break;
      case Opcode::Size:
        emit(VmOp::SizeVal, 1, &I, regOf(I.result()), regOf(I.operand(0)));
        break;
      case Opcode::Clear:
        emit(VmOp::ClearVal, 1, &I, 0, regOf(I.operand(0)));
        break;
      case Opcode::Reserve:
        emit(VmOp::ReserveVal, 1, &I, 0, regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::Append:
        emit(VmOp::SeqAppend, 1, &I, 0, regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::Pop:
        emit(VmOp::SeqPop, 1, &I, regOf(I.result()), regOf(I.operand(0)));
        break;
      case Opcode::Union:
        emit(VmOp::UnionVal, 1, &I, 0, regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::Enc:
        if (Opts.Fuse && Next && Next->op() == Opcode::Insert &&
            Next->numOperands() == 2 && onlyUseIs(I.result(), Next, 1)) {
          emit(VmOp::EncInsert, 2, &I, 0, regOf(I.operand(0)),
               regOf(I.operand(1)), regOf(Next->operand(0)), newCache(),
               uint16_t(srcIdx(Next)));
          ++K;
          break;
        }
        emit(VmOp::EncVal, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::Dec:
        emit(VmOp::DecVal, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::EnumAdd:
        emit(VmOp::EnumAddVal, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      case Opcode::GlobalGet:
        emit(VmOp::GlobalGet, 1, &I, regOf(I.result()), symIdx(I.symbol()));
        break;
      case Opcode::GlobalSet:
        emit(VmOp::GlobalSet, 1, &I, regOf(I.operand(0)),
             symIdx(I.symbol()));
        break;
      case Opcode::If:
        compileIf(I, /*FusedHas=*/nullptr);
        break;
      case Opcode::ForEach:
        compileForEach(I);
        break;
      case Opcode::ForRange:
        compileForRange(I);
        break;
      case Opcode::DoWhile:
        compileDoWhile(I);
        break;
      case Opcode::Yield:
        compileYield(I, Sink, Next == nullptr);
        break;
      case Opcode::Call: {
        const Function *Callee = I.parentModule()->getFunction(I.symbol());
        CF.FuncPool.push_back(Callee); // Null faults at execution time.
        std::vector<uint32_t> Args;
        for (unsigned Idx = 0; Idx != I.numOperands(); ++Idx)
          Args.push_back(regOf(I.operand(Idx)));
        CF.ArgPool.push_back(std::move(Args));
        emit(VmOp::CallFn, 1, &I,
             I.numResults() ? regOf(I.result()) : NoReg,
             uint32_t(CF.FuncPool.size() - 1),
             uint32_t(CF.ArgPool.size() - 1));
        break;
      }
      case Opcode::Ret:
        emit(VmOp::RetVal, 1, &I,
             I.numOperands() ? regOf(I.operand(0)) : NoReg);
        break;
      default: {
        // Remaining opcodes are the binary scalar operations.
        VmOp Op = VmOp::BinaryGen;
        if (isBinary(I.op()) &&
            interp::eval::isU64Fast(I.operand(0)->type())) {
          Op = binaryU64Op(I.op());
          if (VmOp Pair = fusesBinPair(I, Next); Pair != VmOp::BinaryGen) {
            // The intermediate value lives only in the handler; it never
            // gets a register.
            uint32_t Other = regOf(
                Next->operand(Next->operand(0) == I.result() ? 1 : 0));
            emit(Pair, 2, &I, regOf(Next->result()), regOf(I.operand(0)),
                 regOf(I.operand(1)), Other);
            ++K;
            break;
          }
        }
        emit(Op, 1, &I, regOf(I.result()), regOf(I.operand(0)),
             regOf(I.operand(1)));
        break;
      }
      }
    }
  }
};

} // namespace

CompiledFn ade::vm::compileFunction(const Function &F, CompileOptions Opts) {
  return Compiler(F, Opts).run();
}
