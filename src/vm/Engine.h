//===- Engine.h - Engine selection facade -----------------------*- C++ -*-===//
//
// Part of the ADE reproduction project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin facade over the two execution engines — the tree-walking
/// interp::Interpreter and the register bytecode vm::VM — so hosts (adec,
/// the bench harness, the fuzzer oracle) select one with `--engine` and
/// drive it through a single surface. The engines are semantically
/// interchangeable; the facade adds no behavior of its own.
///
//===----------------------------------------------------------------------===//

#ifndef ADE_VM_ENGINE_H
#define ADE_VM_ENGINE_H

#include "vm/VM.h"

namespace ade {
namespace vm {

enum class EngineKind : uint8_t {
  Tree, ///< interp::Interpreter, the reference tree-walker.
  Vm,   ///< vm::VM, the direct-threaded bytecode engine.
};

/// "tree" or "vm".
const char *engineName(EngineKind K);

/// Parses an `--engine=` value; false (and \p K untouched) when \p Name
/// names no engine.
bool engineFromName(const std::string &Name, EngineKind &K);

/// One execution engine of either kind over one module.
class Engine {
public:
  Engine(EngineKind K, const ir::Module &M, interp::InterpOptions Opts = {})
      : TheKind(K) {
    if (K == EngineKind::Tree)
      Tree = std::make_unique<interp::Interpreter>(M, Opts);
    else
      Machine = std::make_unique<VM>(M, Opts);
  }

  EngineKind kind() const { return TheKind; }

  uint64_t call(const ir::Function *F, const std::vector<uint64_t> &Args) {
    return Tree ? Tree->call(F, Args) : Machine->call(F, Args);
  }

  uint64_t callByName(const std::string &Name,
                      const std::vector<uint64_t> &Args) {
    return Tree ? Tree->callByName(Name, Args)
                : Machine->callByName(Name, Args);
  }

  /// Makes MaxSteps a per-call budget: zeroes the engine's cumulative
  /// step counter. Call before each independent request.
  void resetCallBudget() {
    Tree ? Tree->resetCallBudget() : Machine->resetCallBudget();
  }

  runtime::RtCollection *newCollection(const ir::Type *Ty) {
    return Tree ? Tree->newCollection(Ty) : Machine->newCollection(Ty);
  }

  static uint64_t collToBits(runtime::RtCollection *C) {
    return interp::Interpreter::collToBits(C);
  }
  static runtime::RtCollection *bitsToColl(uint64_t Bits) {
    return interp::Interpreter::bitsToColl(Bits);
  }

  runtime::InterpStats &stats() {
    return Tree ? Tree->stats() : Machine->stats();
  }

  runtime::ProbeCounters probeTotals() const {
    return Tree ? Tree->probeTotals() : Machine->probeTotals();
  }

  uint64_t globalValue(const std::string &Name) {
    return Tree ? Tree->globalValue(Name) : Machine->globalValue(Name);
  }

  void setGlobalValue(const std::string &Name, uint64_t Value) {
    if (Tree)
      Tree->setGlobalValue(Name, Value);
    else
      Machine->setGlobalValue(Name, Value);
  }

private:
  EngineKind TheKind;
  std::unique_ptr<interp::Interpreter> Tree;
  std::unique_ptr<VM> Machine;
};

} // namespace vm
} // namespace ade

#endif // ADE_VM_ENGINE_H
